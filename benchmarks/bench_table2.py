"""Table II reproduction: DIFT performance overhead (VP vs VP+).

For every paper benchmark this measures the identical guest binary on the
plain VP and the DIFT-instrumented VP+ and reports the overhead factor.
The headline claim to reproduce is the *shape*: VP+ is uniformly slower,
by roughly 1.2x (I/O-bound simple-sensor) up to ~2-3x (compute/trap-heavy
workloads), averaging around 2x in the paper.

``pytest benchmarks/bench_table2.py --benchmark-only -s`` prints the
rendered table; add ``--benchmark-scale=full`` for paper-sized runs
(minutes of host time on the pure-Python ISS).
"""

import pytest

from repro.bench.runner import run_workload
from repro.bench.table2 import (
    Comparison,
    format_against_paper,
    format_table,
)
from repro.bench.workloads import TABLE2_ORDER, WORKLOADS

_ROWS = {}

#: filesystem-safe slug per platform mode (for BENCH_*.json names)
_MODE_SLUG = {"VP": "vp", "VP+": "vpp", "VP+d": "vppd"}


@pytest.mark.parametrize("mode", ["VP", "VP+", "VP+d"])
@pytest.mark.parametrize("name", TABLE2_ORDER)
def test_workload(benchmark, scale, quick, name, mode, bench_json):
    """One (benchmark, platform) cell of Table II.

    ``VP+d`` is demand-driven DIFT: same detections as VP+, fast-stepping
    while the machine holds no taint.
    """
    workload = WORKLOADS[name]
    dift = mode != "VP"
    dift_mode = "demand" if mode == "VP+d" else "full"
    benchmark.group = f"table2-{name}"

    measurement = benchmark.pedantic(
        run_workload, args=(workload, scale, dift),
        kwargs={"dift_mode": dift_mode,
                "max_instructions": 60_000 if quick else None},
        rounds=1, iterations=1)

    assert measurement.violations == 0
    benchmark.extra_info.update(
        instructions=measurement.instructions,
        loc_asm=measurement.loc_asm,
        mips=round(measurement.mips, 3),
    )
    _ROWS.setdefault(name, {})[mode] = measurement
    bench_json(f"table2_{name}_{_MODE_SLUG[mode]}",
               {"workload": name, "mode": mode,
                "seconds": measurement.host_seconds,
                "instructions": measurement.instructions,
                "mips": round(measurement.mips, 3)})


def test_render_table2(benchmark, capsys, scale, quick):
    """Assemble the Table II rows measured above and print the table."""
    if quick:
        pytest.skip("overhead-shape assertions need full-length runs")
    benchmark.group = "table2-render"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in TABLE2_ORDER:
        cells = _ROWS.get(name)
        if not cells or "VP" not in cells or "VP+" not in cells:
            pytest.skip("run the full module so all cells are measured")
        vp, vp_plus = cells["VP"], cells["VP+"]
        rows.append(Comparison(
            workload=name,
            instructions=vp.instructions,
            loc_asm=vp.loc_asm,
            vp_seconds=vp.host_seconds,
            vp_plus_seconds=vp_plus.host_seconds,
            vp_mips=vp.mips,
            vp_plus_mips=vp_plus.mips,
        ))
    # the reproducible shape: every workload pays a DIFT overhead
    assert all(row.overhead > 0.9 for row in rows)
    overheads = {row.workload: row.overhead for row in rows}
    # simple-sensor is the lightest-overhead workload family in the paper
    assert overheads["simple-sensor"] <= max(overheads.values())
    with capsys.disabled():
        print()
        print(f"TABLE II -- DIFT performance overhead (scale={scale})")
        print(format_table(rows))
        print()
        print(format_against_paper(rows))
        demand = [(name, _ROWS[name]["VP+d"]) for name in TABLE2_ORDER
                  if "VP+d" in _ROWS.get(name, {})]
        if demand:
            print()
            print("VP+d -- demand-driven DIFT (identical detections)")
            for name, m in demand:
                vp_plus = _ROWS[name]["VP+"]
                ratio = (vp_plus.host_seconds / m.host_seconds
                         if m.host_seconds > 0 else float("nan"))
                print(f"  {name:<16} {m.host_seconds:8.3f}s "
                      f"({ratio:4.2f}x vs VP+)")
