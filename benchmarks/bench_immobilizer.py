"""Section VI-A reproduction: the immobilizer security-policy case study.

Regenerates the case-study narrative as a scenario table: which attacks
the baseline policy catches, the entropy-reduction gap, the brute-force
exploitation of that gap, and the per-byte-class policy fix.
"""

import pytest

from repro.casestudy import immobilizer as cs

_SCENARIOS = [
    ("protocol-only (fixed SW, baseline policy)", b"c", False, "fixed",
     False),
    ("debug dump (vulnerable SW)", b"d", True, "vulnerable", False),
    ("debug dump (fixed SW)", b"dq", False, "fixed", False),
    ("attack 1: direct PIN -> UART", b"1", True, "fixed", False),
    ("attack 1b: PIN -> buffer -> UART", b"b", True, "fixed", False),
    ("attack 2: branch on PIN", b"2", True, "fixed", False),
    ("attack 3: overwrite PIN with external data", b"3" + bytes(16) + b"c",
     True, "fixed", False),
    ("attack 4: entropy reduction (baseline policy)", b"4c", False,
     "fixed", False),
    ("attack 4: entropy reduction (per-byte policy)", b"4c", True,
     "fixed", True),
]


@pytest.mark.parametrize(
    "name,commands,expected,variant,per_byte", _SCENARIOS,
    ids=[s[0].split(":")[0].replace(" ", "-") for s in _SCENARIOS])
def test_scenario(benchmark, name, commands, expected, variant, per_byte):
    benchmark.group = "immobilizer-scenario"
    benchmark.extra_info.update(scenario=name,
                                expected="detect" if expected else "allow")
    result = benchmark.pedantic(
        cs.run_scenario, args=(name, commands, expected),
        kwargs=dict(variant=variant, per_byte=per_byte), rounds=1,
        iterations=1)
    assert result.as_expected, result.violation


def test_brute_force_exploits_the_gap(benchmark):
    """The paper's point: the missed attack is a *real* vulnerability."""
    benchmark.group = "immobilizer-bruteforce"
    recovered = benchmark.pedantic(cs.capture_and_brute_force, rounds=1,
                                   iterations=1)
    assert recovered == cs.PIN[0]


def test_full_case_study(benchmark, capsys):
    benchmark.group = "immobilizer-full"
    results = benchmark.pedantic(cs.run_case_study, rounds=1, iterations=1)
    assert all(r.as_expected for r in results)
    with capsys.disabled():
        print()
        print("SECTION VI-A -- immobilizer case study")
        print(cs.format_report(results))
