"""Decoupled-monitor overhead characterization (``repro.dift.monitor``).

Measures the asynchronous event-stream monitor against the inline full
engine on two registry workloads chosen to bracket its envelope:

* ``simple-sensor`` — taint-heavy: every sensor frame enters tainted and
  propagates through the filter arithmetic, so the monitor consumes a
  dense stream of tagged loads and MMIO packets.  This is the case the
  decoupling is *for* — the run-ahead core never touches tag state.
* ``qsort`` — clean: no taint sources fire, so the stream is almost
  pure ``step`` packets and the measurement isolates the emit/consume
  plumbing cost itself.

Each workload runs three ways — inline full, decoupled (quantum-end
drains), and decoupled-strict (per-instruction drains, paper-exact trap
timing) — and every leg asserts identical retired-instruction counts
and console output against the inline reference: a monitor that
diverged would be measuring a different program.  The decoupled legs'
wall times are the ``data.seconds`` quantities gated by
``check_regression.py``.
"""

from time import perf_counter

import pytest

from repro.bench.workloads import WORKLOADS

_ROUNDS = 3

#: (full budget, quick budget) in retired instructions
_BUDGETS = (120_000, 20_000)

#: mode key -> (dift_mode, record suffix)
_MODES = (("inline", "full"),
          ("async", "decoupled"),
          ("strict", "decoupled-strict"))

_WORKLOAD_NAMES = ("simple-sensor", "qsort")


def _run_once(workload, dift_mode, budget):
    platform = workload.make_platform("quick", True, dift_mode=dift_mode,
                                      seed=0)
    started = perf_counter()
    result = platform.run(max_instructions=budget)
    elapsed = perf_counter() - started
    return platform, result, elapsed


def _best_of(workload, dift_mode, budget, rounds=_ROUNDS):
    best = None
    for __ in range(rounds):
        platform, result, elapsed = _run_once(workload, dift_mode, budget)
        if best is None or elapsed < best[2]:
            best = (platform, result, elapsed)
    return best


@pytest.mark.parametrize("name", _WORKLOAD_NAMES)
def test_monitor_overhead(benchmark, name, quick, bench_json):
    benchmark.group = "monitor"
    budget = _BUDGETS[1 if quick else 0]
    workload = WORKLOADS[name]

    legs = {}
    for key, dift_mode in _MODES:
        if key == "async":
            # the headline leg carries the pytest-benchmark timing
            legs[key] = benchmark.pedantic(
                _best_of, args=(workload, dift_mode, budget),
                rounds=1, iterations=1)
        else:
            legs[key] = _best_of(workload, dift_mode, budget)

    p_ref, r_ref, t_ref = legs["inline"]
    for key, __ in _MODES[1:]:
        platform, result, __ = legs[key]
        assert result.instructions == r_ref.instructions, \
            f"{name}/{key}: retired {result.instructions} " \
            f"!= inline {r_ref.instructions}"
        assert platform.console() == p_ref.console()
        assert [str(v) for v in result.violations] \
            == [str(v) for v in r_ref.violations]
        assert not platform.monitor.fifo, \
            f"{name}/{key}: monitor left packets queued"
        assert platform.monitor.events_consumed >= result.instructions

    for key, __ in _MODES:
        platform, result, elapsed = legs[key]
        # overhead relative to the inline-full reference; > 1 is slower
        overhead = elapsed / t_ref
        monitor = platform.monitor
        benchmark.extra_info[f"{key}_overhead"] = round(overhead, 3)
        bench_json(f"monitor_{key}_{name}",
                   {"workload": name, "mode": key,
                    "instructions": result.instructions,
                    "seconds": elapsed,
                    "overhead_vs_inline": round(overhead, 3),
                    "events_consumed": (monitor.events_consumed
                                        if monitor else 0),
                    "drains": monitor.drains if monitor else 0})
