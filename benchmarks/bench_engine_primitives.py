"""Micro-benchmarks of the DIFT engine primitives (Fig. 1 / Fig. 3).

Not a paper table, but the cost model behind Table II: LUB lookups,
allowedFlow checks, Taint operator overloading and byte conversion are
the per-instruction costs the VP+ pays.  These microbenchmarks make the
constant factors visible and guard against regressions.
"""

import pytest

from repro.dift.engine import DiftEngine
from repro.dift.taint import Taint
from repro.policy import SecurityPolicy, builders


@pytest.fixture(scope="module")
def engine():
    policy = SecurityPolicy(builders.ifp3(), default_class=builders.LC_LI)
    return DiftEngine(policy)


def test_lattice_construction(benchmark):
    benchmark.group = "primitives"
    lattice = benchmark(builders.ifp3)
    assert len(lattice) == 4


def test_per_byte_lattice_construction(benchmark):
    """The 36-class per-byte key lattice (16 bytes) of Section VI-A."""
    benchmark.group = "primitives"
    lattice, byte_classes = benchmark(builders.per_byte_key_ifp, 16)
    assert len(byte_classes) == 16


def test_lub_table_lookup(benchmark, engine):
    benchmark.group = "primitives"
    lub = engine.lub

    def lookups():
        acc = 0
        for a in range(4):
            for b in range(4):
                acc = lub[a][b]
        return acc

    benchmark(lookups)


def test_flow_check(benchmark, engine):
    benchmark.group = "primitives"
    benchmark(engine.check_flow, 0, 3, "bench")


def test_taint_arithmetic(benchmark, engine):
    benchmark.group = "primitives"
    a = Taint(0x12345678, 1, engine)
    b = Taint(0x9ABCDEF0, 2, engine)

    def ops():
        return ((a + b) ^ (a & b)) << 3

    result = benchmark(ops)
    assert result.tag == engine.lub[1][2]


def test_taint_byte_round_trip(benchmark, engine):
    benchmark.group = "primitives"
    value = Taint(0xDEADBEEF, 2, engine)

    def round_trip():
        return Taint.from_bytes(value.to_bytes(), engine)

    result = benchmark(round_trip)
    assert result.value == 0xDEADBEEF


def test_shadow_lub_range(benchmark, engine):
    from repro.dift.shadow import ShadowTags

    benchmark.group = "primitives"
    shadow = ShadowTags(4096)
    shadow.set(1000, 2)
    result = benchmark(shadow.lub_range, 0, 4096, engine.lub, 0)
    assert result == 2


def test_iss_throughput_plain(benchmark):
    """Raw ISS speed (the VP column's MIPS at microbenchmark scale)."""
    from repro.sw import primes
    from repro.vp.platform import Platform

    benchmark.group = "iss-throughput"
    program = primes.build(limit=1500)

    def run():
        platform = Platform()
        platform.load(program)
        return platform.run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["mips"] = round(result.mips, 3)


def test_iss_throughput_dift(benchmark):
    """DIFT ISS speed (the VP+ column's MIPS at microbenchmark scale)."""
    from repro.bench.workloads import benchmark_policy
    from repro.sw import primes
    from repro.vp.platform import Platform

    benchmark.group = "iss-throughput"
    program = primes.build(limit=1500)

    def run():
        platform = Platform(policy=benchmark_policy())
        platform.load(program)
        return platform.run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["mips"] = round(result.mips, 3)
