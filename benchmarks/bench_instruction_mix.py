"""Workload characterization: dynamic instruction mix per benchmark.

Validates DESIGN.md's substitution claim that each substitute guest
preserves the *instruction-mix character* of the paper's original
workload: primes is division-heavy, sha512 is ALU/rotate-heavy, qsort is
compare-and-call heavy, dhrystone is string/branch heavy, simple-sensor
is load/store (MMIO) heavy.
"""

from time import perf_counter

import pytest

from repro.bench.instmix import (
    format_mix_table,
    profile_workload,
)
from repro.bench.workloads import TABLE2_ORDER
from repro.obs import Observability

_STEPS = 40_000
_QUICK_STEPS = 5_000
_MIXES = {}


@pytest.mark.parametrize("name", TABLE2_ORDER)
def test_profile(benchmark, name, bench_json, quick):
    benchmark.group = "instruction-mix"
    steps = _QUICK_STEPS if quick else _STEPS
    obs = Observability()
    started = perf_counter()
    mix = benchmark.pedantic(profile_workload, args=(name, steps),
                             kwargs={"obs": obs}, rounds=1, iterations=1)
    elapsed = perf_counter() - started
    # regression-gate timing: min of three runs, so the committed
    # baseline tracks the code's speed rather than host scheduling noise
    for __ in range(2):
        t0 = perf_counter()
        profile_workload(name, steps, obs=Observability())
        elapsed = min(elapsed, perf_counter() - t0)
    assert mix.total > 1_000
    benchmark.extra_info.update(
        {cat: round(100 * mix.fraction(cat), 1)
         for cat in mix.counts})
    _MIXES[name] = mix
    bench_json(f"instmix_{name}",
               {"workload": name, "total": mix.total,
                "seconds": elapsed,
                "counts": dict(mix.counts),
                "fractions": {cat: mix.fraction(cat)
                              for cat in mix.counts}},
               registry=obs.metrics)


def test_workload_characters(benchmark, capsys, quick):
    """The claims the substitutions rest on, asserted."""
    if quick:
        pytest.skip("character assertions need the full step budget")
    benchmark.group = "instruction-mix"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_MIXES) < len(TABLE2_ORDER):
        pytest.skip("run the full module so all workloads are profiled")

    # primes is the div/rem workload
    assert _MIXES["primes"].fraction("muldiv") > \
        max(_MIXES[n].fraction("muldiv") for n in TABLE2_ORDER
            if n != "primes")
    # sha512 is the ALU-dominated workload
    assert _MIXES["sha512"].fraction("alu") > 0.5
    # qsort makes the most calls (recursion)
    assert _MIXES["qsort"].fraction("jump") > \
        _MIXES["dhrystone"].fraction("jump")
    # the sensor app is memory/MMIO dominated
    sensor = _MIXES["simple-sensor"]
    assert sensor.fraction("load") + sensor.fraction("store") > 0.3

    with capsys.disabled():
        print()
        print("DYNAMIC INSTRUCTION MIX (quick scale)")
        print(format_mix_table([_MIXES[n] for n in TABLE2_ORDER]))
