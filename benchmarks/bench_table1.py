"""Table I reproduction: Wilander–Kamkar code-injection detection.

Regenerates the paper's Table I: every applicable attack must (a) succeed
on the unprotected VP and (b) be *Detected* on VP+ under the Section VI-B
code-injection policy; the 8 RISC-V-inapplicable forms are reported N/A.

Run with ``pytest benchmarks/bench_table1.py --benchmark-only -s`` to see
the rendered table.
"""

import pytest

from repro.bench import table1
from repro.sw import wk_suite

_APPLICABLE = [spec.number for spec in wk_suite.SPECS if spec.applicable]

_PAPER = {
    3: "Detected", 5: "Detected", 6: "Detected", 7: "Detected",
    9: "Detected", 10: "Detected", 11: "Detected", 13: "Detected",
    14: "Detected", 17: "Detected",
}


@pytest.mark.parametrize("number", _APPLICABLE)
def test_attack_detection(benchmark, number):
    """Per-attack: measure the full exploit+detect cycle, assert Table I."""
    spec = wk_suite.spec(number)
    benchmark.group = "table1-attack"
    benchmark.extra_info.update(
        location=spec.location, target=spec.target,
        technique=spec.technique, paper_result=_PAPER[number])

    result = benchmark.pedantic(table1.run_attack, args=(number,),
                                rounds=2, iterations=1)
    assert result.exploit_works
    assert result.detected
    assert result.result == _PAPER[number]


def test_full_table1(benchmark, capsys):
    """The whole 18-row table, printed in the paper's layout."""
    benchmark.group = "table1-full"
    results = benchmark.pedantic(table1.run_suite, rounds=1, iterations=1)
    detected = sum(1 for r in results if r.result == "Detected")
    na = sum(1 for r in results if r.result == "N/A")
    assert (detected, na) == (10, 8)
    with capsys.disabled():
        print()
        print("TABLE I -- Buffer-overflow test-suite results")
        print(table1.format_table(results))
