"""Section V-B1 reproduction: DIFT integration cost in lines of code.

The paper reports the DIFT engine touched 6.81 % of the VP's LoC, 58.7 %
of which were type conversions.  This regenerates the analogous
measurement for this repository's VP substrate.
"""

from repro.bench import locdelta


def test_loc_delta(benchmark, capsys):
    benchmark.group = "loc-delta"
    report = benchmark.pedantic(locdelta.analyze, rounds=3, iterations=1)
    assert 0.0 < report.dift_fraction < 0.5
    benchmark.extra_info.update(
        dift_percent=round(100 * report.dift_fraction, 2),
        conversion_percent=round(100 * report.conversion_fraction, 1))
    with capsys.disabled():
        print()
        print("SECTION V-B1 -- DIFT integration cost")
        print(report.summary())
        breakdown = locdelta.per_file_breakdown(report)
        touched = {k: v for k, v in sorted(breakdown.items(),
                                           key=lambda kv: -kv[1]) if v}
        for filename, fraction in list(touched.items())[:8]:
            print(f"  {filename:<18} {100 * fraction:5.1f}% DIFT-related")
