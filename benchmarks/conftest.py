"""Benchmark-suite configuration.

Each benchmark rebuilds its platform per round (a halted guest cannot be
re-run), so round counts are kept low via ``benchmark.pedantic``.  The
``--benchmark-scale=full`` option switches the Table II workloads from
the quick (test-sized) scales to the paper-sized reproduction scales.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--benchmark-scale",
        action="store",
        default="quick",
        choices=("quick", "full"),
        help="workload scale for the Table II reproduction benchmarks",
    )


@pytest.fixture(scope="session")
def scale(request):
    return request.config.getoption("--benchmark-scale")
