"""Benchmark-suite configuration.

Each benchmark rebuilds its platform per round (a halted guest cannot be
re-run), so round counts are kept low via ``benchmark.pedantic``.  The
``--benchmark-scale=full`` option switches the Table II workloads from
the quick (test-sized) scales to the paper-sized reproduction scales.

``--metrics-json=DIR`` enables machine-readable output: any benchmark
may call the ``bench_json`` fixture to drop a ``BENCH_<name>.json``
record (schema ``repro.bench/1``, see :mod:`repro.obs.export`) into
DIR — the artifact CI uploads so perf claims are diffable across runs.
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--benchmark-scale",
        action="store",
        default="quick",
        choices=("quick", "full"),
        help="workload scale for the Table II reproduction benchmarks",
    )
    parser.addoption(
        "--metrics-json",
        action="store",
        default=None,
        metavar="DIR",
        help="write BENCH_<name>.json records (repro.obs.export schema) "
             "into DIR",
    )
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="smoke variant: shrink step counts / instruction budgets and "
             "skip the cross-workload assertion tests, so the benchmark "
             "modules can run inside the tier-1 CI matrix",
    )


@pytest.fixture(scope="session")
def scale(request):
    return request.config.getoption("--benchmark-scale")


@pytest.fixture(scope="session")
def quick(request):
    return request.config.getoption("--quick")


@pytest.fixture
def bench_json(request):
    """Writer for ``BENCH_<name>.json`` records; no-op unless enabled.

    Usage::

        def test_something(benchmark, bench_json):
            ...
            bench_json("my_bench", {"seconds": 1.2}, registry=obs.metrics)
    """
    out_dir = request.config.getoption("--metrics-json")

    def write(name, payload, registry=None):
        if not out_dir:
            return None
        from repro.obs.export import write_bench_json

        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"BENCH_{name}.json")
        return write_bench_json(path, name, payload, registry)

    return write
