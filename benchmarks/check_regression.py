#!/usr/bin/env python3
"""Performance-regression gate over ``BENCH_*.json`` records.

Compares a fresh ``--metrics-json`` benchmark run against the committed
baselines and fails (exit 1) when any benchmark's ``data.seconds`` got
more than ``--threshold`` slower.  Timings are the only gated quantity;
deterministic counters (``data.total``, ``data.instructions``) are
compared too but only *warn* on drift — counts changing is a
correctness question for the test suite, not for this gate.

Usage::

    PYTHONPATH=src python -m pytest benchmarks -q --metrics-json fresh/
    python benchmarks/check_regression.py \
        --baseline benchmarks/baselines --current fresh \
        --output comparison.md

    # refresh the committed baselines from a run
    python benchmarks/check_regression.py \
        --baseline benchmarks/baselines --current fresh --update

Benchmarks present only in the current run (new benchmarks) warn but
never fail the gate, so adding a benchmark does not require a lockstep
baseline commit.  Benchmarks present in the baselines but **missing
from the current run fail the gate** — a silently dropped benchmark is
indistinguishable from an unbounded regression.  If the benchmark was
removed on purpose, refresh the baselines with ``--update`` (or pass
``--allow-missing`` for a one-off run of a benchmark subset).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from typing import Dict, Optional


def load_records(directory: str) -> Dict[str, dict]:
    """Map bench name -> record for every BENCH_*.json in ``directory``."""
    records: Dict[str, dict] = {}
    if not os.path.isdir(directory):
        return records
    for entry in sorted(os.listdir(directory)):
        if not (entry.startswith("BENCH_") and entry.endswith(".json")):
            continue
        path = os.path.join(directory, entry)
        try:
            with open(path) as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: skipping unreadable {path}: {exc}",
                  file=sys.stderr)
            continue
        name = record.get("bench") or entry[len("BENCH_"):-len(".json")]
        records[name] = record
    return records


def _seconds(record: dict) -> Optional[float]:
    value = record.get("data", {}).get("seconds")
    return float(value) if isinstance(value, (int, float)) else None


def _count(record: dict) -> Optional[int]:
    data = record.get("data", {})
    for key in ("total", "instructions"):
        if isinstance(data.get(key), int):
            return data[key]
    return None


def compare(baseline: Dict[str, dict], current: Dict[str, dict],
            threshold: float, min_delta: float = 0.05,
            allow_missing: bool = False):
    """Build comparison rows; returns (rows, failures, warnings).

    A benchmark regresses when its timing is both *relatively* slower
    (``ratio > 1 + threshold``) and *absolutely* slower by more than
    ``min_delta`` seconds — the floor keeps millisecond-scale timings,
    where host jitter dwarfs the threshold, from tripping the gate.
    A benchmark with a committed baseline but no current record is a
    failure (unless ``allow_missing``): dropped benchmarks must not
    pass silently.
    """
    rows = []
    regressions = []
    warnings = []
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if base is None:
            rows.append((name, None, _seconds(cur), None, "new"))
            warnings.append(f"{name}: no baseline (new benchmark)")
            continue
        if cur is None:
            rows.append((name, _seconds(base), None, None, "MISSING"))
            message = (
                f"{name}: baseline exists but the current run produced no "
                "record — the benchmark was dropped, renamed or crashed. "
                "If intentional, refresh baselines with --update "
                "(or pass --allow-missing for a partial run).")
            if allow_missing:
                warnings.append(message)
            else:
                regressions.append(message)
            continue
        base_s, cur_s = _seconds(base), _seconds(cur)
        if base_s is None or cur_s is None or base_s <= 0:
            rows.append((name, base_s, cur_s, None, "no-timing"))
            continue
        ratio = cur_s / base_s
        status = "ok"
        if ratio > 1.0 + threshold and cur_s - base_s > min_delta:
            status = "REGRESSION"
            regressions.append(
                f"{name}: {base_s:.3f}s -> {cur_s:.3f}s "
                f"({100 * (ratio - 1):+.1f}%)")
        rows.append((name, base_s, cur_s, ratio, status))
        base_n, cur_n = _count(base), _count(cur)
        if base_n is not None and cur_n is not None and base_n != cur_n:
            warnings.append(
                f"{name}: deterministic count drifted "
                f"{base_n} -> {cur_n} (not gated; check the test suite)")
    return rows, regressions, warnings


def render_markdown(rows, threshold: float) -> str:
    lines = [
        f"# Benchmark regression gate (threshold {100 * threshold:.0f}%)",
        "",
        "| benchmark | baseline | current | ratio | status |",
        "|---|---:|---:|---:|---|",
    ]
    for name, base_s, cur_s, ratio, status in rows:
        base_cell = f"{base_s:.3f}s" if base_s is not None else "-"
        cur_cell = f"{cur_s:.3f}s" if cur_s is not None else "-"
        ratio_cell = f"{ratio:.2f}x" if ratio is not None else "-"
        lines.append(f"| {name} | {base_cell} | {cur_cell} "
                     f"| {ratio_cell} | {status} |")
    return "\n".join(lines) + "\n"


def update_baselines(baseline_dir: str, current_dir: str):
    """Make the baselines mirror the current run; returns (copied,
    pruned-filenames).

    Pruning matters as much as copying: a stale baseline for a deleted
    benchmark would fail every future gate run as MISSING, so --update
    removes BENCH_*.json files the current run no longer produces.
    """
    os.makedirs(baseline_dir, exist_ok=True)
    copied = 0
    fresh = set()
    for entry in sorted(os.listdir(current_dir)):
        if entry.startswith("BENCH_") and entry.endswith(".json"):
            shutil.copyfile(os.path.join(current_dir, entry),
                            os.path.join(baseline_dir, entry))
            fresh.add(entry)
            copied += 1
    pruned = []
    for entry in sorted(os.listdir(baseline_dir)):
        if (entry.startswith("BENCH_") and entry.endswith(".json")
                and entry not in fresh):
            os.unlink(os.path.join(baseline_dir, entry))
            pruned.append(entry)
    return copied, pruned


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail CI when benchmark timings regress past the "
                    "threshold")
    parser.add_argument("--baseline", required=True,
                        help="directory holding the committed BENCH_*.json "
                             "baselines")
    parser.add_argument("--current", required=True,
                        help="directory holding the fresh --metrics-json run")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed slowdown fraction (default 0.15)")
    parser.add_argument("--min-delta", type=float, default=0.05,
                        metavar="SECONDS",
                        help="absolute slowdown floor below which the ratio "
                             "gate never fires (default 0.05s; guards "
                             "sub-second timings against host jitter, which "
                             "routinely exceeds 15%% at that scale)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="downgrade baseline-but-no-current-record "
                             "failures to warnings (for deliberate runs of "
                             "a benchmark subset)")
    parser.add_argument("--output", metavar="FILE",
                        help="also write the markdown comparison table here")
    parser.add_argument("--update", action="store_true",
                        help="copy the current records over the baselines "
                             "instead of gating")
    args = parser.parse_args(argv)

    if args.update:
        copied, pruned = update_baselines(args.baseline, args.current)
        print(f"updated {copied} baseline records in {args.baseline}")
        for entry in pruned:
            print(f"pruned stale baseline {entry} "
                  "(no longer produced by the current run)")
        return 0

    baseline = load_records(args.baseline)
    current = load_records(args.current)
    if not baseline:
        print(f"warning: no baselines in {args.baseline!r}; nothing gated "
              "(run with --update to create them)", file=sys.stderr)
    rows, regressions, warnings = compare(baseline, current, args.threshold,
                                          args.min_delta,
                                          allow_missing=args.allow_missing)
    table = render_markdown(rows, args.threshold)
    print(table)
    for message in warnings:
        print(f"warning: {message}", file=sys.stderr)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(table)
            if regressions:
                handle.write("\nFailures:\n")
                for message in regressions:
                    handle.write(f"- {message}\n")
        print(f"wrote {args.output}", file=sys.stderr)
    if regressions:
        print("FAIL: benchmark regressions / missing benchmarks:",
              file=sys.stderr)
        for message in regressions:
            print(f"  {message}", file=sys.stderr)
        return 1
    print("OK: no timing regressions past the threshold", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
