"""Trace-compiler speedup characterization (``repro.vp.jit``).

Measures the fast path against the plain interpreter on three synthetic
guests chosen to bracket its operating envelope, then sweeps the
workload registry:

* ``tight_loop`` — a straight-line arithmetic loop, the best case: one
  superblock covers essentially the whole run.  This is where the
  headline claim (>= 3x) is asserted.
* ``branchy`` — a forward-branch ladder inside the loop; superblocks
  terminate at every branch, so the trace cache degenerates into many
  short blocks and the speedup shows the dispatch overhead floor.
* ``mmio_heavy`` — a UART output loop; MMIO stores side-exit compiled
  code, so this guards the worst case against regressing below par.

Every leg asserts the jit run retired exactly as many instructions as
the interpreter run — a benchmark that diverged would be measuring two
different programs.  Timings are best-of-3; the jit-on wall time is the
``data.seconds`` quantity gated by ``check_regression.py``.
"""

from time import perf_counter

import pytest

from repro.asm import assemble
from repro.bench.workloads import TABLE2_ORDER, WORKLOADS
from repro.sw import runtime
from repro.vp.config import PlatformConfig
from repro.vp.platform import Platform

_ROUNDS = 3

#: (full iterations, quick iterations) per synthetic guest
_SCALE = {"tight_loop": (30_000, 3_000),
          "branchy": (12_000, 1_500),
          "mmio_heavy": (12_000, 1_500)}

_SPEEDUPS = {}

_TIGHT_LOOP = """
.text
main:
    li t0, %(iters)d
    li a0, 0
    li a1, 0x9e3779b9
loop:
    add a0, a0, a1
    xor a1, a1, a0
    slli t1, a0, 3
    srli t2, a1, 5
    add a0, a0, t1
    xor a1, a1, t2
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    ret
"""

_BRANCHY = """
.text
main:
    li t0, %(iters)d
    li a0, 0
loop:
    andi t1, t0, 7
    beqz t1, skip0
    addi a0, a0, 1
skip0:
    andi t1, t0, 3
    beqz t1, skip1
    addi a0, a0, 2
skip1:
    andi t1, t0, 1
    beqz t1, skip2
    addi a0, a0, 3
skip2:
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    ret
"""

_MMIO_HEAVY = """
.text
main:
    li t0, %(iters)d
    li t2, UART_TXDATA
loop:
    andi t1, t0, 0x3f
    addi t1, t1, 0x20
    sb t1, 0(t2)
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    ret
"""

_GUESTS = {"tight_loop": _TIGHT_LOOP,
           "branchy": _BRANCHY,
           "mmio_heavy": _MMIO_HEAVY}


def _run_once(program, jit):
    platform = Platform.from_config(PlatformConfig(jit=jit))
    platform.load(program)
    started = perf_counter()
    result = platform.run()
    elapsed = perf_counter() - started
    assert result.reason == "halt" and result.exit_code == 0, \
        f"guest ended {result.reason}/{result.exit_code}"
    return platform, result, elapsed


def _best_of(program, jit, rounds=_ROUNDS):
    best = None
    for __ in range(rounds):
        platform, result, elapsed = _run_once(program, jit)
        if best is None or elapsed < best[2]:
            best = (platform, result, elapsed)
    return best


@pytest.mark.parametrize("name", sorted(_GUESTS))
def test_synthetic_guest(benchmark, name, quick, bench_json):
    benchmark.group = "jit-synthetic"
    iters = _SCALE[name][1 if quick else 0]
    program = assemble(runtime.program(_GUESTS[name] % {"iters": iters}))

    p_off, r_off, t_off = _best_of(program, jit=False)
    p_on, r_on, t_on = benchmark.pedantic(
        _best_of, args=(program, True), rounds=1, iterations=1)

    assert r_on.instructions == r_off.instructions
    assert p_on.console() == p_off.console()
    speedup = t_off / t_on
    ratio = p_on.jit.trace_ratio()
    _SPEEDUPS[name] = speedup
    benchmark.extra_info.update(
        speedup=round(speedup, 2), trace_ratio=round(ratio, 3),
        instructions=r_on.instructions)
    bench_json(f"jit_{name}",
               {"guest": name, "instructions": r_on.instructions,
                "seconds": t_on, "interp_seconds": t_off,
                "speedup": round(speedup, 3),
                "trace_ratio": round(ratio, 4),
                "blocks_compiled": p_on.jit.stats.compiled})


def test_tight_loop_meets_target(benchmark, quick):
    """The PR's headline: >= 3x on the trace-friendly case."""
    if quick:
        pytest.skip("speedup target needs the full iteration budget")
    benchmark.group = "jit-synthetic"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if "tight_loop" not in _SPEEDUPS:
        pytest.skip("run the full module so tight_loop is measured")
    assert _SPEEDUPS["tight_loop"] >= 3.0, \
        f"tight loop speedup {_SPEEDUPS['tight_loop']:.2f}x < 3x target"
    # the MMIO-bound worst case must at least not fall off a cliff
    assert _SPEEDUPS["mmio_heavy"] >= 0.7


@pytest.mark.parametrize("name", TABLE2_ORDER)
def test_workload_speedup(benchmark, name, quick, bench_json):
    """Registry sweep, plain VP: interpreter vs trace-compiled."""
    benchmark.group = "jit-workloads"
    budget = 20_000 if quick else 150_000
    workload = WORKLOADS[name]

    def run(jit):
        platform = workload.make_platform("quick", False, jit=jit)
        started = perf_counter()
        result = platform.run(max_instructions=budget)
        return platform, result, perf_counter() - started

    p_off, r_off, t_off = run(False)
    p_on, r_on, t_on = benchmark.pedantic(
        run, args=(True,), rounds=1, iterations=1)

    assert r_on.instructions == r_off.instructions
    assert r_on.reason == r_off.reason
    speedup = t_off / t_on
    benchmark.extra_info.update(
        speedup=round(speedup, 2),
        trace_ratio=round(p_on.jit.trace_ratio(), 3))
    bench_json(f"jit_wk_{name}",
               {"workload": name, "instructions": r_on.instructions,
                "seconds": t_on, "interp_seconds": t_off,
                "speedup": round(speedup, 3),
                "trace_ratio": round(p_on.jit.trace_ratio(), 4),
                "blocks_compiled": p_on.jit.stats.compiled})
