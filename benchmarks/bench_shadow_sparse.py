"""Sparse shadow-memory microbenchmark (copy-on-taint page storage).

Three access patterns over a RAM-sized :class:`ShadowTags` store:

* **clean-run** — bulk reads and LUB folds over a store nothing ever
  tainted: the sparse win case (every page is the shared clean
  sentinel, so predicates are O(1) per page);
* **sparse-taint** — a few scattered tainted buffers, the common DIFT
  steady state: only the touched pages materialize;
* **dense-taint** — every page tainted, the adversarial worst case: the
  store degrades to flat storage plus page bookkeeping, which must stay
  within a small constant factor of a plain ``bytearray``.

Two further scenarios exercise the hierarchical summary layer:

* **dense-taint-after** — presence predicates (``any_tainted`` +
  ``lub_range``) on a store *left* densely tainted.  The acceptance
  criterion is asserted in-benchmark: the summary (line words plus the
  uniform-page hint) must keep the dense case within 1.2x of the
  sparse case instead of degrading to a per-byte scan;
* **taint-churn** — a :class:`TaintLiveness` reclaim loop over a
  workload that repeatedly taints and clears a few hot pages.  The
  pruning reclaim's scan count is deterministic, so the benchmark
  asserts it exactly: proportional to the pages actually tainted, not
  to every page ever dirtied.

Each pattern also records the materialized-page footprint so the memory
side of the copy-on-taint claim is in the JSON record, not just the
timing.
"""

from time import perf_counter

import pytest

from repro.dift.liveness import TaintLiveness
from repro.dift.shadow import PAGE_SIZE, ShadowTags
from repro.policy import builders

_SIZE = 4 * 1024 * 1024          # RAM-sized store (1024 pages)
_QUICK_SIZE = 256 * 1024


def _lattice():
    lattice = builders.ifp3()
    return (lattice.lub_table, lattice.tag_of(lattice.bottom),
            lattice.tag_of(builders.HC_HI))


def _clean_run(shadow, lub_table, rounds):
    acc = 0
    for __ in range(rounds):
        shadow.get_range(0, 4096)
        acc = shadow.lub_range(0, shadow.size, lub_table, acc)
        shadow.any_tainted(0, shadow.size)
    return acc


def _sparse_taint(shadow, lub_table, rounds, tag):
    stride = shadow.size // 8
    for __ in range(rounds):
        for buffer in range(8):
            start = buffer * stride
            shadow.fill_range(start, 64, tag)
            shadow.lub_range(start, 4096, lub_table, 0)
            shadow.fill_range(start, 64, shadow.fill)
        shadow.any_tainted(0, shadow.size)
    return shadow.materialized_pages


def _dense_taint(shadow, lub_table, rounds, tag):
    for __ in range(rounds):
        shadow.fill_range(0, shadow.size, tag)
        shadow.any_tainted(0, shadow.size)
        shadow.fill_range(0, shadow.size, shadow.fill)
    return shadow.materialized_pages


_PATTERNS = {
    "clean-run": _clean_run,
    "sparse-taint": _sparse_taint,
    "dense-taint": _dense_taint,
}


@pytest.mark.parametrize("pattern", sorted(_PATTERNS))
def test_shadow_pattern(benchmark, bench_json, quick, pattern):
    benchmark.group = "shadow-sparse"
    size = _QUICK_SIZE if quick else _SIZE
    rounds = 2 if quick else 10
    lub_table, bottom, tainted = _lattice()
    shadow = ShadowTags(size, fill=bottom)
    fn = _PATTERNS[pattern]
    args = (shadow, lub_table, rounds) if pattern == "clean-run" \
        else (shadow, lub_table, rounds, tainted)

    started = perf_counter()
    benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
    elapsed = perf_counter() - started
    # min-of-3 for the regression gate (see bench_instruction_mix)
    for __ in range(2):
        t0 = perf_counter()
        fn(*args)
        elapsed = min(elapsed, perf_counter() - t0)

    materialized = shadow.materialized_pages
    if pattern == "clean-run":
        # the whole point of copy-on-taint: reads never materialize
        assert materialized == 0
    benchmark.extra_info.update(
        materialized_pages=materialized,
        total_pages=shadow.page_count,
    )
    bench_json(f"shadow_{pattern.replace('-', '_')}",
               {"pattern": pattern, "seconds": elapsed,
                "size": size, "page_size": PAGE_SIZE,
                "materialized_pages": materialized,
                "total_pages": shadow.page_count})


def test_shadow_dense_taint_after(benchmark, bench_json, quick):
    """Predicates on a densely tainted store vs a sparsely tainted one.

    Without the summary layer ``any_tainted``/``lub_range`` on a fully
    tainted store degrade to per-byte scans; with it both stores answer
    from the hierarchy (maybe bitmap, line words, uniform-page hint), so
    dense must stay within 1.2x of sparse — asserted here, not just
    recorded.
    """
    benchmark.group = "shadow-sparse"
    size = _QUICK_SIZE if quick else _SIZE
    rounds = 3 if quick else 10
    lub_table, bottom, tainted = _lattice()

    sparse = ShadowTags(size, fill=bottom)
    stride = size // 8
    for buffer in range(8):
        sparse.fill_range(buffer * stride, 64, tainted)
    dense = ShadowTags(size, fill=bottom)
    dense.fill_range(0, size, tainted)

    def predicates(shadow):
        hit = shadow.any_tainted(0, shadow.size)
        return hit, shadow.lub_range(0, shadow.size, lub_table, bottom)

    def best_of(shadow, repeats=5):
        best = float("inf")
        for __ in range(repeats):
            t0 = perf_counter()
            for __r in range(rounds):
                predicates(shadow)
            best = min(best, perf_counter() - t0)
        return best

    assert predicates(sparse) == (True, tainted)  # warm-up + sanity
    assert predicates(dense) == (True, tainted)
    sparse_s = best_of(sparse)
    benchmark.pedantic(predicates, args=(dense,), rounds=1, iterations=1)
    dense_s = best_of(dense)

    assert dense_s <= sparse_s * 1.2 + 0.005, (
        f"dense predicates {dense_s:.6f}s vs sparse {sparse_s:.6f}s: "
        f"summary failed to keep the dense case O(summary)")
    benchmark.extra_info.update(sparse_seconds=sparse_s,
                                dense_seconds=dense_s)
    bench_json("shadow_dense_taint_after",
               {"pattern": "dense-taint-after", "seconds": dense_s,
                "sparse_seconds": sparse_s,
                "ratio": dense_s / sparse_s if sparse_s else 0.0,
                "size": size, "rounds": rounds})


class _ChurnCsr:
    def tag_values(self):
        return []


class _ChurnCpu:
    """Minimal hart for TaintLiveness: 32 regs, no CSRs, flat RAM shadow."""

    def __init__(self, pages):
        self.tags = [0] * 32
        self.csr = _ChurnCsr()
        self.ram_tags = bytearray(pages * PAGE_SIZE)


def _churn(pages, rounds, hot, tag):
    """Taint/clear ``hot`` pages per round, reclaiming in between."""
    cpu = _ChurnCpu(pages)
    live = TaintLiveness(0)
    live.note_memory_taint(0, pages * PAGE_SIZE)  # everything once dirty
    for __ in range(rounds):
        for page in range(hot):
            cpu.ram_tags[page * PAGE_SIZE] = tag
        live.note_memory_taint(0, hot * PAGE_SIZE)
        live.try_reclaim(cpu)                     # fails: taint present
        for page in range(hot):
            cpu.ram_tags[page * PAGE_SIZE] = 0
        live.try_reclaim(cpu)                     # succeeds: back clean
    return live


def test_shadow_taint_churn(benchmark, bench_json, quick):
    """Reclaim scan cost tracks the *tainted* page count, not history.

    The first reclaim pays one scan per ever-dirtied page and prunes the
    clean ones; every later round only rescans the hot set.  The counter
    is deterministic, so the proportionality claim is an exact equality,
    not a timing heuristic.
    """
    benchmark.group = "shadow-sparse"
    pages = 64 if quick else 1024
    rounds = 20 if quick else 200
    hot = 4

    started = perf_counter()
    live = benchmark.pedantic(_churn, args=(pages, rounds, hot, 2),
                              rounds=1, iterations=1)
    elapsed = perf_counter() - started
    for __ in range(2):
        t0 = perf_counter()
        live = _churn(pages, rounds, hot, 2)
        elapsed = min(elapsed, perf_counter() - t0)

    # round 1: one scan hits the taint, then a full verify-and-prune
    # pass; every later round scans 1 (hit) + hot (verify) pages
    expect = (1 + pages) + (rounds - 1) * (1 + hot)
    assert live.pages_scanned == expect, (
        f"pages_scanned {live.pages_scanned} != expected {expect}: "
        f"reclaim is rescanning pruned pages")
    naive = 2 * rounds * pages  # a non-pruning reclaim rescans all, twice
    assert live.pages_scanned * 4 < naive
    assert live.reclaims == rounds

    benchmark.extra_info.update(pages_scanned=live.pages_scanned,
                                naive_pages=naive)
    bench_json("shadow_taint_churn",
               {"pattern": "taint-churn", "seconds": elapsed,
                "pages": pages, "rounds": rounds, "hot_pages": hot,
                "pages_scanned": live.pages_scanned,
                "naive_pages_scanned": naive,
                "reclaims": live.reclaims})
