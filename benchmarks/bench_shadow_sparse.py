"""Sparse shadow-memory microbenchmark (copy-on-taint page storage).

Three access patterns over a RAM-sized :class:`ShadowTags` store:

* **clean-run** — bulk reads and LUB folds over a store nothing ever
  tainted: the sparse win case (every page is the shared clean
  sentinel, so predicates are O(1) per page);
* **sparse-taint** — a few scattered tainted buffers, the common DIFT
  steady state: only the touched pages materialize;
* **dense-taint** — every page tainted, the adversarial worst case: the
  store degrades to flat storage plus page bookkeeping, which must stay
  within a small constant factor of a plain ``bytearray``.

Each pattern also records the materialized-page footprint so the memory
side of the copy-on-taint claim is in the JSON record, not just the
timing.
"""

from time import perf_counter

import pytest

from repro.dift.shadow import PAGE_SIZE, ShadowTags
from repro.policy import builders

_SIZE = 4 * 1024 * 1024          # RAM-sized store (1024 pages)
_QUICK_SIZE = 256 * 1024


def _lattice():
    lattice = builders.ifp3()
    return (lattice.lub_table, lattice.tag_of(lattice.bottom),
            lattice.tag_of(builders.HC_HI))


def _clean_run(shadow, lub_table, rounds):
    acc = 0
    for __ in range(rounds):
        shadow.get_range(0, 4096)
        acc = shadow.lub_range(0, shadow.size, lub_table, acc)
        shadow.any_tainted(0, shadow.size)
    return acc


def _sparse_taint(shadow, lub_table, rounds, tag):
    stride = shadow.size // 8
    for __ in range(rounds):
        for buffer in range(8):
            start = buffer * stride
            shadow.fill_range(start, 64, tag)
            shadow.lub_range(start, 4096, lub_table, 0)
            shadow.fill_range(start, 64, shadow.fill)
        shadow.any_tainted(0, shadow.size)
    return shadow.materialized_pages


def _dense_taint(shadow, lub_table, rounds, tag):
    for __ in range(rounds):
        shadow.fill_range(0, shadow.size, tag)
        shadow.any_tainted(0, shadow.size)
        shadow.fill_range(0, shadow.size, shadow.fill)
    return shadow.materialized_pages


_PATTERNS = {
    "clean-run": _clean_run,
    "sparse-taint": _sparse_taint,
    "dense-taint": _dense_taint,
}


@pytest.mark.parametrize("pattern", sorted(_PATTERNS))
def test_shadow_pattern(benchmark, bench_json, quick, pattern):
    benchmark.group = "shadow-sparse"
    size = _QUICK_SIZE if quick else _SIZE
    rounds = 2 if quick else 10
    lub_table, bottom, tainted = _lattice()
    shadow = ShadowTags(size, fill=bottom)
    fn = _PATTERNS[pattern]
    args = (shadow, lub_table, rounds) if pattern == "clean-run" \
        else (shadow, lub_table, rounds, tainted)

    started = perf_counter()
    benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
    elapsed = perf_counter() - started
    # min-of-3 for the regression gate (see bench_instruction_mix)
    for __ in range(2):
        t0 = perf_counter()
        fn(*args)
        elapsed = min(elapsed, perf_counter() - t0)

    materialized = shadow.materialized_pages
    if pattern == "clean-run":
        # the whole point of copy-on-taint: reads never materialize
        assert materialized == 0
    benchmark.extra_info.update(
        materialized_pages=materialized,
        total_pages=shadow.page_count,
    )
    bench_json(f"shadow_{pattern.replace('-', '_')}",
               {"pattern": pattern, "seconds": elapsed,
                "size": size, "page_size": PAGE_SIZE,
                "materialized_pages": materialized,
                "total_pages": shadow.page_count})
