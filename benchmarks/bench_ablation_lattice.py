"""Ablation: DIFT overhead vs security-lattice size.

The engine precomputes LUB/allowedFlow as dense tables, so per-instruction
cost should be independent of how many security classes the policy uses —
the design reason the Section VI-A per-byte fix (a 36-class lattice for a
16-byte key) is affordable.  This ablation measures the same compute
workload under 2-, 4- and 36-class lattices and checks the run times stay
within noise of each other.
"""

import pytest

from repro.policy import SecurityPolicy, builders
from repro.sw import primes
from repro.vp.platform import Platform


def _policy_for(n_classes: str) -> SecurityPolicy:
    if n_classes == "2-class":
        lattice, default = builders.ifp1(), builders.LC
    elif n_classes == "4-class":
        lattice, default = builders.ifp3(), builders.LC_LI
    else:  # "36-class"
        lattice, __ = builders.per_byte_key_ifp(16)
        default = "(LC,LI)"
    policy = SecurityPolicy(lattice, default_class=default,
                            name=f"lattice-{n_classes}")
    policy.set_execution_clearance(fetch=default, branch=default,
                                   mem_addr=default)
    return policy


_RESULTS = {}


@pytest.mark.parametrize("variant", ["2-class", "4-class", "36-class"])
def test_lattice_size_cost(benchmark, variant):
    benchmark.group = "ablation-lattice-size"
    program = primes.build(limit=2500)

    def run():
        platform = Platform(policy=_policy_for(variant))
        platform.load(program)
        result = platform.run()
        assert result.exit_code == 0
        return result

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info.update(
        variant=variant,
        classes=len(_policy_for(variant).lattice),
        mips=round(result.mips, 3))
    _RESULTS[variant] = result.host_seconds


def test_cost_independent_of_lattice_size(benchmark, capsys):
    """O(1) table lookups: 36 classes must not cost more than 2."""
    benchmark.group = "ablation-lattice-size"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_RESULTS) < 3:
        pytest.skip("run the full module first")
    small, large = _RESULTS["2-class"], _RESULTS["36-class"]
    # generous noise bound: a real O(n) dependence would blow well past it
    assert large < small * 1.5
    with capsys.disabled():
        print()
        print("LATTICE-SIZE ABLATION (primes, VP+)")
        for variant in ("2-class", "4-class", "36-class"):
            print(f"  {variant:<9} {_RESULTS[variant]:.2f}s")
