"""Ablation: which execution-clearance checks cost what, and catch what.

The paper's Section V-B2 motivates three execution-clearance checks
(instruction fetch, branch condition, memory address) but Table II only
reports the all-on overhead.  This ablation fills that gap:

* **cost**: per-check overhead on a compute benchmark (primes), measured
  by enabling one check at a time;
* **coverage**: which checks actually detect which attack class — the
  code-injection attack needs the fetch check, the control-flow PIN leak
  needs the branch check, the tainted-pointer access needs the mem-addr
  check.
"""

import pytest

from repro.asm import assemble
from repro.dift.engine import RECORD
from repro.policy import SecurityPolicy, builders
from repro.sw import runtime
from repro.vp.platform import Platform

_VARIANTS = {
    "none": {},
    "fetch-only": dict(fetch=builders.LC_LI),
    "branch-only": dict(branch=builders.LC_LI),
    "mem-addr-only": dict(mem_addr=builders.LC_LI),
    "all": dict(fetch=builders.LC_LI, branch=builders.LC_LI,
                mem_addr=builders.LC_LI),
}


def _policy(execution) -> SecurityPolicy:
    policy = SecurityPolicy(builders.ifp3(), default_class=builders.LC_LI,
                            name="ablation")
    policy.clear_sink("uart0.tx", builders.LC_LI)
    if execution:
        policy.set_execution_clearance(**execution)
    return policy


@pytest.mark.parametrize("variant", sorted(_VARIANTS))
def test_clearance_cost(benchmark, variant):
    """Overhead contribution of each execution-clearance component."""
    from repro.sw import primes

    benchmark.group = "ablation-cost"
    program = primes.build(limit=2500)

    def run():
        platform = Platform(policy=_policy(_VARIANTS[variant]))
        platform.load(program)
        result = platform.run()
        assert result.exit_code == 0
        return result

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info.update(variant=variant,
                                mips=round(result.mips, 3))


_SECRET_BRANCH = runtime.program("""
.text
main:
    la t0, secret
    lbu t1, 0(t0)
    andi t1, t1, 1
    beqz t1, even
    li a0, 1
    ret
even:
    li a0, 0
    ret
.data
secret: .byte 0x42
""", include_lib=False)

_SECRET_POINTER = runtime.program("""
.text
main:
    la t0, secret
    lw t1, 0(t0)
    andi t1, t1, 0xFF
    la t2, table
    add t2, t2, t1
    lbu a0, 0(t2)          # memory access with secret-derived address
    ret
.data
secret: .word 0x00000007
table: .space 256
""", include_lib=False)


def _run_detection(source: str, execution) -> bool:
    program = assemble(source)
    policy = _policy(execution)
    policy.classify_region(program.symbol("secret"),
                           program.symbol("secret") + 4, builders.HC_HI)
    platform = Platform(policy=policy, engine_mode=RECORD)
    platform.load(program)
    result = platform.run(max_instructions=100_000)
    return result.detected


class TestCoverage:
    """Which execution-clearance component detects which leak class."""

    def test_branch_check_catches_control_flow_leak(self, benchmark):
        benchmark.group = "ablation-coverage"
        detected = benchmark.pedantic(
            _run_detection, args=(_SECRET_BRANCH,
                                  dict(branch=builders.LC_LI)),
            rounds=1, iterations=1)
        assert detected

    def test_without_branch_check_leak_is_missed(self, benchmark):
        benchmark.group = "ablation-coverage"
        detected = benchmark.pedantic(
            _run_detection, args=(_SECRET_BRANCH,
                                  dict(mem_addr=builders.LC_LI)),
            rounds=1, iterations=1)
        assert not detected

    def test_mem_addr_check_catches_tainted_pointer(self, benchmark):
        benchmark.group = "ablation-coverage"
        detected = benchmark.pedantic(
            _run_detection, args=(_SECRET_POINTER,
                                  dict(mem_addr=builders.LC_LI)),
            rounds=1, iterations=1)
        assert detected

    def test_without_mem_addr_check_pointer_is_missed(self, benchmark):
        benchmark.group = "ablation-coverage"
        detected = benchmark.pedantic(
            _run_detection, args=(_SECRET_POINTER,
                                  dict(branch=builders.LC_LI)),
            rounds=1, iterations=1)
        assert not detected

    def test_fetch_check_catches_code_injection(self, benchmark):
        from repro.bench import table1

        benchmark.group = "ablation-coverage"
        result = benchmark.pedantic(table1.run_attack, args=(3,), rounds=1,
                                    iterations=1)
        assert result.detected

    def test_without_fetch_check_injection_is_missed(self, benchmark):
        """Drop the fetch clearance from the WK policy: attack 3 sails by."""
        from repro.bench.table1 import code_injection_policy
        from repro.sw import wk_suite

        benchmark.group = "ablation-coverage"

        def run():
            program, attacker_input = wk_suite.build_attack(3)
            policy = code_injection_policy(program)
            policy.set_execution_clearance()  # all checks off
            platform = Platform(policy=policy, engine_mode=RECORD)
            platform.load(program)
            platform.uart.feed(attacker_input)
            return platform.run(max_instructions=200_000)

        result = benchmark.pedantic(run, rounds=1, iterations=1)
        assert not result.detected
        assert result.reason == "ebreak"  # payload executed
