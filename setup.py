"""Compatibility shim for environments without PEP-517 wheel support.

``pip install -e .`` normally reads pyproject.toml; on offline machines
missing the ``wheel`` package, ``python setup.py develop`` via this shim
works with setuptools alone.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
