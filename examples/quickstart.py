#!/usr/bin/env python3
"""Quickstart: taint a secret, watch the DIFT engine catch the leak.

Walks through the paper's core loop in ~60 lines of user code:

1. define an Information Flow Policy (the Fig. 1 lattices);
2. write a security policy: classify a memory region as secret, give the
   UART a public clearance;
3. assemble a small RISC-V guest that (accidentally) prints the secret;
4. run it on the DIFT-instrumented virtual prototype (VP+) and inspect
   the violation the engine reports.

Run:  python examples/quickstart.py
"""

from repro.vp.config import PlatformConfig
from repro import Platform, SecurityPolicy, assemble, builders
from repro.sw import runtime


def main() -> None:
    # --- 1. the IFP lattice (paper Fig. 1) ----------------------------- #
    ifp = builders.ifp3()
    print("IFP-3 security classes:", ", ".join(ifp.classes))
    print("the paper's LUB example:  LUB((LC,LI), (HC,HI)) =",
          ifp.lub(builders.LC_LI, builders.HC_HI))
    print("allowedFlow((HC,HI) -> (LC,LI)) =",
          ifp.allowed_flow(builders.HC_HI, builders.LC_LI))
    print()

    # --- 2. a guest that leaks its key over the debug UART ------------- #
    source = runtime.program("""
.text
main:
    addi sp, sp, -16
    sw   ra, 12(sp)
    la   a0, banner
    call puts
    la   t0, key            # oops: print the key as "diagnostics"
    lw   a0, 0(t0)
    call print_hex
    lw   ra, 12(sp)
    addi sp, sp, 16
    li   a0, 0
    ret
.data
banner: .asciz "diag: "
key:    .word 0xC0DE5EC7
""")
    program = assemble(source)

    # --- 3. the security policy ---------------------------------------- #
    policy = SecurityPolicy(ifp, default_class=builders.LC_LI,
                            name="quickstart")
    key = program.symbol("key")
    policy.classify_region(key, key + 4, builders.HC_HI)   # the secret
    policy.clear_sink("uart0.tx", builders.LC_LI)          # public output
    policy.set_execution_clearance(fetch=builders.LC_LI,
                                   branch=builders.LC_LI,
                                   mem_addr=builders.LC_LI)

    # --- 4. run on VP+ in record mode ----------------------------------- #
    vp_plus = Platform.from_config(PlatformConfig(policy=policy, engine_mode="record"))
    vp_plus.load(program)
    result = vp_plus.run(max_instructions=1_000_000)

    print(f"guest stopped: reason={result.reason!r}, "
          f"{result.instructions} instructions, "
          f"{result.sim_time.to_us():.1f} us simulated")
    print(f"UART output so far: {vp_plus.console()!r}")
    print(f"violations detected: {len(result.violations)}")
    if result.violations:
        print("first violation:", result.violations[0])
    print()

    # --- for contrast: the same guest on the plain VP ------------------- #
    vp = Platform()
    vp.load(program)
    vp.run(max_instructions=1_000_000)
    print(f"plain VP (no DIFT) happily printed: {vp.console()!r}")


if __name__ == "__main__":
    main()
