#!/usr/bin/env python3
"""The Section VI-A case study: a car-engine immobilizer's security policy.

Replays the paper's policy-development narrative end to end:

* the challenge-response protocol authenticates under the baseline policy;
* the UART debug dump leaks the PIN on the vulnerable firmware (detected),
  and runs clean on the fixed firmware;
* the three scripted attack scenarios are all detected;
* the entropy-reduction attack slips past the baseline policy — and we
  *prove* it matters by brute-forcing the PIN byte off the CAN bus;
* the per-byte key policy closes the hole.

Run:  python examples/immobilizer_demo.py
"""

from repro.casestudy import immobilizer as cs


def main() -> None:
    print("=" * 78)
    print("Car engine immobilizer — security policy development (paper "
          "Section VI-A)")
    print("=" * 78)
    print()

    results = cs.run_case_study(n_challenges=2)
    print(cs.format_report(results))
    print()

    protocol = results[0]
    print(f"protocol check: {protocol.auth_ok} challenge/response rounds "
          f"authenticated, {protocol.auth_fail} failed")
    dump = next(r for r in results if "vulnerable" in r.name)
    print(f"vulnerable-dump violation: {dump.violation}")
    print()

    print("exploiting the baseline-policy gap (entropy-reduction attack):")
    print("  1. command '4' overwrites PIN[1..15] with PIN[0] "
          "(trusted data, no violation)")
    print("  2. a bus sniffer records one challenge/response exchange")
    print("  3. 256 trial encryptions recover the PIN byte:")
    recovered = cs.capture_and_brute_force()
    print(f"     recovered PIN byte: {recovered:#04x} "
          f"(actual PIN[0] = {cs.PIN[0]:#04x})  "
          f"{'SUCCESS' if recovered == cs.PIN[0] else 'failed'}")
    print()
    per_byte = results[-1]
    print("with the per-byte key policy the same attack is detected:")
    print(f"  {per_byte.violation}")


if __name__ == "__main__":
    main()
