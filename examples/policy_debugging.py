#!/usr/bin/env python3
"""Policy triage tooling: the tracer and the taint-watchpoint debugger.

A policy violation tells you *that* classified data reached a sink; the
next question is *how it got there*.  This example walks the tooling on a
firmware with a two-hop leak (secret -> staging buffer -> UART):

1. run normally and see the violation;
2. re-run under the `Debugger` with a taint watchpoint on the staging
   buffer — it stops at the exact instruction that contaminated it;
3. re-run under the `Tracer` and print only the taint-relevant steps —
   the full propagation chain.

Run:  python examples/policy_debugging.py
"""

from repro.vp.config import PlatformConfig
from repro import Platform, SecurityPolicy, assemble, builders
from repro.sw import runtime
from repro.vp import Debugger, Tracer

SOURCE = runtime.program("""
.text
main:
    addi sp, sp, -16
    sw   ra, 12(sp)

    # hop 1: "cache" the secret in a staging buffer
    la   a0, staging
    la   a1, secret
    li   a2, 4
    call memcpy

    # unrelated work in between
    li   t0, 100
    li   t1, 7
    mul  t2, t0, t1

    # hop 2: send the staging buffer out
    la   t3, staging
    lbu  t4, 0(t3)
    li   t5, UART_TXDATA
    sb   t4, 0(t5)

    li   a0, 0
    lw   ra, 12(sp)
    addi sp, sp, 16
    ret
.data
secret:  .word 0x5EC2E7
staging: .space 4
""")


def build(engine_mode="record"):
    program = assemble(SOURCE)
    policy = SecurityPolicy(builders.ifp1(), default_class=builders.LC,
                            name="debugging-demo")
    secret = program.symbol("secret")
    policy.classify_region(secret, secret + 4, builders.HC)
    policy.clear_sink("uart0.tx", builders.LC)
    platform = Platform.from_config(PlatformConfig(policy=policy, engine_mode=engine_mode))
    platform.load(program)
    return platform, program


def main() -> None:
    # --- 1. the violation, as the engineer first sees it ---------------- #
    platform, program = build()
    result = platform.run(max_instructions=100_000)
    print("step 1 — the report:")
    print("  ", result.violations[0])
    print()

    # --- 2. taint watchpoint on the staging buffer ---------------------- #
    platform, program = build()
    debugger = Debugger(platform)
    debugger.watch_symbol("staging", 4)
    event = debugger.run()
    print("step 2 — taint watchpoint:")
    print(f"   {event}")
    print(f"   (the store at pc-4 = {event.pc - 4:#06x} inside memcpy is "
          "what contaminated the buffer)")
    print()

    # --- 3. the propagation chain from the tracer ----------------------- #
    platform, program = build()
    tracer = Tracer(platform)
    trace = tracer.run(max_instructions=200)
    tainted = tracer.tainted_only(trace)
    print("step 3 — taint-relevant instructions only:")
    print(tracer.format(tainted))
    print()
    print(f"({len(trace)} instructions executed, {len(tainted)} touched "
          "classified data)")


if __name__ == "__main__":
    main()
