#!/usr/bin/env python3
"""Code-injection detection (paper Section VI-B / Table I).

Shows one Wilander–Kamkar attack in slow motion — stack buffer overflow
over the saved return address (attack #3) — first succeeding on the
unprotected VP, then being stopped by VP+'s High-Integrity fetch
clearance.  Finishes by regenerating the full 18-row Table I.

Run:  python examples/code_injection_demo.py
"""

from repro.asm import disassemble_word
from repro.bench import table1
from repro.dift.engine import RECORD
from repro.sw import wk_suite
from repro.vp.config import PlatformConfig
from repro.vp import Platform


def main() -> None:
    number = 3
    spec = wk_suite.spec(number)
    program, attacker_input = wk_suite.build_attack(number)
    payload_at = program.symbol("attack_code")

    print(f"attack #{number}: {spec.location} / {spec.target} / "
          f"{spec.technique}")
    print(f"payload function at {payload_at:#06x}:")
    for i in range(3):
        word = program.word_at(payload_at + 4 * i)
        print(f"  {payload_at + 4 * i:#06x}: "
              f"{disassemble_word(word, payload_at + 4 * i)}")
    print(f"attacker input ({len(attacker_input)} bytes): "
          f"{attacker_input[:8].hex()}...{attacker_input[40:48].hex()}")
    print(f"  (bytes 44..47 = {attacker_input[44:48].hex()} — the payload "
          "address, little-endian, landing on the saved ra)")
    print()

    # --- unprotected ---------------------------------------------------- #
    plain = Platform()
    plain.load(program)
    plain.uart.feed(attacker_input)
    result = plain.run(max_instructions=200_000)
    print("plain VP: guest stopped with reason", repr(result.reason))
    print(f"  payload marker on UART: {plain.console()!r}  "
          f"-> exploit {'SUCCEEDED' if result.reason == 'ebreak' else '??'}")
    print()

    # --- protected ------------------------------------------------------- #
    policy = table1.code_injection_policy(program)
    protected = Platform.from_config(PlatformConfig(policy=policy, engine_mode=RECORD))
    protected.load(program)
    protected.uart.feed(attacker_input)
    result = protected.run(max_instructions=200_000)
    print("VP+ with the code-injection policy (IFP-2, fetch clearance HI):")
    print(f"  stopped with reason {result.reason!r}, UART: "
          f"{protected.console()!r}")
    for violation in result.violations:
        print("  violation:", violation)
    print()

    # --- the full table --------------------------------------------------- #
    print("regenerating Table I (all 18 attack forms)...")
    print()
    print(table1.format_table(table1.run_suite()))


if __name__ == "__main__":
    main()
