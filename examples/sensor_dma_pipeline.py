#!/usr/bin/env python3
"""Fine-grained HW/SW interaction: taint through a sensor -> DMA -> UART
pipeline.

This is the scenario the paper uses to argue for *platform-level* DIFT
(Section I): the sensor produces classified data, a DMA engine moves it
into RAM without a single CPU instruction touching it, and the CPU later
forwards the buffer to the UART.  A CPU-only taint tracker loses the
classification at the DMA hop; the VP-level engine does not.

The same guest binary runs twice: once with the sensor classified public
(the copy is fine) and once reconfigured confidential at *runtime* via
the sensor's data_tag register (the UART write is blocked).

Run:  python examples/sensor_dma_pipeline.py
"""

from repro.vp.config import PlatformConfig
from repro import Platform, SecurityPolicy, assemble, builders
from repro.dift.engine import RECORD
from repro.sw import runtime
from repro.sysc.time import SimTime

GUEST = runtime.program("""
.equ BUF, 0x3000

.text
main:
    # optionally reclassify the sensor source (a5 holds the tag; the
    # host sets register a5 via the test harness before running)
    la   t0, tag_request
    lw   t1, 0(t0)
    li   t0, SENSOR_TAG
    sw   t1, 0(t0)

    # wait for a fresh frame
    li   t0, SENSOR_FRAME_NO
wait_frame:
    lw   t1, 0(t0)
    li   t2, 2
    blt  t1, t2, wait_frame

    # DMA 32 sensor bytes into RAM
    li   t0, DMA_SRC
    li   t1, SENSOR_BASE
    sw   t1, 0(t0)
    li   t0, DMA_DST
    li   t1, BUF
    sw   t1, 0(t0)
    li   t0, DMA_LEN
    li   t1, 32
    sw   t1, 0(t0)
    li   t0, DMA_CTRL
    li   t1, 1
    sw   t1, 0(t0)
    li   t0, DMA_STATUS
dma_wait:
    lw   t1, 0(t0)
    andi t1, t1, 2
    beqz t1, dma_wait

    # forward the buffer to the UART
    li   t2, BUF
    li   t3, UART_TXDATA
    li   t4, 32
copy:
    lbu  t5, 0(t2)
    sb   t5, 0(t3)
    addi t2, t2, 1
    addi t4, t4, -1
    bnez t4, copy
    li   a0, 0
    ret

.data
tag_request: .word 0
""", include_lib=False)


def build_policy() -> SecurityPolicy:
    policy = SecurityPolicy(builders.ifp1(), default_class=builders.LC,
                            name="sensor-pipeline")
    policy.classify_source("sensor0", builders.LC)
    policy.clear_sink("uart0.tx", builders.LC)
    return policy


def run_once(tag_request: int, label: str) -> None:
    program = assemble(GUEST)
    platform = Platform.from_config(PlatformConfig(policy=build_policy(), engine_mode=RECORD,
                        sensor_period=SimTime.us(100)))
    platform.load(program)
    # patch the guest's requested sensor classification
    platform.memory.write_word(program.symbol("tag_request"), tag_request)
    result = platform.run(max_instructions=2_000_000)

    lattice = platform.engine.lattice
    print(f"--- {label} (sensor data_tag = "
          f"{lattice.name_of(tag_request)}) ---")
    print(f"  guest: {result.reason}, {result.instructions} instructions, "
          f"DMA transfers: {platform.dma.transfers_completed}")
    buffer_tag = platform.memory.tag_of(0x3000)
    print(f"  RAM buffer tag after DMA: {lattice.name_of(buffer_tag)} "
          "(the classification crossed the DMA hop)")
    print(f"  UART got {len(platform.uart.tx_log)} bytes"
          + (f": {platform.console()[:24]!r}..." if platform.uart.tx_log
             else ""))
    if result.violations:
        print(f"  DIFT: {result.violations[0]}")
    else:
        print("  DIFT: no violations")
    print()


def main() -> None:
    lattice = build_policy().lattice
    run_once(lattice.tag_of(builders.LC), "public sensor")
    run_once(lattice.tag_of(builders.HC), "confidential sensor")


if __name__ == "__main__":
    main()
