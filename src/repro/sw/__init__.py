"""Guest software: runtime library, benchmarks, attack suites.

Every module provides ``source(...) -> str`` (assembly text) and
``build(...) -> Program`` (assembled binary).
"""

from repro.sw import (
    dhrystone,
    immobilizer,
    primes,
    qsort,
    rtos,
    runtime,
    sensor_app,
    sha512,
    wk_suite,
)

__all__ = [
    "runtime",
    "qsort",
    "dhrystone",
    "primes",
    "sha512",
    "sensor_app",
    "rtos",
    "immobilizer",
    "wk_suite",
]
