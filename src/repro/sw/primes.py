"""Guest benchmark: prime number generator (trial division).

Counts the primes below ``limit`` by trial division against the primes
found so far, with the usual ``p*p > n`` cutoff — a division-heavy
workload exercising the M extension, like the paper's ``primes``
benchmark.  Prints the count; exit code 0 if it matches the expected
count compiled in, 1 otherwise.
"""

from __future__ import annotations

from repro.asm import Program, assemble
from repro.sw import runtime


def _count_primes(limit: int) -> int:
    sieve = bytearray([1]) * limit
    count = 0
    for i in range(2, limit):
        if sieve[i]:
            count += 1
            for j in range(i * i, limit, i):
                sieve[j] = 0
    return count


def source(limit: int = 30_000) -> str:
    expected = _count_primes(limit)
    return runtime.program(f"""
.equ LIMIT, {limit}
.equ EXPECTED, {expected}

.text
main:
    addi sp, sp, -16
    sw   ra, 12(sp)

    la   s0, primes         # table of found primes
    li   s1, 0              # number of primes found
    li   s2, 2              # candidate n

next_candidate:
    li   t6, LIMIT
    bge  s2, t6, done

    # trial division by stored primes while p*p <= n
    mv   t0, s0             # table cursor
    mv   t1, s1             # primes remaining
trial:
    beqz t1, is_prime
    lw   t2, 0(t0)          # p
    mul  t3, t2, t2
    bgt  t3, s2, is_prime   # p*p > n -> prime
    remu t4, s2, t2
    beqz t4, not_prime
    addi t0, t0, 4
    addi t1, t1, -1
    j    trial

is_prime:
    slli t5, s1, 2
    add  t5, t5, s0
    sw   s2, 0(t5)
    addi s1, s1, 1
not_prime:
    addi s2, s2, 1
    j    next_candidate

done:
    mv   a0, s1
    call print_dec
    li   a0, '\\n'
    call putc
    li   t0, EXPECTED
    sub  a0, s1, t0
    snez a0, a0
    lw   ra, 12(sp)
    addi sp, sp, 16
    ret

.bss
.align 2
primes: .space LIMIT        # upper bound: pi(LIMIT)*4 < LIMIT bytes
""")


def build(limit: int = 30_000) -> Program:
    return assemble(source(limit))
