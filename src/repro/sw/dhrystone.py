"""Guest benchmark: Dhrystone-style synthetic integer workload.

Reproduces the classic Dhrystone 2.1 loop structure at the machine level:
per iteration it performs a 48-byte record assignment, two 30-character
string operations (copy + compare), nested procedure calls passing values
and pointers, array element updates (``Arr_1[8]``, ``Arr_2[8][7]``) and
the familiar integer identity computations.  The point — as in the paper —
is the instruction *mix* (byte loads/stores, calls, short branches), not
the DMIPS number.

Prints the final check value; exit code 0 if the run's invariants held.
"""

from __future__ import annotations

from repro.asm import Program, assemble
from repro.sw import runtime


def source(iterations: int = 20_000) -> str:
    return runtime.program(f"""
.equ RUNS, {iterations}

.text
main:
    addi sp, sp, -32
    sw   ra, 28(sp)
    sw   s0, 24(sp)
    sw   s1, 20(sp)
    sw   s2, 16(sp)

    li   s0, RUNS           # loop counter
    li   s1, 0              # Int_Glob accumulator
    li   s2, 0              # error flag

dhry_loop:
    beqz s0, dhry_done

    # ---- Proc_8-alike: array updates ----
    la   t0, arr1
    li   t1, 8
    slli t2, t1, 2
    add  t2, t2, t0
    add  t3, s1, t1
    sw   t3, 0(t2)          # Arr_1[8] = Int_Loc
    la   t0, arr2
    li   t4, 8 * 50 + 7
    slli t4, t4, 2
    add  t4, t4, t0
    sw   t3, 0(t4)          # Arr_2[8][7] = Int_Loc

    # ---- record assignment: *Ptr_Glob = *Next_Ptr_Glob (48 bytes) ----
    la   a0, record_a
    la   a1, record_b
    li   a2, 48
    call memcpy

    # ---- Proc_6-alike: enumeration juggling ----
    lw   t0, 8(a0)          # Enum_Comp
    addi t0, t0, 1
    li   t1, 5
    blt  t0, t1, enum_ok
    li   t0, 0
enum_ok:
    sw   t0, 8(a0)

    # ---- string copy + compare (Func_2-alike) ----
    la   a0, str_loc
    la   a1, str_1
    call strcpy
    la   a0, str_loc
    la   a1, str_2
    call strcmp30
    beqz a0, strings_equal  # must differ
    j    strings_done
strings_equal:
    li   s2, 1
strings_done:

    # ---- Proc_7-alike: Int_Glob = f(Int_Loc) ----
    andi t0, s1, 0xFF
    addi t1, t0, 2
    add  t2, t1, t0
    slli t3, t2, 1
    sub  t4, t3, t0
    add  s1, s1, t4
    li   t5, 65536
    remu s1, s1, t5

    addi s0, s0, -1
    j    dhry_loop

dhry_done:
    mv   a0, s1
    call print_dec
    li   a0, '\\n'
    call putc
    mv   a0, s2
    lw   ra, 28(sp)
    lw   s0, 24(sp)
    lw   s1, 20(sp)
    lw   s2, 16(sp)
    addi sp, sp, 32
    ret

# strcmp30(a0, a1): compare exactly 30 bytes; 0 if equal, 1 otherwise
strcmp30:
    li   t0, 30
strcmp30_loop:
    lbu  t1, 0(a0)
    lbu  t2, 0(a1)
    bne  t1, t2, strcmp30_ne
    addi a0, a0, 1
    addi a1, a1, 1
    addi t0, t0, -1
    bnez t0, strcmp30_loop
    li   a0, 0
    ret
strcmp30_ne:
    li   a0, 1
    ret

.data
record_b:
    .word 0                 # Ptr_Comp
    .word 0                 # Discr
    .word 2                 # Enum_Comp (Ident_3)
    .word 17                # Int_Comp
    .ascii "DHRYSTONE PROGRAM, SOME STRING"
    .byte 0, 0
record_a:
    .space 48
str_1:
    .asciz "DHRYSTONE PROGRAM, 1'ST STRING"
str_2:
    .asciz "DHRYSTONE PROGRAM, 2'ND STRING"

.bss
str_loc: .space 32
arr1:    .space 50 * 4
arr2:    .space 50 * 50 * 4
""")


def build(iterations: int = 20_000) -> Program:
    return assemble(source(iterations))
