"""Guest benchmark: SHA-512 over an LCG-generated message.

The paper benchmarks the ``sha512`` hash function.  On RV32 every 64-bit
operation must be synthesized from 32-bit register pairs, which is exactly
what this generator does: Python emits the rotate/shift/add-with-carry
sequences, and the guest keeps the eight working variables and the message
schedule in memory (there are not enough RV32 registers to hold them).

The digest is printed as 128 hex characters on the UART, so the host test
can compare it against :func:`hashlib.sha512` of the same message —
a strong end-to-end correctness check of the ISS (it exercises carries,
rotates through the word boundary, byte ordering and memory addressing).

Message: ``n`` bytes where byte *i* is ``(x >> 16) & 0xFF`` of the LCG
``x = x * 1103515245 + 12345 (mod 2^32)`` seeded with ``seed`` (see
:func:`message_bytes` for the host-side reference).
"""

from __future__ import annotations

from typing import List

from repro.asm import Program, assemble
from repro.sw import runtime

# FIPS 180-4 constants
_H0 = [
    0x6A09E667F3BCC908, 0xBB67AE8584CAA73B, 0x3C6EF372FE94F82B,
    0xA54FF53A5F1D36F1, 0x510E527FADE682D1, 0x9B05688C2B3E6C1F,
    0x1F83D9ABFB41BD6B, 0x5BE0CD19137E2179,
]

_K = [
    0x428A2F98D728AE22, 0x7137449123EF65CD, 0xB5C0FBCFEC4D3B2F,
    0xE9B5DBA58189DBBC, 0x3956C25BF348B538, 0x59F111F1B605D019,
    0x923F82A4AF194F9B, 0xAB1C5ED5DA6D8118, 0xD807AA98A3030242,
    0x12835B0145706FBE, 0x243185BE4EE4B28C, 0x550C7DC3D5FFB4E2,
    0x72BE5D74F27B896F, 0x80DEB1FE3B1696B1, 0x9BDC06A725C71235,
    0xC19BF174CF692694, 0xE49B69C19EF14AD2, 0xEFBE4786384F25E3,
    0x0FC19DC68B8CD5B5, 0x240CA1CC77AC9C65, 0x2DE92C6F592B0275,
    0x4A7484AA6EA6E483, 0x5CB0A9DCBD41FBD4, 0x76F988DA831153B5,
    0x983E5152EE66DFAB, 0xA831C66D2DB43210, 0xB00327C898FB213F,
    0xBF597FC7BEEF0EE4, 0xC6E00BF33DA88FC2, 0xD5A79147930AA725,
    0x06CA6351E003826F, 0x142929670A0E6E70, 0x27B70A8546D22FFC,
    0x2E1B21385C26C926, 0x4D2C6DFC5AC42AED, 0x53380D139D95B3DF,
    0x650A73548BAF63DE, 0x766A0ABB3C77B2A8, 0x81C2C92E47EDAEE6,
    0x92722C851482353B, 0xA2BFE8A14CF10364, 0xA81A664BBC423001,
    0xC24B8B70D0F89791, 0xC76C51A30654BE30, 0xD192E819D6EF5218,
    0xD69906245565A910, 0xF40E35855771202A, 0x106AA07032BBD1B8,
    0x19A4C116B8D2D0C8, 0x1E376C085141AB53, 0x2748774CDF8EEB99,
    0x34B0BCB5E19B48A8, 0x391C0CB3C5C95A63, 0x4ED8AA4AE3418ACB,
    0x5B9CCA4F7763E373, 0x682E6FF3D6B2B8A3, 0x748F82EE5DEFB2FC,
    0x78A5636F43172F60, 0x84C87814A1F0AB72, 0x8CC702081A6439EC,
    0x90BEFFFA23631E28, 0xA4506CEBDE82BDE9, 0xBEF9A3F7B2C67915,
    0xC67178F2E372532B, 0xCA273ECEEA26619C, 0xD186B8C721C0C207,
    0xEADA7DD6CDE0EB1E, 0xF57D4F7FEE6ED178, 0x06F067AA72176FBA,
    0x0A637DC5A2C898A6, 0x113F9804BEF90DAE, 0x1B710B35131C471B,
    0x28DB77F523047D84, 0x32CAAB7B40C72493, 0x3C9EBE0A15C9BEBC,
    0x431D67C49C100D4C, 0x4CC5D4BECB3E42B6, 0x597F299CFC657E2A,
    0x5FCB6FAB3AD6FAEC, 0x6C44198C4A475817,
]

# working-variable offsets within the `vars` block: a,b,c,...,h
_A, _B, _C, _D, _E, _F, _G, _H = (8 * i for i in range(8))


def message_bytes(n: int, seed: int = 0xBEEF) -> bytes:
    """Host-side reference for the guest's LCG message."""
    x = seed & 0xFFFFFFFF
    out = bytearray()
    for _ in range(n):
        x = (x * 1103515245 + 12345) & 0xFFFFFFFF
        out.append((x >> 16) & 0xFF)
    return bytes(out)


# --------------------------------------------------------------------- #
# 64-bit emitters: values live in (lo, hi) register pairs
# --------------------------------------------------------------------- #


def _ror64(dlo: str, dhi: str, slo: str, shi: str, n: int,
           tmp: str) -> List[str]:
    """(dlo,dhi) = (slo,shi) rotated right by n.  d must not alias s/tmp."""
    if n == 32:
        return [f"mv {dlo}, {shi}", f"mv {dhi}, {slo}"]
    if n < 32:
        return [
            f"srli {dlo}, {slo}, {n}",
            f"slli {tmp}, {shi}, {32 - n}",
            f"or   {dlo}, {dlo}, {tmp}",
            f"srli {dhi}, {shi}, {n}",
            f"slli {tmp}, {slo}, {32 - n}",
            f"or   {dhi}, {dhi}, {tmp}",
        ]
    m = n - 32
    return [
        f"srli {dlo}, {shi}, {m}",
        f"slli {tmp}, {slo}, {32 - m}",
        f"or   {dlo}, {dlo}, {tmp}",
        f"srli {dhi}, {slo}, {m}",
        f"slli {tmp}, {shi}, {32 - m}",
        f"or   {dhi}, {dhi}, {tmp}",
    ]


def _shr64(dlo: str, dhi: str, slo: str, shi: str, n: int,
           tmp: str) -> List[str]:
    """(dlo,dhi) = (slo,shi) >> n (logical), n < 32."""
    return [
        f"srli {dlo}, {slo}, {n}",
        f"slli {tmp}, {shi}, {32 - n}",
        f"or   {dlo}, {dlo}, {tmp}",
        f"srli {dhi}, {shi}, {n}",
    ]


def _add64(dlo: str, dhi: str, blo: str, bhi: str, tmp: str) -> List[str]:
    """(dlo,dhi) += (blo,bhi).  ``tmp`` must differ from all operands."""
    return [
        f"add  {dlo}, {dlo}, {blo}",
        f"sltu {tmp}, {dlo}, {blo}",
        f"add  {dhi}, {dhi}, {bhi}",
        f"add  {dhi}, {dhi}, {tmp}",
    ]


def _xor_into(alo: str, ahi: str, blo: str, bhi: str) -> List[str]:
    return [f"xor  {alo}, {alo}, {blo}", f"xor  {ahi}, {ahi}, {bhi}"]


def _sigma(slo: str, shi: str, rots, shift, dlo: str, dhi: str) -> List[str]:
    """(dlo,dhi) = XOR of rotations (and optional shift) of (slo,shi).

    Uses t0/t1 as the per-term scratch pair and t2 as shift scratch.
    Source and destination pairs must avoid t0/t1/t2.
    """
    out: List[str] = []
    first = True
    for n in rots:
        out += _ror64("t0", "t1", slo, shi, n, "t2")
        if first:
            out += [f"mv   {dlo}, t0", f"mv   {dhi}, t1"]
            first = False
        else:
            out += _xor_into(dlo, dhi, "t0", "t1")
    if shift is not None:
        out += _shr64("t0", "t1", slo, shi, shift, "t2")
        out += _xor_into(dlo, dhi, "t0", "t1")
    return out


def _ld(lo: str, hi: str, base: str, off: int) -> List[str]:
    return [f"lw   {lo}, {off}({base})", f"lw   {hi}, {off + 4}({base})"]


def _st(lo: str, hi: str, base: str, off: int) -> List[str]:
    return [f"sw   {lo}, {off}({base})", f"sw   {hi}, {off + 4}({base})"]


def _round_body() -> str:
    """The 80-iteration compression-round body.

    Register plan: s0=&vars, s1=&W, s2=&K, s3=t (round index).
    Working pairs: e=(a2,a3), S1/S0 acc=(a4,a5), temp1=(a6,a7).
    """
    lines: List[str] = []
    # S1 = ror(e,14) ^ ror(e,18) ^ ror(e,41)
    lines += _ld("a2", "a3", "s0", _E)
    lines += _sigma("a2", "a3", (14, 18, 41), None, "a4", "a5")
    # ch = (e & f) ^ (~e & g)
    lines += _ld("t3", "t4", "s0", _F)
    lines += [
        "and  t3, t3, a2",
        "and  t4, t4, a3",
    ]
    lines += _ld("t5", "t6", "s0", _G)
    lines += [
        "not  t0, a2",
        "not  t1, a3",
        "and  t5, t5, t0",
        "and  t6, t6, t1",
        "xor  t3, t3, t5",
        "xor  t4, t4, t6",          # ch in (t3,t4)
    ]
    # temp1 = h + S1 + ch + K[t] + W[t]  into (a6,a7)
    lines += _ld("a6", "a7", "s0", _H)
    lines += _add64("a6", "a7", "a4", "a5", "t0")
    lines += _add64("a6", "a7", "t3", "t4", "t0")
    lines += [
        "slli t5, s3, 3",
        "add  t6, s2, t5",          # &K[t]
    ]
    lines += _ld("t3", "t4", "t6", 0)
    lines += _add64("a6", "a7", "t3", "t4", "t0")
    lines += ["add  t6, s1, t5"]    # &W[t]
    lines += _ld("t3", "t4", "t6", 0)
    lines += _add64("a6", "a7", "t3", "t4", "t0")
    # S0 = ror(a,28) ^ ror(a,34) ^ ror(a,39)
    lines += _ld("a2", "a3", "s0", _A)
    lines += _sigma("a2", "a3", (28, 34, 39), None, "a4", "a5")
    # maj = (a&b) ^ (a&c) ^ (b&c)
    lines += _ld("t3", "t4", "s0", _B)
    lines += _ld("t5", "t6", "s0", _C)
    lines += [
        "and  t0, a2, t3",
        "and  t1, a3, t4",
        "and  t2, a2, t5",
        "xor  t0, t0, t2",
        "and  t2, a3, t6",
        "xor  t1, t1, t2",
        "and  t2, t3, t5",
        "xor  t0, t0, t2",
        "and  t2, t4, t6",
        "xor  t1, t1, t2",          # maj in (t0,t1)
    ]
    # temp2 = S0 + maj  into (a4,a5)
    lines += _add64("a4", "a5", "t0", "t1", "t2")
    # rotate the working variables
    lines += _ld("t0", "t1", "s0", _G) + _st("t0", "t1", "s0", _H)
    lines += _ld("t0", "t1", "s0", _F) + _st("t0", "t1", "s0", _G)
    lines += _ld("t0", "t1", "s0", _E) + _st("t0", "t1", "s0", _F)
    lines += _ld("t0", "t1", "s0", _D)
    lines += _add64("t0", "t1", "a6", "a7", "t2")   # e = d + temp1
    lines += _st("t0", "t1", "s0", _E)
    lines += _ld("t0", "t1", "s0", _C) + _st("t0", "t1", "s0", _D)
    lines += _ld("t0", "t1", "s0", _B) + _st("t0", "t1", "s0", _C)
    lines += _ld("t0", "t1", "s0", _A) + _st("t0", "t1", "s0", _B)
    lines += _add64("a6", "a7", "a4", "a5", "t2")   # a = temp1 + temp2
    lines += _st("a6", "a7", "s0", _A)
    return "\n    ".join(lines)


def _schedule_body() -> str:
    """W[t] = sigma1(W[t-2]) + W[t-7] + sigma0(W[t-15]) + W[t-16].

    Register plan: s1=&W, s3=t.  Result accumulated in (a6,a7).
    """
    lines: List[str] = []
    lines += [
        "slli t5, s3, 3",
        "add  t6, s1, t5",          # &W[t]
    ]
    # sigma1(W[t-2]) = ror19 ^ ror61 ^ shr6
    lines += _ld("a2", "a3", "t6", -16)
    lines += _sigma("a2", "a3", (19, 61), 6, "a4", "a5")
    lines += _ld("a6", "a7", "t6", -56)              # W[t-7]
    lines += _add64("a6", "a7", "a4", "a5", "t0")
    # sigma0(W[t-15]) = ror1 ^ ror8 ^ shr7
    lines += _ld("a2", "a3", "t6", -120)
    lines += _sigma("a2", "a3", (1, 8), 7, "a4", "a5")
    lines += _add64("a6", "a7", "a4", "a5", "t0")
    lines += _ld("a2", "a3", "t6", -128)             # W[t-16]
    lines += _add64("a6", "a7", "a2", "a3", "t0")
    lines += _st("a6", "a7", "t6", 0)
    return "\n    ".join(lines)


def source(n: int = 4096, seed: int = 0xBEEF) -> str:
    """Assembly source hashing an ``n``-byte LCG message."""
    total = ((n + 1 + 16 + 127) // 128) * 128
    n_blocks = total // 128
    bit_len = n * 8
    if bit_len >= 1 << 32:
        raise ValueError("message too long for this generator")

    k_words = "\n".join(
        f"    .word {k & 0xFFFFFFFF:#010x}, {(k >> 32) & 0xFFFFFFFF:#010x}"
        for k in _K)
    h_words = "\n".join(
        f"    .word {h & 0xFFFFFFFF:#010x}, {(h >> 32) & 0xFFFFFFFF:#010x}"
        for h in _H0)

    return runtime.program(f"""
.equ MSG_LEN, {n}
.equ TOTAL_LEN, {total}
.equ N_BLOCKS, {n_blocks}

.text
main:
    addi sp, sp, -16
    sw   ra, 12(sp)
    sw   s0, 8(sp)
    sw   s1, 4(sp)

    # ---- generate the message with the LCG ----
    la   t0, msg
    li   t1, MSG_LEN
    li   t2, {seed:#x}
    li   t3, 1103515245
    li   t4, 12345
    beqz t1, gen_done       # zero-length message: nothing to generate
gen:
    mul  t2, t2, t3
    add  t2, t2, t4
    srli t5, t2, 16
    sb   t5, 0(t0)
    addi t0, t0, 1
    addi t1, t1, -1
    bnez t1, gen
gen_done:

    # ---- padding: 0x80, zeros, 64-bit big-endian bit length ----
    la   a0, msg
    li   t0, MSG_LEN
    add  a0, a0, t0
    li   a1, 0
    li   a2, TOTAL_LEN - MSG_LEN
    call memset
    la   t0, msg
    li   t3, MSG_LEN
    add  t3, t3, t0
    li   t1, 0x80
    sb   t1, 0(t3)
    li   t1, {bit_len}
    li   t3, TOTAL_LEN - 4
    add  t3, t3, t0
    # big-endian 32-bit at total-4 (length < 2^32 bits)
    srli t2, t1, 24
    sb   t2, 0(t3)
    srli t2, t1, 16
    sb   t2, 1(t3)
    srli t2, t1, 8
    sb   t2, 2(t3)
    sb   t1, 3(t3)

    # ---- initialize H ----
    la   a0, hstate
    la   a1, h_init
    li   a2, 64
    call memcpy

    # ---- per-block compression ----
    la   s0, msg
    li   s1, N_BLOCKS
block_loop:
    mv   a0, s0
    call sha512_block
    addi s0, s0, 128
    addi s1, s1, -1
    bnez s1, block_loop

    # ---- print the digest big-endian ----
    la   s0, hstate
    li   s1, 8
digest_loop:
    lw   a0, 4(s0)          # hi word first
    call print_hex
    lw   a0, 0(s0)
    call print_hex
    addi s0, s0, 8
    addi s1, s1, -1
    bnez s1, digest_loop
    li   a0, '\\n'
    call putc

    li   a0, 0
    lw   ra, 12(sp)
    lw   s0, 8(sp)
    lw   s1, 4(sp)
    addi sp, sp, 16
    ret

# ------------------------------------------------------------------ #
# sha512_block(a0 = &block[128])
# ------------------------------------------------------------------ #
sha512_block:
    addi sp, sp, -48
    sw   ra, 44(sp)
    sw   s0, 40(sp)
    sw   s1, 36(sp)
    sw   s2, 32(sp)
    sw   s3, 28(sp)
    sw   s4, 24(sp)

    # ---- W[0..15]: big-endian 64-bit words from the block ----
    la   s1, wsched
    mv   t6, a0             # block cursor
    li   s3, 16
w_init:
    # hi word = be32(bytes 0..3), lo word = be32(bytes 4..7)
    lbu  t0, 0(t6)
    slli t0, t0, 24
    lbu  t1, 1(t6)
    slli t1, t1, 16
    or   t0, t0, t1
    lbu  t1, 2(t6)
    slli t1, t1, 8
    or   t0, t0, t1
    lbu  t1, 3(t6)
    or   t1, t0, t1         # hi
    lbu  t0, 4(t6)
    slli t0, t0, 24
    lbu  t2, 5(t6)
    slli t2, t2, 16
    or   t0, t0, t2
    lbu  t2, 6(t6)
    slli t2, t2, 8
    or   t0, t0, t2
    lbu  t2, 7(t6)
    or   t0, t0, t2         # lo
    sw   t0, 0(s1)
    sw   t1, 4(s1)
    addi s1, s1, 8
    addi t6, t6, 8
    addi s3, s3, -1
    bnez s3, w_init

    # ---- W[16..79] ----
    la   s1, wsched
    li   s3, 16
w_expand:
    li   t0, 80
    bge  s3, t0, w_done
    {_schedule_body()}
    addi s3, s3, 1
    j    w_expand
w_done:

    # ---- working vars = H ----
    la   a0, vars
    la   a1, hstate
    li   a2, 64
    call memcpy

    # ---- 80 rounds ----
    la   s0, vars
    la   s1, wsched
    la   s2, k_const
    li   s3, 0
round_loop:
    {_round_body()}
    addi s3, s3, 1
    li   t0, 80
    blt  s3, t0, round_loop

    # ---- H += vars ----
    la   s0, hstate
    la   s1, vars
    li   s3, 8
h_add:
    lw   t3, 0(s0)
    lw   t4, 4(s0)
    lw   t5, 0(s1)
    lw   t6, 4(s1)
    add  t3, t3, t5
    sltu t0, t3, t5
    add  t4, t4, t6
    add  t4, t4, t0
    sw   t3, 0(s0)
    sw   t4, 4(s0)
    addi s0, s0, 8
    addi s1, s1, 8
    addi s3, s3, -1
    bnez s3, h_add

    lw   ra, 44(sp)
    lw   s0, 40(sp)
    lw   s1, 36(sp)
    lw   s2, 32(sp)
    lw   s3, 28(sp)
    lw   s4, 24(sp)
    addi sp, sp, 48
    ret

.data
.align 3
k_const:
{k_words}
h_init:
{h_words}

.bss
.align 3
hstate:  .space 64
vars:    .space 64
wsched:  .space 80 * 8
msg:     .space TOTAL_LEN
""")


def build(n: int = 4096, seed: int = 0xBEEF) -> Program:
    return assemble(source(n, seed))
