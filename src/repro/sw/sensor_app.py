"""Guest benchmark: the "simple-sensor" application.

Mirrors the paper's simple-sensor workload: the application sleeps in
``wfi``; on each sensor interrupt (PLIC line 2) the trap handler claims
the interrupt, copies the 64-byte sensor data frame to the UART, and
returns.  After ``n_frames`` frames it exits.

This is the lightest benchmark of Table II — mostly interrupt plumbing
and MMIO, very little computation — which is why the paper measures its
smallest DIFT overhead (1.2x) on it.
"""

from __future__ import annotations

from repro.asm import Program, assemble
from repro.sw import runtime


def source(n_frames: int = 200) -> str:
    return runtime.program(f"""
.equ N_FRAMES, {n_frames}

.text
main:
    # install the trap handler and enable the sensor interrupt
    la   t0, trap_handler
    csrw mtvec, t0
    li   t0, 1 << 2             # PLIC line 2 = sensor
    li   t1, PLIC_ENABLE
    sw   t0, 0(t1)
    li   t0, 1 << 11            # mie.MEIE
    csrw mie, t0
    csrwi mstatus, 8            # mstatus.MIE

main_loop:
    la   t0, frames_done
    lw   t1, 0(t0)
    li   t2, N_FRAMES
    bge  t1, t2, main_exit
    wfi
    j    main_loop

main_exit:
    csrwi mstatus, 0
    li   a0, 0
    li   a7, SYS_EXIT
    ecall

# ------------------------------------------------------------------ #
# external-interrupt handler: copy one sensor frame to the UART
# ------------------------------------------------------------------ #
trap_handler:
    addi sp, sp, -32
    sw   t0, 28(sp)
    sw   t1, 24(sp)
    sw   t2, 20(sp)
    sw   t3, 16(sp)
    sw   t4, 12(sp)

    li   t0, PLIC_CLAIM
    lw   t1, 0(t0)              # claim
    li   t2, 2
    bne  t1, t2, handler_done   # not the sensor: spurious, just complete

    # copy the 64-byte frame to the UART
    li   t2, SENSOR_BASE
    li   t3, UART_TXDATA
    li   t4, 64
copy_frame:
    lbu  t1, 0(t2)
    sb   t1, 0(t3)
    addi t2, t2, 1
    addi t4, t4, -1
    bnez t4, copy_frame

    la   t2, frames_done
    lw   t3, 0(t2)
    addi t3, t3, 1
    sw   t3, 0(t2)

handler_done:
    li   t0, PLIC_CLAIM
    sw   zero, 0(t0)            # complete
    lw   t0, 28(sp)
    lw   t1, 24(sp)
    lw   t2, 20(sp)
    lw   t3, 16(sp)
    lw   t4, 12(sp)
    addi sp, sp, 32
    mret

.bss
frames_done: .space 4
""", include_lib=False)


def build(n_frames: int = 200) -> Program:
    return assemble(source(n_frames))
