"""The Wilander–Kamkar buffer-overflow attack suite, RISC-V edition.

Reproduces Table I of the paper: 18 attack forms combining

* **location** — stack or heap/BSS/data segment,
* **target** — return address, base pointer, function pointer
  (parameter or local), longjmp buffer (parameter or local),
* **technique** — *direct* (the overflowing buffer is adjacent to the
  target) or *indirect* (the overflow first corrupts a data pointer,
  and the program then writes an attacker value through it).

Eight forms are not applicable on RISC-V (paper: "primarily due to
differences in the calling convention" — parameters travel in registers,
and there is no frame-pointer-driven epilogue); they are carried in the
table with their reasons but produce no program.

Every applicable attack follows the same script: the guest reads
``INPUT_LEN`` attacker bytes from the UART (classified Low-Integrity by
the code-injection policy), a *vulnerable* function overflows a buffer
with them, and control eventually transfers to ``attack_code`` — a
function pre-classified LI, standing in for injected shellcode (exactly
the paper's methodology).  If the payload executes it prints ``X`` and
hits ``ebreak``; with the DIFT policy active the instruction fetch from
the LI region is refused first.

Attacker inputs are built by :func:`build_attack`, which knows the frame
layouts (embedded systems run without ASLR; the WK suite assumes the
attacker knows the memory map).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.asm import Program, assemble
from repro.sw import runtime
from repro.vp.platform import STACK_TOP

INPUT_LEN = 48
_FILLER = 0x41  # 'A'


@dataclass(frozen=True)
class AttackSpec:
    """One row of Table I."""

    number: int
    location: str        # "Stack" or "Heap/BSS/Data"
    target: str
    technique: str       # "Direct" or "Indirect"
    applicable: bool
    reason: str = ""     # why N/A (when not applicable)

    @property
    def name(self) -> str:
        return (f"wk{self.number:02d}-{self.location.split('/')[0].lower()}"
                f"-{self.technique.lower()}")


def _scaffold(vulnerable: str, extra_data: str = "",
              main_call: str = "    call vulnerable") -> str:
    """Wrap a vulnerable function in the common attack scaffolding."""
    return runtime.program(f"""
.equ INPUT_LEN, {INPUT_LEN}

.text
main:
    addi sp, sp, -16
    sw   ra, 12(sp)
    call read_input
{main_call}
    # clean return: the overflow did not divert control
    li   a0, 2
    lw   ra, 12(sp)
    addi sp, sp, 16
    ret

# read INPUT_LEN attacker bytes from the UART
read_input:
    la   t0, input_buf
    li   t1, INPUT_LEN
ri_loop:
    li   t2, UART_STATUS
ri_wait:
    lw   t3, 0(t2)
    andi t3, t3, 1
    beqz t3, ri_wait
    li   t2, UART_RXDATA
    lw   t3, 0(t2)
    sb   t3, 0(t0)
    addi t0, t0, 1
    addi t1, t1, -1
    bnez t1, ri_loop
    ret

safe_func:
    ret

{vulnerable}

# ---- the "injected" payload: pre-classified Low-Integrity ----
.align 2
attack_code:
    li   t0, UART_TXDATA
    li   a0, 'X'
    sb   a0, 0(t0)
    ebreak
attack_code_end:

.bss
input_buf:    .space INPUT_LEN
scratch_slot: .space 4
{extra_data}
""")


def _le32(value: int) -> bytes:
    return struct.pack("<I", value & 0xFFFFFFFF)


def _fill(n: int) -> bytes:
    return bytes([_FILLER]) * n


def _pad(data: bytes) -> bytes:
    return data + _fill(INPUT_LEN - len(data))


# --------------------------------------------------------------------- #
# attack generators: each returns (source, input_builder)
# input_builder(program) -> attacker bytes
# --------------------------------------------------------------------- #

# stack frames: crt0 sets sp = STACK_TOP; main's 16-byte frame means every
# `vulnerable` below runs with entry sp = STACK_TOP - 16.
_VULN_SP = STACK_TOP - 16


def _attack3():
    """#3 stack / return address / direct."""
    vulnerable = """
vulnerable:
    addi sp, sp, -48
    sw   ra, 44(sp)
    # buffer occupies 0..43; the copy overruns into the saved ra at 44
    mv   a0, sp
    la   a1, input_buf
    li   a2, 48
    call memcpy
    lw   ra, 44(sp)
    addi sp, sp, 48
    ret
"""

    def build(program: Program) -> bytes:
        return _pad(_fill(44) + _le32(program.symbol("attack_code")))

    return _scaffold(vulnerable), build


def _attack5():
    """#5 stack / function pointer (local) / direct."""
    vulnerable = """
vulnerable:
    addi sp, sp, -48
    sw   ra, 44(sp)
    la   t0, safe_func
    sw   t0, 40(sp)         # local function pointer after a 40-byte buffer
    mv   a0, sp
    la   a1, input_buf
    li   a2, 44             # overruns into the pointer
    call memcpy
    lw   t0, 40(sp)
    jalr ra, t0, 0          # call through the corrupted pointer
    lw   ra, 44(sp)
    addi sp, sp, 48
    ret
"""

    def build(program: Program) -> bytes:
        return _pad(_fill(40) + _le32(program.symbol("attack_code")))

    return _scaffold(vulnerable), build


def _attack6():
    """#6 stack / longjmp buffer (local) / direct."""
    vulnerable = """
vulnerable:
    addi sp, sp, -112
    sw   ra, 108(sp)
    addi a0, sp, 32         # jmp_buf at 32..87, after a 32-byte buffer
    call setjmp
    bnez a0, vuln_out       # longjmp lands here if ra survived
    mv   a0, sp
    la   a1, input_buf
    li   a2, 36             # overruns into jmp_buf.ra
    call memcpy
    addi a0, sp, 32
    li   a1, 1
    call longjmp
vuln_out:
    lw   ra, 108(sp)
    addi sp, sp, 112
    ret
"""

    def build(program: Program) -> bytes:
        return _pad(_fill(32) + _le32(program.symbol("attack_code")))

    return _scaffold(vulnerable), build


def _attack7():
    """#7 heap/BSS/data / function pointer / direct."""
    vulnerable = """
vulnerable:
    addi sp, sp, -16
    sw   ra, 12(sp)
    la   t0, safe_func
    la   t1, g_fnptr
    sw   t0, 0(t1)
    la   a0, g_buf
    la   a1, input_buf
    li   a2, 44             # overruns g_buf into the adjacent g_fnptr
    call memcpy
    la   t1, g_fnptr
    lw   t0, 0(t1)
    jalr ra, t0, 0
    lw   ra, 12(sp)
    addi sp, sp, 16
    ret
"""
    extra = """
g_buf:   .space 40
g_fnptr: .space 4
"""

    def build(program: Program) -> bytes:
        return _pad(_fill(40) + _le32(program.symbol("attack_code")))

    return _scaffold(vulnerable, extra), build


def _indirect_stack(target_offset_code: str, frame: int, ra_off: int,
                    trigger: str) -> str:
    """Common shape of the stack-based indirect attacks.

    Locals: buffer 0..39, data pointer at 40(sp); the overflow (44 bytes)
    replaces the pointer; the victim then stores an attacker word through
    it and finally runs ``trigger``.
    """
    return f"""
vulnerable:
    addi sp, sp, -{frame}
    sw   ra, {ra_off}(sp)
{target_offset_code}
    la   t0, scratch_slot
    sw   t0, 40(sp)         # data pointer, initially harmless
    mv   a0, sp
    la   a1, input_buf
    li   a2, 44             # overruns into the pointer at 40(sp)
    call memcpy
    lw   t0, 40(sp)         # attacker-chosen pointer
    la   t1, input_buf
    lw   t1, 44(t1)         # attacker-chosen value
    sw   t1, 0(t0)          # the indirect write
{trigger}
    lw   ra, {ra_off}(sp)
    addi sp, sp, {frame}
    ret
"""


def _attack9():
    """#9 stack / function pointer (param) / indirect.

    The register-passed function-pointer parameter is spilled to the
    stack (as compilers do under register pressure); the indirect write
    redirects the spilled slot.
    """
    code = """    sw   a0, 48(sp)         # spill the fn-pointer parameter"""
    trigger = """    lw   t0, 48(sp)
    jalr ra, t0, 0"""
    src = _scaffold(
        _indirect_stack(code, 56, 52, trigger),
        main_call="    la   a0, safe_func\n    call vulnerable")

    def build(program: Program) -> bytes:
        spill_addr = _VULN_SP - 56 + 48
        return _pad(_fill(40) + _le32(spill_addr)
                    + _le32(program.symbol("attack_code")))

    return src, build


def _attack10():
    """#10 stack / longjmp buffer (param) / indirect."""
    vulnerable = """
vulnerable:
    # a0 = &g_jmpbuf (parameter)
    addi sp, sp, -56
    sw   ra, 52(sp)
    sw   a0, 48(sp)
    la   t0, scratch_slot
    sw   t0, 40(sp)
    mv   a0, sp
    la   a1, input_buf
    li   a2, 44
    call memcpy
    lw   t0, 40(sp)
    la   t1, input_buf
    lw   t1, 44(t1)
    sw   t1, 0(t0)          # overwrite g_jmpbuf.ra
    lw   a0, 48(sp)
    li   a1, 1
    call longjmp
"""
    main_call = """    la   a0, g_jmpbuf
    call setjmp
    bnez a0, main_back      # longjmp with intact ra lands here
    la   a0, g_jmpbuf
    call vulnerable
main_back:"""
    extra = """
.align 2
g_jmpbuf: .space 56
"""
    src = _scaffold(vulnerable, extra, main_call=main_call)

    def build(program: Program) -> bytes:
        return _pad(_fill(40) + _le32(program.symbol("g_jmpbuf"))
                    + _le32(program.symbol("attack_code")))

    return src, build


def _attack11():
    """#11 stack / return address / indirect."""
    src = _scaffold(_indirect_stack("", 56, 52, ""))

    def build(program: Program) -> bytes:
        ra_slot = _VULN_SP - 56 + 52
        return _pad(_fill(40) + _le32(ra_slot)
                    + _le32(program.symbol("attack_code")))

    return src, build


def _attack13():
    """#13 stack / function pointer (local) / indirect."""
    code = """    la   t0, safe_func
    sw   t0, 48(sp)         # local function pointer"""
    trigger = """    lw   t0, 48(sp)
    jalr ra, t0, 0"""
    src = _scaffold(_indirect_stack(code, 56, 52, trigger))

    def build(program: Program) -> bytes:
        fnptr_slot = _VULN_SP - 56 + 48
        return _pad(_fill(40) + _le32(fnptr_slot)
                    + _le32(program.symbol("attack_code")))

    return src, build


def _attack14():
    """#14 stack / longjmp buffer (local) / indirect."""
    vulnerable = """
vulnerable:
    addi sp, sp, -112
    sw   ra, 108(sp)
    addi a0, sp, 48         # local jmp_buf at 48..103
    call setjmp
    bnez a0, vuln_out
    la   t0, scratch_slot
    sw   t0, 40(sp)         # data pointer after the 40-byte buffer
    mv   a0, sp
    la   a1, input_buf
    li   a2, 44
    call memcpy
    lw   t0, 40(sp)
    la   t1, input_buf
    lw   t1, 44(t1)
    sw   t1, 0(t0)          # overwrite jmp_buf.ra
    addi a0, sp, 48
    li   a1, 1
    call longjmp
vuln_out:
    lw   ra, 108(sp)
    addi sp, sp, 112
    ret
"""
    src = _scaffold(vulnerable)

    def build(program: Program) -> bytes:
        jmpbuf_ra = _VULN_SP - 112 + 48
        return _pad(_fill(40) + _le32(jmpbuf_ra)
                    + _le32(program.symbol("attack_code")))

    return src, build


def _attack17():
    """#17 heap/BSS/data / function pointer (local) / indirect."""
    vulnerable = """
vulnerable:
    addi sp, sp, -16
    sw   ra, 12(sp)
    la   t0, safe_func
    la   t1, g_fnptr
    sw   t0, 0(t1)
    la   t0, scratch_slot
    la   t1, g_ptr
    sw   t0, 0(t1)
    la   a0, g_buf
    la   a1, input_buf
    li   a2, 44             # overruns g_buf into the adjacent g_ptr
    call memcpy
    la   t1, g_ptr
    lw   t0, 0(t1)
    la   t1, input_buf
    lw   t1, 44(t1)
    sw   t1, 0(t0)          # indirect write -> g_fnptr
    la   t1, g_fnptr
    lw   t0, 0(t1)
    jalr ra, t0, 0
    lw   ra, 12(sp)
    addi sp, sp, 16
    ret
"""
    extra = """
g_buf:   .space 40
g_ptr:   .space 4
g_fnptr: .space 4
"""
    src = _scaffold(vulnerable, extra)

    def build(program: Program) -> bytes:
        return _pad(_fill(40) + _le32(program.symbol("g_fnptr"))
                    + _le32(program.symbol("attack_code")))

    return src, build


_NA_CALLCONV = ("function-pointer parameters are passed in registers on "
                "RISC-V; a stack overflow cannot reach them")
_NA_BASEPTR = ("the RISC-V calling convention has no frame-pointer-based "
               "epilogue to corrupt")
_NA_HEAP = ("the ported suite has no heap variant of this form on RISC-V "
            "(newlib allocator layout differs)")

#: Table I, in paper order
SPECS: List[AttackSpec] = [
    AttackSpec(1, "Stack", "Function Pointer (param)", "Direct", False,
               _NA_CALLCONV),
    AttackSpec(2, "Stack", "Longjmp Buffer (param)", "Direct", False,
               _NA_CALLCONV),
    AttackSpec(3, "Stack", "Return Address", "Direct", True),
    AttackSpec(4, "Stack", "Base Pointer", "Direct", False, _NA_BASEPTR),
    AttackSpec(5, "Stack", "Function Pointer (local)", "Direct", True),
    AttackSpec(6, "Stack", "Longjmp Buffer", "Direct", True),
    AttackSpec(7, "Heap/BSS/Data", "Function Pointer", "Direct", True),
    AttackSpec(8, "Heap/BSS/Data", "Longjmp Buffer", "Direct", False,
               _NA_HEAP),
    AttackSpec(9, "Stack", "Function Pointer (param)", "Indirect", True),
    AttackSpec(10, "Stack", "Longjump Buffer (param)", "Indirect", True),
    AttackSpec(11, "Stack", "Return Address", "Indirect", True),
    AttackSpec(12, "Stack", "Base Pointer", "Indirect", False, _NA_BASEPTR),
    AttackSpec(13, "Stack", "Function Pointer (local)", "Indirect", True),
    AttackSpec(14, "Stack", "Longjmp Buffer", "Indirect", True),
    AttackSpec(15, "Heap/BSS/Data", "Return Address", "Indirect", False,
               _NA_HEAP),
    AttackSpec(16, "Heap/BSS/Data", "Base Pointer", "Indirect", False,
               _NA_BASEPTR),
    AttackSpec(17, "Heap/BSS/Data", "Function Pointer (local)", "Indirect",
               True),
    AttackSpec(18, "Heap/BSS/Data", "Longjmp Buffer", "Indirect", False,
               _NA_HEAP),
]

_GENERATORS: Dict[int, Callable] = {
    3: _attack3, 5: _attack5, 6: _attack6, 7: _attack7, 9: _attack9,
    10: _attack10, 11: _attack11, 13: _attack13, 14: _attack14,
    17: _attack17,
}


def spec(number: int) -> AttackSpec:
    return SPECS[number - 1]


def build_attack(number: int):
    """Build attack ``number``; returns (Program, attacker_input_bytes).

    Raises ValueError for the N/A forms (check ``spec(n).applicable``).
    """
    attack_spec = spec(number)
    if not attack_spec.applicable:
        raise ValueError(
            f"attack {number} is not applicable on RISC-V: "
            f"{attack_spec.reason}")
    source, input_builder = _GENERATORS[number]()
    program = assemble(source)
    return program, input_builder(program)


# --------------------------------------------------------------------- #
# beyond Table I: the paper's acknowledged limitation
# --------------------------------------------------------------------- #

def build_code_reuse_attack():
    """A return-to-trusted-code attack (NOT in Table I, by design).

    Section V-B2b concedes the limitation: fetch clearance "still cannot
    fully prevent code injection, since an attacker might be able to
    exploit bugs in the embedded SW to inject malicious code by re-using
    trusted code from memory."  This attack demonstrates it: the overflow
    redirects the return address not to injected LI bytes but to an
    *existing High-Integrity function* (`privileged_unlock`, legitimately
    part of the firmware).  Every fetched instruction is HI, so the
    fetch-clearance policy cannot object.

    Returns (Program, attacker_input).  Expected outcome under the
    code-injection policy: the privileged function runs (reason
    ``"ebreak"``, marker ``P`` on the UART) and **no violation fires** —
    the reproduction of the paper's stated blind spot.
    """
    vulnerable = """
vulnerable:
    addi sp, sp, -48
    sw   ra, 44(sp)
    mv   a0, sp
    la   a1, input_buf
    li   a2, 48             # overruns the saved ra, as in attack #3
    call memcpy
    lw   ra, 44(sp)
    addi sp, sp, 48
    ret

# a legitimate, trusted (HI) firmware function the attacker re-uses
privileged_unlock:
    li   t0, UART_TXDATA
    li   a0, 'P'
    sb   a0, 0(t0)
    ebreak
"""
    source = _scaffold(vulnerable)
    program = assemble(source)
    attacker_input = _pad(
        _fill(44) + _le32(program.symbol("privileged_unlock")))
    return program, attacker_input
