"""Bare-metal guest runtime: crt0 + a small assembly library.

Guest benchmarks are assembled from RISC-V source composed by Python.
This module supplies the pieces every guest shares:

* :data:`HEADER` — memory-map constants (``.equ``) for all peripherals;
* :func:`crt0` — entry stub: set up ``sp``/``gp``, call ``main``, exit via
  ``ecall`` (a7=93) with ``main``'s return value;
* :data:`LIB` — library routines: UART output (``putc``/``puts``/
  ``print_hex``/``print_dec``), string/memory ops (``strlen``, ``strcpy``,
  ``memcpy``, ``memset``), and ``setjmp``/``longjmp`` (needed by the
  Wilander–Kamkar attack forms that target the jmp_buf);
* :func:`program` — glue a ``main`` body and extra sections into a
  complete translation unit.

``strcpy`` is intentionally the classic unbounded C semantics — the buffer
overflows of Table I rely on it.
"""

from __future__ import annotations

from repro.vp.platform import (
    AES_BASE,
    CAN_BASE,
    CLINT_BASE,
    DMA_BASE,
    PLIC_BASE,
    SENSOR_BASE,
    STACK_TOP,
    UART_BASE,
)

HEADER = f"""
# ---- memory map ----
.equ UART_BASE,   {UART_BASE:#x}
.equ UART_TXDATA, {UART_BASE:#x}
.equ UART_RXDATA, {UART_BASE + 4:#x}
.equ UART_STATUS, {UART_BASE + 8:#x}
.equ UART_IRQ_EN, {UART_BASE + 0xC:#x}
.equ SENSOR_BASE, {SENSOR_BASE:#x}
.equ SENSOR_TAG,  {SENSOR_BASE + 0x80:#x}
.equ SENSOR_FRAME_NO, {SENSOR_BASE + 0x84:#x}
.equ SENSOR_PERIOD, {SENSOR_BASE + 0x88:#x}
.equ CAN_BASE,    {CAN_BASE:#x}
.equ CAN_STATUS,  {CAN_BASE:#x}
.equ CAN_TX_LEN,  {CAN_BASE + 4:#x}
.equ CAN_RX_LEN,  {CAN_BASE + 8:#x}
.equ CAN_TX_SEND, {CAN_BASE + 0xC:#x}
.equ CAN_RX_POP,  {CAN_BASE + 0x10:#x}
.equ CAN_TX_BUF,  {CAN_BASE + 0x20:#x}
.equ CAN_RX_BUF,  {CAN_BASE + 0x40:#x}
.equ AES_BASE,    {AES_BASE:#x}
.equ AES_CTRL,    {AES_BASE:#x}
.equ AES_STATUS,  {AES_BASE + 4:#x}
.equ AES_KEY,     {AES_BASE + 0x10:#x}
.equ AES_INPUT,   {AES_BASE + 0x20:#x}
.equ AES_OUTPUT,  {AES_BASE + 0x30:#x}
.equ DMA_BASE,    {DMA_BASE:#x}
.equ DMA_SRC,     {DMA_BASE:#x}
.equ DMA_DST,     {DMA_BASE + 4:#x}
.equ DMA_LEN,     {DMA_BASE + 8:#x}
.equ DMA_CTRL,    {DMA_BASE + 0xC:#x}
.equ DMA_STATUS,  {DMA_BASE + 0x10:#x}
.equ CLINT_BASE,  {CLINT_BASE:#x}
.equ MTIMECMP_LO, {CLINT_BASE:#x}
.equ MTIMECMP_HI, {CLINT_BASE + 4:#x}
.equ MTIME_LO,    {CLINT_BASE + 8:#x}
.equ MTIME_HI,    {CLINT_BASE + 0xC:#x}
.equ PLIC_BASE,   {PLIC_BASE:#x}
.equ PLIC_PENDING,{PLIC_BASE:#x}
.equ PLIC_ENABLE, {PLIC_BASE + 4:#x}
.equ PLIC_CLAIM,  {PLIC_BASE + 8:#x}
.equ STACK_TOP,   {STACK_TOP:#x}
.equ SYS_EXIT,    93
"""


def crt0(stack_top: int = STACK_TOP) -> str:
    """Entry stub: initialize the stack, run ``main``, exit."""
    return f"""
.text
_start:
    li   sp, {stack_top:#x}
    call main
    # fallthrough: exit(main())
exit:
    li   a7, SYS_EXIT
    ecall
    j    exit          # unreachable
"""


LIB = """
# ---------------------------------------------------------------- #
# UART output
# ---------------------------------------------------------------- #

# putc(a0: char)
putc:
    li   t0, UART_TXDATA
    sb   a0, 0(t0)
    ret

# puts(a0: zero-terminated string) -> bytes written in a0
puts:
    li   t0, UART_TXDATA
    mv   t2, a0
puts_loop:
    lbu  t1, 0(t2)
    beqz t1, puts_done
    sb   t1, 0(t0)
    addi t2, t2, 1
    j    puts_loop
puts_done:
    sub  a0, t2, a0
    ret

# print_hex(a0: word) — 8 hex digits
print_hex:
    li   t0, UART_TXDATA
    li   t2, 8
print_hex_loop:
    srli t1, a0, 28
    slli a0, a0, 4
    addi t3, t1, '0'
    li   t4, 10
    blt  t1, t4, print_hex_emit
    addi t3, t1, 'a' - 10
print_hex_emit:
    sb   t3, 0(t0)
    addi t2, t2, -1
    bnez t2, print_hex_loop
    ret

# print_dec(a0: unsigned word)
print_dec:
    addi sp, sp, -16
    sw   ra, 12(sp)
    li   t0, UART_TXDATA
    li   t1, 10
    addi t2, sp, 0          # digit buffer on the stack (up to 10 digits)
    li   t3, 0              # digit count
print_dec_divide:
    remu t4, a0, t1
    divu a0, a0, t1
    addi t4, t4, '0'
    add  t5, t2, t3
    sb   t4, 0(t5)
    addi t3, t3, 1
    bnez a0, print_dec_divide
print_dec_emit:
    addi t3, t3, -1
    add  t5, t2, t3
    lbu  t4, 0(t5)
    sb   t4, 0(t0)
    bnez t3, print_dec_emit
    lw   ra, 12(sp)
    addi sp, sp, 16
    ret

# ---------------------------------------------------------------- #
# string / memory
# ---------------------------------------------------------------- #

# strlen(a0) -> a0
strlen:
    mv   t0, a0
strlen_loop:
    lbu  t1, 0(t0)
    beqz t1, strlen_done
    addi t0, t0, 1
    j    strlen_loop
strlen_done:
    sub  a0, t0, a0
    ret

# strcpy(a0: dst, a1: src) -> a0 (classic unbounded copy)
strcpy:
    mv   t0, a0
strcpy_loop:
    lbu  t1, 0(a1)
    sb   t1, 0(t0)
    addi a1, a1, 1
    addi t0, t0, 1
    bnez t1, strcpy_loop
    ret

# memcpy(a0: dst, a1: src, a2: n) -> a0
memcpy:
    mv   t0, a0
    beqz a2, memcpy_done
memcpy_loop:
    lbu  t1, 0(a1)
    sb   t1, 0(t0)
    addi a1, a1, 1
    addi t0, t0, 1
    addi a2, a2, -1
    bnez a2, memcpy_loop
memcpy_done:
    ret

# memset(a0: dst, a1: byte, a2: n) -> a0
memset:
    mv   t0, a0
    beqz a2, memset_done
memset_loop:
    sb   a1, 0(t0)
    addi t0, t0, 1
    addi a2, a2, -1
    bnez a2, memset_loop
memset_done:
    ret

# ---------------------------------------------------------------- #
# setjmp / longjmp
# jmp_buf layout: ra, sp, s0..s11  (14 words)
# ---------------------------------------------------------------- #

setjmp:
    sw   ra,  0(a0)
    sw   sp,  4(a0)
    sw   s0,  8(a0)
    sw   s1, 12(a0)
    sw   s2, 16(a0)
    sw   s3, 20(a0)
    sw   s4, 24(a0)
    sw   s5, 28(a0)
    sw   s6, 32(a0)
    sw   s7, 36(a0)
    sw   s8, 40(a0)
    sw   s9, 44(a0)
    sw   s10, 48(a0)
    sw   s11, 52(a0)
    li   a0, 0
    ret

longjmp:
    lw   ra,  0(a0)
    lw   sp,  4(a0)
    lw   s0,  8(a0)
    lw   s1, 12(a0)
    lw   s2, 16(a0)
    lw   s3, 20(a0)
    lw   s4, 24(a0)
    lw   s5, 28(a0)
    lw   s6, 32(a0)
    lw   s7, 36(a0)
    lw   s8, 40(a0)
    lw   s9, 44(a0)
    lw   s10, 48(a0)
    lw   s11, 52(a0)
    mv   a0, a1
    bnez a0, longjmp_ret
    li   a0, 1
longjmp_ret:
    ret
"""


def program(main_and_data: str, include_lib: bool = True,
            stack_top: int = STACK_TOP) -> str:
    """Compose a complete guest program around a ``main`` definition."""
    parts = [HEADER, crt0(stack_top)]
    if include_lib:
        parts.append(".text")
        parts.append(LIB)
    parts.append(main_and_data)
    return "\n".join(parts)
