"""Guest software: the car engine immobilizer ECU (paper Section VI-A).

The immobilizer holds a 16-byte secret PIN in memory and answers
challenge-response authentication requests from the engine ECU over the
CAN bus: challenge (8 bytes) -> AES-128(PIN, challenge || 0^8) -> response
(16 bytes, two CAN frames).  The PIN never crosses the CAN bus in plain
text.

A UART "debug console" accepts single-character commands; the attack
scenarios of Section VI-A are triggered through it:

====  ==========================================================
cmd   behaviour
====  ==========================================================
`q`   exit
`c`   serve challenges until ``n_challenges`` answered, then exit
`d`   debug dump: hex-dump the data segment to the UART
      (the *vulnerable* build includes the PIN bytes; the *fixed*
      build skips the PIN region — the paper's first fix)
`1`   attack: write the PIN directly to the UART
`b`   attack: copy the PIN to a scratch buffer first, then print
      the buffer (indirect leak through an intermediate buffer)
`2`   attack: branch on a PIN bit and print which way it went
      (control-flow leak)
`3`   attack: overwrite the PIN with the next 16 bytes read from
      the UART (external / Low-Integrity data)
`4`   attack: copy PIN byte 0 over PIN bytes 1..15 (trusted-data
      overwrite -- the entropy-reduction attack)
====  ==========================================================

Build variants: ``variant="vulnerable"`` or ``"fixed"`` selects the debug
dump behaviour.  The PIN value is compiled in (it is a secret *in the
model*, classified (HC,HI) by the policy, not hidden from the host).
"""

from __future__ import annotations

from repro.asm import Program, assemble
from repro.sw import runtime

#: default compiled-in PIN (16 bytes)
DEFAULT_PIN = bytes(range(0xA0, 0xB0))


def source(variant: str = "vulnerable", pin: bytes = DEFAULT_PIN,
           n_challenges: int = 4) -> str:
    if variant not in ("vulnerable", "fixed"):
        raise ValueError(f"unknown variant {variant!r}")
    if len(pin) != 16:
        raise ValueError("PIN must be 16 bytes")
    pin_words = ", ".join(str(b) for b in pin)

    if variant == "vulnerable":
        dump_code = """
    # VULNERABLE: dump the whole data segment, PIN included
    la   s2, data_begin
    la   s3, data_end
dump_loop:
    bgeu s2, s3, dump_done
    lbu  a0, 0(s2)
    call print_byte
    addi s2, s2, 1
    j    dump_loop
dump_done:
"""
    else:
        dump_code = """
    # FIXED: dump the data segment but skip the PIN region
    la   s2, data_begin
    la   s3, data_end
    la   s4, pin_key
    la   s5, pin_key_end
dump_loop:
    bgeu s2, s3, dump_done
    bltu s2, s4, dump_emit
    bgeu s2, s5, dump_emit
    addi s2, s2, 1          # inside the PIN region: skip
    j    dump_loop
dump_emit:
    lbu  a0, 0(s2)
    call print_byte
    addi s2, s2, 1
    j    dump_loop
dump_done:
"""

    return runtime.program(f"""
.equ N_CHALLENGES, {n_challenges}

.text
main:
    addi sp, sp, -16
    sw   ra, 12(sp)
    li   s0, 0              # challenges served
    li   s1, 0              # serve-until-done mode flag

main_loop:
    # UART commands take priority over CAN traffic
    li   t0, UART_STATUS
    lw   t1, 0(t0)
    andi t1, t1, 1
    bnez t1, handle_command
    li   t0, CAN_STATUS
    lw   t1, 0(t0)
    andi t1, t1, 1
    bnez t1, handle_challenge
    beqz s1, main_loop      # keep polling
    li   t2, N_CHALLENGES
    blt  s0, t2, main_loop
    li   a0, 0
    j    main_exit

main_exit:
    lw   ra, 12(sp)
    addi sp, sp, 16
    li   a7, SYS_EXIT
    ecall

# ------------------------------------------------------------------ #
# command dispatch
# ------------------------------------------------------------------ #
handle_command:
    li   t0, UART_RXDATA
    lw   t1, 0(t0)
    li   t2, 'q'
    beq  t1, t2, cmd_quit
    li   t2, 'c'
    beq  t1, t2, cmd_serve
    li   t2, 'd'
    beq  t1, t2, cmd_dump
    li   t2, '1'
    beq  t1, t2, cmd_leak_direct
    li   t2, 'b'
    beq  t1, t2, cmd_leak_buffer
    li   t2, '2'
    beq  t1, t2, cmd_branch_leak
    li   t2, '3'
    beq  t1, t2, cmd_overwrite
    li   t2, '4'
    beq  t1, t2, cmd_entropy
    j    main_loop          # unknown command: ignore

cmd_quit:
    li   a0, 0
    j    main_exit

cmd_serve:
    li   s1, 1
    j    main_loop

cmd_dump:
{dump_code}
    li   a0, '\\n'
    call putc
    j    main_loop

# attack 1: PIN straight to the UART
cmd_leak_direct:
    la   s2, pin_key
    li   s3, 16
leak_loop:
    lbu  a0, 0(s2)
    call print_byte
    addi s2, s2, 1
    addi s3, s3, -1
    bnez s3, leak_loop
    j    main_loop

# attack 1b: PIN -> scratch buffer -> UART (indirect)
cmd_leak_buffer:
    la   a0, scratch
    la   a1, pin_key
    li   a2, 16
    call memcpy
    la   s2, scratch
    li   s3, 16
leakb_loop:
    lbu  a0, 0(s2)
    call print_byte
    addi s2, s2, 1
    addi s3, s3, -1
    bnez s3, leakb_loop
    j    main_loop

# attack 2: control flow depends on a PIN bit
cmd_branch_leak:
    la   t0, pin_key
    lbu  t1, 0(t0)
    andi t1, t1, 1
    bnez t1, branch_odd
    li   a0, 'E'
    call putc
    j    main_loop
branch_odd:
    li   a0, 'O'
    call putc
    j    main_loop

# attack 3: overwrite the PIN with 16 bytes from the UART
cmd_overwrite:
    la   s2, pin_key
    li   s3, 16
overwrite_loop:
    li   t0, UART_STATUS
    lw   t1, 0(t0)
    andi t1, t1, 1
    beqz t1, overwrite_loop
    li   t0, UART_RXDATA
    lw   t1, 0(t0)
    sb   t1, 0(s2)
    addi s2, s2, 1
    addi s3, s3, -1
    bnez s3, overwrite_loop
    j    main_loop

# attack 4: copy PIN[0] over PIN[1..15] (entropy reduction)
cmd_entropy:
    la   s2, pin_key
    lbu  t1, 0(s2)
    li   s3, 15
entropy_loop:
    addi s2, s2, 1
    sb   t1, 0(s2)
    addi s3, s3, -1
    bnez s3, entropy_loop
    j    main_loop

# ------------------------------------------------------------------ #
# challenge/response protocol
# ------------------------------------------------------------------ #
handle_challenge:
    # read the 8-byte challenge, byte-wise to keep per-byte tags
    la   s2, challenge
    li   s3, 8
    li   t0, CAN_RX_BUF
chal_read:
    lbu  t1, 0(t0)
    sb   t1, 0(s2)
    addi t0, t0, 1
    addi s2, s2, 1
    addi s3, s3, -1
    bnez s3, chal_read
    li   t0, CAN_RX_POP
    li   t1, 1
    sw   t1, 0(t0)

    # key load: byte-wise so per-byte PIN classes survive intact
    la   t2, pin_key
    li   t3, AES_KEY
    li   t4, 16
key_load:
    lbu  t5, 0(t2)
    sb   t5, 0(t3)
    addi t2, t2, 1
    addi t3, t3, 1
    addi t4, t4, -1
    bnez t4, key_load

    # input block = challenge || zeros
    la   t2, challenge
    li   t3, AES_INPUT
    li   t4, 8
in_load:
    lbu  t5, 0(t2)
    sb   t5, 0(t3)
    addi t2, t2, 1
    addi t3, t3, 1
    addi t4, t4, -1
    bnez t4, in_load
    li   t4, 8
in_zero:
    sb   zero, 0(t3)
    addi t3, t3, 1
    addi t4, t4, -1
    bnez t4, in_zero

    # start the engine and wait for completion
    li   t0, AES_CTRL
    li   t1, 1
    sw   t1, 0(t0)
    li   t0, AES_STATUS
aes_wait:
    lw   t1, 0(t0)
    andi t1, t1, 1
    beqz t1, aes_wait

    # send the 16-byte response as two CAN frames
    li   s2, 0              # frame index
resp_frames:
    li   t0, AES_OUTPUT
    slli t1, s2, 3
    add  t0, t0, t1
    li   t2, CAN_TX_BUF
    li   t3, 8
resp_copy:
    lbu  t4, 0(t0)
    sb   t4, 0(t2)
    addi t0, t0, 1
    addi t2, t2, 1
    addi t3, t3, -1
    bnez t3, resp_copy
    li   t0, CAN_TX_LEN
    li   t1, 8
    sw   t1, 0(t0)
    li   t0, CAN_TX_SEND
    li   t1, 1
    sw   t1, 0(t0)
    addi s2, s2, 1
    li   t1, 2
    blt  s2, t1, resp_frames

    addi s0, s0, 1          # challenges served
    j    main_loop

# ------------------------------------------------------------------ #
# print_byte(a0): two lowercase hex chars on the UART
# ------------------------------------------------------------------ #
print_byte:
    addi sp, sp, -16
    sw   ra, 12(sp)
    sw   s2, 8(sp)
    mv   s2, a0
    srli a0, a0, 4
    call print_nibble
    andi a0, s2, 0xF
    call print_nibble
    lw   ra, 12(sp)
    lw   s2, 8(sp)
    addi sp, sp, 16
    ret

print_nibble:
    li   t0, 10
    blt  a0, t0, nibble_digit
    addi a0, a0, 'a' - 10
    j    nibble_emit
nibble_digit:
    addi a0, a0, '0'
nibble_emit:
    li   t0, UART_TXDATA
    sb   a0, 0(t0)
    ret

.data
data_begin:
banner:      .asciz "immo v1.0"
.align 2
config_word: .word 0x00C0FFEE
pin_key:     .byte {pin_words}
pin_key_end:
serial_no:   .word 0x12345678
data_end:

.bss
challenge:   .space 8
scratch:     .space 16
""")


def build(variant: str = "vulnerable", pin: bytes = DEFAULT_PIN,
          n_challenges: int = 4) -> Program:
    return assemble(source(variant, pin, n_challenges))
