"""Guest benchmark: "freertos-tasks" — a tiny pre-emptive two-task kernel.

The paper benchmarks a FreeRTOS application scheduling two interleaved
tasks.  The substitute is a minimal pre-emptive round-robin kernel written
directly in RISC-V assembly:

* the machine-timer interrupt fires every ``tick_us`` microseconds;
* the handler saves the full register context (x1..x31 + mepc) on the
  interrupted task's stack, parks its ``sp`` in the task control block,
  switches to the other task and restores its context via ``mret``;
* after ``n_ticks`` ticks the handler prints both task counters and exits.

This reproduces the machine-level behaviour the DIFT engine must cope
with (trap entry, CSR traffic, full register save/restore on alternating
stacks) and is the workload where the paper measures its *largest* DIFT
overhead (2.9x).

Task A increments a counter and stirs an LCG; task B increments a counter
and maintains a rolling XOR.  Exit code 0 iff both tasks made progress.
"""

from __future__ import annotations

from repro.asm import Program, assemble
from repro.sw import runtime

# context frame: mepc @0, x1..x31 @ 4*reg (x2/sp excluded, implied)
_SAVE_REGS = [r for r in range(1, 32) if r != 2]
_FRAME = 128


def _save_context() -> str:
    lines = [f"    sw   x{r}, {4 * r}(sp)" for r in _SAVE_REGS]
    return "\n".join(lines)


def _restore_context() -> str:
    lines = [f"    lw   x{r}, {4 * r}(sp)" for r in _SAVE_REGS]
    return "\n".join(lines)


def source(n_ticks: int = 40, tick_us: int = 500) -> str:
    return runtime.program(f"""
.equ N_TICKS, {n_ticks}
.equ TICK_US, {tick_us}
.equ FRAME, {_FRAME}

.text
main:
    la   t0, trap_handler
    csrw mtvec, t0

    # build task B's initial (fake) context frame on its stack
    la   t0, taskb_stack_top
    addi t0, t0, -FRAME
    la   t1, task_b
    sw   t1, 0(t0)              # mepc = task_b entry
    la   t1, tcb
    sw   t0, 4(t1)              # tcb[1] = frame address

    # arm the first tick
    call arm_timer

    # enable the timer interrupt and enter task A on its own stack
    li   t0, 1 << 7             # mie.MTIE
    csrw mie, t0
    la   sp, taska_stack_top
    csrwi mstatus, 8            # mstatus.MIE
    j    task_a

# ------------------------------------------------------------------ #
# arm_timer: mtimecmp = mtime + TICK_US
# ------------------------------------------------------------------ #
arm_timer:
    li   t0, MTIME_LO
    lw   t1, 0(t0)
    li   t2, TICK_US
    add  t1, t1, t2
    li   t0, MTIMECMP_HI
    sw   zero, 0(t0)
    li   t0, MTIMECMP_LO
    sw   t1, 0(t0)
    ret

# ------------------------------------------------------------------ #
# tasks (never return)
# ------------------------------------------------------------------ #
task_a:
    la   s0, counter_a
    la   s1, lcg_state
task_a_loop:
    lw   t0, 0(s0)
    addi t0, t0, 1
    sw   t0, 0(s0)
    lw   t1, 0(s1)              # stir an LCG for a while
    li   t2, 1103515245
    mul  t1, t1, t2
    li   t2, 12345
    add  t1, t1, t2
    sw   t1, 0(s1)
    j    task_a_loop

task_b:
    la   s0, counter_b
    la   s1, xor_state
task_b_loop:
    lw   t0, 0(s0)
    addi t0, t0, 1
    sw   t0, 0(s0)
    lw   t1, 0(s1)
    slli t2, t0, 3
    xor  t1, t1, t2
    xor  t1, t1, t0
    sw   t1, 0(s1)
    j    task_b_loop

# ------------------------------------------------------------------ #
# timer tick: context switch (or exit after N_TICKS)
# ------------------------------------------------------------------ #
trap_handler:
    addi sp, sp, -FRAME
{_save_context()}
    csrr t0, mepc
    sw   t0, 0(sp)

    # park current task's sp
    la   t1, tcb
    la   t2, current
    lw   t3, 0(t2)
    slli t4, t3, 2
    add  t4, t4, t1
    sw   sp, 0(t4)

    # count ticks; exit when done
    la   t4, ticks
    lw   t5, 0(t4)
    addi t5, t5, 1
    sw   t5, 0(t4)
    li   t6, N_TICKS
    bge  t5, t6, rtos_done

    # switch to the other task
    xori t3, t3, 1
    sw   t3, 0(t2)
    slli t4, t3, 2
    add  t4, t4, t1
    lw   sp, 0(t4)

    call arm_timer

    lw   t0, 0(sp)
    csrw mepc, t0
{_restore_context()}
    addi sp, sp, FRAME
    mret

rtos_done:
    # report both counters and exit(0 if both ran)
    la   t0, counter_a
    lw   a0, 0(t0)
    mv   s2, a0
    call print_dec
    li   a0, ' '
    call putc
    la   t0, counter_b
    lw   a0, 0(t0)
    mv   s3, a0
    call print_dec
    li   a0, '\\n'
    call putc
    li   a0, 1
    beqz s2, rtos_exit          # task A never ran
    beqz s3, rtos_exit          # task B never ran
    li   a0, 0
rtos_exit:
    li   a7, SYS_EXIT
    ecall

.data
current: .word 0
.bss
ticks:     .space 4
counter_a: .space 4
counter_b: .space 4
lcg_state: .space 4
xor_state: .space 4
tcb:       .space 8
.align 4
taska_stack: .space 4096
taska_stack_top:
taskb_stack: .space 4096
taskb_stack_top:
""")


def build(n_ticks: int = 40, tick_us: int = 500) -> Program:
    return assemble(source(n_ticks, tick_us))
