"""Case studies: the Section VI-A immobilizer policy-development loop."""

from repro.casestudy.immobilizer import (
    EngineEcu,
    ScenarioResult,
    baseline_policy,
    brute_force_uniform_pin,
    capture_and_brute_force,
    format_report,
    per_byte_policy,
    run_case_study,
    run_scenario,
)

__all__ = [
    "EngineEcu",
    "ScenarioResult",
    "baseline_policy",
    "per_byte_policy",
    "run_scenario",
    "run_case_study",
    "capture_and_brute_force",
    "brute_force_uniform_pin",
    "format_report",
]
