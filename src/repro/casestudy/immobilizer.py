"""The Section VI-A case study: developing the immobilizer security policy.

This module reproduces the paper's policy-development narrative end to end:

1. **Baseline policy** (IFP-3): the PIN is classified ``(HC,HI)``, all I/O
   devices get ``(LC,LI)`` clearance, the AES engine gets ``(HC,HI)``
   clearance and declassifies ciphertext to ``(LC,LI)``.
2. Running the test-suite reveals the **UART debug dump leaks the PIN** —
   detected by the DIFT engine; the SW fix excludes the PIN region.
3. The three **attack scenarios** (direct/indirect PIN output, control
   flow on the PIN, overwriting the PIN with external data) are all
   detected.
4. The **entropy-reduction attack** (overwrite PIN bytes with PIN byte 0 —
   *trusted* data) is **not** detected by the baseline policy, and a
   CAN-side brute force then recovers the PIN with 256 trials/byte.
5. The **per-byte key policy** closes the hole: each PIN byte gets its own
   security class and the AES key register positions get matching
   per-byte clearances.

Public entry point: :func:`run_case_study` returns one
:class:`ScenarioResult` per row of the narrative above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.dift.engine import RECORD
from repro.policy import SecurityPolicy, builders
from repro.sw import immobilizer as immo_sw
from repro.vp.config import PlatformConfig
from repro.vp.peripherals.aes_core import encrypt_block
from repro.vp.peripherals.can import CanBus, CanFrame
from repro.vp.platform import Platform

PIN = immo_sw.DEFAULT_PIN
LC_LI = builders.LC_LI
HC_HI = builders.HC_HI


class EngineEcu:
    """Behavioural model of the engine-side ECU on the CAN bus.

    Sends 8-byte challenges and verifies the 16-byte responses against its
    own copy of the PIN (the paper: "The engine holds the same PIN as the
    immobilizer and checks the response by performing the same
    encryption").
    """

    def __init__(self, bus: CanBus, pin: bytes, n_challenges: int = 4,
                 seed: int = 0xC0FFEE):
        self.pin = pin
        self.n_challenges = n_challenges
        self._sent = 0
        self.ok = 0
        self.fail = 0
        self._rng_state = seed & 0xFFFFFFFF
        self._chal: Optional[bytes] = None
        self._resp = bytearray()
        self.responses: List[bytes] = []
        self.bus = bus
        bus.attach("engine", self.deliver)

    def _rand_bytes(self, n: int) -> bytes:
        out = bytearray()
        for _ in range(n):
            self._rng_state = (self._rng_state * 1103515245 + 12345) \
                & 0xFFFFFFFF
            out.append((self._rng_state >> 16) & 0xFF)
        return bytes(out)

    def start(self) -> None:
        """Send the first challenge (queued before simulation starts)."""
        self._send_challenge()

    def _send_challenge(self) -> None:
        if self._sent >= self.n_challenges:
            return
        self._chal = self._rand_bytes(8)
        self._resp = bytearray()
        self._sent += 1
        # external node: no tags; the receiving controller classifies the
        # bytes per its policy source ("can0.rx")
        self.bus.transmit(CanFrame(self._chal, b"", sender="engine"))

    def deliver(self, frame: CanFrame) -> None:
        """Collect response frames; verify when 16 bytes have arrived."""
        self._resp.extend(frame.data)
        if len(self._resp) < 16 or self._chal is None:
            return
        response = bytes(self._resp[:16])
        self.responses.append(response)
        expected = encrypt_block(self.pin, self._chal + bytes(8))
        if response == expected:
            self.ok += 1
        else:
            self.fail += 1
        self._chal = None
        self._send_challenge()

    # ------------------------------------------------------------------ #
    # checkpoint / restore (registered as a platform external)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        return {
            "sent": self._sent,
            "ok": self.ok,
            "fail": self.fail,
            "rng_state": self._rng_state,
            "chal": self._chal.hex() if self._chal is not None else None,
            "resp": bytes(self._resp).hex(),
            "responses": [r.hex() for r in self.responses],
        }

    def load_state_dict(self, state: dict) -> None:
        self._sent = state["sent"]
        self.ok = state["ok"]
        self.fail = state["fail"]
        self._rng_state = state["rng_state"]
        self._chal = (bytes.fromhex(state["chal"])
                      if state["chal"] is not None else None)
        self._resp = bytearray.fromhex(state["resp"])
        self.responses = [bytes.fromhex(r) for r in state["responses"]]


def brute_force_uniform_pin(challenge: bytes, response: bytes
                            ) -> Optional[int]:
    """The Section VI-A brute force: assume all PIN bytes are equal.

    After the entropy-reduction attack every PIN byte equals byte 0, so
    256 trial encryptions of the observed challenge recover it.
    Returns the byte value or None.
    """
    block = challenge + bytes(8)
    for guess in range(256):
        if encrypt_block(bytes([guess]) * 16, block) == response:
            return guess
    return None


# --------------------------------------------------------------------- #
# policies
# --------------------------------------------------------------------- #


def baseline_policy(program) -> SecurityPolicy:
    """IFP-3 policy: PIN=(HC,HI), all I/O cleared (LC,LI), AES declassifies."""
    policy = SecurityPolicy(builders.ifp3(), default_class=LC_LI,
                            name="immobilizer-baseline")
    pin_start = program.symbol("pin_key")
    policy.classify_region(pin_start, pin_start + 16, HC_HI)
    policy.classify_source("can0.rx", LC_LI)
    policy.classify_source("uart0.rx", LC_LI)
    policy.clear_sink("uart0.tx", LC_LI)
    policy.clear_sink("can0.tx", LC_LI)
    policy.clear_sink("aes0.key", HC_HI)          # key port: high integrity
    policy.clear_sink("aes0.in", "(HC,LI)")       # data port: any input
    policy.allow_declassification("aes0", LC_LI)
    policy.set_execution_clearance(fetch=LC_LI, branch=LC_LI,
                                   mem_addr=LC_LI)
    return policy


def per_byte_policy(program) -> SecurityPolicy:
    """The fixed policy: one confidentiality class per PIN byte."""
    lattice, byte_classes = builders.per_byte_key_ifp(16)
    policy = SecurityPolicy(lattice, default_class="(LC,LI)",
                            name="immobilizer-per-byte")
    pin_start = program.symbol("pin_key")
    for i, cls in enumerate(byte_classes):
        policy.classify_region(pin_start + i, pin_start + i + 1, cls)
        policy.clear_sink(f"aes0.key{i}", cls)
    policy.classify_source("can0.rx", "(LC,LI)")
    policy.classify_source("uart0.rx", "(LC,LI)")
    policy.clear_sink("uart0.tx", "(LC,LI)")
    policy.clear_sink("can0.tx", "(LC,LI)")
    policy.clear_sink("aes0.in", "(HCtop,LI)")    # data port: any input
    policy.allow_declassification("aes0", "(LC,LI)")
    policy.set_execution_clearance(fetch="(LC,LI)", branch="(LC,LI)",
                                   mem_addr="(LC,LI)")
    return policy


# --------------------------------------------------------------------- #
# scenario runner
# --------------------------------------------------------------------- #


@dataclass
class ScenarioResult:
    """Outcome of one case-study scenario."""

    name: str
    expected_detected: bool
    detected: bool
    violation: str = ""
    auth_ok: int = 0
    auth_fail: int = 0
    console: str = ""
    notes: str = ""

    @property
    def as_expected(self) -> bool:
        return self.detected == self.expected_detected


def run_scenario(name: str, commands: bytes, expected_detected: bool,
                 variant: str = "vulnerable", per_byte: bool = False,
                 n_challenges: int = 2,
                 max_instructions: int = 3_000_000,
                 obs=None, dift_mode: str = "full") -> ScenarioResult:
    """Run the immobilizer with the given UART command script.

    ``obs`` — optional :class:`~repro.obs.Observability`; a shared
    instance aggregates metrics/trace across scenarios.
    """
    program = immo_sw.build(variant=variant, n_challenges=n_challenges)
    policy = (per_byte_policy if per_byte else baseline_policy)(program)
    config = PlatformConfig(policy=policy, engine_mode=RECORD,
                            aes_declassify_to="(LC,LI)", obs=obs,
                            dift_mode=dift_mode)
    platform = Platform.from_config(config)
    platform.load(program)
    engine = EngineEcu(platform.can_bus, PIN, n_challenges=n_challenges)
    platform.register_external("engine_ecu", engine)
    platform.uart.feed(commands)
    engine.start()
    result = platform.run(max_instructions=max_instructions)
    violation = result.violations[0] if result.violations else None
    return ScenarioResult(
        name=name,
        expected_detected=expected_detected,
        detected=result.detected,
        violation=str(violation) if violation else "",
        auth_ok=engine.ok,
        auth_fail=engine.fail,
        console=platform.console(),
        notes=f"stop={result.reason}",
    )


def run_case_study(n_challenges: int = 2, obs=None,
                   dift_mode: str = "full") -> List[ScenarioResult]:
    """The full Section VI-A narrative, one scenario per row.

    ``obs`` metrics aggregate over all nine scenario platforms.
    """
    nc = n_challenges

    def scenario(name, commands, expected_detected, **kwargs):
        return run_scenario(name, commands, expected_detected, obs=obs,
                            dift_mode=dift_mode, **kwargs)

    results = [
        scenario("protocol-only (fixed SW, baseline policy)",
                 b"c", expected_detected=False, variant="fixed",
                 n_challenges=nc),
        scenario("debug dump (vulnerable SW)",
                 b"d", expected_detected=True, variant="vulnerable"),
        scenario("debug dump (fixed SW)",
                 b"dq", expected_detected=False, variant="fixed"),
        scenario("attack 1: direct PIN -> UART",
                 b"1", expected_detected=True, variant="fixed"),
        scenario("attack 1b: PIN -> buffer -> UART",
                 b"b", expected_detected=True, variant="fixed"),
        scenario("attack 2: branch on PIN",
                 b"2", expected_detected=True, variant="fixed"),
        scenario("attack 3: overwrite PIN with external data",
                 b"3" + bytes(16) + b"c", expected_detected=True,
                 variant="fixed", n_challenges=nc),
        scenario("attack 4: entropy reduction (baseline policy)",
                 b"4c", expected_detected=False, variant="fixed",
                 n_challenges=nc),
        scenario("attack 4: entropy reduction (per-byte policy)",
                 b"4c", expected_detected=True, variant="fixed",
                 per_byte=True, n_challenges=nc),
    ]
    return results


def capture_and_brute_force() -> Optional[int]:
    """Entropy-reduce the PIN, capture one exchange, brute-force byte 0."""
    program = immo_sw.build(variant="fixed", n_challenges=1)
    policy = baseline_policy(program)
    platform = Platform.from_config(PlatformConfig(
        policy=policy, engine_mode=RECORD, aes_declassify_to="(LC,LI)"))
    platform.load(program)

    captured = {}

    class Sniffer:
        """A passive bus node recording challenge + response frames."""

        def __init__(self, bus: CanBus):
            self.frames: List[CanFrame] = []
            bus.attach("sniffer", self.frames.append)

    sniffer = Sniffer(platform.can_bus)
    engine = EngineEcu(platform.can_bus, PIN, n_challenges=1)
    platform.uart.feed(b"4c")
    engine.start()
    platform.run(max_instructions=3_000_000)
    if len(sniffer.frames) < 3:
        return None
    challenge = sniffer.frames[0].data
    response = sniffer.frames[1].data + sniffer.frames[2].data
    return brute_force_uniform_pin(challenge, response)


def format_report(results: List[ScenarioResult]) -> str:
    """Human-readable case-study table."""
    lines = [
        f"{'scenario':<48} {'expected':>9} {'observed':>9}  ok",
        "-" * 78,
    ]
    for r in results:
        expected = "detect" if r.expected_detected else "allow"
        observed = "DETECTED" if r.detected else "allowed"
        lines.append(f"{r.name:<48} {expected:>9} {observed:>9}  "
                     f"{'yes' if r.as_expected else 'NO'}")
    return "\n".join(lines)
