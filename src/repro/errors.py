"""Exception hierarchy for the VP-DIFT library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
Security-policy violations detected at run-time derive from
:class:`SecurityViolation`; they are the errors the DIFT engine exists to
raise (paper Section V: "triggering a runtime error upon violation").
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class LatticeError(ReproError):
    """The IFP lattice definition is malformed (not a lattice, unknown class)."""


class PolicyError(ReproError):
    """A security policy is inconsistent or references unknown entities."""


class AssemblerError(ReproError):
    """The RISC-V assembler rejected its input."""

    def __init__(self, message: str, line: int = 0, source: str = ""):
        self.line = line
        self.source = source
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)


class SimulationError(ReproError):
    """The SystemC-style simulation kernel hit an unrecoverable condition."""


class BusError(SimulationError):
    """A TLM transaction could not be routed or was rejected by the target."""

    def __init__(self, message: str, address: int = -1):
        self.address = address
        super().__init__(message)


class GuestFault(SimulationError):
    """The guest program performed an illegal action (bad fetch, bad opcode)."""

    def __init__(self, message: str, pc: int = -1):
        self.pc = pc
        super().__init__(message)


class SecurityViolation(ReproError):
    """Base class for run-time security-policy violations.

    Attributes mirror what an engineer developing a policy needs for triage:
    the flowing tag, the required clearance tag, and free-form context
    (which unit raised the check, at which PC / address).
    """

    def __init__(self, tag: int, required: int, context: str = ""):
        self.tag = tag
        self.required = required
        self.context = context
        super().__init__(
            f"information flow violation: tag {tag} does not satisfy "
            f"clearance {required}" + (f" [{context}]" if context else "")
        )


class ClearanceException(SecurityViolation):
    """Output/peripheral clearance check failed (paper Fig. 3, Line 28)."""


class ExecutionClearanceError(SecurityViolation):
    """Execution clearance check failed (branch / fetch / memory address).

    ``unit`` identifies the CPU execution unit: ``"fetch"``, ``"branch"``
    or ``"mem-addr"`` (paper Section V-B2).
    """

    def __init__(self, tag: int, required: int, unit: str, pc: int = -1):
        self.unit = unit
        self.pc = pc
        ctx = f"unit={unit}"
        if pc >= 0:
            ctx += f" pc={pc:#010x}"
        super().__init__(tag, required, ctx)


class DeclassificationError(ReproError):
    """An untrusted component attempted to declassify data."""
