"""The Table II benchmark registry.

Seven workloads matching the paper's set: qsort, dhrystone, primes,
sha512, simple-sensor, freertos-tasks (rtos), immo-fixed.  Each workload
knows how to build its guest program at a given *scale* and how to set up
the platform (peripheral parameters, CAN environment).

Scales: ``"quick"`` for test-suite runs (hundreds of thousands of
instructions total) and ``"full"`` for the Table II reproduction
(millions of instructions per benchmark — a few minutes of host time on a
pure-Python ISS; the paper's binaries ran billions on a C++ VP, we scale
the iteration counts and keep the workload character).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.asm.assembler import Program
from repro.dift.engine import RAISE
from repro.policy import SecurityPolicy, builders
from repro.sw import (
    dhrystone,
    immobilizer,
    primes,
    qsort,
    rtos,
    sensor_app,
    sha512,
)
from repro.sysc.time import SimTime
from repro.vp.config import PlatformConfig
from repro.vp.platform import Platform


def benchmark_policy() -> SecurityPolicy:
    """Representative security policy for the VP+ measurements.

    IFP-3 with all three execution-clearance checks enabled and
    input/output devices cleared — the full per-instruction DIFT cost
    without (expected) violations.

    Memory defaults to the lattice *bottom* class ``(LC, HI)``: untouched
    RAM carries no information, and classifying sources/sinks at
    ``(LC, LI)`` keeps every flow of the compute benchmarks legal exactly
    as before (nothing ever flows *into* plain RAM's class — only out of
    sources and into cleared sinks).  Starting at bottom also lets
    demand-mode DIFT begin in the clean state.
    """
    policy = SecurityPolicy(builders.ifp3(), default_class=builders.LC_HI,
                            name="benchmark")
    policy.classify_source("sensor0", builders.LC_LI)
    policy.classify_source("uart0.rx", builders.LC_LI)
    policy.classify_source("can0.rx", builders.LC_LI)
    policy.clear_sink("uart0.tx", builders.LC_LI)
    policy.clear_sink("can0.tx", builders.LC_LI)
    policy.set_execution_clearance(fetch=builders.LC_LI,
                                   branch=builders.LC_LI,
                                   mem_addr=builders.LC_LI)
    return policy


def _noop_prepare(platform: "Platform", program: Program, scale: str) -> None:
    return None


def _noop_externals(platform: "Platform", scale: str) -> None:
    return None


@dataclass
class Workload:
    """One benchmark: program builder + platform configuration.

    ``externals`` constructs non-kernel environment models (e.g. the
    engine ECU on the CAN bus) and registers them on the platform;
    ``prepare`` injects the initial stimulus (UART feeds, first
    challenge).  They are separate hooks because snapshot restore must
    re-run ``externals`` (the objects live outside the snapshot's module
    tree and are re-created, then loaded from the ``externals`` section)
    but must *not* re-run ``prepare`` — the stimulus already happened and
    its effects are part of the checkpointed state.
    """

    name: str
    build: Callable[[str], Program]            # scale -> program
    platform_kwargs: Callable[[str], dict]
    policy: Callable[[Program], Optional[SecurityPolicy]]
    prepare: Callable[[Platform, Program, str], None]
    externals: Callable[[Platform, str], None] = _noop_externals
    #: optional success predicate ``(platform, result, dift) -> bool``;
    #: when set, the campaign worker consults it instead of its default
    #: "budget or exit 0" notion.  Generated attack workloads use it:
    #: a *detected* attack stops early with reason ``security``, which
    #: is the expected outcome, not a failure.
    ok_check: Optional[Callable[[Platform, object, bool], bool]] = None

    def make_config(self, scale: str, dift: bool, obs=None,
                    dift_mode: str = "full",
                    seed: Optional[int] = None,
                    engine_mode: str = RAISE,
                    jit=False) -> "tuple[Program, PlatformConfig]":
        """Build the guest program and its :class:`PlatformConfig`."""
        program = self.build(scale)
        policy = self.policy(program) if dift else None
        kwargs = self.platform_kwargs(scale)
        if seed is not None:
            kwargs.setdefault("seed", seed)
        config = PlatformConfig(policy=policy, engine_mode=engine_mode,
                                obs=obs, dift_mode=dift_mode, jit=jit,
                                **kwargs)
        return program, config

    def make_platform(self, scale: str, dift: bool, obs=None,
                      dift_mode: str = "full",
                      seed: Optional[int] = None,
                      engine_mode: str = RAISE,
                      jit=False) -> Platform:
        program, config = self.make_config(
            scale, dift, obs=obs, dift_mode=dift_mode, seed=seed,
            engine_mode=engine_mode, jit=jit)
        platform = Platform.from_config(config)
        platform.load(program)
        self.externals(platform, scale)
        self.prepare(platform, program, scale)
        return platform

    def restore_externals(self, scale: str):
        """``externals=`` callback for :meth:`Platform.restore`."""
        return lambda platform: self.externals(platform, scale)


def _default_policy(program: Program) -> SecurityPolicy:
    return benchmark_policy()


def _simple(name, build_quick, build_full, **platform_kwargs) -> Workload:
    def build(scale: str) -> Program:
        return build_quick() if scale == "quick" else build_full()

    return Workload(
        name=name,
        build=build,
        platform_kwargs=lambda scale: dict(platform_kwargs),
        policy=_default_policy,
        prepare=_noop_prepare,
    )


def _immo_policy(program: Program) -> SecurityPolicy:
    from repro.casestudy.immobilizer import baseline_policy
    return baseline_policy(program)


def _immo_externals(platform: Platform, scale: str) -> None:
    from repro.casestudy.immobilizer import PIN, EngineEcu
    n = 40 if scale == "quick" else 400
    engine = EngineEcu(platform.can_bus, PIN, n_challenges=n)
    platform.register_external("engine_ecu", engine)


def _immo_prepare(platform: Platform, program: Program, scale: str) -> None:
    platform.uart.feed(b"c")
    platform.external("engine_ecu").start()


def _immo_platform_kwargs(scale: str) -> dict:
    return {"aes_declassify_to": builders.LC_LI}


def _make_immo() -> Workload:
    def build(scale: str) -> Program:
        n = 40 if scale == "quick" else 400
        return immobilizer.build(variant="fixed", n_challenges=n)

    return Workload(
        name="immo-fixed",
        build=build,
        platform_kwargs=_immo_platform_kwargs,
        policy=_immo_policy,
        prepare=_immo_prepare,
        externals=_immo_externals,
    )


def _make_sensor() -> Workload:
    def build(scale: str) -> Program:
        return sensor_app.build(n_frames=50 if scale == "quick" else 1000)

    return Workload(
        name="simple-sensor",
        build=build,
        platform_kwargs=lambda scale: {"sensor_period": SimTime.us(100)},
        policy=_default_policy,
        prepare=_noop_prepare,
    )


WORKLOADS: Dict[str, Workload] = {
    "qsort": _simple(
        "qsort",
        lambda: qsort.build(n=1200),
        lambda: qsort.build(n=16000)),
    "dhrystone": _simple(
        "dhrystone",
        lambda: dhrystone.build(iterations=400),
        lambda: dhrystone.build(iterations=5000)),
    "primes": _simple(
        "primes",
        lambda: primes.build(limit=3000),
        lambda: primes.build(limit=20000)),
    "sha512": _simple(
        "sha512",
        lambda: sha512.build(n=512),
        lambda: sha512.build(n=12 * 1024)),
    "simple-sensor": _make_sensor(),
    "freertos-tasks": _simple(
        "freertos-tasks",
        lambda: rtos.build(n_ticks=20, tick_us=100),
        lambda: rtos.build(n_ticks=200, tick_us=100)),
    "immo-fixed": _make_immo(),
}

#: paper order for Table II
TABLE2_ORDER = ["qsort", "dhrystone", "primes", "sha512", "simple-sensor",
                "freertos-tasks", "immo-fixed"]


class UnknownWorkloadError(LookupError):
    """Raised when a workload name is not in the registry."""


def workload_names() -> List[str]:
    """Registry names in paper (Table II) order."""
    return list(TABLE2_ORDER)


def get_workload(name: str) -> Workload:
    """Registry lookup by name, with an error listing what exists.

    Campaign matrices and CLI flags reference workloads by name; a typo
    should name the valid choices, not die with a bare ``KeyError``.
    """
    if name.startswith("gen/"):
        # dynamic generated-attack workload (repro.gen): resolved on
        # demand rather than registered — the family is unbounded
        from repro.gen.campaign import gen_workload
        try:
            return gen_workload(name)
        except ValueError as exc:
            raise UnknownWorkloadError(str(exc)) from None
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(workload_names())
        raise UnknownWorkloadError(
            f"unknown workload {name!r}; available: {known} "
            f"(or a dynamic 'gen/<case-seed-hex>/<attack|benign>' "
            f"name)") from None
