"""Benchmark execution: run a workload on VP and VP+ and compare.

This is the measurement core behind Table II: for each workload it runs
the identical guest binary on the plain platform (VP) and the
DIFT-instrumented platform (VP+), recording executed instructions, host
wall-clock time, MIPS and the VP+/VP overhead factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.bench.workloads import Workload, get_workload
from repro.vp.platform import RunResult


@dataclass
class Measurement:
    """One (workload, platform-mode) run."""

    workload: str
    mode: str                 # "VP", "VP+" or "VP+d" (demand DIFT)
    instructions: int
    loc_asm: int
    host_seconds: float
    mips: float
    reason: str
    exit_code: int
    violations: int


@dataclass
class Comparison:
    """VP vs VP+ for one workload (one Table II row)."""

    workload: str
    instructions: int
    loc_asm: int
    vp_seconds: float
    vp_plus_seconds: float
    vp_mips: float
    vp_plus_mips: float

    @property
    def overhead(self) -> float:
        if self.vp_seconds <= 0:
            return float("nan")
        return self.vp_plus_seconds / self.vp_seconds


def run_workload(workload: Workload, scale: str, dift: bool,
                 max_instructions: Optional[int] = None,
                 obs=None, dift_mode: str = "full") -> Measurement:
    """Build, load and run one workload once.

    ``obs`` — optional :class:`~repro.obs.Observability`; its metrics
    then cover this run (shared instances aggregate across runs).
    ``dift_mode`` — ``"full"`` (classic VP+) or ``"demand"`` (VP+d).
    """
    platform = workload.make_platform(scale, dift, obs=obs,
                                      dift_mode=dift_mode)
    if dift:
        mode = "VP+d" if dift_mode == "demand" else "VP+"
    else:
        mode = "VP"
    result: RunResult = platform.run(max_instructions=max_instructions)
    if result.reason not in ("halt", "budget"):
        raise RuntimeError(
            f"workload {workload.name!r} ({mode}) ended "
            f"abnormally: {result.reason} "
            f"(violations={len(result.violations)})")
    if result.reason == "halt" and result.exit_code != 0:
        raise RuntimeError(
            f"workload {workload.name!r} failed self-check: "
            f"exit={result.exit_code}")
    program = platform.program
    return Measurement(
        workload=workload.name,
        mode=mode,
        instructions=result.instructions,
        loc_asm=program.n_instructions if program else 0,
        host_seconds=result.host_seconds,
        mips=result.mips,
        reason=result.reason,
        exit_code=result.exit_code,
        violations=len(result.violations),
    )


def compare_workload(name: str, scale: str = "quick",
                     max_instructions: Optional[int] = None) -> Comparison:
    """Run one workload on VP and on VP+ and build the comparison row."""
    workload = get_workload(name)
    vp = run_workload(workload, scale, dift=False,
                      max_instructions=max_instructions)
    vp_plus = run_workload(workload, scale, dift=True,
                           max_instructions=max_instructions)
    if vp_plus.violations:
        raise RuntimeError(
            f"benchmark {name!r} unexpectedly violated the policy "
            f"({vp_plus.violations} violations)")
    return Comparison(
        workload=name,
        instructions=vp.instructions,
        loc_asm=vp.loc_asm,
        vp_seconds=vp.host_seconds,
        vp_plus_seconds=vp_plus.host_seconds,
        vp_mips=vp.mips,
        vp_plus_mips=vp_plus.mips,
    )


def compare_all(names: List[str], scale: str = "quick") -> List[Comparison]:
    return [compare_workload(name, scale) for name in names]
