"""Table II reproduction: DIFT performance overhead, VP vs VP+.

Runs the seven benchmarks on both platforms and prints the paper's table:
benchmark, executed instructions, static assembler LoC, simulation (host)
time for VP and VP+, MIPS for both, and the overhead factor.

Absolute MIPS differ from the paper by construction (pure-Python ISS vs
C++), but the comparison is internally honest: identical guest binaries,
identical platforms, the only delta being the DIFT instrumentation — so
the overhead column is the reproducible quantity.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bench.runner import Comparison, compare_workload
from repro.bench.workloads import TABLE2_ORDER


def run_table2(scale: str = "quick",
               workloads: Optional[List[str]] = None) -> List[Comparison]:
    """Measure every Table II row (paper order)."""
    names = workloads if workloads is not None else TABLE2_ORDER
    return [compare_workload(name, scale) for name in names]


def _avg(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def format_table(rows: List[Comparison]) -> str:
    """Render in the paper's Table II layout (plus averages row)."""
    header = (
        f"{'Benchmark':<16} {'#instr. exec.':>14} {'LoC ASM':>8} "
        f"{'VP[s]':>8} {'VP+[s]':>8} {'VP MIPS':>8} {'VP+ MIPS':>9} "
        f"{'Ov':>6}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.workload:<16} {row.instructions:>14,} {row.loc_asm:>8,} "
            f"{row.vp_seconds:>8.2f} {row.vp_plus_seconds:>8.2f} "
            f"{row.vp_mips:>8.2f} {row.vp_plus_mips:>9.2f} "
            f"{row.overhead:>5.1f}x")
    lines.append("-" * len(header))
    lines.append(
        f"{'- average -':<16} "
        f"{int(_avg([r.instructions for r in rows])):>14,} "
        f"{int(_avg([r.loc_asm for r in rows])):>8,} "
        f"{_avg([r.vp_seconds for r in rows]):>8.2f} "
        f"{_avg([r.vp_plus_seconds for r in rows]):>8.2f} "
        f"{_avg([r.vp_mips for r in rows]):>8.2f} "
        f"{_avg([r.vp_plus_mips for r in rows]):>9.2f} "
        f"{_avg([r.overhead for r in rows]):>5.1f}x")
    return "\n".join(lines)


#: the paper's measured values, for side-by-side comparison in reports
PAPER_TABLE2 = {
    "qsort": dict(instr=430_719_182, loc=17_052, vp=11.6, vp_plus=18.3,
                  vp_mips=37.1, vp_plus_mips=23.5, ov=1.6),
    "dhrystone": dict(instr=1_370_010_911, loc=17_158, vp=39.1,
                      vp_plus=60.1, vp_mips=35.1, vp_plus_mips=21.1, ov=1.6),
    "primes": dict(instr=7_114_988_890, loc=16_793, vp=186.3, vp_plus=390.0,
                   vp_mips=38.1, vp_plus_mips=18.2, ov=2.1),
    "sha512": dict(instr=7_578_047_617, loc=17_862, vp=251.6, vp_plus=441.5,
                   vp_mips=30.1, vp_plus_mips=17.1, ov=1.8),
    "simple-sensor": dict(instr=1_393_000_060, loc=2_970, vp=67.6,
                          vp_plus=83.0, vp_mips=20.6, vp_plus_mips=16.7,
                          ov=1.2),
    "freertos-tasks": dict(instr=5_937_843_750, loc=11_146, vp=141.6,
                           vp_plus=411.5, vp_mips=41.9, vp_plus_mips=14.4,
                           ov=2.9),
    "immo-fixed": dict(instr=931_083_025, loc=17_188, vp=26.1, vp_plus=46.9,
                       vp_mips=35.6, vp_plus_mips=19.8, ov=1.8),
}


def format_against_paper(rows: List[Comparison]) -> str:
    """Side-by-side: measured overhead vs the paper's overhead."""
    lines = [
        f"{'Benchmark':<16} {'paper Ov':>9} {'measured Ov':>12}",
        "-" * 40,
    ]
    for row in rows:
        paper = PAPER_TABLE2.get(row.workload)
        paper_ov = f"{paper['ov']:.1f}x" if paper else "?"
        lines.append(f"{row.workload:<16} {paper_ov:>9} "
                     f"{row.overhead:>11.1f}x")
    paper_avg = _avg([p["ov"] for p in PAPER_TABLE2.values()])
    ours_avg = _avg([r.overhead for r in rows])
    lines.append("-" * 40)
    lines.append(f"{'- average -':<16} {paper_avg:>8.1f}x {ours_avg:>11.1f}x")
    return "\n".join(lines)
