"""One-shot reproduction report: every experiment, one document.

:func:`generate` runs Table I, Table II (at a chosen scale), the
Section VI-A case study, the LoC-delta measurement and the verification
harnesses, and returns both a machine-readable dict and a rendered
markdown report — the artifact a reviewer would ask for.

CLI: ``python -m repro report [--scale full] [-o report.md]``.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.bench import locdelta, table1
from repro.bench.table2 import (
    PAPER_TABLE2,
    format_against_paper,
    format_table,
    run_table2,
)
from repro.casestudy import immobilizer as casestudy
from repro.verify.differential import sweep
from repro.verify.policy_fuzz import fuzz_immobilizer, summarize


def generate(scale: str = "quick", differential_seeds: int = 5,
             fuzz_runs: int = 10) -> Dict[str, Any]:
    """Run everything; returns a results dict (see keys below)."""
    results: Dict[str, Any] = {"scale": scale}

    # Table I
    attacks = table1.run_suite()
    results["table1"] = {
        "rows": [
            {"number": r.number, "location": r.location, "target": r.target,
             "technique": r.technique, "result": r.result}
            for r in attacks
        ],
        "detected": sum(1 for r in attacks if r.result == "Detected"),
        "na": sum(1 for r in attacks if r.result == "N/A"),
        "missed": sum(1 for r in attacks if r.result == "MISSED"),
        "rendered": table1.format_table(attacks),
    }

    # Table II
    rows = run_table2(scale=scale)
    results["table2"] = {
        "rows": [
            {"workload": row.workload, "instructions": row.instructions,
             "loc_asm": row.loc_asm, "vp_seconds": row.vp_seconds,
             "vp_plus_seconds": row.vp_plus_seconds,
             "overhead": row.overhead,
             "paper_overhead": PAPER_TABLE2[row.workload]["ov"]}
            for row in rows
        ],
        "average_overhead": sum(r.overhead for r in rows) / len(rows),
        "rendered": format_table(rows) + "\n\n" + format_against_paper(rows),
    }

    # case study
    scenarios = casestudy.run_case_study()
    recovered = casestudy.capture_and_brute_force()
    results["casestudy"] = {
        "scenarios": [
            {"name": s.name, "expected": s.expected_detected,
             "detected": s.detected, "as_expected": s.as_expected}
            for s in scenarios
        ],
        "all_as_expected": all(s.as_expected for s in scenarios),
        "brute_forced_pin_byte": recovered,
        "pin_byte_actual": casestudy.PIN[0],
        "rendered": casestudy.format_report(scenarios),
    }

    # LoC delta
    loc = locdelta.analyze()
    results["loc_delta"] = {
        "dift_fraction": loc.dift_fraction,
        "conversion_fraction": loc.conversion_fraction,
        "rendered": loc.summary(),
    }

    # verification harnesses
    diffs = sweep(range(differential_seeds), n_instructions=120)
    fuzz = fuzz_immobilizer(n_runs=fuzz_runs)
    results["verification"] = {
        "differential_equivalent": sum(1 for d in diffs if d.equivalent),
        "differential_total": len(diffs),
        "fuzz_sound": sum(1 for f in fuzz if f.sound),
        "fuzz_total": len(fuzz),
        "fuzz_rendered": summarize(fuzz),
    }
    return results


def render_markdown(results: Dict[str, Any]) -> str:
    """Render the results dict as a standalone markdown report."""
    t1 = results["table1"]
    t2 = results["table2"]
    cs = results["casestudy"]
    loc = results["loc_delta"]
    ver = results["verification"]

    lines: List[str] = [
        "# VP-DIFT reproduction report",
        "",
        f"Workload scale: `{results['scale']}`",
        "",
        "## Table I — code-injection detection",
        "",
        "```",
        t1["rendered"],
        "```",
        "",
        f"**{t1['detected']} detected / {t1['na']} N/A / "
        f"{t1['missed']} missed** "
        "(paper: 10 / 8 / 0).",
        "",
        "## Table II — DIFT overhead",
        "",
        "```",
        t2["rendered"],
        "```",
        "",
        f"Average overhead **{t2['average_overhead']:.1f}x** "
        "(paper: 2.0x).",
        "",
        "## Section VI-A — immobilizer case study",
        "",
        "```",
        cs["rendered"],
        "```",
        "",
        f"Brute force through the baseline-policy gap recovered PIN byte "
        f"`{cs['brute_forced_pin_byte']:#04x}` "
        f"(actual `{cs['pin_byte_actual']:#04x}`).",
        "",
        "## Section V-B1 — integration cost",
        "",
        f"> {loc['rendered']}",
        "",
        "## Verification harnesses",
        "",
        f"* differential VP vs VP+: "
        f"{ver['differential_equivalent']}/{ver['differential_total']} "
        "random programs architecturally equivalent",
        f"* policy fuzzing: {ver['fuzz_sound']}/{ver['fuzz_total']} "
        "random command scripts handled soundly",
        "",
    ]
    return "\n".join(lines)
