"""DIFT integration cost in lines of code (paper Section V-B1).

The paper reports that integrating the DIFT engine touched **6.81 %** of
the original VP's lines, of which **58.7 %** were plain type conversions.
This module computes the analogous measurement for this repository: it
scans the VP packages (``repro.vp`` + ``repro.sysc``) and classifies each
code line as DIFT-related or not, using the taint/tag vocabulary of the
engine as the marker (the Python analogue of grepping a C++ VP for
``Taint<`` / tag plumbing).

The absolute percentage differs from the paper (Python needs explicit
parallel tag arrays where C++ hides them behind operator overloading),
but the measurement machinery — and the claim that the touched fraction
is small — carries over.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List

#: markers identifying a DIFT-related line of VP code
_DIFT_MARKERS = re.compile(
    r"tag|taint|dift|lub|clearance|classif|declassif|violation|flow\[",
    re.IGNORECASE)

#: markers identifying a pure type/plumbing conversion within those
_CONVERSION_MARKERS = re.compile(
    r"tags\s*[:=]|tags\s*\)|bytearray|Optional\[|bytes\(\[", re.IGNORECASE)


@dataclass
class FileDelta:
    path: str
    code_lines: int
    dift_lines: int
    conversion_lines: int


@dataclass
class LocReport:
    files: List[FileDelta]

    @property
    def total_lines(self) -> int:
        return sum(f.code_lines for f in self.files)

    @property
    def dift_lines(self) -> int:
        return sum(f.dift_lines for f in self.files)

    @property
    def conversion_lines(self) -> int:
        return sum(f.conversion_lines for f in self.files)

    @property
    def dift_fraction(self) -> float:
        return self.dift_lines / self.total_lines if self.total_lines else 0.0

    @property
    def conversion_fraction(self) -> float:
        """Fraction of DIFT lines that are mere type conversions."""
        return (self.conversion_lines / self.dift_lines
                if self.dift_lines else 0.0)

    def summary(self) -> str:
        return (
            f"VP code lines: {self.total_lines}; DIFT-related: "
            f"{self.dift_lines} ({100 * self.dift_fraction:.2f}%); "
            f"type-conversion share of those: "
            f"{100 * self.conversion_fraction:.1f}%  "
            f"[paper: 6.81% touched, 58.7% conversions]")


def _is_code(line: str) -> bool:
    stripped = line.strip()
    return bool(stripped) and not stripped.startswith("#")


def analyze_file(path: Path) -> FileDelta:
    code = dift = conv = 0
    in_docstring = False
    for line in path.read_text().splitlines():
        stripped = line.strip()
        if stripped.startswith(('"""', "'''")):
            # toggle (handles the one-line docstring case too)
            if not (len(stripped) > 3 and stripped.endswith(('"""', "'''"))):
                in_docstring = not in_docstring
            continue
        if in_docstring or not _is_code(line):
            continue
        code += 1
        if _DIFT_MARKERS.search(line):
            dift += 1
            if _CONVERSION_MARKERS.search(line):
                conv += 1
    return FileDelta(str(path), code, dift, conv)


def analyze(packages: Iterable[str] = ("vp", "sysc")) -> LocReport:
    """Analyze the VP substrate packages of this repository."""
    root = Path(__file__).resolve().parent.parent
    files: List[FileDelta] = []
    for package in packages:
        for path in sorted((root / package).rglob("*.py")):
            files.append(analyze_file(path))
    return LocReport(files)


def per_file_breakdown(report: LocReport) -> Dict[str, float]:
    """File -> DIFT-line fraction, for the most-touched-module view."""
    return {
        Path(f.path).name: (f.dift_lines / f.code_lines if f.code_lines
                            else 0.0)
        for f in report.files
    }
