"""Dynamic instruction-mix profiling of the guest benchmarks.

DESIGN.md claims each substitute benchmark preserves the *character* of
the paper's original workload (qsort: compare/branch/call heavy; primes:
division heavy; sha512: ALU+memory heavy; ...).  This module measures
that claim: it single-steps a workload, classifies every retired
instruction, and reports the category distribution.

Categories: ``alu`` (integer op-imm/op incl. lui/auipc), ``muldiv``
(M extension), ``load``, ``store``, ``branch`` (conditional), ``jump``
(jal/jalr), ``system`` (csr/ecall/ebreak/mret/wfi/fence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.vp import cpu as cpu_mod
from repro.vp import decode as D
from repro.vp.platform import Platform

CATEGORIES = ["alu", "muldiv", "load", "store", "branch", "jump", "system"]

_CATEGORY_OF = {}
for _op in range(D.N_OPS):
    if D.LB <= _op <= D.LHU:
        _CATEGORY_OF[_op] = "load"
    elif D.SB <= _op <= D.SW:
        _CATEGORY_OF[_op] = "store"
    elif D.BEQ <= _op <= D.BGEU:
        _CATEGORY_OF[_op] = "branch"
    elif _op in (D.JAL, D.JALR):
        _CATEGORY_OF[_op] = "jump"
    elif D.MUL <= _op <= D.REMU:
        _CATEGORY_OF[_op] = "muldiv"
    elif D.ADDI <= _op <= D.AND or _op in (D.LUI, D.AUIPC):
        _CATEGORY_OF[_op] = "alu"
    else:
        _CATEGORY_OF[_op] = "system"


@dataclass
class InstructionMix:
    """Category histogram for one workload."""

    workload: str
    counts: Dict[str, int] = field(
        default_factory=lambda: {cat: 0 for cat in CATEGORIES})
    total: int = 0

    def fraction(self, category: str) -> float:
        return self.counts[category] / self.total if self.total else 0.0

    def dominant(self) -> str:
        return max(self.counts, key=self.counts.get)


def profile_platform(platform: Platform, name: str,
                     max_instructions: int = 150_000) -> InstructionMix:
    """Single-step a loaded platform, tallying instruction categories.

    Ticks the kernel after every step so interrupt-driven workloads
    (sensor, RTOS) progress; accordingly this is slow — profile at small
    scales.
    """
    platform.detach_cpu_process()
    cpu = platform.cpu
    mix = InstructionMix(name)
    decode = D.decode
    cache: Dict[int, str] = {}
    # everything below runs once per guest instruction: bind the loop
    # invariants to locals and fetch the opcode word straight from the
    # DMI bytearray instead of round-tripping through read_word()
    counts = mix.counts
    category_of = _CATEGORY_OF
    ram = cpu.ram
    ram_base = cpu.ram_base
    ram_hi = cpu.ram_end - 4
    run = cpu.run
    advance = platform.kernel.advance_ps
    step_ps = cpu.clock_period.ps
    wfi_ps = step_ps * 100_000
    frombytes = int.from_bytes
    quantum = cpu_mod.QUANTUM
    stops = (cpu_mod.HALT, cpu_mod.EBREAK, cpu_mod.FAULT, cpu_mod.SECURITY)
    wfi = cpu_mod.WFI
    total = 0
    for __ in range(max_instructions):
        pc = cpu.pc
        if not (ram_base <= pc <= ram_hi):
            break
        off = pc - ram_base
        word = frombytes(ram[off:off + 4], "little")
        cat = cache.get(word)
        if cat is None:
            cat = category_of[decode(word)[0]]
            cache[word] = cat
        executed, reason = run(1)
        if not executed:
            break
        counts[cat] += 1
        total += 1
        advance(step_ps)
        if reason == quantum:
            continue
        if reason in stops:
            break
        if reason == wfi:
            # fast-forward to the next event so wfi workloads progress
            advance(wfi_ps)
    mix.total = total
    return mix


def profile_workload(name: str, max_instructions: int = 150_000,
                     obs=None, jit=False) -> InstructionMix:
    """Profile one registry workload (quick scale, plain VP).

    ``jit`` builds the platform with the trace compiler attached — the
    single-step driver never gives it a full block to run, but the
    profiler channel still exercises the jit-on code paths, which is
    what the CI smoke leg is after.
    """
    from repro.bench.workloads import WORKLOADS

    platform = WORKLOADS[name].make_platform("quick", dift=False, obs=obs,
                                             jit=jit)
    return profile_platform(platform, name, max_instructions)


def format_mix_table(mixes: List[InstructionMix]) -> str:
    """Render the distribution table (percent per category)."""
    header = f"{'workload':<16} {'total':>9} " + " ".join(
        f"{cat:>7}" for cat in CATEGORIES)
    lines = [header, "-" * len(header)]
    for mix in mixes:
        cells = " ".join(f"{100 * mix.fraction(cat):6.1f}%"
                         for cat in CATEGORIES)
        lines.append(f"{mix.workload:<16} {mix.total:>9,} {cells}")
    return "\n".join(lines)
