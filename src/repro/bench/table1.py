"""Table I reproduction: the Wilander–Kamkar code-injection results.

For every attack form: run the attack **unprotected** (plain VP) to prove
the exploit actually works (the payload executes and prints ``X``), then
run it on **VP+** with the code-injection policy of Section VI-B — IFP-2,
program image High-Integrity, fetch clearance HI, serial input (and the
stand-in payload function) Low-Integrity — and record whether the DIFT
engine detects it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.asm.assembler import Program
from repro.dift.engine import RECORD
from repro.policy import SecurityPolicy, builders
from repro.sw import wk_suite
from repro.vp.config import PlatformConfig
from repro.vp.platform import Platform

HI = builders.HI
LI = builders.LI


def code_injection_policy(program: Program) -> SecurityPolicy:
    """Section VI-B policy: IFP-2, program memory HI, fetch clearance HI.

    The attack payload function (``attack_code``) is classified LI — the
    paper: "Because the test-suite features a well-defined function as a
    representation for malicious code, we specifically classify this
    function as LI before conducting the tests."
    """
    policy = SecurityPolicy(builders.ifp2(), default_class=LI,
                            name="code-injection")
    text_start, text_end = program.sections[".text"]
    policy.classify_region(text_start, text_end, HI)
    atk_start = program.symbol("attack_code")
    atk_end = program.symbol("attack_code_end")
    policy.classify_region(atk_start, atk_end, LI)
    policy.classify_source("uart0.rx", LI)
    policy.set_execution_clearance(fetch=HI)
    return policy


@dataclass
class AttackResult:
    """One Table I row."""

    number: int
    location: str
    target: str
    technique: str
    applicable: bool
    exploit_works: Optional[bool]   # payload ran on the unprotected VP
    detected: Optional[bool]        # DIFT flagged it on VP+
    detail: str = ""

    @property
    def result(self) -> str:
        """The paper's Result column value."""
        if not self.applicable:
            return "N/A"
        return "Detected" if self.detected else "MISSED"


_BUDGET = 200_000


def run_attack(number: int) -> AttackResult:
    """Run one attack on the plain VP and on VP+."""
    spec = wk_suite.spec(number)
    if not spec.applicable:
        return AttackResult(spec.number, spec.location, spec.target,
                            spec.technique, False, None, None, spec.reason)

    program, attacker_input = wk_suite.build_attack(number)

    # 1. unprotected: the payload must actually execute
    plain = Platform()
    plain.load(program)
    plain.uart.feed(attacker_input)
    plain_result = plain.run(max_instructions=_BUDGET)
    exploit_works = (plain_result.reason == "ebreak"
                     and "X" in plain.console())

    # 2. protected: the DIFT engine must detect the injected control flow
    policy = code_injection_policy(program)
    protected = Platform.from_config(
        PlatformConfig(policy=policy, engine_mode=RECORD))
    protected.load(program)
    protected.uart.feed(attacker_input)
    protected_result = protected.run(max_instructions=_BUDGET)
    detected = protected_result.detected
    detail = (str(protected_result.violations[0])
              if protected_result.violations
              else f"stop={protected_result.reason}")

    return AttackResult(spec.number, spec.location, spec.target,
                        spec.technique, True, exploit_works, detected,
                        detail)


def run_suite() -> List[AttackResult]:
    """All 18 rows of Table I."""
    return [run_attack(spec.number) for spec in wk_suite.SPECS]


def format_table(results: List[AttackResult]) -> str:
    """Render in the paper's Table I layout."""
    lines = [
        f"{'Atk #':>5}  {'Location':<14} {'Target':<26} "
        f"{'Technique':<9} {'Result':<8}",
        "-" * 70,
    ]
    for r in results:
        lines.append(
            f"{r.number:>5}  {r.location:<14} {r.target:<26} "
            f"{r.technique:<9} {r.result:<8}")
    detected = sum(1 for r in results if r.result == "Detected")
    na = sum(1 for r in results if r.result == "N/A")
    lines.append("-" * 70)
    lines.append(f"detected: {detected}   N/A: {na}   "
                 f"missed: {len(results) - detected - na}")
    return "\n".join(lines)
