"""Benchmark harness: Table I / Table II reproduction + ablations."""

from repro.bench.runner import (
    Comparison,
    Measurement,
    compare_all,
    compare_workload,
    run_workload,
)
from repro.bench.workloads import TABLE2_ORDER, WORKLOADS, benchmark_policy

__all__ = [
    "Comparison",
    "Measurement",
    "compare_workload",
    "compare_all",
    "run_workload",
    "WORKLOADS",
    "TABLE2_ORDER",
    "benchmark_policy",
]
