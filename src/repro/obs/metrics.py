"""Metrics primitives: counters, gauges and fixed-bucket histograms.

The registry is deliberately small and allocation-free on the hot side:
a :class:`Counter` is a mutable cell with an ``inc`` method, looked up
*once* at attach time and then held directly by the instrumented module,
so recording a sample is one attribute increment — no name resolution,
no labels, no locks (the simulation is single-threaded).

Gauges come in two flavours: eager (``set`` a value) and lazy (a
zero-argument callable registered with :meth:`MetricsRegistry.set_gauge_fn`
that is evaluated only at snapshot time).  Expensive derived metrics —
the taint-spread scan over 4 MiB of shadow memory, decode-cache hit
arithmetic — are lazy gauges so they cost nothing while simulating.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.vp import decode as D

# --------------------------------------------------------------------- #
# opcode grouping (shared by the CPU's instruction-level profile and the
# instruction-mix benchmark)
# --------------------------------------------------------------------- #

#: Opcode groups, in reporting order.
OPCODE_GROUPS = ("alu", "muldiv", "load", "store", "branch", "jump",
                 "system")

_GROUP_INDEX = {name: i for i, name in enumerate(OPCODE_GROUPS)}


def _classify(op: int) -> int:
    if D.LB <= op <= D.LHU:
        return _GROUP_INDEX["load"]
    if D.SB <= op <= D.SW:
        return _GROUP_INDEX["store"]
    if D.BEQ <= op <= D.BGEU:
        return _GROUP_INDEX["branch"]
    if op in (D.JAL, D.JALR):
        return _GROUP_INDEX["jump"]
    if D.MUL <= op <= D.REMU:
        return _GROUP_INDEX["muldiv"]
    if D.ADDI <= op <= D.AND or op in (D.LUI, D.AUIPC):
        return _GROUP_INDEX["alu"]
    return _GROUP_INDEX["system"]


#: ``GROUP_OF_OP[op]`` — group index (into :data:`OPCODE_GROUPS`) of a
#: dense decoder opcode ID.
GROUP_OF_OP: List[int] = [_classify(op) for op in range(D.N_OPS)]


# --------------------------------------------------------------------- #
# instruments
# --------------------------------------------------------------------- #


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value (eager flavour)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A fixed-bucket histogram of observed samples.

    ``bounds`` are the inclusive upper edges of the buckets; one overflow
    bucket catches everything above the last bound.  Bucket counts, the
    running sum, min and max are kept so mean and coarse percentiles can
    be derived from the snapshot.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float]):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty ascending")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)   # +1 overflow
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        # bisect_left finds the first bound >= value — the same bucket
        # the linear scan picked, in O(log n) and without the Python
        # loop (observe sits on the per-quantum path).
        self.counts[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Coarse quantile: the upper edge of the bucket holding rank q.

        Resolution is bucket-width; good enough to spot tail latencies.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank and n:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max if self.max is not None else self.bounds[-1]
        return self.max if self.max is not None else self.bounds[-1]

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.1f})"


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #


class MetricsRegistry:
    """Name -> instrument registry with get-or-create semantics."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._gauge_fns: Dict[str, Callable[[], Union[int, float]]] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- creation / lookup --------------------------------------------- #

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_fresh(name, self._counters)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_fresh(name, self._gauges)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def set_gauge_fn(self, name: str,
                     fn: Callable[[], Union[int, float]]) -> None:
        """Register a lazy gauge, evaluated only at snapshot time."""
        self._gauge_fns[name] = fn

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_fresh(name, self._histograms)
            instrument = self._histograms[name] = Histogram(name, bounds)
        return instrument

    def _check_fresh(self, name: str, own: dict) -> None:
        for family in (self._counters, self._gauges, self._gauge_fns,
                       self._histograms):
            if family is not own and name in family:
                raise ValueError(
                    f"metric {name!r} already registered with a different "
                    "instrument type")

    # -- convenience ---------------------------------------------------- #

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def value(self, name: str):
        """Current value of a counter / gauge / lazy gauge by name."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        if name in self._gauge_fns:
            return self._gauge_fns[name]()
        raise KeyError(name)

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._gauge_fns) + len(self._histograms))

    def __contains__(self, name: str) -> bool:
        return (name in self._counters or name in self._gauges
                or name in self._gauge_fns or name in self._histograms)

    # -- checkpoint / restore ------------------------------------------- #

    def state_dict(self) -> dict:
        """Persist instrument *values*.  Lazy gauges are excluded: their
        callables are re-registered when modules attach to a fresh
        registry and re-derive the same values from restored state."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: {"bounds": list(h.bounds), "counts": list(h.counts),
                       "count": h.count, "sum": h.sum,
                       "min": h.min, "max": h.max}
                for name, h in sorted(self._histograms.items())
            },
        }

    def load_state_dict(self, state: dict) -> None:
        for name, value in state["counters"].items():
            self.counter(name).value = value
        for name, value in state["gauges"].items():
            self.gauge(name).value = value
        for name, data in state["histograms"].items():
            h = self.histogram(name, data["bounds"])
            h.counts = list(data["counts"])
            h.count = data["count"]
            h.sum = data["sum"]
            h.min = data["min"]
            h.max = data["max"]

    # -- snapshot ------------------------------------------------------- #

    def snapshot(self) -> dict:
        """Flatten everything (resolving lazy gauges) into a plain dict.

        Counters and gauges map to their scalar values; histograms map to
        their ``to_dict`` form.  Keys are sorted for stable diffs.
        """
        out: dict = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = g.value
        for name, fn in self._gauge_fns.items():
            out[name] = fn()
        for name, h in self._histograms.items():
            out[name] = h.to_dict()
        return dict(sorted(out.items()))

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} instruments)"


# --------------------------------------------------------------------- #
# snapshot merging (campaign aggregation)
# --------------------------------------------------------------------- #


def _merge_histograms(name: str, into: dict, other: dict) -> dict:
    if list(into.get("bounds", [])) != list(other.get("bounds", [])):
        raise ValueError(
            f"metric {name!r}: histogram bucket bounds differ between "
            "snapshots; cannot merge")
    merged = dict(into)
    merged["counts"] = [a + b for a, b in zip(into["counts"],
                                              other["counts"])]
    merged["count"] = into["count"] + other["count"]
    merged["sum"] = into["sum"] + other["sum"]
    merged["mean"] = (merged["sum"] / merged["count"]
                      if merged["count"] else 0.0)
    mins = [m for m in (into.get("min"), other.get("min")) if m is not None]
    maxs = [m for m in (into.get("max"), other.get("max")) if m is not None]
    merged["min"] = min(mins) if mins else None
    merged["max"] = max(maxs) if maxs else None
    return merged


def merge_snapshots(*snapshots: dict) -> dict:
    """Merge :meth:`MetricsRegistry.snapshot` dicts from independent runs.

    Worker processes cannot share a registry, so each campaign job ships
    its snapshot back to the parent and the parent folds them together:
    scalar instruments (counters *and* gauges) **sum**, histograms merge
    bucket-wise (bounds must match).  Summing is exact for counters and
    the run-total gauges (``run.instructions``); point-in-time gauges
    become "total across jobs", which is the quantity a campaign summary
    wants anyway.  Keys are sorted like :meth:`snapshot` for stable
    diffs.  A type mismatch between snapshots raises ``ValueError``.
    """
    out: dict = {}
    for snapshot in snapshots:
        for name, value in snapshot.items():
            if name not in out:
                out[name] = (dict(value) if isinstance(value, dict)
                             else value)
                continue
            have = out[name]
            if isinstance(have, dict) != isinstance(value, dict):
                raise ValueError(
                    f"metric {name!r}: histogram in one snapshot but "
                    "scalar in another; cannot merge")
            if isinstance(value, dict):
                out[name] = _merge_histograms(name, have, value)
            else:
                out[name] = have + value
    return dict(sorted(out.items()))


#: Fixed bucket edges (µs) for per-quantum host wall-time; spans the
#: ~100 µs (idle quantum) to ~100 ms (8192-instruction DIFT quantum on a
#: slow host) range the Python ISS actually produces.
QUANTUM_WALL_US_BUCKETS = (50, 100, 250, 500, 1000, 2500, 5000, 10000,
                           25000, 50000, 100000, 250000)
