"""Observability subsystem: metrics, structured tracing, profiling hooks.

The paper's evaluation is entirely quantitative (Table I/II: detection
results, tag-propagation overhead), so the reproduction needs a way to
*see* where simulation time and taint spread go.  This package provides:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms covering the VP's hot paths
  (instructions retired per opcode group, decode-cache hit/miss,
  taint-spread ratio, clearance checks, TLM transactions per target,
  IRQs taken, sim-time vs wall-time);
* :mod:`repro.obs.trace` — a ring-buffered structured event tracer with
  Chrome ``trace_event`` JSON export (quantum spans, TLM transaction
  spans, violation instants);
* :mod:`repro.obs.export` — JSON documents for metrics snapshots and
  ``BENCH_*.json`` benchmark records.

**Overhead contract.**  Every hook in the simulation core is gated on a
single attribute that defaults to ``None``: the disabled path costs one
``is None`` check per *quantum* (CPU) or per *transaction* (TLM /
peripherals) — never per instruction.  A platform built without an
:class:`Observability` object executes zero sink callbacks; the
instruction-level profile (per-opcode-group counts) only runs when
``level="instruction"`` is requested explicitly, because it single-steps
the ISS.

Typical use::

    from repro.obs import Observability
    obs = Observability(trace=True)
    platform = Platform.from_config(PlatformConfig(policy=policy, obs=obs))
    platform.load(program)
    platform.run()
    obs.write_metrics("metrics.json")
    obs.write_trace("trace.json")      # load in chrome://tracing / Perfetto
"""

from __future__ import annotations

from typing import Optional

from repro.obs.export import (
    bench_record,
    metrics_document,
    write_bench_json,
    write_json,
)
from repro.obs.metrics import (
    GROUP_OF_OP,
    OPCODE_GROUPS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.trace import EventTracer, TraceEvent

#: Observation levels.  ``QUANTUM`` hooks only at quantum / transaction
#: boundaries (near-zero cost); ``INSTRUCTION`` single-steps the ISS to
#: attribute every retired instruction to an opcode group (profiling —
#: expect a several-fold slowdown while enabled).
QUANTUM = "quantum"
INSTRUCTION = "instruction"


class Observability:
    """Facade bundling a metrics registry and an optional event tracer.

    Pass one instance to :class:`~repro.vp.platform.Platform` (or attach
    it to individual modules) to light up the hooks.  A single instance
    may be shared across several platforms; counters then aggregate.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 trace: bool = False, level: str = QUANTUM,
                 trace_capacity: int = 65536):
        if level not in (QUANTUM, INSTRUCTION):
            raise ValueError(f"unknown observation level {level!r}")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer: Optional[EventTracer] = (
            EventTracer(capacity=trace_capacity) if trace else None)
        self.level = level

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """Resolve lazy gauges and return the metrics as a plain dict."""
        return self.metrics.snapshot()

    def write_metrics(self, path: str) -> None:
        """Write a metrics-snapshot JSON document to ``path``."""
        write_json(path, metrics_document(self.metrics))

    def write_trace(self, path: str) -> None:
        """Write the Chrome ``trace_event`` JSON to ``path``."""
        if self.tracer is None:
            raise ValueError(
                "this Observability was built without trace=True")
        write_json(path, self.tracer.chrome_trace())

    def __repr__(self) -> str:
        return (f"Observability(level={self.level!r}, "
                f"metrics={len(self.metrics)}, "
                f"trace={'on' if self.tracer else 'off'})")


__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "EventTracer",
    "TraceEvent",
    "OPCODE_GROUPS",
    "GROUP_OF_OP",
    "QUANTUM",
    "INSTRUCTION",
    "merge_snapshots",
    "metrics_document",
    "bench_record",
    "write_json",
    "write_bench_json",
]
