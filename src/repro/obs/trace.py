"""Structured event tracing with Chrome ``trace_event`` export.

Events are stored in a fixed-capacity ring buffer (old events are
overwritten, never reallocated), so tracing a long run keeps the *tail*
of the execution — usually the interesting part when chasing a policy
violation or a performance cliff.

The export format is the Chrome Trace Event JSON object form
(``{"traceEvents": [...]}``) understood by ``chrome://tracing`` and
Perfetto.  Three phases are used:

* ``"X"`` — complete events (a span with ``ts`` + ``dur``): instruction
  quanta, TLM transactions, traced instructions;
* ``"i"`` — instant events: security violations, IRQ entries;
* ``"M"`` — metadata (process/thread names), emitted by the exporter.

Timestamps are **simulated** microseconds: the trace shows where
simulated time goes, aligned across CPU and peripherals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Valid trace-event phases this tracer emits.
PHASES = ("X", "i", "M")


@dataclass
class TraceEvent:
    """One structured event (field names follow the Chrome schema)."""

    name: str
    cat: str
    ph: str
    ts: float                      # microseconds
    dur: Optional[float] = None    # microseconds, "X" events only
    pid: int = 0
    tid: int = 0
    args: Dict = field(default_factory=dict)

    def to_json(self) -> dict:
        out = {"name": self.name, "cat": self.cat, "ph": self.ph,
               "ts": self.ts, "pid": self.pid, "tid": self.tid}
        if self.ph == "X":
            out["dur"] = self.dur if self.dur is not None else 0.0
        if self.ph == "i":
            out["s"] = "g"         # global-scope instant
        if self.args:
            out["args"] = self.args
        return out


class EventTracer:
    """Fixed-capacity ring buffer of :class:`TraceEvent` objects.

    ``clock`` is a zero-argument callable returning the current simulated
    time in microseconds; the platform installs one at attach time so
    modules can emit instants without threading timestamps through.
    """

    def __init__(self, capacity: int = 65536,
                 clock: Optional[Callable[[], float]] = None):
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self._ring: List[TraceEvent] = []
        self._emitted = 0

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def emit(self, event: TraceEvent) -> None:
        if len(self._ring) < self.capacity:
            self._ring.append(event)
        else:
            self._ring[self._emitted % self.capacity] = event
        self._emitted += 1

    def complete(self, name: str, cat: str, ts: float, dur: float,
                 args: Optional[dict] = None, tid: int = 0) -> None:
        """Record a span (Chrome ``"X"`` complete event)."""
        self.emit(TraceEvent(name=name, cat=cat, ph="X", ts=ts, dur=dur,
                             tid=tid, args=args or {}))

    def instant(self, name: str, cat: str, ts: Optional[float] = None,
                args: Optional[dict] = None, tid: int = 0) -> None:
        """Record a point event; ``ts`` defaults to the installed clock."""
        self.emit(TraceEvent(name=name, cat=cat, ph="i",
                             ts=self.clock() if ts is None else ts,
                             tid=tid, args=args or {}))

    # ------------------------------------------------------------------ #
    # inspection / export
    # ------------------------------------------------------------------ #

    @property
    def emitted(self) -> int:
        """Total events emitted (including any overwritten)."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Events lost to ring wraparound."""
        return max(0, self._emitted - self.capacity)

    def __len__(self) -> int:
        return len(self._ring)

    def events(self) -> List[TraceEvent]:
        """Buffered events, oldest first."""
        if self._emitted <= self.capacity:
            return list(self._ring)
        pivot = self._emitted % self.capacity
        return self._ring[pivot:] + self._ring[:pivot]

    def clear(self) -> None:
        self._ring.clear()
        self._emitted = 0

    def chrome_trace(self, process_name: str = "vp-dift") -> dict:
        """Build the Chrome Trace Event JSON object form."""
        events = [
            {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": process_name}},
        ]
        events.extend(e.to_json() for e in self.events())
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "emitted": self._emitted,
                "dropped": self.dropped,
                "timeUnit": "simulated-us",
            },
        }

    def __repr__(self) -> str:
        return (f"EventTracer(capacity={self.capacity}, "
                f"buffered={len(self._ring)}, dropped={self.dropped})")
