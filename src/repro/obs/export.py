"""JSON documents for metrics snapshots and benchmark records.

Two schemas, both versioned so downstream tooling can evolve:

* ``repro.metrics/1`` — a metrics snapshot (``repro --metrics-out``);
* ``repro.bench/1``   — one benchmark record (``BENCH_<name>.json``),
  carrying the benchmark's own payload plus an optional metrics
  snapshot, so CI artifacts are self-describing and diffable.
"""

from __future__ import annotations

import json
import platform as _host
import sys
from typing import Any, Dict

METRICS_SCHEMA = "repro.metrics/1"
BENCH_SCHEMA = "repro.bench/1"


def _host_info() -> Dict[str, str]:
    return {
        "python": sys.version.split()[0],
        "implementation": _host.python_implementation(),
        "machine": _host.machine(),
        "system": _host.system(),
    }


def metrics_document(registry) -> Dict[str, Any]:
    """Wrap a :class:`MetricsRegistry` snapshot in the export schema."""
    return {
        "schema": METRICS_SCHEMA,
        "host": _host_info(),
        "metrics": registry.snapshot(),
    }


def bench_record(name: str, payload: Dict[str, Any],
                 registry=None) -> Dict[str, Any]:
    """Build one ``BENCH_*.json``-compatible benchmark record."""
    record: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "bench": name,
        "host": _host_info(),
        "data": payload,
    }
    if registry is not None:
        record["metrics"] = registry.snapshot()
    return record


def write_json(path: str, document: Dict[str, Any]) -> str:
    """Write ``document`` as pretty-printed JSON; returns ``path``.

    ``"-"`` writes to stdout instead of a file — the CLI-wide output
    convention (``--metrics-out -`` pipes a snapshot into ``jq``).
    """
    if path == "-":
        json.dump(document, sys.stdout, indent=2, sort_keys=False)
        sys.stdout.write("\n")
        return path
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def write_bench_json(path: str, name: str, payload: Dict[str, Any],
                     registry=None) -> str:
    """Build and write one benchmark record; returns ``path``."""
    return write_json(path, bench_record(name, payload, registry))
