"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``asm``          assemble a guest source file to a flat binary (+ listing)
``disasm``       disassemble a flat binary
``run``          run a guest on the VP, optionally with a JSON policy (VP+)
``table1``       regenerate the paper's Table I (code-injection suite)
``table2``       regenerate the paper's Table II (DIFT overhead)
``casestudy``    run the Section VI-A immobilizer case study
``locdelta``     the Section V-B1 LoC integration-cost measurement
``report``       run every experiment and emit a markdown report
``differential`` VP-vs-VP+ differential testing on random programs
``fuzz``         adversarial attack-corpus generation + differential oracles
``policyfuzz``   policy stress-fuzzing of the immobilizer firmware
``campaign``     parallel simulation campaigns (``run`` / ``report``)
``snapshot``     checkpoint/restore (``save`` / ``resume`` / ``diff``)
``replay``       snapshot-resume replay-equivalence verification
``reanalyze``    replay a recorded event stream offline (new policies,
                 no guest re-run)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.asm import assemble, disassemble
from repro.dift.engine import RAISE, RECORD
from repro.policy.serialize import policy_from_dict
from repro.vp.config import PlatformConfig
from repro.vp.platform import Platform


def _cmd_asm(args) -> int:
    with open(args.source) as handle:
        program = assemble(handle.read(), base=args.base)
    out = args.output or (args.source.rsplit(".", 1)[0] + ".bin")
    with open(out, "wb") as handle:
        handle.write(program.image)
    print(f"{out}: {program.size} bytes, {program.n_instructions} "
          f"instructions, entry {program.entry:#x}")
    if args.listing:
        for address, line, text in program.listing:
            print(f"  {address:08x}  {text}")
    return 0


def _cmd_disasm(args) -> int:
    with open(args.binary, "rb") as handle:
        image = handle.read()
    for line in disassemble(image, base=args.base):
        print(line)
    return 0


def _load_policy(path: Optional[str]):
    if path is None:
        return None
    with open(path) as handle:
        return policy_from_dict(json.load(handle))


def _add_obs_options(parser) -> None:
    """Observability options shared by the simulating commands."""
    parser.add_argument("--metrics-out", metavar="FILE",
                        help="write a metrics-snapshot JSON to FILE")
    parser.add_argument("--trace-out", metavar="FILE",
                        help="write a Chrome trace_event JSON to FILE "
                             "(open in chrome://tracing / Perfetto)")
    parser.add_argument("--obs-level", choices=("quantum", "instruction"),
                        default="quantum",
                        help="metric granularity; 'instruction' adds "
                             "per-opcode-group counts but single-steps "
                             "the ISS (slow); only takes effect together "
                             "with --metrics-out / --trace-out")


def _make_obs(args):
    """Build an Observability from CLI flags, or None if none requested."""
    if not (args.metrics_out or args.trace_out):
        return None
    # Fail on an unwritable destination *before* simulating, not after —
    # the export is the last step of a potentially minutes-long run.
    for path in (args.metrics_out, args.trace_out):
        if path:
            parent = os.path.dirname(path) or "."
            if not os.path.isdir(parent):
                raise SystemExit(
                    f"error: output directory {parent!r} does not exist")
    from repro.obs import Observability

    return Observability(trace=args.trace_out is not None,
                         level=args.obs_level)


def _write_obs(obs, args) -> None:
    if obs is None:
        return
    if args.metrics_out:
        obs.write_metrics(args.metrics_out)
        print(f"metrics: {args.metrics_out}")
    if args.trace_out:
        obs.write_trace(args.trace_out)
        print(f"trace: {args.trace_out} "
              f"({len(obs.tracer.events())} events, "
              f"{obs.tracer.dropped} dropped)")


def _cmd_run(args) -> int:
    with open(args.source) as handle:
        program = assemble(handle.read(), base=args.base)
    policy = _load_policy(args.policy)
    obs = _make_obs(args)
    # stream recording needs a record-mode engine (a raise-mode engine
    # would truncate the stream before its final packets)
    record = args.record or args.record_events is not None
    config = PlatformConfig(policy=policy,
                            engine_mode=RECORD if record else RAISE,
                            obs=obs, dift_mode=args.dift_mode,
                            jit=args.jit,
                            record_events=args.record_events)
    platform = Platform.from_config(config)
    platform.load(program)
    if args.uart_input:
        platform.uart.feed(args.uart_input.encode())
    result = platform.run(max_instructions=args.max_instructions)
    print(f"stopped: {result.reason} (exit={result.exit_code}) after "
          f"{result.instructions} instructions, "
          f"{result.sim_time.to_ms():.3f} ms simulated, "
          f"{result.mips:.2f} MIPS host")
    if platform.console():
        print(f"uart: {platform.console()!r}")
    for violation in result.violations:
        print(f"violation: {violation}")
    if args.record_events is not None:
        # terminal stops already sealed it; budget/idle stops seal here
        platform.finish_recording()
        print(f"event stream: {args.record_events} "
              f"({platform._recorder.count} packets)")
    _write_obs(obs, args)
    return 1 if result.violations else 0


def _cmd_table1(args) -> int:
    from repro.bench import table1

    results = table1.run_suite()
    print(table1.format_table(results))
    missed = [r for r in results if r.result == "MISSED"]
    return 1 if missed else 0


def _cmd_table2(args) -> int:
    from repro.bench.table2 import (
        format_against_paper,
        format_table,
        run_table2,
    )

    rows = run_table2(scale=args.scale)
    print(format_table(rows))
    print()
    print(format_against_paper(rows))
    return 0


def _cmd_casestudy(args) -> int:
    from repro.casestudy import immobilizer as cs

    obs = _make_obs(args)
    results = cs.run_case_study(obs=obs, dift_mode=args.dift_mode)
    print(cs.format_report(results))
    _write_obs(obs, args)
    recovered = cs.capture_and_brute_force()
    print()
    print(f"brute force through the baseline-policy gap: recovered PIN "
          f"byte {recovered:#04x} (actual {cs.PIN[0]:#04x})")
    return 0 if all(r.as_expected for r in results) else 1


def _cmd_report(args) -> int:
    from repro.bench.report import generate, render_markdown

    results = generate(scale=args.scale)
    markdown = render_markdown(results)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(markdown)
        print(f"wrote {args.output}")
    else:
        print(markdown)
    ok = (results["table1"]["missed"] == 0
          and results["casestudy"]["all_as_expected"]
          and results["verification"]["fuzz_sound"]
          == results["verification"]["fuzz_total"])
    return 0 if ok else 1


def _cmd_locdelta(args) -> int:
    from repro.bench import locdelta

    report = locdelta.analyze()
    print(report.summary())
    return 0


def _cmd_differential(args) -> int:
    from repro.verify.differential import sweep
    from repro.verify.reference import compare_with_iss

    results = sweep(range(args.seeds), n_instructions=args.length)
    failures = [r for r in results if not r.equivalent]
    total_instructions = sum(r.instructions for r in results)
    print(f"VP vs VP+: differential-tested {len(results)} programs "
          f"({total_instructions} instructions total): "
          f"{len(results) - len(failures)} equivalent")
    for failure in failures:
        print(f"  seed {failure.seed}: {failure.mismatch}")
    if args.oracle:
        oracle_results = [compare_with_iss(seed, n_instructions=args.length)
                          for seed in range(args.seeds)]
        oracle_failures = [r for r in oracle_results if not r.equivalent]
        print(f"ISS vs reference oracle: "
              f"{len(oracle_results) - len(oracle_failures)}/"
              f"{len(oracle_results)} equivalent")
        for failure in oracle_failures:
            print(f"  seed {failure.seed}: {failure.mismatch}")
        failures = failures + oracle_failures
    return 1 if failures else 0


def _cmd_policyfuzz(args) -> int:
    from repro.verify.policy_fuzz import fuzz_immobilizer, summarize

    outcomes = fuzz_immobilizer(n_runs=args.runs, seed=args.seed)
    print(summarize(outcomes))
    return 0 if all(o.sound for o in outcomes) else 1


def _cmd_fuzz(args) -> int:
    """Adversarial corpus generation: generate, oracle-check, shrink."""
    import hashlib

    from repro.gen import generate_corpus, run_case, save_case, shrink
    from repro.gen.corpus import case_document, default_corpus_dir, dump_case

    cases = generate_corpus(args.seed, args.count)
    distinct = {case.spec_hash for case in cases}
    digest = hashlib.sha256()
    for case in cases:
        digest.update(dump_case(case_document(case)).encode())
    print(f"fuzz: seed={args.seed}: {len(cases)} cases, "
          f"{len(distinct)} distinct spec hashes")
    print(f"corpus digest: {digest.hexdigest()}")
    if args.out:
        for case in cases:
            save_case(args.out, case)
        print(f"wrote {len(cases)} case files to {args.out}/")

    failures = []
    for n, case in enumerate(cases, start=1):
        verdict = run_case(case, budget=args.budget)
        if not verdict.passed:
            failures.append(verdict)
            print(f"FAIL {verdict.describe()}")
        if not args.quiet and n % 50 == 0 and n < len(cases):
            print(f"  ... {n}/{len(cases)} cases checked")
    print(f"oracles: {len(cases) - len(failures)}/{len(cases)} green "
          "(invisibility, mode-equivalence, detection)")

    if failures and not args.no_shrink:
        corpus_dir = args.corpus_dir or default_corpus_dir()
        for verdict in failures:
            small, small_verdict = shrink(verdict.case, verdict)
            note = "failed: " + ", ".join(sorted(small_verdict.failures))
            path = save_case(corpus_dir, small, origin="shrunk", note=note)
            print(f"shrunk {verdict.case.name} -> minimal repro {path}")
    return 1 if failures else 0


def _cmd_campaign_run(args) -> int:
    from repro.campaign import (
        MatrixError,
        load_matrix,
        run_campaign,
        write_outputs,
    )

    try:
        matrix = load_matrix(args.matrix)
        specs = matrix.jobs()
    except MatrixError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    os.makedirs(args.out, exist_ok=True)
    progress = None if args.quiet else print
    result = run_campaign(specs, jobs=args.jobs,
                          log_dir=os.path.join(args.out, "logs"),
                          timeout=args.timeout, retries=args.retries,
                          progress=progress,
                          warm_start=matrix.warm_start or args.warm_start)
    document = write_outputs(args.out, result.records,
                             wall_seconds=result.wall_seconds)
    counts = result.status_counts
    summary = ", ".join(f"{counts[status]} {status}"
                        for status in ("ok", "failed", "crashed", "timeout")
                        if counts[status])
    print(f"campaign: {len(result.records)} jobs in "
          f"{result.wall_seconds:.2f}s with --jobs {args.jobs}: {summary}")
    print(f"results: {args.out}/campaign.jsonl, {args.out}/aggregate.json")
    for job_id in document["jobs"]["not_ok"]:
        print(f"  not ok: {job_id}")
    if args.strict and not result.all_ok:
        print("error: --strict and not every job is ok", file=sys.stderr)
        return 1
    return 0


def _snapshot_platform(args) -> Platform:
    """Build the platform ``snapshot save`` will checkpoint."""
    from repro.obs import Observability

    if bool(args.workload) == bool(args.source):
        raise SystemExit(
            "error: give exactly one of --workload NAME / --source FILE")
    if args.workload:
        from repro.bench.workloads import get_workload

        workload = get_workload(args.workload)
        dift = not args.plain
        return workload.make_platform(
            args.scale, dift, obs=Observability(),
            dift_mode=args.dift_mode if dift else "full",
            seed=args.seed, engine_mode=RECORD)
    with open(args.source) as handle:
        program = assemble(handle.read(), base=args.base)
    config = PlatformConfig(policy=_load_policy(args.policy),
                            engine_mode=RECORD, obs=Observability(),
                            dift_mode=args.dift_mode, seed=args.seed)
    platform = Platform.from_config(config)
    platform.load(program)
    if args.uart_input:
        platform.uart.feed(args.uart_input.encode())
    return platform


def _cmd_snapshot_save(args) -> int:
    platform = _snapshot_platform(args)
    if args.pause_at is not None:
        result = platform.run(pause_at=args.pause_at,
                              max_instructions=args.max_instructions)
        if result.reason != "paused":
            print(f"note: run ended ({result.reason}) before reaching "
                  f"{args.pause_at} instructions; snapshotting the final "
                  "state", file=sys.stderr)
    platform.save_snapshot(args.output)
    print(f"{args.output}: snapshot at instruction "
          f"{platform.total_instructions}, "
          f"{platform.kernel.now.to_ms():.3f} ms simulated")
    return 0


def _cmd_snapshot_resume(args) -> int:
    from repro.obs import Observability
    from repro.state import SnapshotError

    program = None
    externals = None
    if args.workload:
        from repro.bench.workloads import get_workload

        workload = get_workload(args.workload)
        program = workload.build(args.scale)
        externals = workload.restore_externals(args.scale)
    try:
        platform = Platform.restore(args.snapshot, obs=Observability(),
                                    program=program, externals=externals)
    except SnapshotError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if platform.stop_reason:
        # only paused / boot-state snapshots are resumable: a terminal
        # stop means the guest's SystemC process has already returned
        print(f"snapshot is of a finished run (stopped: "
              f"{platform.stop_reason} after "
              f"{platform.total_instructions} instructions); "
              "nothing to resume")
        if platform.console():
            print(f"uart: {platform.console()!r}")
        return 0
    resumed_from = platform.total_instructions
    result = platform.run(max_instructions=args.max_instructions)
    print(f"stopped: {result.reason} (exit={result.exit_code}) after "
          f"{platform.total_instructions} instructions "
          f"(resumed from {resumed_from}), "
          f"{result.sim_time.to_ms():.3f} ms simulated")
    if platform.console():
        print(f"uart: {platform.console()!r}")
    for violation in result.violations:
        print(f"violation: {violation}")
    return 1 if result.violations else 0


def _cmd_snapshot_diff(args) -> int:
    from repro import state

    try:
        first = state.load_document(args.a)
        second = state.load_document(args.b)
    except state.SnapshotError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    ignore = tuple(args.ignore or ())
    lines = state.diff_documents(first, second, ignore_prefixes=ignore)
    for line in lines:
        print(line)
    if not lines:
        print("snapshots identical"
              + (f" (ignoring {', '.join(ignore)})" if ignore else ""))
    return 1 if lines else 0


def _cmd_replay(args) -> int:
    from repro.verify.replay import format_report, run_replay_suite

    results = run_replay_suite(workloads=args.workloads or None,
                               modes=args.modes,
                               pause_at=args.pause_at,
                               max_instructions=args.max_instructions,
                               jit=args.jit)
    print(format_report(results))
    return 0 if all(r.equivalent for r in results) else 1


def _cmd_reanalyze(args) -> int:
    from repro.dift.events import StreamError
    from repro.dift.monitor import reanalyze_stream

    try:
        override = _load_policy(args.policy)
        result = reanalyze_stream(args.stream, policy=override)
    except (OSError, StreamError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cfg = result.header["config"]
    recorded_name = (cfg["policy"] or {}).get("name", "policy")
    policy_name = result.engine.policy.name
    print(f"{args.stream}: {result.events} packets, "
          f"guest ram {cfg['ram_size']} bytes, recorded policy "
          f"{recorded_name!r}")
    print(f"re-analysis under {policy_name!r}: "
          f"{result.engine.checks_performed} checks, "
          f"{len(result.violations)} violations, "
          f"{result.monitor.events_consumed} events consumed")
    for violation in result.violations:
        print(f"violation: {violation}")
    if args.json:
        document = {
            "stream": args.stream,
            "schema": result.header["schema"],
            "policy": policy_name,
            "recorded_policy": recorded_name,
            "events": result.events,
            "checks_performed": result.engine.checks_performed,
            "violations": [
                {"kind": v.kind, "tag": v.tag, "required": v.required,
                 "unit": v.unit, "pc": v.pc, "context": v.context}
                for v in result.violations],
        }
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report: {args.json}")
    return 1 if result.violations else 0


def _cmd_campaign_report(args) -> int:
    from repro.campaign import aggregate, load_jsonl, render_markdown
    from repro.campaign.report import find_jsonl

    path = find_jsonl(args.results)
    try:
        records = load_jsonl(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not records:
        print(f"error: no job records in {path}", file=sys.stderr)
        return 2
    markdown = render_markdown(records, aggregate(records))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(markdown)
        print(f"wrote {args.output}")
    else:
        print(markdown)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VP-DIFT: DIFT for embedded binaries on a "
                    "SystemC-style RISC-V virtual prototype")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("asm", help="assemble a guest source file")
    p.add_argument("source")
    p.add_argument("-o", "--output")
    p.add_argument("--base", type=lambda x: int(x, 0), default=0)
    p.add_argument("--listing", action="store_true")
    p.set_defaults(fn=_cmd_asm)

    p = sub.add_parser("disasm", help="disassemble a flat binary")
    p.add_argument("binary")
    p.add_argument("--base", type=lambda x: int(x, 0), default=0)
    p.set_defaults(fn=_cmd_disasm)

    p = sub.add_parser("run", help="run a guest on the VP / VP+")
    p.add_argument("source")
    p.add_argument("--policy", help="JSON policy file (enables DIFT)")
    p.add_argument("--base", type=lambda x: int(x, 0), default=0)
    p.add_argument("--uart-input", default="")
    p.add_argument("--max-instructions", type=int, default=None)
    p.add_argument("--record", action="store_true",
                   help="record violations instead of raising")
    p.add_argument("--dift-mode",
                   choices=("full", "demand", "decoupled",
                            "decoupled-strict"),
                   default="full",
                   help="DIFT execution mode: 'demand' skips tag "
                        "bookkeeping while the machine holds no taint "
                        "(identical detections, lower overhead); "
                        "'decoupled' runs tag propagation on an "
                        "asynchronous monitor fed by an instruction "
                        "event stream (violations surface at quantum "
                        "boundaries); 'decoupled-strict' drains the "
                        "stream per instruction for paper-exact trap "
                        "timing")
    p.add_argument("--record-events", metavar="FILE",
                   help="write the instruction event stream to FILE as "
                        "a repro.dift.events/1 artifact for offline "
                        "re-analysis (implies --record; needs a policy)")
    p.add_argument("--jit", action="store_true",
                   help="enable the trace-compiled fast path (identical "
                        "simulation results, higher MIPS)")
    _add_obs_options(p)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("table1", help="reproduce Table I")
    p.set_defaults(fn=_cmd_table1)

    p = sub.add_parser("table2", help="reproduce Table II")
    p.add_argument("--scale", choices=("quick", "full"), default="quick")
    p.set_defaults(fn=_cmd_table2)

    p = sub.add_parser("casestudy", help="run the Section VI-A case study")
    p.add_argument("--dift-mode",
                   choices=("full", "demand", "decoupled",
                            "decoupled-strict"),
                   default="full",
                   help="DIFT execution mode for every scenario platform")
    _add_obs_options(p)
    p.set_defaults(fn=_cmd_casestudy)

    p = sub.add_parser("locdelta", help="Section V-B1 LoC measurement")
    p.set_defaults(fn=_cmd_locdelta)

    p = sub.add_parser("report",
                       help="run every experiment, emit a markdown report")
    p.add_argument("--scale", choices=("quick", "full"), default="quick")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("differential",
                       help="VP vs VP+ differential testing")
    p.add_argument("--seeds", type=int, default=10)
    p.add_argument("--length", type=int, default=200)
    p.add_argument("--oracle", action="store_true",
                   help="also compare the ISS against the reference "
                        "interpreter")
    p.set_defaults(fn=_cmd_differential)

    p = sub.add_parser(
        "fuzz",
        help="generate an adversarial attack corpus and run the three "
             "differential oracles over every case")
    p.add_argument("--seed", type=int, default=0,
                   help="corpus seed: the same seed reproduces the "
                        "identical corpus byte-for-byte (default 0)")
    p.add_argument("--count", type=int, default=50, metavar="N",
                   help="distinct cases to generate (default 50)")
    p.add_argument("--out", metavar="DIR",
                   help="also write every generated case file to DIR")
    p.add_argument("--corpus-dir", metavar="DIR",
                   help="where shrunk minimal repros of failing cases "
                        "are committed (default: tests/corpus)")
    p.add_argument("--budget", type=int, default=200_000, metavar="N",
                   help="per-run instruction budget (default 200000)")
    p.add_argument("--no-shrink", action="store_true",
                   help="report failures without shrinking them")
    p.add_argument("--quiet", action="store_true",
                   help="suppress progress lines")
    p.set_defaults(fn=_cmd_fuzz)

    p = sub.add_parser("policyfuzz",
                       help="policy stress-fuzzing of the immobilizer "
                            "firmware")
    p.add_argument("--runs", type=int, default=25)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_policyfuzz)

    p = sub.add_parser(
        "campaign",
        help="parallel simulation campaigns over a job matrix")
    csub = p.add_subparsers(dest="campaign_command", required=True)

    cp = csub.add_parser(
        "run", help="fan a job matrix out across a worker pool")
    cp.add_argument("--matrix", required=True, metavar="FILE",
                    help="JSON job matrix (repro.campaign.matrix/1)")
    cp.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes (default 1)")
    cp.add_argument("--timeout", type=float, default=None, metavar="S",
                    help="per-job wall-clock timeout override (seconds)")
    cp.add_argument("--retries", type=int, default=None, metavar="N",
                    help="retry-after-crash override")
    cp.add_argument("--out", default="campaign-out", metavar="DIR",
                    help="output directory (JSONL, aggregate, worker "
                         "logs; default campaign-out)")
    cp.add_argument("--strict", action="store_true",
                    help="exit 1 unless every job ended ok")
    cp.add_argument("--quiet", action="store_true",
                    help="suppress per-job progress lines")
    cp.add_argument("--warm-start", action="store_true",
                    help="boot each distinct platform configuration once, "
                         "snapshot it, and fork every job from the "
                         "snapshot (same as \"warm_start\": true in the "
                         "matrix file)")
    cp.set_defaults(fn=_cmd_campaign_run)

    cp = csub.add_parser(
        "report", help="render a markdown summary from campaign results")
    cp.add_argument("--results", required=True, metavar="PATH",
                    help="campaign output directory or campaign.jsonl")
    cp.add_argument("-o", "--output", metavar="FILE",
                    help="write the markdown here instead of stdout")
    cp.set_defaults(fn=_cmd_campaign_report)

    p = sub.add_parser(
        "snapshot", help="checkpoint/restore (save / resume / diff)")
    ssub = p.add_subparsers(dest="snapshot_command", required=True)

    sp = ssub.add_parser(
        "save", help="run to a pause point and write a snapshot file")
    sp.add_argument("-o", "--output", required=True, metavar="FILE",
                    help="snapshot destination (repro.snapshot/1 JSON)")
    sp.add_argument("--workload", metavar="NAME",
                    help="snapshot a bench-registry workload")
    sp.add_argument("--source", metavar="FILE",
                    help="snapshot a guest assembly source instead")
    sp.add_argument("--pause-at", type=int, default=None, metavar="N",
                    help="pause at the first quantum boundary where at "
                         "least N instructions have retired (default: "
                         "snapshot the boot state before the first "
                         "instruction)")
    sp.add_argument("--max-instructions", type=int, default=None)
    sp.add_argument("--scale", choices=("quick", "full"), default="quick",
                    help="workload scale (with --workload)")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--plain", action="store_true",
                    help="with --workload: run without DIFT")
    sp.add_argument("--dift-mode",
                    choices=("full", "demand", "decoupled",
                             "decoupled-strict"),
                    default="full")
    sp.add_argument("--policy", metavar="FILE",
                    help="with --source: JSON policy file (enables DIFT)")
    sp.add_argument("--base", type=lambda x: int(x, 0), default=0)
    sp.add_argument("--uart-input", default="")
    sp.set_defaults(fn=_cmd_snapshot_save)

    sp = ssub.add_parser(
        "resume", help="restore a snapshot file and keep simulating")
    sp.add_argument("snapshot")
    sp.add_argument("--workload", metavar="NAME",
                    help="workload the snapshot came from (re-attaches "
                         "program symbols and external models; required "
                         "for snapshots that carry externals)")
    sp.add_argument("--scale", choices=("quick", "full"), default="quick")
    sp.add_argument("--max-instructions", type=int, default=None)
    sp.set_defaults(fn=_cmd_snapshot_resume)

    sp = ssub.add_parser(
        "diff", help="field-level diff between two snapshot files")
    sp.add_argument("a")
    sp.add_argument("b")
    sp.add_argument("--ignore", action="append", metavar="PREFIX",
                    help="skip leaves whose dotted path starts with "
                         "PREFIX (repeatable, e.g. --ignore obs.)")
    sp.set_defaults(fn=_cmd_snapshot_diff)

    p = sub.add_parser(
        "replay",
        help="verify snapshot-resume replay equivalence (fresh process)")
    p.add_argument("--workloads", nargs="*", metavar="NAME",
                   help="bench-registry workloads (default: all)")
    p.add_argument("--modes", nargs="*",
                   choices=("plain", "full", "demand", "decoupled"),
                   default=["plain", "full", "demand", "decoupled"],
                   help="engine/DIFT variants to sweep")
    p.add_argument("--pause-at", type=int, default=9000, metavar="N",
                   help="snapshot point (instructions retired)")
    p.add_argument("--max-instructions", type=int, default=60000)
    p.add_argument("--jit", action="store_true",
                   help="run every leg with the trace compiler on "
                        "(proves the trace cache is derived state)")
    p.set_defaults(fn=_cmd_replay)

    p = sub.add_parser(
        "reanalyze",
        help="replay a recorded repro.dift.events/1 stream offline")
    p.add_argument("stream", help="event-stream file from --record-events")
    p.add_argument("--policy", metavar="FILE",
                   help="JSON policy to re-analyze under (must share the "
                        "recorded policy's class list; default: the "
                        "recorded policy, reproducing the live run)")
    p.add_argument("--json", metavar="FILE",
                   help="also write a machine-readable report to FILE")
    p.set_defaults(fn=_cmd_reanalyze)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
