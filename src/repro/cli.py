"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``asm``          assemble a guest source file to a flat binary (+ listing)
``disasm``       disassemble a flat binary
``run``          run a guest on the VP, optionally with a JSON policy (VP+)
``table1``       regenerate the paper's Table I (code-injection suite)
``table2``       regenerate the paper's Table II (DIFT overhead)
``casestudy``    run the Section VI-A immobilizer case study
``locdelta``     the Section V-B1 LoC integration-cost measurement
``report``       run every experiment and emit a markdown report
``differential`` VP-vs-VP+ differential testing on random programs
``fuzz``         adversarial attack-corpus generation + differential oracles
``policyfuzz``   policy stress-fuzzing of the immobilizer firmware
``campaign``     parallel simulation campaigns (``run`` / ``report``)
``worker``       attach to a campaign broker and pull jobs over TCP
``serve``        campaign-as-a-service: the HTTP submission API
``snapshot``     checkpoint/restore (``save`` / ``resume`` / ``diff``)
``replay``       snapshot-resume replay-equivalence verification
``reanalyze``    replay a recorded event stream offline (new policies,
                 no guest re-run)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from contextlib import contextmanager
from typing import List, Optional, Tuple

from repro.asm import assemble, disassemble
from repro.dift.engine import RAISE, RECORD
from repro.policy.serialize import policy_from_dict
from repro.vp.config import PlatformConfig
from repro.vp.platform import Platform


def _cmd_asm(args) -> int:
    with open(args.source) as handle:
        program = assemble(handle.read(), base=args.base)
    out = args.output or (args.source.rsplit(".", 1)[0] + ".bin")
    with open(out, "wb") as handle:
        handle.write(program.image)
    print(f"{out}: {program.size} bytes, {program.n_instructions} "
          f"instructions, entry {program.entry:#x}")
    if args.listing:
        for address, line, text in program.listing:
            print(f"  {address:08x}  {text}")
    return 0


def _cmd_disasm(args) -> int:
    with open(args.binary, "rb") as handle:
        image = handle.read()
    for line in disassemble(image, base=args.base):
        print(line)
    return 0


def _load_policy(path: Optional[str]):
    if path is None:
        return None
    with open(path) as handle:
        return policy_from_dict(json.load(handle))


# --------------------------------------------------------------------- #
# shared output-destination handling
#
# One idiom across every command: file-valued flags (--output, --json,
# --metrics-out, ...) accept '-' for stdout; directory-valued flags
# (--out) never do.  Destinations are validated *before* any expensive
# work — the export is the last step of a potentially minutes-long run.
# --------------------------------------------------------------------- #

#: the shared flags add_output_args() knows how to attach
_OUTPUT_FLAGS = {
    "output": (("-o", "--output"), "FILE",
               "write here instead of stdout ('-' = stdout)"),
    "json": (("--json",), "FILE",
             "also write a machine-readable JSON report to FILE "
             "('-' = stdout)"),
    "metrics_out": (("--metrics-out",), "FILE",
                    "write a metrics-snapshot JSON to FILE "
                    "('-' = stdout)"),
    "trace_out": (("--trace-out",), "FILE",
                  "write a Chrome trace_event JSON to FILE "
                  "(open in chrome://tracing / Perfetto; '-' = stdout)"),
    "out_dir": (("--out",), "DIR", "output directory"),
}


def add_output_args(parser, *names, **overrides) -> None:
    """Attach shared output flags; ``<name>_help``/``<name>_default``
    keyword overrides customize a flag for one command."""
    for name in names:
        flags, metavar, help_text = _OUTPUT_FLAGS[name]
        parser.add_argument(
            *flags, metavar=metavar,
            dest="out" if name == "out_dir" else name,
            default=overrides.get(f"{name}_default"),
            help=overrides.get(f"{name}_help", help_text))


def resolve_outputs(args, files=(), dirs=()) -> dict:
    """Validate every output destination up front; returns name->path.

    ``files`` entries may be '-' (stdout) but their parent directory
    must exist; ``dirs`` entries reject '-' (a directory cannot be
    stdout) and are created later by the command itself.
    """
    resolved = {}
    for name in files:
        path = getattr(args, name, None)
        if path and path != "-":
            parent = os.path.dirname(path) or "."
            if not os.path.isdir(parent):
                raise SystemExit(
                    f"error: output directory {parent!r} does not exist")
        resolved[name] = path
    for name in dirs:
        dest = "out" if name == "out_dir" else name
        path = getattr(args, dest, None)
        if path == "-":
            raise SystemExit(
                "error: this flag names a directory; '-' (stdout) is "
                "not valid here")
        resolved[name] = path
    return resolved


@contextmanager
def open_output(path: Optional[str]):
    """A writable text handle for ``path``; None or '-' yields stdout."""
    if path is None or path == "-":
        yield sys.stdout
    else:
        with open(path, "w") as handle:
            yield handle


def _parse_hostport(value: str,
                    default_host: str = "127.0.0.1") -> Tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep:
        host, port = default_host, value
    if not port.isdigit():
        raise SystemExit(f"error: expected HOST:PORT, got {value!r}")
    return host or default_host, int(port)


def _add_obs_options(parser) -> None:
    """Observability options shared by the simulating commands."""
    add_output_args(parser, "metrics_out", "trace_out")
    parser.add_argument("--obs-level", choices=("quantum", "instruction"),
                        default="quantum",
                        help="metric granularity; 'instruction' adds "
                             "per-opcode-group counts but single-steps "
                             "the ISS (slow); only takes effect together "
                             "with --metrics-out / --trace-out")


def _make_obs(args):
    """Build an Observability from CLI flags, or None if none requested."""
    if not (args.metrics_out or args.trace_out):
        return None
    resolve_outputs(args, files=("metrics_out", "trace_out"))
    from repro.obs import Observability

    return Observability(trace=args.trace_out is not None,
                         level=args.obs_level)


def _write_obs(obs, args) -> None:
    if obs is None:
        return
    if args.metrics_out:
        obs.write_metrics(args.metrics_out)
        if args.metrics_out != "-":
            print(f"metrics: {args.metrics_out}")
    if args.trace_out:
        obs.write_trace(args.trace_out)
        if args.trace_out != "-":
            print(f"trace: {args.trace_out} "
                  f"({len(obs.tracer.events())} events, "
                  f"{obs.tracer.dropped} dropped)")


def _cmd_run(args) -> int:
    with open(args.source) as handle:
        program = assemble(handle.read(), base=args.base)
    policy = _load_policy(args.policy)
    obs = _make_obs(args)
    # stream recording needs a record-mode engine (a raise-mode engine
    # would truncate the stream before its final packets)
    record = args.record or args.record_events is not None
    config = PlatformConfig(policy=policy,
                            engine_mode=RECORD if record else RAISE,
                            obs=obs, dift_mode=args.dift_mode,
                            jit=args.jit,
                            record_events=args.record_events)
    platform = Platform.from_config(config)
    platform.load(program)
    if args.uart_input:
        platform.uart.feed(args.uart_input.encode())
    result = platform.run(max_instructions=args.max_instructions)
    print(f"stopped: {result.reason} (exit={result.exit_code}) after "
          f"{result.instructions} instructions, "
          f"{result.sim_time.to_ms():.3f} ms simulated, "
          f"{result.mips:.2f} MIPS host")
    if platform.console():
        print(f"uart: {platform.console()!r}")
    for violation in result.violations:
        print(f"violation: {violation}")
    if args.record_events is not None:
        # terminal stops already sealed it; budget/idle stops seal here
        platform.finish_recording()
        print(f"event stream: {args.record_events} "
              f"({platform._recorder.count} packets)")
    _write_obs(obs, args)
    return 1 if result.violations else 0


def _cmd_table1(args) -> int:
    from repro.bench import table1

    results = table1.run_suite()
    print(table1.format_table(results))
    missed = [r for r in results if r.result == "MISSED"]
    return 1 if missed else 0


def _cmd_table2(args) -> int:
    from repro.bench.table2 import (
        format_against_paper,
        format_table,
        run_table2,
    )

    rows = run_table2(scale=args.scale)
    print(format_table(rows))
    print()
    print(format_against_paper(rows))
    return 0


def _cmd_casestudy(args) -> int:
    from repro.casestudy import immobilizer as cs

    obs = _make_obs(args)
    results = cs.run_case_study(obs=obs, dift_mode=args.dift_mode)
    print(cs.format_report(results))
    _write_obs(obs, args)
    recovered = cs.capture_and_brute_force()
    print()
    print(f"brute force through the baseline-policy gap: recovered PIN "
          f"byte {recovered:#04x} (actual {cs.PIN[0]:#04x})")
    return 0 if all(r.as_expected for r in results) else 1


def _cmd_report(args) -> int:
    from repro.bench.report import generate, render_markdown

    results = generate(scale=args.scale)
    markdown = render_markdown(results)
    resolve_outputs(args, files=("output",))
    with open_output(args.output) as handle:
        handle.write(markdown if markdown.endswith("\n")
                     else markdown + "\n")
    if args.output and args.output != "-":
        print(f"wrote {args.output}")
    ok = (results["table1"]["missed"] == 0
          and results["casestudy"]["all_as_expected"]
          and results["verification"]["fuzz_sound"]
          == results["verification"]["fuzz_total"])
    return 0 if ok else 1


def _cmd_locdelta(args) -> int:
    from repro.bench import locdelta

    report = locdelta.analyze()
    print(report.summary())
    return 0


def _cmd_differential(args) -> int:
    from repro.verify.differential import sweep
    from repro.verify.reference import compare_with_iss

    results = sweep(range(args.seeds), n_instructions=args.length)
    failures = [r for r in results if not r.equivalent]
    total_instructions = sum(r.instructions for r in results)
    print(f"VP vs VP+: differential-tested {len(results)} programs "
          f"({total_instructions} instructions total): "
          f"{len(results) - len(failures)} equivalent")
    for failure in failures:
        print(f"  seed {failure.seed}: {failure.mismatch}")
    if args.oracle:
        oracle_results = [compare_with_iss(seed, n_instructions=args.length)
                          for seed in range(args.seeds)]
        oracle_failures = [r for r in oracle_results if not r.equivalent]
        print(f"ISS vs reference oracle: "
              f"{len(oracle_results) - len(oracle_failures)}/"
              f"{len(oracle_results)} equivalent")
        for failure in oracle_failures:
            print(f"  seed {failure.seed}: {failure.mismatch}")
        failures = failures + oracle_failures
    return 1 if failures else 0


def _cmd_policyfuzz(args) -> int:
    from repro.verify.policy_fuzz import fuzz_immobilizer, summarize

    outcomes = fuzz_immobilizer(n_runs=args.runs, seed=args.seed)
    print(summarize(outcomes))
    return 0 if all(o.sound for o in outcomes) else 1


def _cmd_fuzz(args) -> int:
    """Adversarial corpus generation: generate, oracle-check, shrink."""
    import hashlib

    from repro.gen import generate_corpus, run_case, save_case, shrink
    from repro.gen.corpus import case_document, default_corpus_dir, dump_case

    resolve_outputs(args, dirs=("out_dir",))
    cases = generate_corpus(args.seed, args.count)
    distinct = {case.spec_hash for case in cases}
    digest = hashlib.sha256()
    for case in cases:
        digest.update(dump_case(case_document(case)).encode())
    print(f"fuzz: seed={args.seed}: {len(cases)} cases, "
          f"{len(distinct)} distinct spec hashes")
    print(f"corpus digest: {digest.hexdigest()}")
    if args.out:
        for case in cases:
            save_case(args.out, case)
        print(f"wrote {len(cases)} case files to {args.out}/")

    failures = []
    for n, case in enumerate(cases, start=1):
        verdict = run_case(case, budget=args.budget)
        if not verdict.passed:
            failures.append(verdict)
            print(f"FAIL {verdict.describe()}")
        if not args.quiet and n % 50 == 0 and n < len(cases):
            print(f"  ... {n}/{len(cases)} cases checked")
    print(f"oracles: {len(cases) - len(failures)}/{len(cases)} green "
          "(invisibility, mode-equivalence, detection)")

    if failures and not args.no_shrink:
        corpus_dir = args.corpus_dir or default_corpus_dir()
        for verdict in failures:
            small, small_verdict = shrink(verdict.case, verdict)
            note = "failed: " + ", ".join(sorted(small_verdict.failures))
            path = save_case(corpus_dir, small, origin="shrunk", note=note)
            print(f"shrunk {verdict.case.name} -> minimal repro {path}")
    return 1 if failures else 0


def _cmd_campaign_run(args) -> int:
    from repro.campaign import (
        MatrixError,
        completed_ids,
        load_jsonl,
        load_matrix,
        run_campaign,
        run_campaign_distributed,
        write_outputs,
    )
    from repro.campaign.cache import CacheError, open_cache
    from repro.campaign.report import JSONL_NAME

    try:
        matrix = load_matrix(args.matrix)
        specs = matrix.jobs()
    except MatrixError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    resolve_outputs(args, dirs=("out_dir",))
    try:
        cache = open_cache(args.cache_dir,
                           disabled=args.no_cache or not matrix.cache)
    except CacheError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    os.makedirs(args.out, exist_ok=True)
    jsonl_path = os.path.join(args.out, JSONL_NAME)

    total = len(specs)
    prior = []
    if args.resume is not None:
        resume_path = (jsonl_path if args.resume == "auto"
                       else args.resume)
        if os.path.exists(resume_path):
            # any terminal record counts as done: crashed already
            # exhausted its retries, timeout is deliberately final
            wanted = {spec.job_id for spec in specs}
            prior = [record
                     for record in load_jsonl(resume_path, tolerant=True)
                     if record.job.job_id in wanted]
            done = completed_ids(prior)
            specs = [spec for spec in specs if spec.job_id not in done]
            print(f"resume: {len(done)} of {total} jobs already "
                  f"recorded in {resume_path}; {len(specs)} left to run")
        else:
            print(f"resume: no prior results at {resume_path}; "
                  "running the full matrix")

    progress = None if args.quiet else print
    warm = matrix.warm_start or args.warm_start
    records = list(prior)
    wall = 0.0
    cache_hits = 0
    if specs:
        # stream every terminal record to the JSONL as it lands so an
        # interrupted campaign can --resume from whatever finished
        with open(jsonl_path, "w", buffering=1) as stream:
            def emit(record) -> None:
                stream.write(json.dumps(record.to_json(),
                                        sort_keys=True) + "\n")

            for record in prior:
                emit(record)
            if args.listen:
                host, port = _parse_hostport(args.listen)
                result = run_campaign_distributed(
                    specs, host=host, port=port,
                    timeout=args.timeout, retries=args.retries,
                    warm_start=warm, cache=cache,
                    on_record=emit, progress=progress)
            else:
                result = run_campaign(
                    specs, jobs=args.jobs,
                    log_dir=os.path.join(args.out, "logs"),
                    timeout=args.timeout, retries=args.retries,
                    progress=progress, warm_start=warm,
                    cache=cache, on_record=emit)
        records += result.records
        wall = result.wall_seconds
        cache_hits = result.cache_hits

    document = write_outputs(args.out, records, wall_seconds=wall)
    counts = document["jobs"]["by_status"]
    summary = ", ".join(f"{counts[status]} {status}"
                        for status in ("ok", "failed", "crashed", "timeout")
                        if counts.get(status))
    mode_note = (f"--listen {args.listen}" if args.listen
                 else f"--jobs {args.jobs}")
    print(f"campaign: {len(records)} jobs in "
          f"{wall:.2f}s with {mode_note}: {summary}")
    if cache is not None:
        print(f"cache: {cache_hits} of {len(records)} jobs served from "
              f"{cache.root}")
    if prior:
        print(f"resume: {len(prior)} records carried over")
    print(f"results: {args.out}/campaign.jsonl, {args.out}/aggregate.json")
    for job_id in document["jobs"]["not_ok"]:
        print(f"  not ok: {job_id}")
    if args.strict and any(not record.ok for record in records):
        print("error: --strict and not every job is ok", file=sys.stderr)
        return 1
    return 0


def _cmd_worker(args) -> int:
    from repro.campaign import run_worker

    host, port = _parse_hostport(args.connect)
    progress = None if args.quiet else print
    try:
        stats = run_worker(host, port, name=args.name,
                           heartbeat=args.heartbeat,
                           connect_timeout=args.connect_timeout,
                           once=args.once, progress=progress)
    except ConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    by_status = ", ".join(f"{count} {status}" for status, count
                          in stats["by_status"].items()) or "none"
    print(f"worker: {stats['jobs']} jobs ({by_status})")
    return 0


def _cmd_serve(args) -> int:
    from repro.campaign import serve
    from repro.campaign.cache import CacheError, open_cache

    try:
        cache = open_cache(args.cache_dir, disabled=args.no_cache)
    except CacheError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        serve(host=args.host, port=args.port,
              worker_host=args.worker_host, worker_port=args.worker_port,
              cache=cache, local_workers=args.local_workers,
              data_dir=args.data_dir, progress=print)
    except KeyboardInterrupt:
        # a second Ctrl-C while the first is already shutting things
        # down: serve()'s finally block has run, nothing left to do
        pass
    return 0


def _snapshot_platform(args) -> Platform:
    """Build the platform ``snapshot save`` will checkpoint."""
    from repro.obs import Observability

    if bool(args.workload) == bool(args.source):
        raise SystemExit(
            "error: give exactly one of --workload NAME / --source FILE")
    if args.workload:
        from repro.bench.workloads import get_workload

        workload = get_workload(args.workload)
        dift = not args.plain
        return workload.make_platform(
            args.scale, dift, obs=Observability(),
            dift_mode=args.dift_mode if dift else "full",
            seed=args.seed, engine_mode=RECORD)
    with open(args.source) as handle:
        program = assemble(handle.read(), base=args.base)
    config = PlatformConfig(policy=_load_policy(args.policy),
                            engine_mode=RECORD, obs=Observability(),
                            dift_mode=args.dift_mode, seed=args.seed)
    platform = Platform.from_config(config)
    platform.load(program)
    if args.uart_input:
        platform.uart.feed(args.uart_input.encode())
    return platform


def _cmd_snapshot_save(args) -> int:
    platform = _snapshot_platform(args)
    if args.pause_at is not None:
        result = platform.run(pause_at=args.pause_at,
                              max_instructions=args.max_instructions)
        if result.reason != "paused":
            print(f"note: run ended ({result.reason}) before reaching "
                  f"{args.pause_at} instructions; snapshotting the final "
                  "state", file=sys.stderr)
    platform.save_snapshot(args.output)
    print(f"{args.output}: snapshot at instruction "
          f"{platform.total_instructions}, "
          f"{platform.kernel.now.to_ms():.3f} ms simulated")
    return 0


def _cmd_snapshot_resume(args) -> int:
    from repro.obs import Observability
    from repro.state import SnapshotError

    program = None
    externals = None
    if args.workload:
        from repro.bench.workloads import get_workload

        workload = get_workload(args.workload)
        program = workload.build(args.scale)
        externals = workload.restore_externals(args.scale)
    try:
        platform = Platform.restore(args.snapshot, obs=Observability(),
                                    program=program, externals=externals)
    except SnapshotError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if platform.stop_reason:
        # only paused / boot-state snapshots are resumable: a terminal
        # stop means the guest's SystemC process has already returned
        print(f"snapshot is of a finished run (stopped: "
              f"{platform.stop_reason} after "
              f"{platform.total_instructions} instructions); "
              "nothing to resume")
        if platform.console():
            print(f"uart: {platform.console()!r}")
        return 0
    resumed_from = platform.total_instructions
    result = platform.run(max_instructions=args.max_instructions)
    print(f"stopped: {result.reason} (exit={result.exit_code}) after "
          f"{platform.total_instructions} instructions "
          f"(resumed from {resumed_from}), "
          f"{result.sim_time.to_ms():.3f} ms simulated")
    if platform.console():
        print(f"uart: {platform.console()!r}")
    for violation in result.violations:
        print(f"violation: {violation}")
    return 1 if result.violations else 0


def _cmd_snapshot_diff(args) -> int:
    from repro import state

    try:
        first = state.load_document(args.a)
        second = state.load_document(args.b)
    except state.SnapshotError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    ignore = tuple(args.ignore or ())
    lines = state.diff_documents(first, second, ignore_prefixes=ignore)
    for line in lines:
        print(line)
    if not lines:
        print("snapshots identical"
              + (f" (ignoring {', '.join(ignore)})" if ignore else ""))
    return 1 if lines else 0


def _cmd_replay(args) -> int:
    from repro.verify.replay import format_report, run_replay_suite

    results = run_replay_suite(workloads=args.workloads or None,
                               modes=args.modes,
                               pause_at=args.pause_at,
                               max_instructions=args.max_instructions,
                               jit=args.jit)
    print(format_report(results))
    return 0 if all(r.equivalent for r in results) else 1


def _cmd_reanalyze(args) -> int:
    from repro.dift.events import StreamError
    from repro.dift.monitor import reanalyze_stream

    resolve_outputs(args, files=("json",))
    try:
        override = _load_policy(args.policy)
        result = reanalyze_stream(args.stream, policy=override)
    except (OSError, StreamError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cfg = result.header["config"]
    recorded_name = (cfg["policy"] or {}).get("name", "policy")
    policy_name = result.engine.policy.name
    print(f"{args.stream}: {result.events} packets, "
          f"guest ram {cfg['ram_size']} bytes, recorded policy "
          f"{recorded_name!r}")
    print(f"re-analysis under {policy_name!r}: "
          f"{result.engine.checks_performed} checks, "
          f"{len(result.violations)} violations, "
          f"{result.monitor.events_consumed} events consumed")
    for violation in result.violations:
        print(f"violation: {violation}")
    if args.json:
        document = {
            "stream": args.stream,
            "schema": result.header["schema"],
            "policy": policy_name,
            "recorded_policy": recorded_name,
            "events": result.events,
            "checks_performed": result.engine.checks_performed,
            "violations": [
                {"kind": v.kind, "tag": v.tag, "required": v.required,
                 "unit": v.unit, "pc": v.pc, "context": v.context}
                for v in result.violations],
        }
        with open_output(args.json) as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        if args.json != "-":
            print(f"report: {args.json}")
    return 1 if result.violations else 0


def _cmd_campaign_report(args) -> int:
    from repro.campaign import aggregate, load_jsonl, render_markdown
    from repro.campaign.report import find_jsonl

    path = find_jsonl(args.results)
    try:
        records = load_jsonl(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not records:
        print(f"error: no job records in {path}", file=sys.stderr)
        return 2
    markdown = render_markdown(records, aggregate(records))
    resolve_outputs(args, files=("output",))
    with open_output(args.output) as handle:
        handle.write(markdown)
    if args.output and args.output != "-":
        print(f"wrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VP-DIFT: DIFT for embedded binaries on a "
                    "SystemC-style RISC-V virtual prototype")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("asm", help="assemble a guest source file")
    p.add_argument("source")
    p.add_argument("-o", "--output")
    p.add_argument("--base", type=lambda x: int(x, 0), default=0)
    p.add_argument("--listing", action="store_true")
    p.set_defaults(fn=_cmd_asm)

    p = sub.add_parser("disasm", help="disassemble a flat binary")
    p.add_argument("binary")
    p.add_argument("--base", type=lambda x: int(x, 0), default=0)
    p.set_defaults(fn=_cmd_disasm)

    p = sub.add_parser("run", help="run a guest on the VP / VP+")
    p.add_argument("source")
    p.add_argument("--policy", help="JSON policy file (enables DIFT)")
    p.add_argument("--base", type=lambda x: int(x, 0), default=0)
    p.add_argument("--uart-input", default="")
    p.add_argument("--max-instructions", type=int, default=None)
    p.add_argument("--record", action="store_true",
                   help="record violations instead of raising")
    p.add_argument("--dift-mode",
                   choices=("full", "demand", "decoupled",
                            "decoupled-strict"),
                   default="full",
                   help="DIFT execution mode: 'demand' skips tag "
                        "bookkeeping while the machine holds no taint "
                        "(identical detections, lower overhead); "
                        "'decoupled' runs tag propagation on an "
                        "asynchronous monitor fed by an instruction "
                        "event stream (violations surface at quantum "
                        "boundaries); 'decoupled-strict' drains the "
                        "stream per instruction for paper-exact trap "
                        "timing")
    p.add_argument("--record-events", metavar="FILE",
                   help="write the instruction event stream to FILE as "
                        "a repro.dift.events/1 artifact for offline "
                        "re-analysis (implies --record; needs a policy)")
    p.add_argument("--jit", action="store_true",
                   help="enable the trace-compiled fast path (identical "
                        "simulation results, higher MIPS)")
    _add_obs_options(p)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("table1", help="reproduce Table I")
    p.set_defaults(fn=_cmd_table1)

    p = sub.add_parser("table2", help="reproduce Table II")
    p.add_argument("--scale", choices=("quick", "full"), default="quick")
    p.set_defaults(fn=_cmd_table2)

    p = sub.add_parser("casestudy", help="run the Section VI-A case study")
    p.add_argument("--dift-mode",
                   choices=("full", "demand", "decoupled",
                            "decoupled-strict"),
                   default="full",
                   help="DIFT execution mode for every scenario platform")
    _add_obs_options(p)
    p.set_defaults(fn=_cmd_casestudy)

    p = sub.add_parser("locdelta", help="Section V-B1 LoC measurement")
    p.set_defaults(fn=_cmd_locdelta)

    p = sub.add_parser("report",
                       help="run every experiment, emit a markdown report")
    p.add_argument("--scale", choices=("quick", "full"), default="quick")
    add_output_args(p, "output")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("differential",
                       help="VP vs VP+ differential testing")
    p.add_argument("--seeds", type=int, default=10)
    p.add_argument("--length", type=int, default=200)
    p.add_argument("--oracle", action="store_true",
                   help="also compare the ISS against the reference "
                        "interpreter")
    p.set_defaults(fn=_cmd_differential)

    p = sub.add_parser(
        "fuzz",
        help="generate an adversarial attack corpus and run the three "
             "differential oracles over every case")
    p.add_argument("--seed", type=int, default=0,
                   help="corpus seed: the same seed reproduces the "
                        "identical corpus byte-for-byte (default 0)")
    p.add_argument("--count", type=int, default=50, metavar="N",
                   help="distinct cases to generate (default 50)")
    add_output_args(p, "out_dir",
                    out_dir_help="also write every generated case "
                                 "file to DIR")
    p.add_argument("--corpus-dir", metavar="DIR",
                   help="where shrunk minimal repros of failing cases "
                        "are committed (default: tests/corpus)")
    p.add_argument("--budget", type=int, default=200_000, metavar="N",
                   help="per-run instruction budget (default 200000)")
    p.add_argument("--no-shrink", action="store_true",
                   help="report failures without shrinking them")
    p.add_argument("--quiet", action="store_true",
                   help="suppress progress lines")
    p.set_defaults(fn=_cmd_fuzz)

    p = sub.add_parser("policyfuzz",
                       help="policy stress-fuzzing of the immobilizer "
                            "firmware")
    p.add_argument("--runs", type=int, default=25)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_policyfuzz)

    p = sub.add_parser(
        "campaign",
        help="parallel simulation campaigns over a job matrix")
    csub = p.add_subparsers(dest="campaign_command", required=True)

    cp = csub.add_parser(
        "run", help="fan a job matrix out across a worker pool")
    cp.add_argument("--matrix", required=True, metavar="FILE",
                    help="JSON job matrix (repro.campaign.matrix/1)")
    cp.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes (default 1)")
    cp.add_argument("--timeout", type=float, default=None, metavar="S",
                    help="per-job wall-clock timeout override (seconds)")
    cp.add_argument("--retries", type=int, default=None, metavar="N",
                    help="retry-after-crash override")
    add_output_args(cp, "out_dir",
                    out_dir_default="campaign-out",
                    out_dir_help="output directory (JSONL, aggregate, "
                                 "worker logs; default campaign-out)")
    cp.add_argument("--strict", action="store_true",
                    help="exit 1 unless every job ended ok")
    cp.add_argument("--quiet", action="store_true",
                    help="suppress per-job progress lines")
    cp.add_argument("--warm-start", action="store_true",
                    help="boot each distinct platform configuration once, "
                         "snapshot it, and fork every job from the "
                         "snapshot (same as \"warm_start\": true in the "
                         "matrix file)")
    cp.add_argument("--cache-dir", metavar="DIR",
                    help="content-addressed result cache: jobs already "
                         "simulated under the same binary/config/seed "
                         "are served from here instead of re-running "
                         "(default: $REPRO_CACHE; off when neither is "
                         "set)")
    cp.add_argument("--no-cache", action="store_true",
                    help="ignore any configured result cache")
    cp.add_argument("--resume", nargs="?", const="auto", default=None,
                    metavar="JSONL",
                    help="treat jobs already recorded in JSONL (default: "
                         "<out>/campaign.jsonl) as done and run only the "
                         "rest; tolerates the torn last line an "
                         "interrupted campaign leaves behind")
    cp.add_argument("--listen", metavar="HOST:PORT",
                    help="run as a broker on HOST:PORT instead of a "
                         "local pool: jobs are pulled by 'repro worker "
                         "--connect' processes (possibly on other "
                         "machines); blocks until the matrix drains")
    cp.set_defaults(fn=_cmd_campaign_run)

    cp = csub.add_parser(
        "report", help="render a markdown summary from campaign results")
    cp.add_argument("--results", required=True, metavar="PATH",
                    help="campaign output directory or campaign.jsonl")
    add_output_args(cp, "output",
                    output_help="write the markdown here instead of "
                                "stdout ('-' = stdout)")
    cp.set_defaults(fn=_cmd_campaign_report)

    p = sub.add_parser(
        "worker",
        help="attach to a campaign broker and pull jobs over TCP")
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="broker address (campaign run --listen / serve)")
    p.add_argument("--name", metavar="NAME",
                   help="worker name in broker logs "
                        "(default: <host>-<pid>)")
    p.add_argument("--heartbeat", type=float, default=2.0, metavar="S",
                   help="liveness heartbeat interval (default 2s)")
    p.add_argument("--connect-timeout", type=float, default=30.0,
                   metavar="S",
                   help="keep retrying the initial connection this long "
                        "(default 30s)")
    p.add_argument("--once", action="store_true",
                   help="exit after the first completed job")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-job progress lines")
    p.set_defaults(fn=_cmd_worker)

    p = sub.add_parser(
        "serve",
        help="campaign-as-a-service: HTTP submission API over a broker")
    p.add_argument("--host", default="127.0.0.1",
                   help="HTTP bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8437,
                   help="HTTP port (default 8437)")
    p.add_argument("--worker-host", default="127.0.0.1", metavar="HOST",
                   help="interface the broker listens on for workers")
    p.add_argument("--worker-port", type=int, default=0, metavar="PORT",
                   help="broker port workers connect to (default: "
                        "ephemeral, printed at startup)")
    p.add_argument("--local-workers", type=int, default=0, metavar="N",
                   help="also spawn N worker processes in-house")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="content-addressed result cache shared by every "
                        "submitted campaign (default: $REPRO_CACHE)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore any configured result cache")
    p.add_argument("--data-dir", metavar="DIR",
                   help="broker scratch space for warm-start snapshots "
                        "(default: a temporary directory)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "snapshot", help="checkpoint/restore (save / resume / diff)")
    ssub = p.add_subparsers(dest="snapshot_command", required=True)

    sp = ssub.add_parser(
        "save", help="run to a pause point and write a snapshot file")
    sp.add_argument("-o", "--output", required=True, metavar="FILE",
                    help="snapshot destination (repro.snapshot/1 JSON)")
    sp.add_argument("--workload", metavar="NAME",
                    help="snapshot a bench-registry workload")
    sp.add_argument("--source", metavar="FILE",
                    help="snapshot a guest assembly source instead")
    sp.add_argument("--pause-at", type=int, default=None, metavar="N",
                    help="pause at the first quantum boundary where at "
                         "least N instructions have retired (default: "
                         "snapshot the boot state before the first "
                         "instruction)")
    sp.add_argument("--max-instructions", type=int, default=None)
    sp.add_argument("--scale", choices=("quick", "full"), default="quick",
                    help="workload scale (with --workload)")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--plain", action="store_true",
                    help="with --workload: run without DIFT")
    sp.add_argument("--dift-mode",
                    choices=("full", "demand", "decoupled",
                             "decoupled-strict"),
                    default="full")
    sp.add_argument("--policy", metavar="FILE",
                    help="with --source: JSON policy file (enables DIFT)")
    sp.add_argument("--base", type=lambda x: int(x, 0), default=0)
    sp.add_argument("--uart-input", default="")
    sp.set_defaults(fn=_cmd_snapshot_save)

    sp = ssub.add_parser(
        "resume", help="restore a snapshot file and keep simulating")
    sp.add_argument("snapshot")
    sp.add_argument("--workload", metavar="NAME",
                    help="workload the snapshot came from (re-attaches "
                         "program symbols and external models; required "
                         "for snapshots that carry externals)")
    sp.add_argument("--scale", choices=("quick", "full"), default="quick")
    sp.add_argument("--max-instructions", type=int, default=None)
    sp.set_defaults(fn=_cmd_snapshot_resume)

    sp = ssub.add_parser(
        "diff", help="field-level diff between two snapshot files")
    sp.add_argument("a")
    sp.add_argument("b")
    sp.add_argument("--ignore", action="append", metavar="PREFIX",
                    help="skip leaves whose dotted path starts with "
                         "PREFIX (repeatable, e.g. --ignore obs.)")
    sp.set_defaults(fn=_cmd_snapshot_diff)

    p = sub.add_parser(
        "replay",
        help="verify snapshot-resume replay equivalence (fresh process)")
    p.add_argument("--workloads", nargs="*", metavar="NAME",
                   help="bench-registry workloads (default: all)")
    p.add_argument("--modes", nargs="*",
                   choices=("plain", "full", "demand", "decoupled"),
                   default=["plain", "full", "demand", "decoupled"],
                   help="engine/DIFT variants to sweep")
    p.add_argument("--pause-at", type=int, default=9000, metavar="N",
                   help="snapshot point (instructions retired)")
    p.add_argument("--max-instructions", type=int, default=60000)
    p.add_argument("--jit", action="store_true",
                   help="run every leg with the trace compiler on "
                        "(proves the trace cache is derived state)")
    p.set_defaults(fn=_cmd_replay)

    p = sub.add_parser(
        "reanalyze",
        help="replay a recorded repro.dift.events/1 stream offline")
    p.add_argument("stream", help="event-stream file from --record-events")
    p.add_argument("--policy", metavar="FILE",
                   help="JSON policy to re-analyze under (must share the "
                        "recorded policy's class list; default: the "
                        "recorded policy, reproducing the live run)")
    p.add_argument("--json", metavar="FILE",
                   help="also write a machine-readable report to FILE")
    p.set_defaults(fn=_cmd_reanalyze)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
