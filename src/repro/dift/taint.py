"""The ``Taint`` data type (paper Fig. 3), in Python.

The paper's C++ ``Taint<T>`` pairs a value with a security tag and uses
operator overloading so that VP code like ``regs[RD] = regs[RS1] +
regs[RS2]`` transparently performs both the arithmetic *and* the tag LUB.
Python operator dunders give us the same transparency: a :class:`Taint`
behaves like an unsigned integer of a fixed byte width, and every operation
merges tags through the engine's IFP.

Peripheral models, the TLM payload layer and the policy tooling use
:class:`Taint` directly (clarity over speed).  The ISS hot loop keeps values
and tags in parallel arrays instead — an implementation detail with
identical semantics (see DESIGN.md, "Key implementation decisions").

Mixing a :class:`Taint` with a plain ``int`` is allowed; the plain operand
is treated as carrying the lattice *bottom* tag (unlabeled constant data).
"""

from __future__ import annotations

from typing import List, Union

from repro.dift.engine import DiftEngine
from repro.policy.lattice import Tag

IntLike = Union[int, "Taint"]

#: Cached per-width constants: computing ``(1 << (8*width)) - 1`` on
#: every operation shows up in the Taint-heavy peripheral paths; the four
#: legal widths make these trivial lookup tables.
_MASK = {1: 0xFF, 2: 0xFFFF, 4: 0xFFFFFFFF, 8: 0xFFFFFFFFFFFFFFFF}
_SIGN_BIT = {w: 1 << (8 * w - 1) for w in _MASK}
_MODULUS = {w: 1 << (8 * w) for w in _MASK}


class Taint:
    """An unsigned integer of ``width`` bytes carrying a security tag.

    Parameters
    ----------
    value:
        Initial value; reduced modulo ``2**(8*width)``.
    tag:
        Security class tag (dense int from the engine's lattice).
    engine:
        The DIFT engine supplying LUB/allowedFlow.
    width:
        Byte width of the underlying machine type (1, 2, 4 or 8 —
        the analogues of ``uint8_t`` … ``uint64_t``).
    """

    __slots__ = ("value", "tag", "engine", "width")

    def __init__(self, value: int, tag: Tag, engine: DiftEngine, width: int = 4):
        mask = _MASK.get(width)
        if mask is None:
            raise ValueError(f"unsupported Taint width {width}")
        self.width = width
        self.value = value & mask
        self.tag = tag
        self.engine = engine

    # ------------------------------------------------------------------ #
    # byte conversion (paper Fig. 3: to_bytes / from_bytes)
    # ------------------------------------------------------------------ #

    def to_bytes(self) -> List["Taint"]:
        """Split into ``width`` little-endian byte Taints, same tag each."""
        return [
            Taint((self.value >> (8 * i)) & 0xFF, self.tag, self.engine, width=1)
            for i in range(self.width)
        ]

    @classmethod
    def from_bytes(cls, parts: List["Taint"], engine: DiftEngine) -> "Taint":
        """Rebuild a value from byte Taints; tag = LUB of all byte tags."""
        if not parts:
            raise ValueError("from_bytes of empty byte list")
        value = 0
        tag = parts[0].tag
        lub = engine.lub
        for i, part in enumerate(parts):
            value |= (part.value & 0xFF) << (8 * i)
            tag = lub[tag][part.tag]
        return cls(value, tag, engine, width=len(parts))

    # ------------------------------------------------------------------ #
    # clearance (paper Fig. 3: check_clearance)
    # ------------------------------------------------------------------ #

    def check_clearance(self, required_tag: Tag, context: str = "") -> None:
        """Raise (or record) unless this tag may flow to ``required_tag``."""
        self.engine.check_flow(self.tag, required_tag, "Taint.check_clearance", context)

    def declassified(self, component: str, to_class: str) -> "Taint":
        """Copy of this value re-tagged via the engine's declassification."""
        new_tag = self.engine.declassify(component, to_class)
        return Taint(self.value, new_tag, self.engine, self.width)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    @property
    def mask(self) -> int:
        return _MASK[self.width]

    def signed(self) -> int:
        """Two's-complement signed interpretation of the value."""
        if self.value & _SIGN_BIT[self.width]:
            return self.value - _MODULUS[self.width]
        return self.value

    def with_value(self, value: int) -> "Taint":
        """Same tag, new value."""
        return Taint(value, self.tag, self.engine, self.width)

    def _coerce(self, other: IntLike) -> "Taint":
        """Lift a plain int to an untainted (bottom-tag) operand."""
        if isinstance(other, Taint):
            if other.engine is not self.engine:
                raise ValueError("cannot mix Taints from different DIFT engines")
            return other
        if isinstance(other, int):
            return Taint(other, self.engine.bottom_tag, self.engine, self.width)
        return NotImplemented  # type: ignore[return-value]

    def _binop(self, other: IntLike, fn) -> "Taint":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        result = fn(self.value, rhs.value) & self.mask
        tag = self.engine.lub[self.tag][rhs.tag]
        return Taint(result, tag, self.engine, self.width)

    # ------------------------------------------------------------------ #
    # arithmetic / bitwise operators — value op + tag LUB, like the paper's
    # overloaded operator+ (Fig. 3, Lines 32-37)
    # ------------------------------------------------------------------ #

    def __add__(self, other: IntLike) -> "Taint":
        return self._binop(other, lambda a, b: a + b)

    __radd__ = __add__

    def __sub__(self, other: IntLike) -> "Taint":
        return self._binop(other, lambda a, b: a - b)

    def __rsub__(self, other: IntLike) -> "Taint":
        return self._binop(other, lambda a, b: b - a)

    def __mul__(self, other: IntLike) -> "Taint":
        return self._binop(other, lambda a, b: a * b)

    __rmul__ = __mul__

    def __floordiv__(self, other: IntLike) -> "Taint":
        return self._binop(other, lambda a, b: a // b if b else self.mask)

    def __mod__(self, other: IntLike) -> "Taint":
        return self._binop(other, lambda a, b: a % b if b else a)

    def __and__(self, other: IntLike) -> "Taint":
        return self._binop(other, lambda a, b: a & b)

    __rand__ = __and__

    def __or__(self, other: IntLike) -> "Taint":
        return self._binop(other, lambda a, b: a | b)

    __ror__ = __or__

    def __xor__(self, other: IntLike) -> "Taint":
        return self._binop(other, lambda a, b: a ^ b)

    __rxor__ = __xor__

    def __lshift__(self, other: IntLike) -> "Taint":
        return self._binop(other, lambda a, b: a << (b & (8 * self.width - 1)))

    def __rshift__(self, other: IntLike) -> "Taint":
        return self._binop(other, lambda a, b: a >> (b & (8 * self.width - 1)))

    def __invert__(self) -> "Taint":
        return Taint(~self.value & self.mask, self.tag, self.engine, self.width)

    def __neg__(self) -> "Taint":
        return Taint(-self.value & self.mask, self.tag, self.engine, self.width)

    # ------------------------------------------------------------------ #
    # comparisons — the *result* of comparing tainted data is itself
    # tainted (it reveals information about the operands), so comparisons
    # return a 1-byte Taint holding 0/1.  Use ``==`` via ``eq`` to keep
    # Python hashing/equality semantics intact for containers.
    # ------------------------------------------------------------------ #

    def eq(self, other: IntLike) -> "Taint":
        rhs = self._coerce(other)
        return Taint(
            int(self.value == rhs.value),
            self.engine.lub[self.tag][rhs.tag],
            self.engine,
            width=1,
        )

    def ne(self, other: IntLike) -> "Taint":
        result = self.eq(other)
        return Taint(result.value ^ 1, result.tag, self.engine, width=1)

    def lt(self, other: IntLike) -> "Taint":
        rhs = self._coerce(other)
        return Taint(
            int(self.value < rhs.value),
            self.engine.lub[self.tag][rhs.tag],
            self.engine,
            width=1,
        )

    def lt_signed(self, other: IntLike) -> "Taint":
        rhs = self._coerce(other)
        return Taint(
            int(self.signed() < rhs.signed()),
            self.engine.lub[self.tag][rhs.tag],
            self.engine,
            width=1,
        )

    # Plain-Python equality compares value AND tag: two Taints are the same
    # observable object only if both components match.  This keeps Taint
    # usable in tests and containers without leaking through ``==``.
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Taint):
            return self.value == other.value and self.tag == other.tag
        if isinstance(other, int):
            return self.value == (other & self.mask)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.value, self.tag, self.width))

    # ------------------------------------------------------------------ #
    # conversion — mirroring the paper's implicit-cast convention: casting
    # a Taint to its plain underlying type requires bottom (e.g. LC)
    # clearance, "throwing an error otherwise" (Section V-B1).
    # ------------------------------------------------------------------ #

    def __int__(self) -> int:
        self.engine.check_flow(
            self.tag, self.engine.bottom_tag, "Taint.__int__",
            "implicit cast to untainted type",
        )
        return self.value

    def __index__(self) -> int:
        return self.__int__()

    def expose(self) -> int:
        """Read the raw value *without* a clearance check.

        Only trusted infrastructure (peripheral internals, the test harness)
        may use this; guest-visible paths must go through ``__int__`` or an
        explicit clearance check.
        """
        return self.value

    def __repr__(self) -> str:
        name = self.engine.lattice.name_of(self.tag)
        return f"Taint({self.value:#x}, {name}, u{8 * self.width})"
