"""The DIFT engine: tag propagation and clearance checking (paper Section V).

The engine binds a :class:`~repro.policy.policy.SecurityPolicy` to run-time
machinery.  It exposes:

* the precomputed ``lub`` / ``allowed_flow`` tables of the IFP, for O(1)
  lookups in the ISS hot loop (paper Fig. 2, bottom-right boxes);
* clearance checks that either raise :class:`SecurityViolation` subclasses
  (the paper's behaviour: "triggering a runtime error upon violation") or —
  in *record* mode, used by the attack test-suites — log the violation and
  signal the caller to stop;
* the declassification capability check (only trusted HW components may
  re-tag data, Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import (
    ClearanceException,
    DeclassificationError,
    ExecutionClearanceError,
)
from repro.policy.lattice import Tag
from repro.policy.policy import SecurityPolicy

#: Engine modes: ``"raise"`` throws on violation; ``"record"`` logs and
#: returns ``False`` from checks so a harness can observe detections.
RAISE = "raise"
RECORD = "record"


@dataclass(frozen=True)
class ViolationRecord:
    """One detected security-policy violation."""

    kind: str          # "clearance" or "execution"
    tag: str           # flowing security class (by name)
    required: str      # clearance class (by name)
    unit: str          # sink name or execution unit
    pc: int            # guest PC if known, else -1
    context: str       # free-form detail

    def __str__(self) -> str:
        where = f" pc={self.pc:#010x}" if self.pc >= 0 else ""
        return (
            f"[{self.kind}] flow {self.tag} -> {self.required} denied "
            f"at {self.unit}{where}"
            + (f" ({self.context})" if self.context else "")
        )


class DiftEngine:
    """Run-time tag propagation + policy checking for one platform.

    Parameters
    ----------
    policy:
        The security policy to enforce.
    mode:
        ``"raise"`` (default) or ``"record"``; see module docstring.
    """

    def __init__(self, policy: SecurityPolicy, mode: str = RAISE):
        if mode not in (RAISE, RECORD):
            raise ValueError(f"unknown engine mode {mode!r}")
        self.policy = policy
        self.mode = mode
        self.lattice = policy.lattice
        #: ``lub[a][b]`` — tag of LUB(a, b).  Exposed raw for the hot loop.
        self.lub = self.lattice.lub_table
        #: ``flow[a][b]`` — True iff flow a -> b allowed.  Raw for hot loop.
        self.flow = self.lattice.flow_table
        self.default_tag: Tag = policy.default_tag()
        self.bottom_tag: Tag = self.lattice.tag_of(self.lattice.bottom)
        self.violations: List[ViolationRecord] = []
        #: number of clearance checks performed (all kinds)
        self.checks_performed = 0
        # lub_bytes memo: byte-tag sequence -> folded LUB.  Payload tag
        # patterns are few (mostly uniform), so the table stays tiny; the
        # size bound guards against adversarial tag churn.
        self._lub_bytes_memo: dict = {}
        # lub_translation memo: uniform tag -> 256-entry translate table
        # (bounded by the lattice size, so no cap needed)
        self._lub_translation_memo: dict = {}
        # observability; None keeps the checks free of metric lookups
        self._metrics = None
        self._tracer = None
        self._m_lub = None
        # event-stream recording hook (see repro.dift.monitor); None keeps
        # check_flow free of an extra call on un-recorded runs
        self._check_recorder = None

    def set_check_recorder(self, fn) -> None:
        """Install a hook called on every :meth:`check_flow` entry.

        ``fn(tag, required, unit, context, pc)`` fires *before* the flow
        test — sink checks are recorded whether they pass or fail, so an
        offline replay re-performs the same checks the live run did.
        """
        self._check_recorder = fn

    def attach_obs(self, obs) -> None:
        """Attach an :class:`~repro.obs.Observability` sink.

        The ISS hot loop indexes ``lub``/``flow`` raw and is *not*
        counted here; only the engine's own entry points (MMIO tag
        merges, clearance checks, violations) record metrics — all of
        them off the per-instruction path.
        """
        self._metrics = obs.metrics
        self._tracer = obs.tracer
        self._m_lub = obs.metrics.counter("engine.lub_calls")

    # ------------------------------------------------------------------ #
    # propagation
    # ------------------------------------------------------------------ #

    def lub2(self, a: Tag, b: Tag) -> Tag:
        """LUB of two tags (bounds-checked; hot paths index ``.lub`` raw)."""
        if self._m_lub is not None:
            self._m_lub.inc()
        return self.lattice.lub_tag(a, b)

    def lub_bytes(self, tags) -> Tag:
        """LUB across an iterable of byte tags (paper ``from_bytes``).

        Memoized on the tag pattern: LUB is associative and commutative
        with a precomputed dense table, so the fold for a given byte
        sequence is a pure function — peripherals replay a handful of
        patterns (uniform source tags, mostly), making the cache hit
        rate near 100% on the TLM path.
        """
        if self._m_lub is not None:
            self._m_lub.inc()
        key = bytes(tags)
        memo = self._lub_bytes_memo
        acc = memo.get(key)
        if acc is None:
            lub = self.lub
            acc = self.bottom_tag
            for t in key:
                acc = lub[acc][t]
            if len(memo) < 4096:
                memo[key] = acc
        return acc

    def lub_translation(self, value: Tag) -> bytes:
        """256-entry ``x -> lub(x, value)`` table for bulk tag merges.

        A uniform source tag (the common DMA/TLM payload) turns a
        per-byte LUB fold over a destination span into one C-speed
        ``bytes.translate`` — this is the table that makes it possible.
        Entries outside the lattice map to themselves (they cannot occur
        in a validated store).  Memoized per tag; the memo is derived
        state and never serialized.
        """
        table = self._lub_translation_memo.get(value)
        if table is None:
            lub = self.lub
            n = len(lub)
            table = bytes(lub[x][value] if x < n else x
                          for x in range(256))
            self._lub_translation_memo[value] = table
        return table

    # ------------------------------------------------------------------ #
    # checking
    # ------------------------------------------------------------------ #

    def check_flow(
        self, tag: Tag, required: Tag, unit: str, context: str = "", pc: int = -1
    ) -> bool:
        """Generic clearance check: may ``tag`` flow to ``required``?

        Returns ``True`` if allowed.  On violation: raises
        :class:`ClearanceException` in raise mode, or records and returns
        ``False`` in record mode.
        """
        self.checks_performed += 1
        if self._check_recorder is not None:
            self._check_recorder(tag, required, unit, context, pc)
        if self.flow[tag][required]:
            return True
        self._violation("clearance", tag, required, unit, pc, context)
        return False

    def check_sink(self, sink: str, tag: Tag, context: str = "", pc: int = -1) -> bool:
        """Check output clearance for a named sink (e.g. ``"uart0.tx"``)."""
        return self.check_flow(tag, self.policy.sink_tag(sink), sink, context, pc)

    def check_execution(
        self, unit: str, tag: Tag, required: Tag, pc: int = -1
    ) -> bool:
        """Execution-clearance check for ``fetch``/``branch``/``mem-addr``."""
        self.checks_performed += 1
        if self.flow[tag][required]:
            return True
        self._violation("execution", tag, required, unit, pc, "")
        return False

    def _violation(
        self, kind: str, tag: Tag, required: Tag, unit: str, pc: int, context: str
    ) -> None:
        record = ViolationRecord(
            kind=kind,
            tag=self.lattice.name_of(tag),
            required=self.lattice.name_of(required),
            unit=unit,
            pc=pc,
            context=context,
        )
        self.violations.append(record)
        if self._metrics is not None:
            self._metrics.counter(f"engine.violations.{kind}").inc()
        if self._tracer is not None:
            self._tracer.instant(
                "violation", "dift",
                args={"kind": kind, "tag": record.tag,
                      "required": record.required, "unit": unit, "pc": pc})
        if self.mode == RAISE:
            if kind == "execution":
                raise ExecutionClearanceError(tag, required, unit, pc)
            raise ClearanceException(tag, required, f"{unit} {context}".strip())

    # ------------------------------------------------------------------ #
    # declassification
    # ------------------------------------------------------------------ #

    def declassify(self, component: str, to_class: str) -> Tag:
        """Return the tag ``component`` may re-tag data to.

        Raises :class:`DeclassificationError` if the policy does not grant
        ``component`` that privilege (threat model: only trusted HW).
        """
        if not self.policy.may_declassify(component, to_class):
            raise DeclassificationError(
                f"component {component!r} may not declassify to {to_class!r}"
            )
        return self.lattice.tag_of(to_class)

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Violation log + check counter.  The ``lub_bytes`` memo is a
        pure cache (``lub_calls`` counts per call, not per miss), so it
        is deliberately not persisted."""
        return {
            "checks_performed": self.checks_performed,
            "violations": [
                {"kind": v.kind, "tag": v.tag, "required": v.required,
                 "unit": v.unit, "pc": v.pc, "context": v.context}
                for v in self.violations
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        self.checks_performed = state["checks_performed"]
        self.violations = [ViolationRecord(**v)
                           for v in state["violations"]]

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def last_violation(self) -> Optional[ViolationRecord]:
        return self.violations[-1] if self.violations else None

    def clear_violations(self) -> None:
        self.violations.clear()

    def __repr__(self) -> str:
        return (
            f"DiftEngine(policy={self.policy.name!r}, mode={self.mode!r}, "
            f"violations={len(self.violations)})"
        )
