"""Decoupled DIFT monitor: tag propagation as an event-stream consumer.

The gem5 monitoring-core exemplars (``dift_full.c``) and Wahab et al.'s
hardware-assisted ARM ecosystem run DIFT on a *separate core* fed by an
instruction-event FIFO.  :class:`DiftMonitor` reproduces that
architecture in the VP: the ISS (``dift_mode="decoupled"``) executes the
guest *architecturally only* — register and CSR tags stay untouched —
and pushes one packet per retired instruction into a FIFO; the monitor
drains the FIFO, replaying tag propagation and the three
execution-clearance checks of paper Section V-B2 against its own shadow
state, byte-for-byte the semantics of the inline ``Cpu._interp_dift``
loop.

Two synchronization disciplines:

* **async** (default): the FIFO is drained at quantum-end boundaries.
  The core may run architecturally ahead of a violation, but *all* tag
  state is monitor-owned, so on a violating run the shadow state freezes
  at exactly the inline stopping point — violation sets, register/CSR
  tags and the RAM shadow are differentially asserted identical to
  inline full DIFT.
* **strict**: the core blocks on the FIFO after every packet, restoring
  paper-exact trap timing (same trap PC, same retired-instruction
  count) at the cost of a drain per instruction.

The only points where the core must *wait* for the monitor even in
async mode are MMIO accesses: a bus transaction has irreversible
peripheral side effects, so the fetch/mem-addr clearance checks that
inline mode performs *before* the transaction are run core-side against
a fully drained monitor (``mmio_syncs`` counts them).  Live-mode drains
therefore skip those checks for MMIO packets; offline replay (no core
around) performs them itself.

The same consumer replays recorded ``repro.dift.events/1`` streams
offline — :func:`reanalyze_stream` — against the recorded policy or any
policy sharing its class numbering, without re-running the guest.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.dift.engine import RECORD, DiftEngine, ViolationRecord
from repro.dift.events import (
    EV_FAULT_ACCESS,
    EV_LOAD,
    EV_MMIO_LOAD,
    EV_MMIO_STORE,
    EV_SINK,
    EV_STEP,
    EV_STORE,
    EV_TAINT,
    EV_TAINT_FILL,
    EV_TRAP,
    read_stream,
)
from repro.dift.shadow import ShadowTags, shadow_digest
from repro.policy.serialize import policy_from_dict
from repro.vp import csr as CSR
from repro.vp import decode as D
from repro.vp.csr import CsrFile

#: FIFO depth histogram buckets (events pending at drain time).
FIFO_DEPTH_BUCKETS = (1, 64, 512, 4096, 16384, 65536)


class DiftMonitor:
    """Consumes instruction events, owning all DIFT tag state.

    Parameters
    ----------
    engine:
        The :class:`DiftEngine` performing checks (shared with the
        platform when live; fresh when replaying offline).
    store:
        Per-byte RAM tag store, indexable by offset.  Live this is the
        platform memory's ``tags`` bytearray (the monitor is the sole
        ISS-side writer); offline it is a :class:`ShadowTags`.
    ram_base:
        Guest address of ``store[0]``.
    strict:
        Record-keeping only (the *core* decides when to block); stored
        so snapshots and ``repr`` can report the discipline.
    live:
        True when fed by a running core (MMIO checks were done
        core-side; taint/sink packets are already reflected in shared
        state).  False for offline stream replay, where the monitor
        performs every check and applies every packet itself.
    recorder:
        Optional :class:`~repro.dift.events.EventWriter`; every consumed
        packet is written through, making the live FIFO double as the
        on-disk artifact.
    """

    def __init__(self, engine: DiftEngine, store, ram_base: int = 0,
                 strict: bool = False, live: bool = True, recorder=None):
        self.engine = engine
        self.store = store
        self.ram_base = ram_base
        self.strict = strict
        self.live = live
        self.recorder = recorder
        self.fifo: List[Tuple] = []
        bottom = engine.bottom_tag
        self._bottom = bottom
        self.reg_tags: List[int] = [bottom] * 32
        self.csr_tags: Dict[int, int] = {}
        # static CSR semantics oracle (known set / read-only predicate);
        # never written, so it cannot drift from the core's CsrFile
        self._csr_probe = CsrFile(bottom_tag=bottom)
        self._cache: Dict[int, D.Decoded] = {}
        self.events_consumed = 0
        self.stopped = False
        self.fatal_unit = ""
        self.drains = 0
        self.mmio_syncs = 0
        execution = engine.policy.execution
        self._fetch_req: Optional[int] = None
        self._branch_req: Optional[int] = None
        self._memaddr_req: Optional[int] = None
        if execution.fetch is not None:
            self._fetch_req = engine.policy.tag_of(execution.fetch)
        if execution.branch is not None:
            self._branch_req = engine.policy.tag_of(execution.branch)
        if execution.mem_addr is not None:
            self._memaddr_req = engine.policy.tag_of(execution.mem_addr)
        # observability (None = disabled, zero-cost)
        self._m_depth = None
        self._m_wall = None

    def attach_obs(self, obs) -> None:
        """Attach metrics: FIFO depth and drain latency histograms."""
        from repro.obs.metrics import QUANTUM_WALL_US_BUCKETS
        self._m_depth = obs.metrics.histogram("monitor.fifo_depth",
                                              FIFO_DEPTH_BUCKETS)
        self._m_wall = obs.metrics.histogram("monitor.drain_wall_us",
                                             QUANTUM_WALL_US_BUCKETS)

    # ------------------------------------------------------------------ #
    # producer-side entry points
    # ------------------------------------------------------------------ #

    def drain(self) -> int:
        """Consume every pending packet; returns the number applied.

        Empty drains return without touching counters or metrics, so
        defensive drains (snapshot, taint-ordering guards) leave no
        trace a replayed run would have to reproduce.  When a check
        turns fatal the violating packet is still recorded (it is the
        last packet of the inline stream too) and the run-ahead
        remainder of the FIFO is discarded unrecorded.
        """
        fifo = self.fifo
        if not fifo:
            return 0
        if self.stopped:
            del fifo[:]
            return 0
        started = perf_counter() if self._m_wall is not None else 0.0
        if self._m_depth is not None:
            self._m_depth.observe(len(fifo))
        recorder = self.recorder
        applied = 0
        n = 0
        depth = len(fifo)
        while n < depth:
            ev = fifo[n]
            n += 1
            wire = self._apply(ev)
            if recorder is not None:
                recorder.write(wire)
            self.events_consumed += 1
            applied += 1
            if self.stopped:
                break
        del fifo[:]
        self.drains += 1
        if self._m_wall is not None:
            self._m_wall.observe((perf_counter() - started) * 1e6)
        return applied

    def note_taint(self, offset: int, length: int, tags) -> None:
        """Memory taint listener: record a non-ISS tag write, in order.

        Drains first: any queued instruction packets predate this write,
        and their stores must land in the shadow before the new tags
        (live they already share the store, but the recorded stream must
        carry the same order).  ``tags`` is an int (uniform fill) or a
        per-byte sequence, matching :meth:`Memory.set_taint_listener`.
        """
        self.drain()
        if isinstance(tags, int):
            self.fifo.append((EV_TAINT_FILL, offset, length, tags))
        else:
            self.fifo.append((EV_TAINT, offset, bytes(tags)))

    def halt_consume(self, fatal_unit: str) -> None:
        """Core-side fatal stop (MMIO clearance check failed).

        The core already performed and recorded the check; the queued
        packets — ending with the parity packet for the violating
        instruction — are written through unapplied so the recorded
        stream stays byte-identical to an inline run, and the monitor
        freezes.
        """
        if self.recorder is not None:
            self.recorder.write_many(self.fifo)
        del self.fifo[:]
        self.stopped = True
        self.fatal_unit = fatal_unit

    # ------------------------------------------------------------------ #
    # packet application
    # ------------------------------------------------------------------ #

    def _stop(self, unit: str) -> None:
        self.stopped = True
        self.fatal_unit = unit

    def _apply(self, ev: Tuple) -> Tuple:
        """Apply one packet; returns the packet to record (the fetch
        parity rewrite is the only transformation)."""
        t = ev[0]
        if t <= EV_FAULT_ACCESS:
            return self._apply_instr(ev)
        if t == EV_TRAP:
            if self._branch_req is not None:
                htag = self.csr_tags.get(CSR.MTVEC, self._bottom)
                if not self.engine.flow[htag][self._branch_req]:
                    if not self.engine.check_execution(
                            "branch", htag, self._branch_req, ev[1]):
                        self._stop("branch")
                        return ev
            self.csr_tags[CSR.MEPC] = self._bottom
            return ev
        if t == EV_TAINT_FILL:
            if not self.live:
                self.store.fill_range(ev[1], ev[2], ev[3])
            return ev
        if t == EV_TAINT:
            if not self.live:
                self.store.set_range(ev[1], ev[2])
            return ev
        if t == EV_SINK:
            if not self.live:
                __, unit, tag, required, context, pc = ev
                if self.engine.policy.has_sink(unit):
                    self.engine.check_sink(unit, tag, context, pc)
                else:
                    self.engine.check_flow(tag, required, unit, context, pc)
            return ev
        raise ValueError(f"monitor cannot apply event type {t}")

    def _apply_instr(self, ev: Tuple) -> Tuple:
        t = ev[0]
        pc = ev[1]
        word = ev[2]
        engine = self.engine
        lub = engine.lub
        flow = engine.flow
        bottom = self._bottom
        store = self.store
        rt = self.reg_tags
        # MMIO packets: the live core already ran fetch/mem-addr checks
        # against a drained monitor before transacting; offline there is
        # no core, so the monitor performs them here.
        mmio = t >= EV_MMIO_LOAD
        checks = not mmio or not self.live

        if checks and self._fetch_req is not None:
            fetch_req = self._fetch_req
            off = pc - self.ram_base
            tsum = (store[off] | store[off + 1] | store[off + 2]
                    | store[off + 3])
            if tsum or bottom != 0:
                itag = lub[lub[lub[store[off]][store[off + 1]]]
                           [store[off + 2]]][store[off + 3]]
                if not flow[itag][fetch_req]:
                    if not engine.check_execution("fetch", itag, fetch_req,
                                                  pc):
                        self._stop("fetch")
                        # inline mode never decodes a fetch-rejected
                        # instruction, so its stream carries a bare step
                        # packet here; rewrite for byte identity
                        return (EV_STEP, pc, word)

        d = self._cache.get(word)
        if d is None:
            d = D.decode(word)
            self._cache[word] = d
        op = d[0]
        branch_req = self._branch_req
        memaddr_req = self._memaddr_req

        if mmio:
            if checks and memaddr_req is not None:
                rtag = rt[d[2]]
                if not flow[rtag][memaddr_req]:
                    if not engine.check_execution("mem-addr", rtag,
                                                  memaddr_req, pc):
                        self._stop("mem-addr")
                        return ev
            if t == EV_MMIO_LOAD and d[1]:
                rt[d[1]] = ev[4]
            return ev

        if op <= D.BGEU:
            if op >= D.BEQ:
                if branch_req is not None:
                    ctag = lub[rt[d[2]]][rt[d[3]]]
                    if not flow[ctag][branch_req]:
                        if not engine.check_execution("branch", ctag,
                                                      branch_req, pc):
                            self._stop("branch")
                            return ev
            elif op == D.JALR:
                rtag = rt[d[2]]
                if branch_req is not None and not flow[rtag][branch_req]:
                    if not engine.check_execution("branch", rtag,
                                                  branch_req, pc):
                        self._stop("branch")
                        return ev
                if d[1]:
                    rt[d[1]] = bottom
            else:  # JAL / LUI / AUIPC
                if d[1]:
                    rt[d[1]] = bottom

        elif op <= D.LHU:  # RAM load (MMIO loads returned above)
            rtag = rt[d[2]]
            if memaddr_req is not None and not flow[rtag][memaddr_req]:
                if not engine.check_execution("mem-addr", rtag, memaddr_req,
                                              pc):
                    self._stop("mem-addr")
                    return ev
            if t != EV_LOAD:
                raise ValueError(
                    f"step packet at pc={pc:#010x} carries a load opcode")
            o = ev[3] - self.ram_base
            if op == D.LW:
                tag = lub[lub[lub[store[o]][store[o + 1]]]
                          [store[o + 2]]][store[o + 3]]
            elif op in (D.LH, D.LHU):
                tag = lub[store[o]][store[o + 1]]
            else:  # LB / LBU
                tag = store[o]
            if d[1]:
                rt[d[1]] = tag

        elif op <= D.SW:  # RAM store
            rtag = rt[d[2]]
            if memaddr_req is not None and not flow[rtag][memaddr_req]:
                if not engine.check_execution("mem-addr", rtag, memaddr_req,
                                              pc):
                    self._stop("mem-addr")
                    return ev
            if t != EV_STORE:
                raise ValueError(
                    f"step packet at pc={pc:#010x} carries a store opcode")
            tag = rt[d[3]]
            o = ev[3] - self.ram_base
            if op == D.SW:
                store[o] = tag
                store[o + 1] = tag
                store[o + 2] = tag
                store[o + 3] = tag
            elif op == D.SB:
                store[o] = tag
            else:  # SH
                store[o] = tag
                store[o + 1] = tag

        elif op <= D.SRAI:  # immediate ALU + shifts: copy rs1 tag
            if d[1]:
                rt[d[1]] = rt[d[2]]

        elif op <= D.REMU:  # register ALU + M extension: LUB
            if d[1]:
                rt[d[1]] = lub[rt[d[2]]][rt[d[3]]]

        elif op == D.MRET:
            if branch_req is not None:
                etag = self.csr_tags.get(CSR.MEPC, bottom)
                if not flow[etag][branch_req]:
                    if not engine.check_execution("branch", etag, branch_req,
                                                  pc):
                        self._stop("branch")
                        return ev

        elif D.CSRRW <= op <= D.CSRRCI:
            self._apply_csr(d)

        # FENCE / ECALL / EBREAK / WFI / ILLEGAL: no tag effects
        return ev

    def _apply_csr(self, d: D.Decoded) -> None:
        """Mirror of ``Cpu._exec_csr`` tag bookkeeping."""
        op, rd, rs1, __, csr_addr = d
        if not self._csr_probe.known(csr_addr):
            return  # illegal-CSR fault: no tag effects
        bottom = self._bottom
        old_tag = self.csr_tags.get(csr_addr, bottom)
        if op in (D.CSRRW, D.CSRRS, D.CSRRC):
            src_tag = self.reg_tags[rs1]
        else:
            src_tag = bottom
        if op in (D.CSRRW, D.CSRRWI):
            new_tag = src_tag
            write = True
        else:
            new_tag = self.engine.lub[old_tag][src_tag]
            write = rs1 != 0
        if write:
            if csr_addr >= 0xC00 or csr_addr in (CSR.MHARTID, CSR.MISA):
                return  # read-only: illegal-write fault, no tag effects
            self.csr_tags[csr_addr] = new_tag
        if rd:
            self.reg_tags[rd] = old_tag

    # ------------------------------------------------------------------ #
    # inspection / checkpoint
    # ------------------------------------------------------------------ #

    def csr_tag(self, csr_addr: int) -> int:
        return self.csr_tags.get(csr_addr, self._bottom)

    def csr_tag_values(self):
        """Explicitly written CSR tags (mirror of ``CsrFile.tag_values``)."""
        return self.csr_tags.values()

    def state_dict(self) -> dict:
        return {
            "reg_tags": list(self.reg_tags),
            "csr_tags": {str(addr): tag
                         for addr, tag in self.csr_tags.items()},
            "events_consumed": self.events_consumed,
            "stopped": self.stopped,
            "fatal_unit": self.fatal_unit,
            "drains": self.drains,
            "mmio_syncs": self.mmio_syncs,
        }

    def load_state_dict(self, state: dict) -> None:
        # in-place restore: any queued packets belong to the pre-restore
        # timeline (snapshots are taken against a drained monitor)
        del self.fifo[:]
        self.reg_tags = list(state["reg_tags"])
        self.csr_tags = {int(addr): tag
                         for addr, tag in state["csr_tags"].items()}
        self.events_consumed = state["events_consumed"]
        self.stopped = state["stopped"]
        self.fatal_unit = state["fatal_unit"]
        self.drains = state["drains"]
        self.mmio_syncs = state["mmio_syncs"]

    def shadow_digest(self) -> str:
        """Canonical digest of the monitor's RAM shadow.

        Live (flat ``bytearray``) and offline (:class:`ShadowTags`)
        stores of the same run produce the same digest, so a recorded
        stream's re-analysis can be checked against the live machine
        without materializing either store flat: the offline store walks
        its presence summary (O(tainted pages)), the live one pays one
        C-speed ``count`` per page.  The digest's background is the
        store's own (an offline store keeps the *recorded* policy's
        default classification even under an override engine).
        """
        fill = (self.store.fill if isinstance(self.store, ShadowTags)
                else self.engine.default_tag)
        return shadow_digest(self.store, fill)

    def __repr__(self) -> str:
        mode = "strict" if self.strict else "async"
        return (f"DiftMonitor({mode}, live={self.live}, "
                f"consumed={self.events_consumed}, "
                f"stopped={self.stopped})")


# ---------------------------------------------------------------------- #
# offline re-analysis
# ---------------------------------------------------------------------- #

@dataclass
class ReanalysisResult:
    """Outcome of replaying a recorded event stream."""

    header: dict
    events: int
    engine: DiftEngine
    monitor: DiftMonitor

    @property
    def violations(self) -> List[ViolationRecord]:
        return self.engine.violations

    @property
    def detected(self) -> bool:
        return bool(self.engine.violations)


def reanalyze_stream(path: str, policy=None,
                     engine_mode: str = RECORD) -> ReanalysisResult:
    """Replay a recorded ``repro.dift.events/1`` stream offline.

    With ``policy=None`` the stream is analyzed under its recorded
    policy, reproducing the live run's violations exactly.  An override
    ``policy`` evaluates the same guest execution under different rules
    — it must share the recorded policy's class list (tags travel as
    numeric indices), but clearance requirements, sink assignments and
    flow relations are free to differ.  Two caveats travel with the
    format: the initial RAM classification and all peripheral-internal
    flows (recorded ``sink`` packets, MMIO read tags) are those of the
    *recorded* policy's machine.
    """
    header, events = read_stream(path)
    cfg = header["config"]
    policy_data = cfg.get("policy")
    if policy_data is None:
        raise ValueError(f"{path}: stream was recorded without a policy")
    recorded = policy_from_dict(policy_data)
    if policy is None:
        policy = recorded
    else:
        want = list(recorded.lattice.classes)
        have = list(policy.lattice.classes)
        if want != have:
            raise ValueError(
                f"re-analysis policy classes {have!r} do not match the "
                f"recorded stream's tag numbering {want!r}")
    engine = DiftEngine(policy, mode=engine_mode)
    # the guest ran on the *recorded* machine: its memory started at the
    # recorded policy's default classification
    store = ShadowTags(cfg["ram_size"], fill=recorded.default_tag())
    monitor = DiftMonitor(engine, store,
                          ram_base=header.get("ram_base", 0), live=False)
    monitor.fifo.extend(events)
    monitor.drain()
    return ReanalysisResult(header=header, events=len(events),
                            engine=engine, monitor=monitor)
