"""Dynamic Information Flow Tracking core: Taint type, engine, shadow tags."""

from repro.dift.engine import RAISE, RECORD, DiftEngine, ViolationRecord
from repro.dift.shadow import MAX_TAG, ShadowTags
from repro.dift.taint import Taint

__all__ = [
    "DiftEngine",
    "ViolationRecord",
    "RAISE",
    "RECORD",
    "Taint",
    "ShadowTags",
    "MAX_TAG",
]
