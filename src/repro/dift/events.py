"""The ``repro.dift.events/1`` instruction-event stream.

This is the FIFO vocabulary between the ISS (producer) and the decoupled
DIFT monitor (consumer) — the same minimal packet set the gem5
monitoring-core exemplars define: enough to replay *tag propagation and
clearance checking*, not the architectural computation.  The ISS already
knows every value it computes; the monitor only needs to know *which*
instruction ran (pc + encoding), where memory traffic went (address), and
what crossed the taint boundary (MMIO read tags, non-ISS taint writes,
peripheral sink checks).

The same byte sequence serves two transports:

* **live** — an in-memory queue drained at quantum-end synchronization
  points (or per-instruction in strict mode);
* **on disk** — a versioned artifact written by ``--record-events`` and
  replayed by ``repro reanalyze`` under arbitrary policies without
  re-running the guest.

Wire format: one header line of deterministic JSON (sorted keys, compact
separators, ``\\n``-terminated), then packed little-endian packets — a
type byte followed by the fields of that packet type — and a terminal
``EV_END`` packet carrying the event count.  Truncation and corruption
are both rejected with a :class:`StreamError` naming the byte offset.

The header embeds the platform configuration *minus* ``dift_mode``: how
DIFT was executed (inline vs. decoupled) is a host-side strategy, not a
property of the simulated machine, and scrubbing it makes streams from
inline and decoupled runs of the same guest byte-identical — which the
cross-mode tests assert.
"""

from __future__ import annotations

import json
import struct
from typing import List, Optional, Tuple

from repro.errors import ReproError

SCHEMA = "repro.dift.events/1"

# ---------------------------------------------------------------------- #
# packet types
# ---------------------------------------------------------------------- #

EV_STEP = 0          # (pc, word)               non-memory instruction
EV_LOAD = 1          # (pc, word, addr)         RAM load
EV_STORE = 2         # (pc, word, addr)         RAM store
EV_MMIO_LOAD = 3     # (pc, word, addr, tag)    MMIO load + payload tag
EV_MMIO_STORE = 4    # (pc, word, addr)         MMIO store
EV_FAULT_ACCESS = 5  # (pc, word, addr)         load that bus-faulted
EV_TRAP = 6          # (pc, cause)              trap entry (pc = mtvec base)
EV_TAINT_FILL = 7    # (offset, length, tag)    non-ISS uniform tag write
EV_TAINT = 8         # (offset, tags)           non-ISS per-byte tag write
EV_SINK = 9          # (unit, tag, required, context, pc)  peripheral check
EV_END = 10          # (count)                  terminal packet

_NAMES = {
    EV_STEP: "step", EV_LOAD: "load", EV_STORE: "store",
    EV_MMIO_LOAD: "mmio-load", EV_MMIO_STORE: "mmio-store",
    EV_FAULT_ACCESS: "fault-access", EV_TRAP: "trap",
    EV_TAINT_FILL: "taint-fill", EV_TAINT: "taint", EV_SINK: "sink",
    EV_END: "end",
}

_S_II = struct.Struct("<II")
_S_III = struct.Struct("<III")
_S_IIIB = struct.Struct("<IIIB")
_S_IIB = struct.Struct("<IIB")
_S_I = struct.Struct("<I")
_S_H = struct.Struct("<H")
_S_BB = struct.Struct("<BB")
_S_i = struct.Struct("<i")
_S_Q = struct.Struct("<Q")


class StreamError(ReproError):
    """A malformed ``repro.dift.events/1`` stream.

    ``offset`` is the absolute byte offset (from the start of the file,
    header line included) at which the problem was detected.
    """

    def __init__(self, message: str, offset: int):
        super().__init__(f"{message} at byte offset {offset}")
        self.offset = offset


def event_name(ev_type: int) -> str:
    """Human-readable packet-type name (for reports and errors)."""
    return _NAMES.get(ev_type, f"unknown({ev_type})")


# ---------------------------------------------------------------------- #
# encoding
# ---------------------------------------------------------------------- #

def _enc_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ValueError(f"string field too long ({len(raw)} bytes)")
    return _S_H.pack(len(raw)) + raw


def encode_event(ev: Tuple) -> bytes:
    """Pack one event tuple into its wire form (type byte + fields)."""
    t = ev[0]
    head = bytes([t])
    if t == EV_STEP:
        return head + _S_II.pack(ev[1], ev[2])
    if t in (EV_LOAD, EV_STORE, EV_MMIO_STORE, EV_FAULT_ACCESS):
        return head + _S_III.pack(ev[1], ev[2], ev[3])
    if t == EV_MMIO_LOAD:
        return head + _S_IIIB.pack(ev[1], ev[2], ev[3], ev[4])
    if t == EV_TRAP:
        return head + _S_II.pack(ev[1], ev[2])
    if t == EV_TAINT_FILL:
        return head + _S_IIB.pack(ev[1], ev[2], ev[3])
    if t == EV_TAINT:
        tags = bytes(ev[2])
        return head + _S_I.pack(ev[1]) + _S_I.pack(len(tags)) + tags
    if t == EV_SINK:
        return (head + _enc_str(ev[1]) + _S_BB.pack(ev[2], ev[3])
                + _enc_str(ev[4]) + _S_i.pack(ev[5]))
    if t == EV_END:
        return head + _S_Q.pack(ev[1])
    raise ValueError(f"unknown event type {t!r}")


# ---------------------------------------------------------------------- #
# decoding
# ---------------------------------------------------------------------- #

def _need(buf: bytes, pos: int, n: int, base: int) -> None:
    if pos + n > len(buf):
        raise StreamError("truncated event stream", base + len(buf))


def _dec_str(buf: bytes, pos: int, base: int) -> Tuple[str, int]:
    _need(buf, pos, 2, base)
    (n,) = _S_H.unpack_from(buf, pos)
    pos += 2
    _need(buf, pos, n, base)
    return buf[pos:pos + n].decode("utf-8"), pos + n


def decode_event(buf: bytes, pos: int, base: int = 0) -> Tuple[Tuple, int]:
    """Decode one event at ``buf[pos:]``; return ``(event, next_pos)``.

    ``base`` is the byte offset of ``buf[0]`` within the containing file
    so :class:`StreamError` offsets stay absolute.
    """
    start = pos
    _need(buf, pos, 1, base)
    t = buf[pos]
    pos += 1
    if t == EV_STEP:
        _need(buf, pos, _S_II.size, base)
        pc, word = _S_II.unpack_from(buf, pos)
        return (t, pc, word), pos + _S_II.size
    if t in (EV_LOAD, EV_STORE, EV_MMIO_STORE, EV_FAULT_ACCESS):
        _need(buf, pos, _S_III.size, base)
        pc, word, addr = _S_III.unpack_from(buf, pos)
        return (t, pc, word, addr), pos + _S_III.size
    if t == EV_MMIO_LOAD:
        _need(buf, pos, _S_IIIB.size, base)
        pc, word, addr, tag = _S_IIIB.unpack_from(buf, pos)
        return (t, pc, word, addr, tag), pos + _S_IIIB.size
    if t == EV_TRAP:
        _need(buf, pos, _S_II.size, base)
        pc, cause = _S_II.unpack_from(buf, pos)
        return (t, pc, cause), pos + _S_II.size
    if t == EV_TAINT_FILL:
        _need(buf, pos, _S_IIB.size, base)
        offset, length, tag = _S_IIB.unpack_from(buf, pos)
        return (t, offset, length, tag), pos + _S_IIB.size
    if t == EV_TAINT:
        _need(buf, pos, 8, base)
        (offset,) = _S_I.unpack_from(buf, pos)
        (n,) = _S_I.unpack_from(buf, pos + 4)
        pos += 8
        _need(buf, pos, n, base)
        return (t, offset, bytes(buf[pos:pos + n])), pos + n
    if t == EV_SINK:
        unit, pos = _dec_str(buf, pos, base)
        _need(buf, pos, 2, base)
        tag, required = _S_BB.unpack_from(buf, pos)
        pos += 2
        context, pos = _dec_str(buf, pos, base)
        _need(buf, pos, 4, base)
        (pc,) = _S_i.unpack_from(buf, pos)
        return (t, unit, tag, required, context, pc), pos + 4
    if t == EV_END:
        _need(buf, pos, _S_Q.size, base)
        (count,) = _S_Q.unpack_from(buf, pos)
        return (t, count), pos + _S_Q.size
    raise StreamError(f"corrupt event stream: unknown packet type {t}",
                      base + start)


# ---------------------------------------------------------------------- #
# header
# ---------------------------------------------------------------------- #

def make_header(config, extra: Optional[dict] = None) -> dict:
    """Build the stream header from a :class:`PlatformConfig`.

    ``dift_mode`` is scrubbed (see module docstring); ``extra`` keys are
    merged in at the top level (e.g. ``default_tag``).
    """
    cfg = config.to_json()
    cfg.pop("dift_mode", None)
    header = {"schema": SCHEMA, "config": cfg}
    if extra:
        header.update(extra)
    return header


def encode_header(header: dict) -> bytes:
    return (json.dumps(header, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


# ---------------------------------------------------------------------- #
# writer / reader
# ---------------------------------------------------------------------- #

class EventWriter:
    """Append-only stream writer; ``close()`` seals with ``EV_END``."""

    def __init__(self, path: str, header: dict):
        if header.get("schema") != SCHEMA:
            raise ValueError(f"header schema must be {SCHEMA!r}")
        self.path = path
        self.count = 0
        self.closed = False
        self._fh = open(path, "wb")
        self._fh.write(encode_header(header))

    def write(self, ev: Tuple) -> None:
        self._fh.write(encode_event(ev))
        self.count += 1

    def write_many(self, events) -> None:
        for ev in events:
            self.write(ev)

    def close(self) -> None:
        if self.closed:
            return
        self._fh.write(encode_event((EV_END, self.count)))
        self._fh.close()
        self.closed = True


def read_stream(path: str) -> Tuple[dict, List[Tuple]]:
    """Read and validate a recorded stream; return ``(header, events)``.

    Raises :class:`StreamError` (with a byte offset) on truncation,
    unknown packet types, a missing/duplicated terminal packet, an event
    count mismatch, or trailing garbage.
    """
    with open(path, "rb") as fh:
        blob = fh.read()
    nl = blob.find(b"\n")
    if nl < 0:
        raise StreamError("truncated event stream: unterminated header",
                          len(blob))
    try:
        header = json.loads(blob[:nl].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StreamError(f"corrupt header: {exc}", 0) from None
    if not isinstance(header, dict) or header.get("schema") != SCHEMA:
        raise StreamError(
            f"corrupt header: schema is not {SCHEMA!r}", 0)
    events: List[Tuple] = []
    pos = nl + 1
    while True:
        if pos == len(blob):
            raise StreamError(
                "truncated event stream: missing terminal packet", pos)
        ev, pos = decode_event(blob, pos)
        if ev[0] == EV_END:
            if pos != len(blob):
                raise StreamError(
                    "corrupt event stream: data after terminal packet", pos)
            if ev[1] != len(events):
                raise StreamError(
                    f"corrupt event stream: terminal count {ev[1]} != "
                    f"{len(events)} events", pos - _S_Q.size - 1)
            return header, events
        events.append(ev)
