"""Taint-liveness tracking for demand-driven DIFT.

The observation (shared with hardware-assisted DIFT designs): most
instructions of most workloads never touch tainted data.  When *nothing*
in the machine carries a non-bottom tag, tag propagation is the identity
(every LUB is ``lub(bottom, bottom) = bottom``) and every execution-
clearance check trivially passes (bottom flows to every class) — so the
full DIFT loop performs work whose outcome is statically known.

:class:`TaintLiveness` maintains the single bit that makes the fast path
sound — **is the machine clean?** — plus the bookkeeping needed to get
back to clean:

* ``clean`` — True iff every register tag, every CSR tag and every RAM
  byte tag equals the lattice bottom.  This is the *only* state in which
  skipping tag bookkeeping is exact: bottom is the unique fixed point of
  propagation (immediates produce bottom, ``lub(bottom, bottom)`` is
  bottom) and the unique tag for which every ``allowed_flow`` check
  passes without producing a violation record.
* ``dirty_pages`` — RAM pages (:data:`PAGE_SIZE` granularity) that may
  hold non-bottom tags.  Fed by the DIFT loop's store path and by the
  memory module's taint listener (TLM/DMA writes, load-time region
  classification, host-side pokes).
* a **reclaim** state machine: after taint is introduced, the machine
  periodically re-checks whether everything decayed back to bottom
  (secrets overwritten, registers recycled); on success the fast path
  resumes.  Re-checks back off exponentially so workloads that stay
  tainted pay a bounded cost.

Invalidation rules — events that clear ``clean``:

1. an MMIO read returns a non-bottom tag (classified peripheral source);
2. the memory module stores non-bottom tags (TLM write with tags, e.g. a
   DMA copy; loader region classification; host-side ``fill_tags``);
3. host code calls :meth:`taint_introduced` directly.

If the policy's *default* memory classification is not the lattice
bottom the machine can never become clean (4 MiB of non-bottom tags is
the steady state); :meth:`disable` pins the engine to the full path so
demand mode silently equals full mode — zero drift by construction.
"""

from __future__ import annotations

from typing import Set

#: Dirty-set granularity in bytes.  4 KiB balances set size (1024 pages
#: for the default 4 MiB RAM) against reclaim-scan precision.
PAGE_SIZE = 4096
_PAGE_SHIFT = 12

#: Reclaim back-off bound, in quanta between re-checks.
_MAX_BACKOFF = 64


class TaintLiveness:
    """Machine-clean tracking + reclaim for one hart."""

    __slots__ = (
        "bottom", "clean", "dirty_pages", "fast_steps", "slow_steps",
        "reclaims", "reclaim_attempts", "pages_scanned",
        "reclaim_skipped_pages", "disabled", "disabled_reason",
        "_backoff", "_quanta_since_check", "_dirty_high_water",
    )

    def __init__(self, bottom_tag: int):
        self.bottom = bottom_tag
        #: True iff every reg/CSR/memory tag is the lattice bottom.
        self.clean = True
        #: RAM pages that may carry non-bottom tags.
        self.dirty_pages: Set[int] = set()
        #: instructions retired on the fast (clean) path
        self.fast_steps = 0
        #: instructions retired on the full DIFT path
        self.slow_steps = 0
        #: successful tainted->clean transitions
        self.reclaims = 0
        #: reclaim scans performed (successful or not)
        self.reclaim_attempts = 0
        #: page scans (one C-speed ``count`` each) across all reclaims
        self.pages_scanned = 0
        #: page scans avoided because an earlier reclaim pruned the page
        #: after verifying it clean (the summary layer's win, cumulative)
        self.reclaim_skipped_pages = 0
        self.disabled = False
        self.disabled_reason = ""
        self._backoff = 1
        self._quanta_since_check = 0
        # Peak dirty-set size since the machine was last clean: the
        # baseline a flat (non-pruning) reclaim would keep re-scanning.
        self._dirty_high_water = 0

    # ------------------------------------------------------------------ #
    # invalidation (clean -> tainted)
    # ------------------------------------------------------------------ #

    def disable(self, reason: str) -> None:
        """Pin the machine to the full path (demand == full, no drift)."""
        self.disabled = True
        self.disabled_reason = reason
        self.clean = False

    def taint_introduced(self) -> None:
        """A non-bottom tag entered a register (e.g. via an MMIO read)."""
        self.clean = False
        self._backoff = 1
        self._quanta_since_check = 0

    def note_memory_taint(self, offset: int, length: int) -> None:
        """Possibly-non-bottom tags were written to RAM ``[offset, +length)``."""
        if length <= 0:
            return
        first = offset >> _PAGE_SHIFT
        last = (offset + length - 1) >> _PAGE_SHIFT
        if first == last:
            self.dirty_pages.add(first)
        else:
            self.dirty_pages.update(range(first, last + 1))
        if len(self.dirty_pages) > self._dirty_high_water:
            self._dirty_high_water = len(self.dirty_pages)
        self.clean = False
        self._backoff = 1
        self._quanta_since_check = 0

    # ------------------------------------------------------------------ #
    # reclaim (tainted -> clean)
    # ------------------------------------------------------------------ #

    def maybe_reclaim(self, cpu) -> bool:
        """Back-off-gated reclaim attempt; call once per dirty quantum."""
        if self.disabled or self.clean:
            return self.clean
        self._quanta_since_check += 1
        if self._quanta_since_check < self._backoff:
            return False
        self._quanta_since_check = 0
        if self.try_reclaim(cpu):
            return True
        if self._backoff < _MAX_BACKOFF:
            self._backoff *= 2
        return False

    def try_reclaim(self, cpu) -> bool:
        """Scan regs, CSR tags and dirty pages; go clean if all bottom.

        Register and CSR scans are O(32) / O(#written CSRs); each dirty
        page is one C-speed ``bytearray.count`` over :data:`PAGE_SIZE`
        bytes.  The dirty set is the level-1 presence summary over the
        flat RAM shadow, and reclaim scans *prune* it: a page verified
        all-bottom is dropped (the ISS store path and the memory taint
        listener re-add it on any later taint write), the scan stops at
        the first page still holding taint.  Amortized over a churning
        workload the scan cost is therefore proportional to the pages
        that are *actually* tainted, not to every page ever dirtied —
        ``reclaim_skipped_pages`` counts the avoided rescans.
        """
        if self.disabled:
            return False
        self.reclaim_attempts += 1
        bottom = self.bottom
        for tag in cpu.tags:
            if tag != bottom:
                return False
        for tag in cpu.csr.tag_values():
            if tag != bottom:
                return False
        mtags = cpu.ram_tags
        if mtags is not None:
            self.reclaim_skipped_pages += max(
                0, self._dirty_high_water - len(self.dirty_pages))
        if mtags is not None and self.dirty_pages:
            size = len(mtags)
            verified_clean = []
            tainted = False
            for page in sorted(self.dirty_pages):
                start = page << _PAGE_SHIFT
                end = min(start + PAGE_SIZE, size)
                if start >= size:
                    verified_clean.append(page)
                    continue
                self.pages_scanned += 1
                if mtags.count(bottom, start, end) != end - start:
                    tainted = True
                    break
                verified_clean.append(page)
            self.dirty_pages.difference_update(verified_clean)
            if tainted:
                return False
        self.dirty_pages.clear()
        self.clean = True
        self.reclaims += 1
        self._backoff = 1
        self._dirty_high_water = 0
        return True

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        return {
            "clean": self.clean,
            "dirty_pages": sorted(self.dirty_pages),
            "fast_steps": self.fast_steps,
            "slow_steps": self.slow_steps,
            "reclaims": self.reclaims,
            "reclaim_attempts": self.reclaim_attempts,
            "pages_scanned": self.pages_scanned,
            "reclaim_skipped_pages": self.reclaim_skipped_pages,
            "disabled": self.disabled,
            "disabled_reason": self.disabled_reason,
            "backoff": self._backoff,
            "quanta_since_check": self._quanta_since_check,
            "dirty_high_water": self._dirty_high_water,
        }

    def load_state_dict(self, state: dict) -> None:
        self.clean = state["clean"]
        self.dirty_pages = set(state["dirty_pages"])
        self.fast_steps = state["fast_steps"]
        self.slow_steps = state["slow_steps"]
        self.reclaims = state["reclaims"]
        self.reclaim_attempts = state["reclaim_attempts"]
        self.pages_scanned = state.get("pages_scanned", 0)
        self.reclaim_skipped_pages = state.get("reclaim_skipped_pages", 0)
        self.disabled = state["disabled"]
        self.disabled_reason = state["disabled_reason"]
        self._backoff = state["backoff"]
        self._quanta_since_check = state["quanta_since_check"]
        self._dirty_high_water = state.get("dirty_high_water",
                                           len(self.dirty_pages))

    def __repr__(self) -> str:
        state = ("disabled" if self.disabled
                 else "clean" if self.clean else "tainted")
        return (f"TaintLiveness({state}, dirty_pages={len(self.dirty_pages)}, "
                f"fast={self.fast_steps}, slow={self.slow_steps})")
