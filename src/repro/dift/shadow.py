"""Byte-granular shadow tag storage, sparse and page-granular.

The paper tags every memory byte (``Taint<uint8_t>``).  :class:`ShadowTags`
is the shared tag store used by peripherals and tooling: one ``uint8_t``
tag per data byte (matching the paper's ``typedef uint8_t Tag``), with
bulk operations for the TLM data path.

Storage is **copy-on-taint**: the address space is split into fixed-size
pages and a page is materialized as a ``bytearray`` only once a tag
different from the uniform fill is written to it.  Clean pages are a
shared ``None`` sentinel, so an untainted 4 MiB shadow costs a
1024-entry list instead of 4 MiB — and bulk predicates over clean pages
(:meth:`any_tainted`, :meth:`lub_range`, :meth:`uniform`) are O(1) per
page instead of O(page size).

The ISS's RAM keeps flat ``bytearray`` DMI views (see
:class:`repro.vp.memory.Memory`): per-instruction indexing must stay a
single C-level subscript.  ``ShadowTags`` serves everything *off* that
hot loop; the demand-driven fast path (``repro.dift.liveness``) is what
makes clean RAM cheap for the ISS.

All range operations validate bounds: ``start`` and ``length`` must be
non-negative and lie inside the store (``IndexError`` otherwise), and
tags must fit ``uint8`` (``ValueError``).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.policy.lattice import Tag

#: Tags are stored per byte, so the lattice may have at most 256 classes —
#: same bound as the paper's ``uint8_t`` tag.
MAX_TAG = 255

#: Copy-on-taint page size in bytes.
PAGE_SIZE = 4096
_PAGE_SHIFT = 12
_PAGE_MASK = PAGE_SIZE - 1


class ShadowTags:
    """One security tag per data byte, with bulk get/set/LUB helpers."""

    __slots__ = ("size", "fill", "_pages")

    def __init__(self, size: int, fill: Tag = 0):
        if not 0 <= fill <= MAX_TAG:
            raise ValueError(f"tag {fill} does not fit in uint8")
        if size < 0:
            raise ValueError(f"negative shadow size {size}")
        self.size = size
        self.fill = fill
        n_pages = (size + PAGE_SIZE - 1) >> _PAGE_SHIFT
        # None = clean page (every byte carries ``fill``), shared singleton.
        self._pages: List[Optional[bytearray]] = [None] * n_pages

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------ #
    # validation / page plumbing
    # ------------------------------------------------------------------ #

    def _check_range(self, start: int, length: int) -> None:
        if length < 0:
            raise IndexError(f"negative shadow range length {length}")
        if start < 0 or start + length > self.size:
            raise IndexError(
                f"shadow range [{start}, {start + length}) outside "
                f"[0, {self.size})")

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"shadow index {index} outside [0, {self.size})")

    def _page_len(self, page: int) -> int:
        """Bytes the (possibly short, final) page actually covers."""
        return min(PAGE_SIZE, self.size - (page << _PAGE_SHIFT))

    def _materialize(self, page: int) -> bytearray:
        data = self._pages[page]
        if data is None:
            data = self._pages[page] = \
                bytearray([self.fill]) * self._page_len(page)
        return data

    def _chunks(self, start: int, length: int):
        """Yield ``(page, page_offset, chunk_len)`` covering the range."""
        while length > 0:
            page = start >> _PAGE_SHIFT
            offset = start & _PAGE_MASK
            chunk = min(PAGE_SIZE - offset, length)
            yield page, offset, chunk
            start += chunk
            length -= chunk

    # ------------------------------------------------------------------ #
    # single byte
    # ------------------------------------------------------------------ #

    def get(self, index: int) -> Tag:
        self._check_index(index)
        data = self._pages[index >> _PAGE_SHIFT]
        return self.fill if data is None else data[index & _PAGE_MASK]

    def set(self, index: int, tag: Tag) -> None:
        self._check_index(index)
        if not 0 <= tag <= MAX_TAG:
            raise ValueError(f"tag {tag} does not fit in uint8")
        page = index >> _PAGE_SHIFT
        if self._pages[page] is None and tag == self.fill:
            return  # clean page stays clean
        self._materialize(page)[index & _PAGE_MASK] = tag

    # The decoupled DIFT monitor indexes its tag store per byte
    # (DMI-style); these aliases let a ShadowTags (offline replay) and a
    # flat bytearray (live RAM shadow) serve the same code path.
    __getitem__ = get
    __setitem__ = set

    # ------------------------------------------------------------------ #
    # ranges
    # ------------------------------------------------------------------ #

    def get_range(self, start: int, length: int) -> bytes:
        """Tags of ``length`` bytes starting at ``start``."""
        self._check_range(start, length)
        out = bytearray([self.fill]) * length
        pos = 0
        for page, offset, chunk in self._chunks(start, length):
            data = self._pages[page]
            if data is not None:
                out[pos:pos + chunk] = data[offset:offset + chunk]
            pos += chunk
        return bytes(out)

    def set_range(self, start: int, tags: Iterable[Tag]) -> None:
        """Write per-byte tags starting at ``start``."""
        data = bytes(tags)  # raises ValueError for tags outside uint8
        self._check_range(start, len(data))
        pos = 0
        for page, offset, chunk in self._chunks(start, len(data)):
            piece = data[pos:pos + chunk]
            if self._pages[page] is None and \
                    piece.count(self.fill) == chunk:
                pos += chunk
                continue  # writing fill to a clean page: no-op
            self._materialize(page)[offset:offset + chunk] = piece
            pos += chunk

    def fill_range(self, start: int, length: int, tag: Tag) -> None:
        """Tag ``length`` bytes starting at ``start`` with ``tag``."""
        if not 0 <= tag <= MAX_TAG:
            raise ValueError(f"tag {tag} does not fit in uint8")
        self._check_range(start, length)
        fill = self.fill
        for page, offset, chunk in self._chunks(start, length):
            if tag == fill:
                if self._pages[page] is None:
                    continue
                if chunk == self._page_len(page):
                    self._pages[page] = None  # whole page back to clean
                    continue
            self._materialize(page)[offset:offset + chunk] = \
                bytes([tag]) * chunk

    def lub_range(self, start: int, length: int, lub_table: List[List[Tag]],
                  initial: Tag = 0) -> Tag:
        """LUB of the tags of ``length`` bytes (paper ``from_bytes`` rule).

        LUB is idempotent, so a clean (or uniform) page contributes one
        table lookup regardless of its length.
        """
        self._check_range(start, length)
        acc = initial
        fill = self.fill
        for page, offset, chunk in self._chunks(start, length):
            data = self._pages[page]
            if data is None:
                acc = lub_table[acc][fill]
                continue
            for t in data[offset:offset + chunk]:
                acc = lub_table[acc][t]
        return acc

    def uniform(self, start: int, length: int) -> bool:
        """True iff all ``length`` bytes carry the same tag."""
        self._check_range(start, length)
        seen = None
        for page, offset, chunk in self._chunks(start, length):
            data = self._pages[page]
            if data is None:
                values = {self.fill}
            else:
                values = set(data[offset:offset + chunk])
            seen = values if seen is None else seen | values
            if len(seen) > 1:
                return False
        return True

    def any_tainted(self, start: int, length: int,
                    clean_tag: Optional[Tag] = None) -> bool:
        """True iff any byte in the range differs from ``clean_tag``.

        ``clean_tag`` defaults to the store's fill tag, so for a shadow
        initialized with the lattice bottom this answers "is this buffer
        tainted?" in one call — O(1) per clean page, one C-speed
        ``count`` per materialized page — instead of a per-byte Python
        loop at the call site.
        """
        self._check_range(start, length)
        clean = self.fill if clean_tag is None else clean_tag
        for page, offset, chunk in self._chunks(start, length):
            data = self._pages[page]
            if data is None:
                if self.fill != clean:
                    return True
                continue
            if data.count(clean, offset, offset + chunk) != chunk:
                return True
        return False

    # ------------------------------------------------------------------ #
    # introspection (gauges / microbenchmarks)
    # ------------------------------------------------------------------ #

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def materialized_pages(self) -> int:
        """Pages backed by real storage (ever written a non-fill tag)."""
        return sum(1 for page in self._pages if page is not None)

    def tainted_pages(self, clean_tag: Optional[Tag] = None) -> int:
        """Pages holding at least one byte that differs from ``clean_tag``."""
        clean = self.fill if clean_tag is None else clean_tag
        count = 0
        for index, data in enumerate(self._pages):
            if data is None:
                if self.fill != clean:
                    count += 1
            elif data.count(clean) != len(data):
                count += 1
        return count

    @property
    def tags(self) -> bytes:
        """Flat snapshot of every tag (read-only; for tests/tooling)."""
        return self.dump()

    def dump(self, sparse: bool = False):
        """Snapshot the tag state (for tests/tooling and checkpointing).

        ``sparse=False`` materializes the full dense tag array — fine
        for tests, pathological for checkpointing a clean multi-megabyte
        shadow.  ``sparse=True`` returns ``{page_index: bytes}`` holding
        only pages that differ from an all-``fill`` page: a clean store
        dumps as an empty dict at O(materialized pages) cost, and pages
        that were materialized but have decayed back to uniform fill are
        skipped via one C-speed ``count`` each.
        """
        if not sparse:
            return self.get_range(0, self.size)
        out = {}
        fill = self.fill
        for index, data in enumerate(self._pages):
            if data is not None and data.count(fill) != len(data):
                out[index] = bytes(data)
        return out

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        from repro.state import encode_bytes
        return {
            "size": self.size,
            "fill": self.fill,
            "pages": {str(index): encode_bytes(data)
                      for index, data in self.dump(sparse=True).items()},
        }

    def load_state_dict(self, state: dict) -> None:
        from repro.state import decode_bytes
        if state["size"] != self.size or state["fill"] != self.fill:
            raise ValueError(
                f"shadow geometry mismatch: snapshot "
                f"(size={state['size']}, fill={state['fill']}) vs store "
                f"(size={self.size}, fill={self.fill})")
        self._pages = [None] * len(self._pages)
        for key, encoded in state["pages"].items():
            self._pages[int(key)] = bytearray(decode_bytes(encoded))

    def __repr__(self) -> str:
        return (f"ShadowTags(size={self.size}, "
                f"pages={self.materialized_pages}/{len(self._pages)})")
