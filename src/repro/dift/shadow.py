"""Byte-granular shadow tag storage, sparse, page-granular, summarized.

The paper tags every memory byte (``Taint<uint8_t>``).  :class:`ShadowTags`
is the shared tag store used by peripherals and tooling: one ``uint8_t``
tag per data byte (matching the paper's ``typedef uint8_t Tag``), with
bulk operations for the TLM data path.

Storage is **copy-on-taint**: the address space is split into fixed-size
pages and a page is materialized as a ``bytearray`` only once a tag
different from the uniform fill is written to it.  Clean pages are a
shared ``None`` sentinel, so an untainted 4 MiB shadow costs a
1024-entry list instead of 4 MiB.

On top of the pages sits a **two-level presence hierarchy** (the
flag-cache idea from hardware-assisted DIFT: a tiny summary answers the
common "nothing tainted here" case without touching the dense storage):

* **Level 1** — one int used as a bitmap with a *maybe-tainted* bit per
  page.  A clear bit is a guarantee: every byte of that page carries
  ``fill``.  A set bit only means the page *may* hold taint.
* **Level 2** — per page, a 64-bit word with one bit per 64-byte
  *line*.  A fresh word is **exact**: bit ``L`` is set iff line ``L``
  holds at least one non-``fill`` byte.  A word of ``None`` is *stale*
  (a mixed write happened whose effect was not worth tracking
  incrementally) and is lazily rebuilt by one C-speed ``count`` scan of
  the page on the next summary-consulting query.

Writes maintain the summary incrementally: taint-adding writes OR line
bits in (O(1)); fill writes clear fully-covered line bits and re-count
only the (at most two) boundary lines; single-byte fill writes over a
tainted line just mark the word stale so the per-byte replay path stays
O(1).  Queries (:meth:`any_tainted`, :meth:`lub_range`,
:meth:`uniform`, :meth:`tainted_pages`, ``dump(sparse=True)``) walk the
bitmap instead of the pages and therefore cost O(tainted lines), with a
per-page *uniform-tag hint* making even a fully tainted-uniform store
one table lookup per page.

The ISS's RAM keeps flat ``bytearray`` DMI views (see
:class:`repro.vp.memory.Memory`): per-instruction indexing must stay a
single C-level subscript.  ``ShadowTags`` serves everything *off* that
hot loop; the demand-driven fast path (``repro.dift.liveness``) is what
makes clean RAM cheap for the ISS.

All range operations validate bounds: ``start`` and ``length`` must be
non-negative and lie inside the store (``IndexError`` otherwise), and
tags must fit ``uint8`` (``ValueError``).

The summary is **derived state**: :meth:`state_dict` serializes only
the sparse pages (unchanged ``repro.snapshot/1`` encoding) and
:meth:`load_state_dict` marks restored pages stale so the hierarchy is
rebuilt on demand, never round-tripped.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Union

from repro.policy.lattice import Tag

#: Tags are stored per byte, so the lattice may have at most 256 classes —
#: same bound as the paper's ``uint8_t`` tag.
MAX_TAG = 255

#: Copy-on-taint page size in bytes.
PAGE_SIZE = 4096
_PAGE_SHIFT = 12
_PAGE_MASK = PAGE_SIZE - 1

#: Level-2 summary granularity: one bit per 64-byte line, so one page's
#: summary is a single 64-bit word (mirrors a cache-line flag register).
LINE_SIZE = 64
_LINE_SHIFT = 6


class ShadowTags:
    """One security tag per data byte, with bulk get/set/LUB helpers."""

    __slots__ = ("size", "fill", "_pages", "_maybe", "_summary", "_upage",
                 "_ttab_src", "_ttabs")

    def __init__(self, size: int, fill: Tag = 0):
        if not 0 <= fill <= MAX_TAG:
            raise ValueError(f"tag {fill} does not fit in uint8")
        if size < 0:
            raise ValueError(f"negative shadow size {size}")
        self.size = size
        self.fill = fill
        n_pages = (size + PAGE_SIZE - 1) >> _PAGE_SHIFT
        # None = clean page (every byte carries ``fill``), shared singleton.
        self._pages: List[Optional[bytearray]] = [None] * n_pages
        # Level 1: maybe-tainted bit per page (clear => page is all fill).
        self._maybe = 0
        # Level 2: per-page line word; int = exact bitmap, None = stale.
        self._summary: List[Optional[int]] = [0] * n_pages
        # Uniform-tag hint: tag iff *every* byte of the page carries it.
        self._upage: List[Optional[Tag]] = [None] * n_pages
        # Memoized LUB translate tables for lub_into_range (keyed by the
        # uniform source tag; reset when a different lattice is passed).
        self._ttab_src: Optional[list] = None
        self._ttabs: Dict[int, bytes] = {}

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------ #
    # validation / page plumbing
    # ------------------------------------------------------------------ #

    def _check_range(self, start: int, length: int) -> None:
        if length < 0:
            raise IndexError(f"negative shadow range length {length}")
        if start < 0 or start + length > self.size:
            raise IndexError(
                f"shadow range [{start}, {start + length}) outside "
                f"[0, {self.size})")

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"shadow index {index} outside [0, {self.size})")

    def _page_len(self, page: int) -> int:
        """Bytes the (possibly short, final) page actually covers."""
        return min(PAGE_SIZE, self.size - (page << _PAGE_SHIFT))

    def _materialize(self, page: int) -> bytearray:
        data = self._pages[page]
        if data is None:
            data = self._pages[page] = \
                bytearray([self.fill]) * self._page_len(page)
        return data

    def _chunks(self, start: int, length: int):
        """Yield ``(page, page_offset, chunk_len)`` covering the range."""
        while length > 0:
            page = start >> _PAGE_SHIFT
            offset = start & _PAGE_MASK
            chunk = min(PAGE_SIZE - offset, length)
            yield page, offset, chunk
            start += chunk
            length -= chunk

    # ------------------------------------------------------------------ #
    # summary maintenance (level 1 + level 2)
    # ------------------------------------------------------------------ #

    def _summary_word(self, page: int) -> int:
        """Fresh level-2 word for ``page``, rebuilding a stale one.

        The rebuild is at most one C-speed ``count`` over the page (the
        all-clean case) plus one per 64-byte line when the page does
        hold taint; a page verified all-``fill`` also drops its level-1
        maybe bit so later queries skip it without re-entering here.
        """
        word = self._summary[page]
        if word is not None:
            return word
        data = self._pages[page]
        fill = self.fill
        if data is None:
            self._summary[page] = 0
            self._maybe &= ~(1 << page)
            return 0
        n = len(data)
        if data.count(fill) == n:
            self._summary[page] = 0
            self._maybe &= ~(1 << page)
            return 0
        word = 0
        for ls in range(0, n, LINE_SIZE):
            le = min(ls + LINE_SIZE, n)
            if data.count(fill, ls, le) != le - ls:
                word |= 1 << (ls >> _LINE_SHIFT)
        self._summary[page] = word
        return word

    def _note_taint(self, page: int, offset: int, chunk: int) -> None:
        """A write put non-``fill`` tags everywhere in the span."""
        self._maybe |= 1 << page
        word = self._summary[page]
        if word is not None:
            first = offset >> _LINE_SHIFT
            last = (offset + chunk - 1) >> _LINE_SHIFT
            self._summary[page] = word | (
                ((1 << (last - first + 1)) - 1) << first)
        if self._upage[page] is not None:
            self._upage[page] = None

    def _note_clean(self, page: int, offset: int, chunk: int) -> None:
        """A write put ``fill`` everywhere in the span."""
        if self._upage[page] is not None:
            self._upage[page] = None
        if not (self._maybe >> page) & 1:
            return
        word = self._summary[page]
        if word is None or word == 0:
            return  # stale stays stale; the rebuild will see the fill
        data = self._pages[page]
        fill = self.fill
        end = offset + chunk
        first = offset >> _LINE_SHIFT
        last = (end - 1) >> _LINE_SHIFT
        for line in range(first, last + 1):
            bit = 1 << line
            if not word & bit:
                continue
            ls = line << _LINE_SHIFT
            le = min(ls + LINE_SIZE, len(data))
            if offset <= ls and end >= le:
                word &= ~bit  # line fully overwritten with fill
            elif data.count(fill, ls, le) == le - ls:
                word &= ~bit  # boundary line re-counted clean
        self._summary[page] = word
        if word == 0:
            self._maybe &= ~(1 << page)

    def _note_mixed(self, page: int) -> None:
        """A write mixed ``fill`` and taint: mark the word stale."""
        self._maybe |= 1 << page
        self._summary[page] = None
        if self._upage[page] is not None:
            self._upage[page] = None

    def _full_word(self, page: int) -> int:
        lines = (self._page_len(page) + LINE_SIZE - 1) >> _LINE_SHIFT
        return (1 << lines) - 1

    def check_summary(self) -> None:
        """Validate every summary invariant against the raw pages.

        Test hook (the hypothesis differential suite calls it after
        every operation).  Raises ``AssertionError`` on the first
        violated invariant:

        * maybe bit clear  => page is all ``fill`` and its word is 0;
        * word ``None``    => maybe bit set (stale implies maybe);
        * word fresh       => exactly the per-line presence of the page
          (and a fresh 0 word never coexists with a set maybe bit);
        * uniform hint set => every byte of the page carries that tag.
        """
        fill = self.fill
        for page, data in enumerate(self._pages):
            maybe = (self._maybe >> page) & 1
            word = self._summary[page]
            clean = data is None or data.count(fill) == len(data)
            if not maybe:
                if not clean:
                    raise AssertionError(
                        f"page {page}: maybe bit clear but page tainted")
                if word != 0:
                    raise AssertionError(
                        f"page {page}: maybe bit clear but word {word!r}")
            if word is None:
                if not maybe:
                    raise AssertionError(
                        f"page {page}: stale word without maybe bit")
            else:
                expect = 0
                if data is not None:
                    for ls in range(0, len(data), LINE_SIZE):
                        le = min(ls + LINE_SIZE, len(data))
                        if data.count(fill, ls, le) != le - ls:
                            expect |= 1 << (ls >> _LINE_SHIFT)
                if word != expect:
                    raise AssertionError(
                        f"page {page}: word {word:#x} != actual {expect:#x}")
                if word == 0 and maybe:
                    raise AssertionError(
                        f"page {page}: fresh zero word with maybe bit set")
            hint = self._upage[page]
            if hint is not None:
                if data is None or data.count(hint) != len(data):
                    raise AssertionError(
                        f"page {page}: uniform hint {hint} is wrong")
        if self._maybe >> len(self._pages):
            raise AssertionError("maybe bitmap has bits past the last page")

    # ------------------------------------------------------------------ #
    # single byte
    # ------------------------------------------------------------------ #

    def get(self, index: int) -> Tag:
        self._check_index(index)
        data = self._pages[index >> _PAGE_SHIFT]
        return self.fill if data is None else data[index & _PAGE_MASK]

    def set(self, index: int, tag: Tag) -> None:
        self._check_index(index)
        if not 0 <= tag <= MAX_TAG:
            raise ValueError(f"tag {tag} does not fit in uint8")
        page = index >> _PAGE_SHIFT
        data = self._pages[page]
        offset = index & _PAGE_MASK
        if tag == self.fill:
            if data is None:
                return  # clean page stays clean
            data[offset] = tag
            if (self._maybe >> page) & 1:
                word = self._summary[page]
                if word is not None and \
                        (word >> (offset >> _LINE_SHIFT)) & 1:
                    # A single fill byte into a tainted line: whether the
                    # line went clean needs a re-count; defer it so the
                    # per-byte replay path stays O(1).
                    self._summary[page] = None
                if self._upage[page] is not None:
                    self._upage[page] = None
            return
        if data is None:
            data = self._materialize(page)
        data[offset] = tag
        self._maybe |= 1 << page
        word = self._summary[page]
        if word is not None:
            self._summary[page] = word | (1 << (offset >> _LINE_SHIFT))
        hint = self._upage[page]
        if hint is not None and hint != tag:
            self._upage[page] = None

    # The decoupled DIFT monitor indexes its tag store per byte
    # (DMI-style); these aliases let a ShadowTags (offline replay) and a
    # flat bytearray (live RAM shadow) serve the same code path.
    __getitem__ = get
    __setitem__ = set

    # ------------------------------------------------------------------ #
    # ranges
    # ------------------------------------------------------------------ #

    def get_range(self, start: int, length: int) -> bytes:
        """Tags of ``length`` bytes starting at ``start``."""
        self._check_range(start, length)
        out = bytearray([self.fill]) * length
        pos = 0
        for page, offset, chunk in self._chunks(start, length):
            data = self._pages[page]
            if data is not None:
                out[pos:pos + chunk] = data[offset:offset + chunk]
            pos += chunk
        return bytes(out)

    def set_range(self, start: int, tags: Iterable[Tag]) -> None:
        """Write per-byte tags starting at ``start``."""
        data = bytes(tags)  # raises ValueError for tags outside uint8
        self._check_range(start, len(data))
        fill = self.fill
        pos = 0
        for page, offset, chunk in self._chunks(start, len(data)):
            piece = data[pos:pos + chunk]
            pos += chunk
            n_fill = piece.count(fill)
            if n_fill == chunk:
                if self._pages[page] is None:
                    continue  # writing fill to a clean page: no-op
                self._pages[page][offset:offset + chunk] = piece
                self._note_clean(page, offset, chunk)
                continue
            self._materialize(page)[offset:offset + chunk] = piece
            if n_fill == 0:
                self._note_taint(page, offset, chunk)
            else:
                self._note_mixed(page)

    def fill_range(self, start: int, length: int, tag: Tag) -> None:
        """Tag ``length`` bytes starting at ``start`` with ``tag``."""
        if not 0 <= tag <= MAX_TAG:
            raise ValueError(f"tag {tag} does not fit in uint8")
        self._check_range(start, length)
        fill = self.fill
        for page, offset, chunk in self._chunks(start, length):
            data = self._pages[page]
            page_len = self._page_len(page)
            if tag == fill:
                if data is None:
                    continue
                if chunk == page_len:
                    # whole page back to clean: drop the storage and the
                    # summary in O(1)
                    self._pages[page] = None
                    self._summary[page] = 0
                    self._upage[page] = None
                    self._maybe &= ~(1 << page)
                    continue
                data[offset:offset + chunk] = bytes([tag]) * chunk
                self._note_clean(page, offset, chunk)
                continue
            if data is None:
                # Construct the page directly instead of materializing a
                # fill page and overwriting part of it (one allocation,
                # one pass).
                if chunk == page_len:
                    self._pages[page] = bytearray([tag]) * chunk
                else:
                    fb, tb = bytes([fill]), bytes([tag])
                    self._pages[page] = bytearray(
                        fb * offset + tb * chunk
                        + fb * (page_len - offset - chunk))
            else:
                data[offset:offset + chunk] = bytes([tag]) * chunk
            self._note_taint(page, offset, chunk)
            if chunk == page_len:
                self._upage[page] = tag  # page is provably uniform now

    def clear_range(self, start: int, length: int) -> None:
        """Reset ``length`` bytes to the store's fill tag (bulk untaint).

        DMA-sized convenience over :meth:`fill_range`: whole pages drop
        their storage in O(1), partial pages clear their summary bits
        without a rescan of the untouched remainder.
        """
        self.fill_range(start, length, self.fill)

    def _translate(self, lub_table: List[List[Tag]], value: Tag) -> bytes:
        """256-entry ``x -> lub(x, value)`` table, memoized per lattice."""
        if self._ttab_src is not lub_table:
            self._ttab_src = lub_table
            self._ttabs = {}
        table = self._ttabs.get(value)
        if table is None:
            n = len(lub_table)
            table = bytes(lub_table[x][value] if x < n else x
                          for x in range(256))
            self._ttabs[value] = table
        return table

    def lub_into_range(self, start: int, src_tags: Iterable[Tag],
                       lub_table: List[List[Tag]]) -> None:
        """Merge: ``dst[i] = lub(dst[i], src[i])`` for a DMA-sized span.

        The common DMA case — a uniform source tag — runs at C speed via
        a memoized 256-entry ``bytes.translate`` table per chunk instead
        of a per-byte Python loop; mixed sources fall back to per-byte
        folding.  The summary is maintained like any other write.
        """
        src = bytes(src_tags)
        self._check_range(start, len(src))
        fill = self.fill
        pos = 0
        for page, offset, chunk in self._chunks(start, len(src)):
            piece = src[pos:pos + chunk]
            pos += chunk
            data = self._pages[page]
            if piece.count(piece[0]) == chunk:  # uniform source
                table = self._translate(lub_table, piece[0])
                if data is None:
                    merged = table[fill]
                    if merged == fill:
                        continue  # lub(fill, v) == fill: clean page stays
                    out = bytes([merged]) * chunk
                else:
                    out = bytes(data[offset:offset + chunk]).translate(table)
            else:
                base = bytes([fill]) * chunk if data is None \
                    else bytes(data[offset:offset + chunk])
                out = bytes(lub_table[d][s] for d, s in zip(base, piece))
            n_fill = out.count(fill)
            if n_fill == chunk:
                if data is None:
                    continue
                data[offset:offset + chunk] = out
                self._note_clean(page, offset, chunk)
            else:
                self._materialize(page)[offset:offset + chunk] = out
                if n_fill == 0:
                    self._note_taint(page, offset, chunk)
                else:
                    self._note_mixed(page)

    def lub_range(self, start: int, length: int, lub_table: List[List[Tag]],
                  initial: Tag = 0) -> Tag:
        """LUB of the tags of ``length`` bytes (paper ``from_bytes`` rule).

        LUB is idempotent, so every clean line in the range contributes
        a single ``fill`` lookup; only bytes under *set* summary bits
        are folded individually.  A fully-tainted uniform page (the
        dense worst case) costs one ``count`` probe once, then one table
        lookup per call via the cached uniform-tag hint.
        """
        self._check_range(start, length)
        acc = initial
        fill = self.fill
        for page, offset, chunk in self._chunks(start, length):
            if not (self._maybe >> page) & 1:
                acc = lub_table[acc][fill]
                continue
            hint = self._upage[page]
            if hint is not None:
                # uniform page: any sub-range is uniform too
                acc = lub_table[acc][hint]
                continue
            word = self._summary_word(page)
            if not word:
                acc = lub_table[acc][fill]
                continue
            data = self._pages[page]
            if word == self._full_word(page):
                t0 = data[0]
                if data.count(t0) == len(data):
                    self._upage[page] = t0  # cache until the next write
                    acc = lub_table[acc][t0]
                    continue
            end = offset + chunk
            first = offset >> _LINE_SHIFT
            last = (end - 1) >> _LINE_SHIFT
            mask = ((1 << (last - first + 1)) - 1) << first
            if mask & ~word:
                acc = lub_table[acc][fill]  # some line in range is clean
            bits = word & mask
            while bits:
                line = (bits & -bits).bit_length() - 1
                bits &= bits - 1
                ls = max(offset, line << _LINE_SHIFT)
                le = min(end, (line + 1) << _LINE_SHIFT)
                for t in data[ls:le]:
                    acc = lub_table[acc][t]
        return acc

    def uniform(self, start: int, length: int) -> bool:
        """True iff all ``length`` bytes carry the same tag.

        Per page this is at most two C-speed probes: the fill case
        reduces to :meth:`any_tainted` (summary bitmap walk), the
        non-fill case to one ``count`` of the reference tag per chunk —
        both early-exit on the first mismatching page.
        """
        self._check_range(start, length)
        if length == 0:
            return True
        ref = self.get(start)
        if ref == self.fill:
            return not self.any_tainted(start, length)
        for page, offset, chunk in self._chunks(start, length):
            data = self._pages[page]
            if data is None:
                return False  # clean page carries fill != ref
            if data.count(ref, offset, offset + chunk) != chunk:
                return False
        return True

    def any_tainted(self, start: int, length: int,
                    clean_tag: Optional[Tag] = None) -> bool:
        """True iff any byte in the range differs from ``clean_tag``.

        ``clean_tag`` defaults to the store's fill tag, in which case
        the summary answers without touching page storage: pages with a
        clear maybe bit are skipped outright, fresh line words decide
        fully-covered lines exactly, and only the (at most two) boundary
        lines of the range ever need a C-speed ``count``.  A non-default
        ``clean_tag`` falls back to one ``count`` per materialized page
        (the summary only describes fill-relative presence).
        """
        self._check_range(start, length)
        fill = self.fill
        clean = fill if clean_tag is None else clean_tag
        if clean != fill:
            for page, offset, chunk in self._chunks(start, length):
                data = self._pages[page]
                if data is None:
                    return True  # clean page carries fill != clean
                if data.count(clean, offset, offset + chunk) != chunk:
                    return True
            return False
        for page, offset, chunk in self._chunks(start, length):
            if not (self._maybe >> page) & 1:
                continue
            word = self._summary_word(page)
            if not word:
                continue
            end = offset + chunk
            first = offset >> _LINE_SHIFT
            last = (end - 1) >> _LINE_SHIFT
            if not (word >> first) & ((1 << (last - first + 1)) - 1):
                continue
            data = self._pages[page]
            # A set bit on a *fully covered* line is a definite hit;
            # boundary lines may carry their taint outside the window.
            f_full = first if offset == (first << _LINE_SHIFT) else first + 1
            l_full = last if end >= min((last + 1) << _LINE_SHIFT,
                                        len(data)) else last - 1
            if f_full <= l_full and \
                    (word >> f_full) & ((1 << (l_full - f_full + 1)) - 1):
                return True
            for line in ((first,) if first == last else (first, last)):
                if f_full <= line <= l_full or not (word >> line) & 1:
                    continue
                ls = max(offset, line << _LINE_SHIFT)
                le = min(end, (line + 1) << _LINE_SHIFT)
                if data.count(fill, ls, le) != le - ls:
                    return True
        return False

    # ------------------------------------------------------------------ #
    # introspection (gauges / microbenchmarks)
    # ------------------------------------------------------------------ #

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def materialized_pages(self) -> int:
        """Pages backed by real storage (ever written a non-fill tag)."""
        return sum(1 for page in self._pages if page is not None)

    def tainted_pages(self, clean_tag: Optional[Tag] = None) -> int:
        """Pages holding at least one byte that differs from ``clean_tag``.

        The default (fill-relative) question walks the maybe bitmap —
        O(maybe-tainted pages), not O(pages) — rebuilding stale words as
        it goes; a non-default ``clean_tag`` scans materialized pages.
        """
        clean = self.fill if clean_tag is None else clean_tag
        if clean == self.fill:
            count = 0
            maybe = self._maybe
            while maybe:
                page = (maybe & -maybe).bit_length() - 1
                maybe &= maybe - 1
                if self._summary_word(page):
                    count += 1
            return count
        count = 0
        for data in self._pages:
            if data is None:
                count += 1  # all-fill page, fill != clean
            elif data.count(clean) != len(data):
                count += 1
        return count

    @property
    def tags(self) -> bytes:
        """Flat snapshot of every tag (read-only; for tests/tooling)."""
        return self.dump()

    def dump(self, sparse: bool = False):
        """Snapshot the tag state (for tests/tooling and checkpointing).

        ``sparse=False`` materializes the full dense tag array — fine
        for tests, pathological for checkpointing a clean multi-megabyte
        shadow.  ``sparse=True`` returns ``{page_index: bytes}`` holding
        only pages that differ from an all-``fill`` page, found by
        walking the maybe bitmap: a clean store dumps as an empty dict
        without touching any page, and pages that were materialized but
        have decayed back to uniform fill are skipped when their summary
        word (rebuilt if stale) comes out zero.
        """
        if not sparse:
            return self.get_range(0, self.size)
        out = {}
        maybe = self._maybe
        while maybe:
            page = (maybe & -maybe).bit_length() - 1
            maybe &= maybe - 1
            if self._summary_word(page):
                out[page] = bytes(self._pages[page])
        return out

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        from repro.state import encode_bytes
        return {
            "size": self.size,
            "fill": self.fill,
            "pages": {str(index): encode_bytes(data)
                      for index, data in self.dump(sparse=True).items()},
        }

    def load_state_dict(self, state: dict) -> None:
        from repro.state import decode_bytes
        if state["size"] != self.size or state["fill"] != self.fill:
            raise ValueError(
                f"shadow geometry mismatch: snapshot "
                f"(size={state['size']}, fill={state['fill']}) vs store "
                f"(size={self.size}, fill={self.fill})")
        n_pages = len(self._pages)
        self._pages = [None] * n_pages
        # The summary is derived state and deliberately not serialized:
        # restored pages come back *stale* and are rebuilt on first use.
        self._maybe = 0
        self._summary = [0] * n_pages
        self._upage = [None] * n_pages
        for key, encoded in state["pages"].items():
            page = int(key)
            self._pages[page] = bytearray(decode_bytes(encoded))
            self._maybe |= 1 << page
            self._summary[page] = None

    def __repr__(self) -> str:
        return (f"ShadowTags(size={self.size}, "
                f"pages={self.materialized_pages}/{len(self._pages)})")


def shadow_digest(store: Union[ShadowTags, bytearray, bytes],
                  fill: Tag) -> str:
    """Canonical sha256 over the *tainted pages* of a tag store.

    Hashes ``(page index, page bytes)`` for every page holding at least
    one non-``fill`` byte, plus the store geometry, so two stores with
    the same dense tag image produce the same digest without either
    being materialized flat:

    * a :class:`ShadowTags` (the decoupled monitor's offline store)
      walks its presence summary — O(tainted pages);
    * a flat ``bytearray`` (the live RAM shadow) pays one C-speed
      ``count`` per page.

    Digests are only comparable between stores sharing the same ``fill``
    background; for a ``ShadowTags`` the argument must match the store's
    own fill (``ValueError`` otherwise).
    """
    digest = hashlib.sha256()
    if isinstance(store, ShadowTags):
        if fill != store.fill:
            raise ValueError(
                f"digest background {fill} != store fill {store.fill}")
        size = store.size
        pages = store.dump(sparse=True)
        for index in sorted(pages):
            digest.update(index.to_bytes(8, "little"))
            digest.update(pages[index])
    else:
        size = len(store)
        for index in range((size + PAGE_SIZE - 1) >> _PAGE_SHIFT):
            start = index << _PAGE_SHIFT
            end = min(start + PAGE_SIZE, size)
            if store.count(fill, start, end) != end - start:
                digest.update(index.to_bytes(8, "little"))
                digest.update(bytes(store[start:end]))
    digest.update(size.to_bytes(8, "little"))
    digest.update(bytes([fill]))
    return digest.hexdigest()
