"""Byte-granular shadow tag storage.

The paper tags every memory byte (``Taint<uint8_t>``).  :class:`ShadowTags`
is the shared tag store used by RAM and peripherals: a ``bytearray`` of one
tag per data byte (tags fit in ``uint8_t``, matching the paper's
``typedef uint8_t Tag``), with bulk operations for the TLM data path.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.policy.lattice import Tag

#: Tags are stored per byte in a bytearray, so the lattice may have at most
#: 256 classes — same bound as the paper's ``uint8_t`` tag.
MAX_TAG = 255


class ShadowTags:
    """One security tag per data byte, with bulk get/set/LUB helpers."""

    __slots__ = ("tags",)

    def __init__(self, size: int, fill: Tag = 0):
        if not 0 <= fill <= MAX_TAG:
            raise ValueError(f"tag {fill} does not fit in uint8")
        self.tags = bytearray([fill]) * size

    def __len__(self) -> int:
        return len(self.tags)

    # ------------------------------------------------------------------ #
    # single byte
    # ------------------------------------------------------------------ #

    def get(self, index: int) -> Tag:
        return self.tags[index]

    def set(self, index: int, tag: Tag) -> None:
        self.tags[index] = tag

    # ------------------------------------------------------------------ #
    # ranges
    # ------------------------------------------------------------------ #

    def get_range(self, start: int, length: int) -> bytes:
        """Tags of ``length`` bytes starting at ``start``."""
        return bytes(self.tags[start:start + length])

    def set_range(self, start: int, tags: Iterable[Tag]) -> None:
        """Write per-byte tags starting at ``start``."""
        data = bytes(tags)
        self.tags[start:start + len(data)] = data

    def fill_range(self, start: int, length: int, tag: Tag) -> None:
        """Tag ``length`` bytes starting at ``start`` with ``tag``."""
        if not 0 <= tag <= MAX_TAG:
            raise ValueError(f"tag {tag} does not fit in uint8")
        self.tags[start:start + length] = bytes([tag]) * length

    def lub_range(self, start: int, length: int, lub_table: List[List[Tag]],
                  initial: Tag = 0) -> Tag:
        """LUB of the tags of ``length`` bytes (paper ``from_bytes`` rule)."""
        acc = initial
        for t in self.tags[start:start + length]:
            acc = lub_table[acc][t]
        return acc

    def uniform(self, start: int, length: int) -> bool:
        """True iff all ``length`` bytes carry the same tag."""
        window = self.tags[start:start + length]
        return len(set(window)) <= 1

    def __repr__(self) -> str:
        return f"ShadowTags(size={len(self.tags)})"
