"""RV32IM + Zicsr instruction encodings.

This module is the canonical encoding specification shared by the
assembler (:mod:`repro.asm.assembler`), the disassembler
(:mod:`repro.asm.disasm`) and the tests that cross-check the VP's decoder
against it.  Encodings follow the RISC-V unprivileged spec (RV32I base +
M extension) plus the machine-mode instructions the VP needs
(``ecall``/``ebreak``/``mret``/``wfi``/CSR ops).
"""

from __future__ import annotations

from typing import Dict, Tuple

# ---------------------------------------------------------------------- #
# registers
# ---------------------------------------------------------------------- #

#: ABI register names -> register number.
REGS: Dict[str, int] = {}
for _i in range(32):
    REGS[f"x{_i}"] = _i
REGS.update(
    zero=0, ra=1, sp=2, gp=3, tp=4,
    t0=5, t1=6, t2=7,
    s0=8, fp=8, s1=9,
    a0=10, a1=11, a2=12, a3=13, a4=14, a5=15, a6=16, a7=17,
    s2=18, s3=19, s4=20, s5=21, s6=22, s7=23, s8=24, s9=25, s10=26, s11=27,
    t3=28, t4=29, t5=30, t6=31,
)

#: CSR names -> CSR address (machine-mode subset the VP implements).
CSRS: Dict[str, int] = {
    "mstatus": 0x300,
    "misa": 0x301,
    "mie": 0x304,
    "mtvec": 0x305,
    "mscratch": 0x340,
    "mepc": 0x341,
    "mcause": 0x342,
    "mtval": 0x343,
    "mip": 0x344,
    "mcycle": 0xB00,
    "minstret": 0xB02,
    "mhartid": 0xF14,
    "cycle": 0xC00,
    "time": 0xC01,
    "instret": 0xC02,
}

# ---------------------------------------------------------------------- #
# opcode constants
# ---------------------------------------------------------------------- #

OP_LUI = 0x37
OP_AUIPC = 0x17
OP_JAL = 0x6F
OP_JALR = 0x67
OP_BRANCH = 0x63
OP_LOAD = 0x03
OP_STORE = 0x23
OP_IMM = 0x13
OP_REG = 0x33
OP_FENCE = 0x0F
OP_SYSTEM = 0x73

# ---------------------------------------------------------------------- #
# field encoders
# ---------------------------------------------------------------------- #


def _check_range(value: int, bits: int, signed: bool, what: str) -> None:
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    if not lo <= value <= hi:
        raise ValueError(f"{what} {value} out of range [{lo}, {hi}]")


def enc_r(opcode: int, funct3: int, funct7: int, rd: int, rs1: int, rs2: int) -> int:
    return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode


def enc_i(opcode: int, funct3: int, rd: int, rs1: int, imm: int) -> int:
    _check_range(imm, 12, signed=True, what="I-immediate")
    return ((imm & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode


def enc_shift(opcode: int, funct3: int, funct7: int, rd: int, rs1: int, shamt: int) -> int:
    _check_range(shamt, 5, signed=False, what="shift amount")
    return (funct7 << 25) | (shamt << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode


def enc_s(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    _check_range(imm, 12, signed=True, what="S-immediate")
    imm &= 0xFFF
    return (
        ((imm >> 5) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm & 0x1F) << 7)
        | opcode
    )


def enc_b(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    _check_range(imm, 13, signed=True, what="branch offset")
    if imm % 2:
        raise ValueError(f"branch offset {imm} not 2-byte aligned")
    imm &= 0x1FFF
    return (
        (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3F) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xF) << 8)
        | (((imm >> 11) & 1) << 7)
        | opcode
    )


def enc_u(opcode: int, rd: int, imm: int) -> int:
    if not -(1 << 19) <= imm < (1 << 20):
        raise ValueError(f"U-immediate {imm} out of range")
    return ((imm & 0xFFFFF) << 12) | (rd << 7) | opcode


def enc_j(opcode: int, rd: int, imm: int) -> int:
    _check_range(imm, 21, signed=True, what="jump offset")
    if imm % 2:
        raise ValueError(f"jump offset {imm} not 2-byte aligned")
    imm &= 0x1FFFFF
    return (
        (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xFF) << 12)
        | (rd << 7)
        | opcode
    )


# ---------------------------------------------------------------------- #
# instruction tables: mnemonic -> encoding parameters
# ---------------------------------------------------------------------- #

#: R-type: mnemonic -> (funct3, funct7)
R_OPS: Dict[str, Tuple[int, int]] = {
    "add": (0x0, 0x00),
    "sub": (0x0, 0x20),
    "sll": (0x1, 0x00),
    "slt": (0x2, 0x00),
    "sltu": (0x3, 0x00),
    "xor": (0x4, 0x00),
    "srl": (0x5, 0x00),
    "sra": (0x5, 0x20),
    "or": (0x6, 0x00),
    "and": (0x7, 0x00),
    # M extension
    "mul": (0x0, 0x01),
    "mulh": (0x1, 0x01),
    "mulhsu": (0x2, 0x01),
    "mulhu": (0x3, 0x01),
    "div": (0x4, 0x01),
    "divu": (0x5, 0x01),
    "rem": (0x6, 0x01),
    "remu": (0x7, 0x01),
}

#: I-type ALU: mnemonic -> funct3
I_ALU_OPS: Dict[str, int] = {
    "addi": 0x0,
    "slti": 0x2,
    "sltiu": 0x3,
    "xori": 0x4,
    "ori": 0x6,
    "andi": 0x7,
}

#: shift-immediate: mnemonic -> (funct3, funct7)
SHIFT_OPS: Dict[str, Tuple[int, int]] = {
    "slli": (0x1, 0x00),
    "srli": (0x5, 0x00),
    "srai": (0x5, 0x20),
}

#: loads: mnemonic -> funct3
LOAD_OPS: Dict[str, int] = {
    "lb": 0x0,
    "lh": 0x1,
    "lw": 0x2,
    "lbu": 0x4,
    "lhu": 0x5,
}

#: stores: mnemonic -> funct3
STORE_OPS: Dict[str, int] = {
    "sb": 0x0,
    "sh": 0x1,
    "sw": 0x2,
}

#: branches: mnemonic -> funct3
BRANCH_OPS: Dict[str, int] = {
    "beq": 0x0,
    "bne": 0x1,
    "blt": 0x4,
    "bge": 0x5,
    "bltu": 0x6,
    "bgeu": 0x7,
}

#: CSR ops: mnemonic -> (funct3, uses_immediate_rs1)
CSR_OPS: Dict[str, Tuple[int, bool]] = {
    "csrrw": (0x1, False),
    "csrrs": (0x2, False),
    "csrrc": (0x3, False),
    "csrrwi": (0x5, True),
    "csrrsi": (0x6, True),
    "csrrci": (0x7, True),
}

#: fixed 32-bit encodings
FIXED_OPS: Dict[str, int] = {
    "ecall": 0x00000073,
    "ebreak": 0x00100073,
    "mret": 0x30200073,
    "wfi": 0x10500073,
    "fence": 0x0FF0000F,   # fence iorw, iorw
    "fence.i": 0x0000100F,
}

#: all real (non-pseudo) mnemonics
ALL_MNEMONICS = (
    set(R_OPS) | set(I_ALU_OPS) | set(SHIFT_OPS) | set(LOAD_OPS)
    | set(STORE_OPS) | set(BRANCH_OPS) | set(CSR_OPS) | set(FIXED_OPS)
    | {"lui", "auipc", "jal", "jalr"}
)


def hi20(value: int) -> int:
    """%hi(value): upper 20 bits, compensating for lo12 sign extension."""
    return ((value + 0x800) >> 12) & 0xFFFFF


def lo12(value: int) -> int:
    """%lo(value): signed low 12 bits."""
    lo = value & 0xFFF
    return lo - 0x1000 if lo >= 0x800 else lo
