"""RV32IM disassembler.

Used for debugging guest programs, for the VP's trace mode, and by the
property-based round-trip tests (assemble → disassemble → assemble).
"""

from __future__ import annotations

from typing import List

from repro.asm import isa

_REG_NAMES = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
]

_R_BY_KEY = {(f3, f7): name for name, (f3, f7) in isa.R_OPS.items()}
_I_BY_F3 = {f3: name for name, f3 in isa.I_ALU_OPS.items()}
_LOAD_BY_F3 = {f3: name for name, f3 in isa.LOAD_OPS.items()}
_STORE_BY_F3 = {f3: name for name, f3 in isa.STORE_OPS.items()}
_BRANCH_BY_F3 = {f3: name for name, f3 in isa.BRANCH_OPS.items()}
_CSR_BY_F3 = {f3: (name, imm) for name, (f3, imm) in isa.CSR_OPS.items()}
_CSR_NAMES = {addr: name for name, addr in isa.CSRS.items()}
_FIXED_BY_WORD = {word: name for name, word in isa.FIXED_OPS.items()}


def _sext(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def decode_fields(word: int) -> dict:
    """Raw field extraction for a 32-bit instruction word."""
    return {
        "opcode": word & 0x7F,
        "rd": (word >> 7) & 0x1F,
        "funct3": (word >> 12) & 0x7,
        "rs1": (word >> 15) & 0x1F,
        "rs2": (word >> 20) & 0x1F,
        "funct7": (word >> 25) & 0x7F,
        "imm_i": _sext(word >> 20, 12),
        "imm_s": _sext(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12),
        "imm_b": _sext(
            (((word >> 31) & 1) << 12)
            | (((word >> 7) & 1) << 11)
            | (((word >> 25) & 0x3F) << 5)
            | (((word >> 8) & 0xF) << 1),
            13,
        ),
        "imm_u": word & 0xFFFFF000,
        "imm_j": _sext(
            (((word >> 31) & 1) << 20)
            | (((word >> 12) & 0xFF) << 12)
            | (((word >> 20) & 1) << 11)
            | (((word >> 21) & 0x3FF) << 1),
            21,
        ),
    }


def disassemble_word(word: int, address: int = 0) -> str:
    """One instruction word -> assembly text (canonical mnemonics)."""
    if word in _FIXED_BY_WORD:
        return _FIXED_BY_WORD[word]

    f = decode_fields(word)
    op = f["opcode"]
    rd, rs1, rs2 = _REG_NAMES[f["rd"]], _REG_NAMES[f["rs1"]], _REG_NAMES[f["rs2"]]

    if op == isa.OP_LUI:
        return f"lui {rd}, {f['imm_u'] >> 12:#x}"
    if op == isa.OP_AUIPC:
        return f"auipc {rd}, {f['imm_u'] >> 12:#x}"
    if op == isa.OP_JAL:
        return f"jal {rd}, {address + f['imm_j']:#x}"
    if op == isa.OP_JALR and f["funct3"] == 0:
        return f"jalr {rd}, {f['imm_i']}({rs1})"
    if op == isa.OP_BRANCH and f["funct3"] in _BRANCH_BY_F3:
        name = _BRANCH_BY_F3[f["funct3"]]
        return f"{name} {rs1}, {rs2}, {address + f['imm_b']:#x}"
    if op == isa.OP_LOAD and f["funct3"] in _LOAD_BY_F3:
        return f"{_LOAD_BY_F3[f['funct3']]} {rd}, {f['imm_i']}({rs1})"
    if op == isa.OP_STORE and f["funct3"] in _STORE_BY_F3:
        return f"{_STORE_BY_F3[f['funct3']]} {rs2}, {f['imm_s']}({rs1})"
    if op == isa.OP_IMM:
        f3 = f["funct3"]
        if f3 == 0x1 and f["funct7"] == 0x00:
            return f"slli {rd}, {rs1}, {f['rs2']}"
        if f3 == 0x5:
            name = "srai" if f["funct7"] == 0x20 else "srli"
            return f"{name} {rd}, {rs1}, {f['rs2']}"
        if f3 in _I_BY_F3:
            return f"{_I_BY_F3[f3]} {rd}, {rs1}, {f['imm_i']}"
    if op == isa.OP_REG:
        key = (f["funct3"], f["funct7"])
        if key in _R_BY_KEY:
            return f"{_R_BY_KEY[key]} {rd}, {rs1}, {rs2}"
    if op == isa.OP_SYSTEM and f["funct3"] in _CSR_BY_F3:
        name, uses_imm = _CSR_BY_F3[f["funct3"]]
        csr_addr = (word >> 20) & 0xFFF
        csr = _CSR_NAMES.get(csr_addr, f"{csr_addr:#x}")
        src = str(f["rs1"]) if uses_imm else rs1
        return f"{name} {rd}, {csr}, {src}"
    if op == isa.OP_FENCE:
        return "fence"
    return f".word {word:#010x}"


def disassemble(image: bytes, base: int = 0) -> List[str]:
    """Disassemble a whole image, one line per 32-bit word."""
    lines = []
    for offset in range(0, len(image) - len(image) % 4, 4):
        word = int.from_bytes(image[offset:offset + 4], "little")
        address = base + offset
        lines.append(f"{address:08x}: {word:08x}  "
                     f"{disassemble_word(word, address)}")
    return lines
