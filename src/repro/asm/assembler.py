"""A two-pass RV32IM assembler.

The paper's benchmarks are cross-compiled C binaries; our substitute guest
software is written in RISC-V assembly (partly generated programmatically),
so the repository needs a real assembler.  This one supports:

* the full RV32IM + Zicsr instruction set (see :mod:`repro.asm.isa`);
* the standard pseudo-instructions (``li``, ``la``, ``mv``, ``call``,
  ``ret``, ``beqz`` …);
* sections (``.text`` / ``.data`` / ``.bss``) laid out consecutively;
* data directives (``.word``, ``.half``, ``.byte``, ``.ascii``, ``.asciz``,
  ``.space``/``.zero``, ``.align``), symbols (``.equ``) and labels;
* constant expressions over labels with ``+ - * / % << >> & | ^ ~ ()``
  and the RISC-V relocation operators ``%hi(...)`` / ``%lo(...)``.

The result is a :class:`Program`: a flat little-endian image plus symbol
table, section map and per-address listing.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.asm import isa
from repro.errors import AssemblerError

_SECTION_ALIGN = 64


@dataclass
class Program:
    """An assembled guest binary."""

    image: bytes
    base: int
    entry: int
    symbols: Dict[str, int]
    sections: Dict[str, Tuple[int, int]]
    n_instructions: int
    listing: List[Tuple[int, int, str]] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.image)

    @property
    def end(self) -> int:
        return self.base + len(self.image)

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise AssemblerError(f"unknown symbol {name!r}") from None

    def word_at(self, address: int) -> int:
        off = address - self.base
        return int.from_bytes(self.image[off:off + 4], "little")


# --------------------------------------------------------------------- #
# expression evaluation
# --------------------------------------------------------------------- #

_TOKEN_RE = re.compile(
    r"\s*(%hi|%lo|0[xX][0-9a-fA-F]+|0[bB][01]+|\d+|'(?:\\.|[^'\\])'"
    r"|[A-Za-z_.$][A-Za-z0-9_.$]*|<<|>>|[-+*/%&|^~()])"
)

_ESCAPES = {
    "n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34,
    "a": 7, "b": 8, "f": 12, "v": 11,
}


class _ExprParser:
    """Recursive-descent parser for integer constant expressions."""

    def __init__(self, text: str, symbols: Dict[str, int], line: int):
        self.tokens: List[str] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if not match:
                if text[pos:].strip():
                    raise AssemblerError(
                        f"bad expression syntax near {text[pos:]!r}", line)
                break
            self.tokens.append(match.group(1))
            pos = match.end()
        self.pos = 0
        self.symbols = symbols
        self.line = line

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise AssemblerError("unexpected end of expression", self.line)
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise AssemblerError(f"expected {token!r}, got {got!r}", self.line)

    def parse(self) -> int:
        value = self.parse_or()
        if self.peek() is not None:
            raise AssemblerError(
                f"trailing tokens in expression: {self.tokens[self.pos:]}",
                self.line)
        return value

    def parse_or(self) -> int:
        value = self.parse_xor()
        while self.peek() == "|":
            self.next()
            value |= self.parse_xor()
        return value

    def parse_xor(self) -> int:
        value = self.parse_and()
        while self.peek() == "^":
            self.next()
            value ^= self.parse_and()
        return value

    def parse_and(self) -> int:
        value = self.parse_shift()
        while self.peek() == "&":
            self.next()
            value &= self.parse_shift()
        return value

    def parse_shift(self) -> int:
        value = self.parse_addsub()
        while self.peek() in ("<<", ">>"):
            op = self.next()
            rhs = self.parse_addsub()
            value = value << rhs if op == "<<" else value >> rhs
        return value

    def parse_addsub(self) -> int:
        value = self.parse_muldiv()
        while self.peek() in ("+", "-"):
            op = self.next()
            rhs = self.parse_muldiv()
            value = value + rhs if op == "+" else value - rhs
        return value

    def parse_muldiv(self) -> int:
        value = self.parse_unary()
        while self.peek() in ("*", "/", "%"):
            op = self.next()
            rhs = self.parse_unary()
            if op == "*":
                value *= rhs
            elif op == "/":
                if rhs == 0:
                    raise AssemblerError("division by zero in expression",
                                         self.line)
                value //= rhs
            else:
                if rhs == 0:
                    raise AssemblerError("modulo by zero in expression",
                                         self.line)
                value %= rhs
        return value

    def parse_unary(self) -> int:
        token = self.peek()
        if token == "-":
            self.next()
            return -self.parse_unary()
        if token == "+":
            self.next()
            return self.parse_unary()
        if token == "~":
            self.next()
            return ~self.parse_unary()
        return self.parse_atom()

    def parse_atom(self) -> int:
        token = self.next()
        if token == "(":
            value = self.parse_or()
            self.expect(")")
            return value
        if token in ("%hi", "%lo"):
            self.expect("(")
            inner = self.parse_or()
            self.expect(")")
            return isa.hi20(inner) if token == "%hi" else isa.lo12(inner)
        if token.startswith(("0x", "0X")):
            return int(token, 16)
        if token.startswith(("0b", "0B")):
            return int(token, 2)
        if token[0].isdigit():
            return int(token, 10)
        if token.startswith("'"):
            body = token[1:-1]
            if body.startswith("\\"):
                code = _ESCAPES.get(body[1])
                if code is None:
                    raise AssemblerError(f"bad char escape {body!r}", self.line)
                return code
            return ord(body)
        if token in self.symbols:
            return self.symbols[token]
        raise AssemblerError(f"undefined symbol {token!r}", self.line)


def evaluate(text: str, symbols: Dict[str, int], line: int = 0) -> int:
    """Evaluate a constant expression against a symbol table."""
    return _ExprParser(text, symbols, line).parse()


# --------------------------------------------------------------------- #
# statement model
# --------------------------------------------------------------------- #


@dataclass
class _Statement:
    line: int
    source: str
    kind: str              # "instr" | "data" | "align" | "space"
    section: str
    mnemonic: str = ""     # for instr
    operands: List[str] = field(default_factory=list)
    size: int = 0          # bytes occupied (known after pass 1 sizing)
    offset: int = 0        # offset within its section
    data: bytes = b""      # for data emitted in pass 1 (strings)
    width: int = 0         # element width for .word/.half/.byte
    align: int = 0         # for .align


_LABEL_RE = re.compile(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*:\s*(.*)$")
_STRING_DIRECTIVES = (".ascii", ".asciz", ".string")
_DATA_WIDTHS = {".word": 4, ".half": 2, ".byte": 1}

# pseudo-instructions that expand to a fixed number of machine words
_PSEUDO_SIZES = {
    "nop": 1, "mv": 1, "not": 1, "neg": 1,
    "seqz": 1, "snez": 1, "sltz": 1, "sgtz": 1,
    "beqz": 1, "bnez": 1, "blez": 1, "bgez": 1, "bltz": 1, "bgtz": 1,
    "bgt": 1, "ble": 1, "bgtu": 1, "bleu": 1,
    "j": 1, "jr": 1, "ret": 1, "call": 1, "tail": 1,
    "li": 2, "la": 2,
    "csrr": 1, "csrw": 1, "csrs": 1, "csrc": 1, "csrwi": 1,
}


def _split_operands(text: str) -> List[str]:
    """Split an operand string on top-level commas (parens-aware)."""
    parts: List[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(current.strip())
            current = ""
        else:
            current += ch
    if current.strip():
        parts.append(current.strip())
    return parts


def _parse_string_literal(text: str, line: int) -> bytes:
    text = text.strip()
    if len(text) < 2 or text[0] != '"' or text[-1] != '"':
        raise AssemblerError(f"expected string literal, got {text!r}", line)
    body = text[1:-1]
    out = bytearray()
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            i += 1
            if i >= len(body):
                raise AssemblerError("dangling escape in string", line)
            code = _ESCAPES.get(body[i])
            if code is None:
                raise AssemblerError(f"bad string escape \\{body[i]}", line)
            out.append(code)
        else:
            out.append(ord(ch))
        i += 1
    return bytes(out)


# --------------------------------------------------------------------- #
# the assembler
# --------------------------------------------------------------------- #


class Assembler:
    """Two-pass assembler producing a flat :class:`Program` image.

    Parameters
    ----------
    base:
        Load/link address of the ``.text`` section (also the entry point
        unless a ``_start`` symbol is defined).
    """

    def __init__(self, base: int = 0):
        self.base = base

    # -- public ---------------------------------------------------------- #

    def assemble(self, source: str) -> Program:
        statements, labels, equs = self._parse(source)
        section_sizes = self._size_pass(statements)
        section_bases = self._layout(section_sizes)
        symbols = dict(equs)
        for name, (section, offset) in labels.items():
            symbols[name] = section_bases[section] + offset
        image, n_instr, listing = self._emit(statements, section_bases, symbols)
        sections = {
            name: (section_bases[name], section_bases[name] + size)
            for name, size in section_sizes.items()
        }
        entry = symbols.get("_start", self.base)
        return Program(
            image=bytes(image),
            base=self.base,
            entry=entry,
            symbols=symbols,
            sections=sections,
            n_instructions=n_instr,
            listing=listing,
        )

    # -- parsing ----------------------------------------------------------- #

    def _parse(self, source: str):
        statements: List[_Statement] = []
        labels: Dict[str, Tuple[str, int]] = {}
        equs: Dict[str, int] = {}
        pending_labels: List[Tuple[str, str]] = []  # (name, section)
        section = ".text"
        # statement index per section, to attach labels to the next statement
        label_sites: List[Tuple[str, str, int]] = []  # (name, section, stmt idx)

        for line_no, raw in enumerate(source.splitlines(), start=1):
            line = raw.split("#", 1)[0].split("//", 1)[0].strip()
            while line:
                match = _LABEL_RE.match(line)
                if match:
                    name, line = match.group(1), match.group(2).strip()
                    if name in labels or any(n == name for n, _, _ in label_sites):
                        raise AssemblerError(f"duplicate label {name!r}", line_no)
                    label_sites.append((name, section, len(statements)))
                    continue
                break
            if not line:
                continue

            if line.startswith("."):
                section = self._parse_directive(
                    line, line_no, section, statements, equs)
                continue

            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operands = _split_operands(parts[1]) if len(parts) > 1 else []
            statements.append(_Statement(
                line=line_no, source=raw.strip(), kind="instr",
                section=section, mnemonic=mnemonic, operands=operands,
            ))

        # Resolve label sites: labels attach to the *current* location
        # counter of their section at their statement index.  We compute
        # offsets in the sizing pass; store as (section, stmt_index) for now
        # and fix up there.
        self._label_sites = label_sites
        return statements, labels, equs

    def _parse_directive(self, line, line_no, section, statements, equs):
        parts = line.split(None, 1)
        directive = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""

        if directive in (".text", ".data", ".bss"):
            return directive
        if directive == ".section":
            name = rest.strip().split()[0] if rest.strip() else ".text"
            if not name.startswith("."):
                name = "." + name
            if name not in (".text", ".data", ".bss"):
                raise AssemblerError(f"unknown section {name!r}", line_no)
            return name
        if directive in (".globl", ".global", ".type", ".size", ".option",
                         ".file", ".attribute", ".p2align"):
            return section  # accepted and ignored
        if directive in (".equ", ".set"):
            operands = _split_operands(rest)
            if len(operands) != 2:
                raise AssemblerError(f"{directive} needs name, value", line_no)
            equs[operands[0]] = evaluate(operands[1], equs, line_no)
            return section
        if directive == ".align":
            power = int(rest.strip(), 0)
            if not 0 <= power <= 6:
                raise AssemblerError(".align power must be 0..6", line_no)
            statements.append(_Statement(
                line=line_no, source=line, kind="align", section=section,
                align=1 << power))
            return section
        if directive in (".space", ".zero", ".skip"):
            count = evaluate(rest, equs, line_no)
            if count < 0:
                raise AssemblerError("negative .space size", line_no)
            statements.append(_Statement(
                line=line_no, source=line, kind="space", section=section,
                size=count))
            return section
        if directive in _DATA_WIDTHS:
            statements.append(_Statement(
                line=line_no, source=line, kind="data", section=section,
                operands=_split_operands(rest), width=_DATA_WIDTHS[directive]))
            return section
        if directive in _STRING_DIRECTIVES:
            data = _parse_string_literal(rest, line_no)
            if directive in (".asciz", ".string"):
                data += b"\x00"
            statements.append(_Statement(
                line=line_no, source=line, kind="data", section=section,
                data=data, width=0))
            return section
        raise AssemblerError(f"unknown directive {directive!r}", line_no)

    # -- pass 1: sizing ------------------------------------------------------ #

    def _statement_words(self, stmt: _Statement) -> int:
        mnemonic = stmt.mnemonic
        if mnemonic in isa.ALL_MNEMONICS:
            # `jal label` / `jalr rs` single-operand forms are still 1 word
            return 1
        if mnemonic in _PSEUDO_SIZES:
            return _PSEUDO_SIZES[mnemonic]
        raise AssemblerError(f"unknown mnemonic {mnemonic!r}", stmt.line)

    def _size_pass(self, statements: List[_Statement]) -> Dict[str, int]:
        counters = {".text": 0, ".data": 0, ".bss": 0}
        stmt_offsets: List[int] = []
        for stmt in statements:
            counter = counters[stmt.section]
            if stmt.kind == "align":
                pad = (-counter) % stmt.align
                stmt.size = pad
            elif stmt.kind == "instr":
                stmt.size = 4 * self._statement_words(stmt)
            elif stmt.kind == "data":
                if stmt.width:
                    stmt.size = stmt.width * len(stmt.operands)
                else:
                    stmt.size = len(stmt.data)
            # "space": size already set
            stmt.offset = counter
            counters[stmt.section] = counter + stmt.size
            stmt_offsets.append(stmt.offset)

        # attach labels: label at statement index i in section S gets the
        # offset of the first statement >= i in S, or the section end.
        self._resolved_labels: Dict[str, Tuple[str, int]] = {}
        for name, section, index in self._label_sites:
            offset = counters[section]
            for stmt in statements[index:]:
                if stmt.section == section:
                    offset = stmt.offset
                    break
            self._resolved_labels[name] = (section, offset)
        return counters

    def _layout(self, sizes: Dict[str, int]) -> Dict[str, int]:
        def align_up(value: int) -> int:
            return (value + _SECTION_ALIGN - 1) & ~(_SECTION_ALIGN - 1)

        text_base = self.base
        data_base = align_up(text_base + sizes[".text"])
        bss_base = align_up(data_base + sizes[".data"])
        return {".text": text_base, ".data": data_base, ".bss": bss_base}

    # -- pass 2: emission ------------------------------------------------- #

    def _emit(self, statements, section_bases, symbols):
        # fold labels into the symbol table
        for name, (section, offset) in self._resolved_labels.items():
            if name in symbols:
                raise AssemblerError(f"symbol {name!r} defined twice")
            symbols[name] = section_bases[section] + offset

        total_end = self.base
        for stmt in statements:
            end = section_bases[stmt.section] + stmt.offset + stmt.size
            total_end = max(total_end, end)
        image = bytearray(total_end - self.base)
        n_instr = 0
        listing: List[Tuple[int, int, str]] = []

        for stmt in statements:
            address = section_bases[stmt.section] + stmt.offset
            position = address - self.base
            if stmt.kind in ("align", "space"):
                continue  # zero-filled already
            if stmt.kind == "data":
                if stmt.width:
                    blob = bytearray()
                    for operand in stmt.operands:
                        value = evaluate(operand, symbols, stmt.line)
                        blob += (value & ((1 << (8 * stmt.width)) - 1)).to_bytes(
                            stmt.width, "little")
                    image[position:position + len(blob)] = blob
                else:
                    image[position:position + len(stmt.data)] = stmt.data
                continue
            words = self._encode(stmt, address, symbols)
            n_instr += len(words)
            listing.append((address, stmt.line, stmt.source))
            for i, word in enumerate(words):
                image[position + 4 * i:position + 4 * i + 4] = word.to_bytes(
                    4, "little")
        return image, n_instr, listing

    # -- instruction encoding ---------------------------------------------- #

    def _encode(self, stmt: _Statement, address: int,
                symbols: Dict[str, int]) -> List[int]:
        try:
            return self._encode_inner(stmt, address, symbols)
        except AssemblerError:
            raise
        except ValueError as exc:
            raise AssemblerError(str(exc), stmt.line) from exc

    def _reg(self, name: str, line: int) -> int:
        reg = isa.REGS.get(name.strip().lower())
        if reg is None:
            raise AssemblerError(f"unknown register {name!r}", line)
        return reg

    def _csr(self, name: str, symbols: Dict[str, int], line: int) -> int:
        key = name.strip().lower()
        if key in isa.CSRS:
            return isa.CSRS[key]
        value = evaluate(name, symbols, line)
        if not 0 <= value <= 0xFFF:
            raise AssemblerError(f"CSR address {value} out of range", line)
        return value

    def _mem_operand(self, text: str, symbols, line) -> Tuple[int, int]:
        """Parse ``imm(reg)`` into (imm, reg)."""
        match = re.match(r"^(.*)\(\s*([A-Za-z0-9]+)\s*\)$", text.strip())
        if not match:
            raise AssemblerError(f"expected imm(reg), got {text!r}", line)
        imm_text = match.group(1).strip()
        imm = evaluate(imm_text, symbols, line) if imm_text else 0
        return imm, self._reg(match.group(2), line)

    def _nargs(self, stmt: _Statement, count: int) -> List[str]:
        if len(stmt.operands) != count:
            raise AssemblerError(
                f"{stmt.mnemonic} expects {count} operands, got "
                f"{len(stmt.operands)}", stmt.line)
        return stmt.operands

    def _encode_inner(self, stmt, address, symbols) -> List[int]:
        m = stmt.mnemonic
        line = stmt.line
        ops = stmt.operands
        def ev(text):
            return evaluate(text, symbols, line)

        def reg(text):
            return self._reg(text, line)

        # ---- R-type ---------------------------------------------------- #
        if m in isa.R_OPS:
            rd, rs1, rs2 = self._nargs(stmt, 3)
            f3, f7 = isa.R_OPS[m]
            return [isa.enc_r(isa.OP_REG, f3, f7, reg(rd), reg(rs1), reg(rs2))]

        # ---- I-type ALU ------------------------------------------------- #
        if m in isa.I_ALU_OPS:
            rd, rs1, imm = self._nargs(stmt, 3)
            return [isa.enc_i(isa.OP_IMM, isa.I_ALU_OPS[m], reg(rd), reg(rs1),
                              ev(imm))]
        if m in isa.SHIFT_OPS:
            rd, rs1, imm = self._nargs(stmt, 3)
            f3, f7 = isa.SHIFT_OPS[m]
            return [isa.enc_shift(isa.OP_IMM, f3, f7, reg(rd), reg(rs1),
                                  ev(imm))]

        # ---- loads / stores ---------------------------------------------- #
        if m in isa.LOAD_OPS:
            rd, mem = self._nargs(stmt, 2)
            imm, rs1 = self._mem_operand(mem, symbols, line)
            return [isa.enc_i(isa.OP_LOAD, isa.LOAD_OPS[m], reg(rd), rs1, imm)]
        if m in isa.STORE_OPS:
            rs2, mem = self._nargs(stmt, 2)
            imm, rs1 = self._mem_operand(mem, symbols, line)
            return [isa.enc_s(isa.OP_STORE, isa.STORE_OPS[m], rs1, reg(rs2),
                              imm)]

        # ---- branches ---------------------------------------------------- #
        if m in isa.BRANCH_OPS:
            rs1, rs2, target = self._nargs(stmt, 3)
            offset = ev(target) - address
            return [isa.enc_b(isa.OP_BRANCH, isa.BRANCH_OPS[m], reg(rs1),
                              reg(rs2), offset)]

        # ---- U / J / jalr ------------------------------------------------- #
        if m == "lui":
            rd, imm = self._nargs(stmt, 2)
            return [isa.enc_u(isa.OP_LUI, reg(rd), ev(imm))]
        if m == "auipc":
            rd, imm = self._nargs(stmt, 2)
            return [isa.enc_u(isa.OP_AUIPC, reg(rd), ev(imm))]
        if m == "jal":
            if len(ops) == 1:
                rd, target = "ra", ops[0]
            else:
                rd, target = self._nargs(stmt, 2)
            return [isa.enc_j(isa.OP_JAL, reg(rd), ev(target) - address)]
        if m == "jalr":
            if len(ops) == 1:
                return [isa.enc_i(isa.OP_JALR, 0, 1, reg(ops[0]), 0)]
            if len(ops) == 2 and "(" in ops[1]:
                imm, rs1 = self._mem_operand(ops[1], symbols, line)
                return [isa.enc_i(isa.OP_JALR, 0, reg(ops[0]), rs1, imm)]
            rd, rs1, imm = self._nargs(stmt, 3)
            return [isa.enc_i(isa.OP_JALR, 0, reg(rd), reg(rs1), ev(imm))]

        # ---- CSR --------------------------------------------------------- #
        if m in isa.CSR_OPS:
            rd, csr, src = self._nargs(stmt, 3)
            f3, immediate = isa.CSR_OPS[m]
            csr_addr = self._csr(csr, symbols, line)
            rs1 = ev(src) if immediate else reg(src)
            if immediate and not 0 <= rs1 <= 31:
                raise AssemblerError("CSR immediate out of range 0..31", line)
            word = (csr_addr << 20) | (rs1 << 15) | (f3 << 12) \
                | (reg(rd) << 7) | isa.OP_SYSTEM
            return [word]

        # ---- fixed ------------------------------------------------------- #
        if m in isa.FIXED_OPS:
            self._nargs(stmt, 0) if m in ("ecall", "ebreak", "mret", "wfi") \
                else None
            return [isa.FIXED_OPS[m]]

        # ---- pseudo-instructions ------------------------------------------ #
        return self._encode_pseudo(stmt, address, symbols)

    def _encode_pseudo(self, stmt, address, symbols) -> List[int]:
        m = stmt.mnemonic
        line = stmt.line
        ops = stmt.operands
        def ev(text):
            return evaluate(text, symbols, line)

        def reg(text):
            return self._reg(text, line)
        x0 = 0

        if m == "nop":
            return [isa.enc_i(isa.OP_IMM, 0, x0, x0, 0)]
        if m == "mv":
            rd, rs = self._nargs(stmt, 2)
            return [isa.enc_i(isa.OP_IMM, 0, reg(rd), reg(rs), 0)]
        if m == "not":
            rd, rs = self._nargs(stmt, 2)
            return [isa.enc_i(isa.OP_IMM, 0x4, reg(rd), reg(rs), -1)]
        if m == "neg":
            rd, rs = self._nargs(stmt, 2)
            return [isa.enc_r(isa.OP_REG, 0, 0x20, reg(rd), x0, reg(rs))]
        if m == "seqz":
            rd, rs = self._nargs(stmt, 2)
            return [isa.enc_i(isa.OP_IMM, 0x3, reg(rd), reg(rs), 1)]
        if m == "snez":
            rd, rs = self._nargs(stmt, 2)
            return [isa.enc_r(isa.OP_REG, 0x3, 0, reg(rd), x0, reg(rs))]
        if m == "sltz":
            rd, rs = self._nargs(stmt, 2)
            return [isa.enc_r(isa.OP_REG, 0x2, 0, reg(rd), reg(rs), x0)]
        if m == "sgtz":
            rd, rs = self._nargs(stmt, 2)
            return [isa.enc_r(isa.OP_REG, 0x2, 0, reg(rd), x0, reg(rs))]

        branch_zero = {
            "beqz": ("beq", False), "bnez": ("bne", False),
            "bgez": ("bge", False), "bltz": ("blt", False),
            "blez": ("bge", True), "bgtz": ("blt", True),
        }
        if m in branch_zero:
            rs, target = self._nargs(stmt, 2)
            base, swapped = branch_zero[m]
            f3 = isa.BRANCH_OPS[base]
            offset = ev(target) - address
            rs_n = reg(rs)
            rs1, rs2 = (x0, rs_n) if swapped else (rs_n, x0)
            return [isa.enc_b(isa.OP_BRANCH, f3, rs1, rs2, offset)]

        branch_swap = {"bgt": "blt", "ble": "bge", "bgtu": "bltu",
                       "bleu": "bgeu"}
        if m in branch_swap:
            rs1, rs2, target = self._nargs(stmt, 3)
            f3 = isa.BRANCH_OPS[branch_swap[m]]
            offset = ev(target) - address
            return [isa.enc_b(isa.OP_BRANCH, f3, reg(rs2), reg(rs1), offset)]

        if m in ("j", "tail"):
            (target,) = self._nargs(stmt, 1)
            return [isa.enc_j(isa.OP_JAL, x0, ev(target) - address)]
        if m == "call":
            (target,) = self._nargs(stmt, 1)
            return [isa.enc_j(isa.OP_JAL, 1, ev(target) - address)]
        if m == "jr":
            (rs,) = self._nargs(stmt, 1)
            return [isa.enc_i(isa.OP_JALR, 0, x0, reg(rs), 0)]
        if m == "ret":
            self._nargs(stmt, 0)
            return [isa.enc_i(isa.OP_JALR, 0, x0, 1, 0)]

        if m in ("li", "la"):
            rd, value_text = self._nargs(stmt, 2)
            value = ev(value_text)
            rd_n = reg(rd)
            value &= 0xFFFFFFFF
            signed = value - (1 << 32) if value >= (1 << 31) else value
            # Always two words (sized in pass 1): lui+addi, or nop+addi for
            # small constants so label offsets stay stable.
            if -2048 <= signed < 2048:
                return [
                    isa.enc_i(isa.OP_IMM, 0, x0, x0, 0),  # nop padding
                    isa.enc_i(isa.OP_IMM, 0, rd_n, x0, signed),
                ]
            hi = isa.hi20(signed)
            lo = isa.lo12(signed)
            return [
                isa.enc_u(isa.OP_LUI, rd_n, hi),
                isa.enc_i(isa.OP_IMM, 0, rd_n, rd_n, lo),
            ]

        csr_pseudo = {
            "csrr": lambda: [  # csrr rd, csr
                self._csr_word(0x2, self._csr(ops[1], symbols, line),
                               reg(ops[0]), x0)],
            "csrw": lambda: [  # csrw csr, rs
                self._csr_word(0x1, self._csr(ops[0], symbols, line),
                               x0, reg(ops[1]))],
            "csrs": lambda: [
                self._csr_word(0x2, self._csr(ops[0], symbols, line),
                               x0, reg(ops[1]))],
            "csrc": lambda: [
                self._csr_word(0x3, self._csr(ops[0], symbols, line),
                               x0, reg(ops[1]))],
            "csrwi": lambda: [
                self._csr_word(0x5, self._csr(ops[0], symbols, line),
                               x0, ev(ops[1]))],
        }
        if m in csr_pseudo:
            self._nargs(stmt, 2)
            return csr_pseudo[m]()

        raise AssemblerError(f"unknown mnemonic {m!r}", line)

    @staticmethod
    def _csr_word(funct3: int, csr: int, rd: int, rs1: int) -> int:
        return (csr << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) \
            | isa.OP_SYSTEM


def assemble(source: str, base: int = 0) -> Program:
    """Convenience one-shot assembly."""
    return Assembler(base=base).assemble(source)
