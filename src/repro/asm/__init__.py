"""RV32IM assembler / disassembler toolchain for guest software."""

from repro.asm.assembler import Assembler, Program, assemble, evaluate
from repro.asm.disasm import decode_fields, disassemble, disassemble_word

__all__ = [
    "Assembler",
    "Program",
    "assemble",
    "evaluate",
    "disassemble",
    "disassemble_word",
    "decode_fields",
]
