"""TLM-2.0-style transaction-level modelling layer.

Reproduces the parts of OSCI TLM-2.0 the VP uses:

* :class:`GenericPayload` — command, address, data, response status.  In
  addition to the data bytes it optionally carries **per-byte security
  tags**; this is the Python analogue of the paper's convention of casting
  a ``Taint<uint8_t>`` array into the payload's ``char*`` data pointer so
  tags travel through the interconnect with the data (Section V-B1,
  modification 3).
* :class:`TargetSocket` / :class:`InitiatorSocket` — blocking transport
  (``b_transport``) with a timing-annotation delay, loosely-timed style.
* :class:`Router` — address-map based routing from initiators to targets
  with global-to-local address translation, like the VP's TLM bus.
* **DMI** (direct memory interface): targets may grant a direct pointer to
  their backing store so the ISS can skip transaction overhead on RAM,
  exactly as the original RISC-V VP does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import BusError
from repro.sysc.time import SimTime

# Commands (tlm_command)
READ = "read"
WRITE = "write"

# Response status (tlm_response_status)
OK = "ok"
ADDRESS_ERROR = "address-error"
COMMAND_ERROR = "command-error"
GENERIC_ERROR = "generic-error"
INCOMPLETE = "incomplete"


@dataclass
class GenericPayload:
    """A TLM generic payload extended with per-byte security tags.

    ``data`` is the transported bytes (read results are written into it by
    the target).  ``tags`` — when present — has one security tag per data
    byte and travels in both directions alongside ``data``; a plain
    (non-DIFT) platform leaves it ``None`` and pays no cost.

    ``merge_tags`` asks a write's target to fold the payload tags into
    its existing ones with the lattice LUB (``dst = lub(dst, src)``)
    instead of overwriting — the conservative choice for engines that
    scatter into buffers whose prior classification must survive (e.g. a
    DMA gather over a partially tainted destination).  Targets without
    tag state ignore it; the memory updates ``tags`` in place to the
    merged result so the initiator sees what actually landed.
    """

    command: str = READ
    address: int = 0
    data: bytearray = field(default_factory=bytearray)
    tags: Optional[bytearray] = None
    merge_tags: bool = False
    response: str = INCOMPLETE

    @property
    def length(self) -> int:
        return len(self.data)

    def is_read(self) -> bool:
        return self.command == READ

    def is_write(self) -> bool:
        return self.command == WRITE

    def ok(self) -> bool:
        return self.response == OK

    @classmethod
    def make_read(cls, address: int, length: int, tagged: bool = False
                  ) -> "GenericPayload":
        return cls(
            command=READ,
            address=address,
            data=bytearray(length),
            tags=bytearray(length) if tagged else None,
        )

    @classmethod
    def make_write(cls, address: int, data: bytes,
                   tags: Optional[bytes] = None,
                   merge_tags: bool = False) -> "GenericPayload":
        return cls(
            command=WRITE,
            address=address,
            data=bytearray(data),
            tags=bytearray(tags) if tags is not None else None,
            merge_tags=merge_tags,
        )


TransportFn = Callable[[GenericPayload, SimTime], SimTime]


class TargetSocket:
    """Receives transactions; the owning module registers its transport."""

    def __init__(self, name: str = "tsock"):
        self.name = name
        self._transport: Optional[TransportFn] = None

    def register_b_transport(self, fn: TransportFn) -> None:
        self._transport = fn

    def b_transport(self, payload: GenericPayload, delay: SimTime) -> SimTime:
        """Deliver a transaction; returns the accumulated delay annotation."""
        if self._transport is None:
            raise BusError(
                f"target socket {self.name!r} has no registered transport",
                payload.address,
            )
        return self._transport(payload, delay)


class InitiatorSocket:
    """Sends transactions into a bound target socket or router."""

    def __init__(self, name: str = "isock"):
        self.name = name
        self._target: Optional[TargetSocket] = None

    def bind(self, target: TargetSocket) -> None:
        self._target = target

    def b_transport(self, payload: GenericPayload, delay: SimTime) -> SimTime:
        if self._target is None:
            raise BusError(f"initiator socket {self.name!r} is unbound",
                           payload.address)
        return self._target.b_transport(payload, delay)


@dataclass(frozen=True)
class MapEntry:
    """One address-map range ``[start, end)`` routed to ``socket``."""

    start: int
    end: int
    socket: TargetSocket
    name: str

    def __contains__(self, address: int) -> bool:
        return self.start <= address < self.end


class DmiRegion:
    """A granted direct-memory region (TLM DMI analogue).

    ``data`` (and ``tags`` on a DIFT platform) are the live backing stores
    of the target; index them with ``address - start``.
    """

    __slots__ = ("start", "end", "data", "tags")

    def __init__(self, start: int, end: int, data: bytearray,
                 tags: Optional[bytearray]):
        self.start = start
        self.end = end
        self.data = data
        self.tags = tags

    def __contains__(self, address: int) -> bool:
        return self.start <= address < self.end


class Router:
    """Address-routed interconnect (the VP's TLM bus).

    Targets are mapped with absolute ranges; the router translates the
    payload address to a target-local offset before forwarding, and
    restores it afterwards (non-destructive routing).
    """

    def __init__(self, name: str = "bus", latency: SimTime = SimTime.ns(10)):
        self.name = name
        self.latency = latency
        self._map: List[MapEntry] = []
        self._dmi_providers: dict = {}
        self.transactions_routed = 0
        # MRU decode cache: MMIO traffic clusters on one target (a guest
        # polling a peripheral), making the last entry the overwhelmingly
        # likely hit before the linear scan
        self._last_entry: Optional[MapEntry] = None
        # observability; None keeps routing free of metric lookups.  The
        # per-target counter dict is filled lazily because targets may be
        # mapped after attach.
        self._metrics = None
        self._target_counters: dict = {}

    def attach_metrics(self, metrics) -> None:
        """Count routed transactions per target into ``metrics``."""
        self._metrics = metrics
        self._target_counters = {
            entry.name: metrics.counter(
                f"tlm.target.{entry.name}.transactions")
            for entry in self._map
        }

    def map_target(self, start: int, size: int, socket: TargetSocket,
                   name: str = "") -> None:
        """Map ``[start, start+size)`` to a target socket."""
        end = start + size
        for entry in self._map:
            if start < entry.end and entry.start < end:
                raise BusError(
                    f"address range [{start:#x}, {end:#x}) for "
                    f"{name or socket.name!r} overlaps {entry.name!r}",
                    start,
                )
        self._map.append(MapEntry(start, end, socket, name or socket.name))
        self._map.sort(key=lambda e: e.start)
        self._last_entry = None

    def register_dmi(self, start: int, size: int, data: bytearray,
                     tags: Optional[bytearray] = None) -> None:
        """Record a DMI grant for ``[start, start+size)``."""
        self._dmi_providers[start] = DmiRegion(start, start + size, data, tags)

    def get_dmi(self, address: int) -> Optional[DmiRegion]:
        """DMI region covering ``address``, if any target granted one."""
        for region in self._dmi_providers.values():
            if address in region:
                return region
        return None

    def decode(self, address: int) -> MapEntry:
        """Map entry covering ``address`` (raises BusError if unmapped)."""
        last = self._last_entry
        if last is not None and last.start <= address < last.end:
            return last
        for entry in self._map:
            if address in entry:
                self._last_entry = entry
                return entry
        raise BusError(f"no target mapped at address {address:#010x}", address)

    def b_transport(self, payload: GenericPayload, delay: SimTime) -> SimTime:
        """Route a transaction to its target with address translation."""
        entry = self.decode(payload.address)
        if payload.address + payload.length > entry.end:
            raise BusError(
                f"transaction [{payload.address:#x}, "
                f"{payload.address + payload.length:#x}) crosses the end of "
                f"target {entry.name!r}",
                payload.address,
            )
        self.transactions_routed += 1
        if self._metrics is not None:
            counter = self._target_counters.get(entry.name)
            if counter is None:
                counter = self._metrics.counter(
                    f"tlm.target.{entry.name}.transactions")
                self._target_counters[entry.name] = counter
            counter.inc()
        global_address = payload.address
        payload.address = global_address - entry.start
        try:
            return entry.socket.b_transport(payload, delay + self.latency)
        finally:
            payload.address = global_address

    def target_names(self) -> List[str]:
        return [entry.name for entry in self._map]

    def state_dict(self) -> dict:
        """Per-target transaction counters live in the metrics registry
        and are restored with it; only the raw total is owned here."""
        return {"transactions_routed": self.transactions_routed}

    def load_state_dict(self, state: dict) -> None:
        self.transactions_routed = state["transactions_routed"]

    def __repr__(self) -> str:
        return f"Router({self.name!r}, targets={self.target_names()})"
