"""Simulation time, modelled after SystemC's ``sc_time``.

Time is kept as an integer number of picoseconds, which gives exact
arithmetic across the unit range the VP uses (ns-scale CPU cycles up to
ms-scale peripheral periods).
"""

from __future__ import annotations

from typing import Union

# Unit multipliers to picoseconds (SystemC's SC_PS ... SC_SEC).
PS = 1
NS = 1_000
US = 1_000_000
MS = 1_000_000_000
SEC = 1_000_000_000_000


class SimTime:
    """An absolute or relative simulation time (integer picoseconds)."""

    __slots__ = ("ps",)

    def __init__(self, amount: Union[int, float] = 0, unit: int = PS):
        self.ps = int(round(amount * unit))
        if self.ps < 0:
            raise ValueError("negative simulation time")

    # -- constructors ---------------------------------------------------- #

    @classmethod
    def ns(cls, amount: Union[int, float]) -> "SimTime":
        return cls(amount, NS)

    @classmethod
    def us(cls, amount: Union[int, float]) -> "SimTime":
        return cls(amount, US)

    @classmethod
    def ms(cls, amount: Union[int, float]) -> "SimTime":
        return cls(amount, MS)

    @classmethod
    def sec(cls, amount: Union[int, float]) -> "SimTime":
        return cls(amount, SEC)

    @classmethod
    def zero(cls) -> "SimTime":
        return cls(0)

    # -- conversions ------------------------------------------------------ #

    def to_ns(self) -> float:
        return self.ps / NS

    def to_us(self) -> float:
        return self.ps / US

    def to_ms(self) -> float:
        return self.ps / MS

    def to_seconds(self) -> float:
        return self.ps / SEC

    # -- arithmetic -------------------------------------------------------- #

    def __add__(self, other: "SimTime") -> "SimTime":
        return SimTime(self.ps + other.ps)

    def __sub__(self, other: "SimTime") -> "SimTime":
        return SimTime(self.ps - other.ps)

    def __mul__(self, factor: int) -> "SimTime":
        return SimTime(self.ps * factor)

    __rmul__ = __mul__

    # -- comparisons -------------------------------------------------------- #

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SimTime) and self.ps == other.ps

    def __lt__(self, other: "SimTime") -> bool:
        return self.ps < other.ps

    def __le__(self, other: "SimTime") -> bool:
        return self.ps <= other.ps

    def __gt__(self, other: "SimTime") -> bool:
        return self.ps > other.ps

    def __ge__(self, other: "SimTime") -> bool:
        return self.ps >= other.ps

    def __hash__(self) -> int:
        return hash(self.ps)

    def __bool__(self) -> bool:
        return self.ps != 0

    def __repr__(self) -> str:
        if self.ps == 0:
            return "SimTime(0)"
        for unit, suffix in ((SEC, "s"), (MS, "ms"), (US, "us"), (NS, "ns")):
            if self.ps % unit == 0:
                return f"SimTime({self.ps // unit} {suffix})"
        return f"SimTime({self.ps} ps)"
