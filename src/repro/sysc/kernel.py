"""An event-driven simulation kernel with SystemC scheduling semantics.

SystemC (IEEE-1666) schedules co-operative processes through evaluate /
update / delta-notification phases and a timed event queue.  This kernel
reproduces the subset a loosely-timed TLM virtual prototype relies on:

* **SC_THREAD processes** are Python generators.  A process yields *wait
  descriptors* to suspend itself:

  - ``yield SimTime(...)``  — wait for a relative time;
  - ``yield event``         — wait until the event is notified;
  - ``yield DELTA``         — wait one delta cycle;
  - returning (or ``return``) ends the process.

* **Delta cycles**: processes woken by delta notifications run at the same
  simulation time but in a later evaluation phase, matching SystemC's
  evaluate-then-delta-notify loop.

* **Timed notifications** drive time forward; :meth:`Kernel.run` executes
  until the event queue drains, a time limit is hit, or :meth:`Kernel.stop`
  is called (the analogue of ``sc_stop``).

Determinism: runnable processes execute in FIFO order of scheduling, so a
given program produces the same interleaving on every run (SystemC leaves
the order unspecified; fixing it is a valid refinement and makes the test
suite reproducible).
"""

from __future__ import annotations

import heapq
from typing import Callable, Generator, Iterator, List, Optional, Tuple, Union

from repro.errors import SimulationError
from repro.sysc.event import Event
from repro.sysc.time import SimTime

#: Sentinel yielded by a process to wait exactly one delta cycle.
DELTA = object()

WaitRequest = Union[SimTime, Event, object, None]
ProcessBody = Generator[WaitRequest, None, None]


class Process:
    """One SC_THREAD-style process (a generator driven by the kernel)."""

    __slots__ = ("name", "body", "terminated", "waiting_on", "started")

    def __init__(self, name: str, body: ProcessBody):
        self.name = name
        self.body = body
        self.terminated = False
        self.waiting_on: Optional[Event] = None
        # has the body run to its first yield?  Snapshot restore primes
        # exactly the started processes (a never-started generator must
        # stay un-started to match a cold boot).
        self.started = False

    def __repr__(self) -> str:
        state = "terminated" if self.terminated else "active"
        return f"Process({self.name!r}, {state})"


class Kernel:
    """The simulation scheduler."""

    def __init__(self) -> None:
        self._now_ps: int = 0
        self._runnable: List[Process] = []
        self._next_delta: List[Process] = []
        # timed queue entries: (time_ps, seq, process-or-event)
        self._timed: List[Tuple[int, int, object]] = []
        self._seq = 0
        self._processes: List[Process] = []
        self._stopped = False
        self._running = False
        self._delta_count = 0
        self._restoring = False

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> SimTime:
        """Current simulation time."""
        return SimTime(self._now_ps)

    @property
    def now_ps(self) -> int:
        """Current simulation time in picoseconds (allocation-free)."""
        return self._now_ps

    @property
    def delta_count(self) -> int:
        """Number of delta cycles executed (diagnostic)."""
        return self._delta_count

    @property
    def stopped(self) -> bool:
        return self._stopped

    def spawn(
        self,
        body: Union[ProcessBody, Callable[[], ProcessBody]],
        name: str = "process",
    ) -> Process:
        """Register a process; it becomes runnable at the current time.

        ``body`` may be a generator object or a zero-argument callable
        returning one (the SC_THREAD function itself).
        """
        gen = body() if callable(body) else body
        if not isinstance(gen, Iterator):
            raise SimulationError(
                f"process {name!r} body must be a generator (did you forget "
                "a yield?)"
            )
        process = Process(name, gen)
        self._processes.append(process)
        self._runnable.append(process)
        return process

    def stop(self) -> None:
        """Stop the simulation after the current process yields (sc_stop)."""
        self._stopped = True

    def clear_stop(self) -> None:
        """Re-arm a stopped kernel so :meth:`run` may be called again.

        Pending runnable/delta/timed work is preserved; used when a
        paused simulation (snapshot point) is continued in-process.
        """
        self._stopped = False

    @property
    def restoring(self) -> bool:
        """True while a snapshot restore is priming process bodies.

        Thread bodies with side effects before their loop-top yield gate
        on this to make priming side-effect-free (``yield DELTA`` and
        re-check).
        """
        return self._restoring

    def make_runnable_front(self, process: Process) -> None:
        """Move a waiting process to the *front* of the runnable list.

        Continuing a paused simulation must resume the paused process
        before the processes that were put back by :meth:`stop`, or the
        evaluation order diverges from an uninterrupted run.
        """
        self._cancel_wait(process)
        if process not in self._runnable:
            self._runnable.insert(0, process)

    def run(
        self,
        until: Optional[SimTime] = None,
        max_deltas_per_instant: int = 10_000,
    ) -> SimTime:
        """Run until the queue drains, ``until`` is reached, or stop().

        Returns the simulation time at which the run ended.  A bound on
        delta cycles per time instant guards against delta loops
        (two processes notifying each other forever without time advancing).
        """
        if self._running:
            raise SimulationError("kernel.run() is not re-entrant")
        self._running = True
        limit_ps = until.ps if until is not None else None
        try:
            while not self._stopped:
                # Evaluation phase(s) + delta notifications at current time.
                deltas_here = 0
                while self._runnable or self._next_delta:
                    if not self._runnable:
                        self._runnable, self._next_delta = self._next_delta, []
                        self._delta_count += 1
                        deltas_here += 1
                        if deltas_here > max_deltas_per_instant:
                            raise SimulationError(
                                f"delta-cycle loop at t={self.now!r}: more "
                                f"than {max_deltas_per_instant} delta cycles "
                                "without time advancing"
                            )
                    self._evaluate()
                    if self._stopped:
                        return self.now
                # Advance time to the next timed notification.
                if not self._timed:
                    break
                next_ps = self._timed[0][0]
                if limit_ps is not None and next_ps > limit_ps:
                    self._now_ps = limit_ps
                    break
                self._now_ps = next_ps
                while self._timed and self._timed[0][0] == next_ps:
                    __, __, target = heapq.heappop(self._timed)
                    if isinstance(target, Process):
                        if not target.terminated:
                            self._cancel_wait(target)
                            self._runnable.append(target)
                    elif isinstance(target, Event):
                        self._wake_event_waiters(target, next_delta=False)
            return self.now
        finally:
            self._running = False

    def advance_ps(self, delta_ps: int) -> None:
        """Fast-forward simulated time by up to ``delta_ps`` picoseconds.

        Semantically identical to ``run(until=now + delta)`` — including
        the quirk that time does not advance when the timed queue is
        empty — but allocation-free on the common single-stepping path
        where nothing is runnable and the next timed notification lies
        beyond the window.  External drivers (the instruction-mix
        profiler, the debugger) call this once per guest instruction, so
        the no-work case must cost a few comparisons, not a ``SimTime``
        round-trip through the full scheduler loop.
        """
        limit_ps = self._now_ps + delta_ps
        if (not self._stopped and not self._runnable
                and not self._next_delta
                and (not self._timed or self._timed[0][0] > limit_ps)):
            if self._timed:
                self._now_ps = limit_ps
            return
        self.run(until=SimTime(limit_ps))

    # ------------------------------------------------------------------ #
    # notification plumbing (used by Event)
    # ------------------------------------------------------------------ #

    def _notify_event(self, event: Event, delay: Optional[SimTime]) -> None:
        if self._restoring:
            # Restore priming replays code paths that already notified
            # before the snapshot; the recorded schedule is re-applied
            # verbatim afterwards, so these duplicates must be dropped.
            return
        if delay is None or delay.ps == 0:
            self._wake_event_waiters(event, next_delta=True)
        else:
            self._push_timed(self._now_ps + delay.ps, event)

    def _wake_event_waiters(self, event: Event, next_delta: bool) -> None:
        waiters, event._waiters = event._waiters, []
        for process in waiters:
            process.waiting_on = None
            if next_delta:
                self._next_delta.append(process)
            else:
                self._runnable.append(process)

    def _push_timed(self, time_ps: int, target: object) -> None:
        self._seq += 1
        heapq.heappush(self._timed, (time_ps, self._seq, target))

    def _cancel_wait(self, process: Process) -> None:
        if process.waiting_on is not None:
            process.waiting_on._remove_waiter(process)
            process.waiting_on = None

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def _evaluate(self) -> None:
        """Run every currently-runnable process once (one evaluation phase)."""
        runnable, self._runnable = self._runnable, []
        for process in runnable:
            if process.terminated:
                continue
            self._resume(process)
            if self._stopped:
                # Put unconsumed processes back so state stays consistent.
                self._runnable.extend(
                    p for p in runnable[runnable.index(process) + 1:]
                    if not p.terminated
                )
                return

    def _resume(self, process: Process) -> None:
        process.started = True
        try:
            request = next(process.body)
        except StopIteration:
            process.terminated = True
            return
        self._apply_wait(process, request)

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #

    def state_dict(self, events: Tuple[Event, ...] = ()) -> dict:
        """Serialize the pending-event schedule.

        Processes are identified by name (unique per kernel); timed
        entries are recorded in heap-pop order so re-pushing them with
        fresh sequence numbers preserves same-instant ordering.
        ``events`` lists every event that may appear in the timed queue
        or hold waiters (the platform knows its event inventory).
        """
        timed = []
        for time_ps, _seq, target in sorted(self._timed,
                                            key=lambda e: (e[0], e[1])):
            kind = "process" if isinstance(target, Process) else "event"
            timed.append({"time_ps": time_ps, "kind": kind,
                          "name": target.name})
        waiters = {}
        for event in events:
            if event._waiters:
                waiters[event.name] = [p.name for p in event._waiters]
        return {
            "now_ps": self._now_ps,
            "delta_count": self._delta_count,
            "runnable": [p.name for p in self._runnable
                         if not p.terminated],
            "next_delta": [p.name for p in self._next_delta
                           if not p.terminated],
            "timed": timed,
            "event_waiters": waiters,
            "started": [p.name for p in self._processes if p.started],
            "terminated": [p.name for p in self._processes
                           if p.terminated],
        }

    def load_state_dict(self, state: dict,
                        events: Tuple[Event, ...] = ()) -> None:
        """Rebuild the schedule on a freshly-constructed process set.

        Module state must be restored *before* this call (primed bodies
        read it); the recorded schedule is applied verbatim afterwards,
        so anything the priming itself tried to schedule is discarded.
        """
        by_name = {p.name: p for p in self._processes}
        event_by_name = {e.name: e for e in events}
        self._now_ps = state["now_ps"]
        self._delta_count = state["delta_count"]
        self._stopped = False
        self._runnable = []
        self._next_delta = []
        self._timed = []
        for event in events:
            event._waiters.clear()
        for process in self._processes:
            process.waiting_on = None
        for name in state.get("terminated", ()):
            self._lookup(by_name, name).terminated = True
        # Prime started bodies to their first (restore-gated) yield with
        # notification suppression on; never-started bodies stay cold so
        # their eventual first run matches an uninterrupted boot.
        self._restoring = True
        try:
            started = set(state.get("started", ()))
            for process in self._processes:
                if process.name in started and not process.terminated:
                    self._prime(process)
        finally:
            self._restoring = False
        for name in state["runnable"]:
            self._runnable.append(self._lookup(by_name, name))
        for name in state["next_delta"]:
            self._next_delta.append(self._lookup(by_name, name))
        for entry in state["timed"]:
            table = by_name if entry["kind"] == "process" else event_by_name
            self._push_timed(entry["time_ps"],
                             self._lookup(table, entry["name"]))
        for event_name, names in state["event_waiters"].items():
            event = self._lookup(event_by_name, event_name)
            for name in names:
                process = self._lookup(by_name, name)
                event._waiters.append(process)
                process.waiting_on = event

    def _prime(self, process: Process) -> None:
        """Advance a fresh body to its first yield, discarding the wait."""
        process.started = True
        try:
            next(process.body)
        except StopIteration:
            process.terminated = True

    @staticmethod
    def _lookup(table: dict, name: str):
        try:
            return table[name]
        except KeyError:
            raise SimulationError(
                f"snapshot schedule references unknown entity {name!r}; "
                "the restored platform was built with a different "
                "configuration") from None

    def _apply_wait(self, process: Process, request: WaitRequest) -> None:
        if request is DELTA or request is None:
            self._next_delta.append(process)
        elif isinstance(request, SimTime):
            if request.ps == 0:
                self._next_delta.append(process)
            else:
                self._push_timed(self._now_ps + request.ps, process)
        elif isinstance(request, Event):
            request._bind(self)
            request._add_waiter(process)
            process.waiting_on = request
        else:
            raise SimulationError(
                f"process {process.name!r} yielded an invalid wait request: "
                f"{request!r}"
            )

    def __repr__(self) -> str:
        return (
            f"Kernel(now={self.now!r}, processes={len(self._processes)}, "
            f"timed={len(self._timed)})"
        )
