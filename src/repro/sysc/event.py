"""Events, modelled after SystemC's ``sc_event``.

An :class:`Event` is a named rendezvous point: processes wait on it (by
yielding it, or a wait descriptor wrapping it, from their generator body)
and other processes or the kernel notify it.  Notification semantics follow
SystemC: *delta* notification wakes waiters in the next delta cycle, *timed*
notification at a future simulation time.  (Immediate notification is
intentionally not offered — it is a well-known source of nondeterminism and
nothing in the VP needs it.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.sysc.time import SimTime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sysc.kernel import Kernel, Process


class Event:
    """A notifiable simulation event."""

    __slots__ = ("name", "_waiters", "_kernel")

    def __init__(self, name: str = "event"):
        self.name = name
        self._waiters: List["Process"] = []
        self._kernel: Optional["Kernel"] = None

    def _bind(self, kernel: "Kernel") -> None:
        """Attach this event to a kernel (done lazily on first use)."""
        if self._kernel is None:
            self._kernel = kernel
        elif self._kernel is not kernel:
            raise RuntimeError(f"event {self.name!r} used with two kernels")

    def _add_waiter(self, process: "Process") -> None:
        self._waiters.append(process)

    def _remove_waiter(self, process: "Process") -> None:
        if process in self._waiters:
            self._waiters.remove(process)

    def notify(self, delay: Optional[SimTime] = None) -> None:
        """Notify this event.

        ``delay=None`` (or zero) is a *delta* notification: waiters wake in
        the next delta cycle at the current time.  A non-zero delay is a
        timed notification.
        """
        if self._kernel is None:
            # No process has waited yet and no kernel bound: nothing to wake,
            # but that's legal (e.g. a peripheral raising an IRQ nobody
            # listens to yet).
            return
        self._kernel._notify_event(self, delay)

    @property
    def has_waiters(self) -> bool:
        return bool(self._waiters)

    def __repr__(self) -> str:
        return f"Event({self.name!r}, waiters={len(self._waiters)})"
