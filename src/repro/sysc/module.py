"""Module base class, modelled after ``sc_module``.

A :class:`Module` is a named component with a handle to the kernel.  It can
register SC_THREAD-style processes and create named child events.  The VP's
CPU, memory, bus and peripherals all derive from it.
"""

from __future__ import annotations

from typing import Callable

from repro.sysc.event import Event
from repro.sysc.kernel import Kernel, Process, ProcessBody


class Module:
    """A named simulation component bound to a kernel."""

    def __init__(self, kernel: Kernel, name: str):
        self.kernel = kernel
        self.name = name

    def sc_thread(self, body: Callable[[], ProcessBody], name: str = "") -> Process:
        """Register an SC_THREAD process (``SC_THREAD(run)`` analogue)."""
        label = f"{self.name}.{name or getattr(body, '__name__', 'thread')}"
        return self.kernel.spawn(body, name=label)

    def make_event(self, name: str) -> Event:
        """Create an event namespaced under this module.

        The event is bound to this module's kernel immediately, so timed
        notifications issued before any process waits on it are not lost.
        """
        event = Event(f"{self.name}.{name}")
        event._bind(self.kernel)
        return event

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
