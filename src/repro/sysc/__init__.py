"""A SystemC-like event-driven simulation kernel with TLM-2.0-style transport.

This package is the substrate the paper assumes (IEEE-1666 SystemC + OSCI
TLM-2.0), re-implemented from scratch in Python: generator-based SC_THREAD
processes, delta cycles, timed events, blocking transport with per-byte
security tags on the payload, an address-routed bus and DMI.
"""

from repro.sysc.event import Event
from repro.sysc.kernel import DELTA, Kernel, Process
from repro.sysc.module import Module
from repro.sysc.time import MS, NS, PS, SEC, US, SimTime
from repro.sysc.tlm import (
    ADDRESS_ERROR,
    COMMAND_ERROR,
    GENERIC_ERROR,
    INCOMPLETE,
    OK,
    READ,
    WRITE,
    DmiRegion,
    GenericPayload,
    InitiatorSocket,
    MapEntry,
    Router,
    TargetSocket,
)

__all__ = [
    "Event",
    "Kernel",
    "Process",
    "DELTA",
    "Module",
    "SimTime",
    "PS",
    "NS",
    "US",
    "MS",
    "SEC",
    "GenericPayload",
    "InitiatorSocket",
    "TargetSocket",
    "Router",
    "MapEntry",
    "DmiRegion",
    "READ",
    "WRITE",
    "OK",
    "ADDRESS_ERROR",
    "COMMAND_ERROR",
    "GENERIC_ERROR",
    "INCOMPLETE",
]
