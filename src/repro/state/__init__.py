"""Checkpoint/restore artifact layer (``repro.snapshot/1``).

A snapshot is one deterministic JSON document composed from the
``state_dict()`` of every :class:`Snapshotable` component — the kernel's
pending-event schedule, the CPU's architectural state, sparse RAM pages,
shadow tags, all peripheral FIFOs/IRQ lines/RNG streams — plus a header
embedding the :class:`~repro.vp.config.PlatformConfig` the platform was
built from, so a snapshot file is self-describing.

Determinism contract: :func:`dump_document` sorts keys and uses compact
separators, so *save → restore → save* produces byte-identical files
(property-tested in ``tests/test_snapshot.py``).  Binary payloads (RAM
pages, tag pages, FIFO contents) travel as base64.

Version policy: :func:`load_document` is **strict** — any schema string
other than :data:`SNAPSHOT_SCHEMA` is rejected with
:class:`SnapshotError`, including newer minor revisions.  A snapshot is
a full serialization of interpreter-level simulation state; guessing at
forward compatibility would silently corrupt a resumed run.
"""

from __future__ import annotations

import base64
import json
from typing import Dict, Iterable, List, Protocol, runtime_checkable

SNAPSHOT_SCHEMA = "repro.snapshot/1"


class SnapshotError(ValueError):
    """A snapshot document is missing, malformed, or version-mismatched."""


@runtime_checkable
class Snapshotable(Protocol):
    """The two-method protocol every checkpointable component implements."""

    def state_dict(self) -> dict: ...

    def load_state_dict(self, state: dict) -> None: ...


# --------------------------------------------------------------------- #
# binary codecs
# --------------------------------------------------------------------- #


def encode_bytes(data: bytes) -> str:
    """bytes -> base64 text (ASCII, JSON-safe)."""
    return base64.b64encode(bytes(data)).decode("ascii")


def decode_bytes(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


def encode_sparse_pages(data, default: int, page_size: int = 4096
                        ) -> Dict[str, str]:
    """Encode a flat byte buffer as ``{page_index: base64}`` keeping only
    pages that differ from an all-``default`` page.

    One C-speed ``count`` per page decides whether it is stored, so a
    clean multi-megabyte RAM snapshots in O(pages) with near-zero output.
    """
    pages: Dict[str, str] = {}
    size = len(data)
    for start in range(0, size, page_size):
        end = min(start + page_size, size)
        if data.count(default, start, end) != end - start:
            pages[str(start // page_size)] = encode_bytes(data[start:end])
    return pages


def decode_sparse_pages(pages: Dict[str, str], out, default: int,
                        page_size: int = 4096) -> None:
    """Apply a sparse page dict onto ``out`` **in place**.

    The buffer is first reset to ``default`` — restoring over a live
    platform must clear state the snapshot does not mention.  In-place
    assignment preserves aliasing (the CPU holds DMI references into the
    same bytearray).
    """
    size = len(out)
    out[:] = bytes([default]) * size
    for key, encoded in pages.items():
        start = int(key) * page_size
        chunk = decode_bytes(encoded)
        if start < 0 or start + len(chunk) > size:
            raise SnapshotError(
                f"sparse page {key} ([{start}, {start + len(chunk)})) "
                f"outside buffer of {size} bytes")
        out[start:start + len(chunk)] = chunk


# --------------------------------------------------------------------- #
# document I/O
# --------------------------------------------------------------------- #


def dump_document(document: dict) -> str:
    """Deterministic text form: sorted keys, compact separators."""
    return json.dumps(document, sort_keys=True,
                      separators=(",", ":")) + "\n"


def check_schema(document: dict) -> dict:
    """Validate the header; returns the document for chaining."""
    if not isinstance(document, dict):
        raise SnapshotError(
            f"snapshot root must be an object, got {type(document).__name__}")
    schema = document.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise SnapshotError(
            f"unsupported snapshot schema {schema!r} "
            f"(this build reads exactly {SNAPSHOT_SCHEMA!r})")
    for key in ("config", "kernel", "modules"):
        if key not in document:
            raise SnapshotError(f"snapshot is missing its {key!r} section")
    return document


def save_document(path: str, document: dict) -> str:
    """Write a validated snapshot document to ``path``."""
    check_schema(document)
    with open(path, "w") as handle:
        handle.write(dump_document(document))
    return path


def load_document(path: str) -> dict:
    """Read + strictly validate a snapshot file."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except FileNotFoundError:
        raise SnapshotError(f"no snapshot at {path}")
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"{path}: not valid JSON: {exc}")
    return check_schema(document)


# --------------------------------------------------------------------- #
# diff (CLI `repro snapshot diff` + the replay verifier's error reports)
# --------------------------------------------------------------------- #


def _flatten(value, prefix: str, out: Dict[str, object]) -> None:
    if isinstance(value, dict):
        for key in sorted(value):
            _flatten(value[key], f"{prefix}.{key}" if prefix else str(key),
                     out)
    elif isinstance(value, list):
        out[f"{prefix}#len"] = len(value)
        for index, item in enumerate(value):
            _flatten(item, f"{prefix}[{index}]", out)
    else:
        out[prefix] = value


def diff_documents(a: dict, b: dict,
                   ignore_prefixes: Iterable[str] = ()) -> List[str]:
    """Human-readable leaf-level differences between two snapshots.

    Returns one ``path: a-value != b-value`` line per differing leaf
    (missing leaves render as ``<absent>``); an empty list means the
    documents are identical outside ``ignore_prefixes``.
    """
    flat_a: Dict[str, object] = {}
    flat_b: Dict[str, object] = {}
    _flatten(a, "", flat_a)
    _flatten(b, "", flat_b)
    ignored = tuple(ignore_prefixes)
    lines = []
    for key in sorted(set(flat_a) | set(flat_b)):
        if any(key.startswith(prefix) for prefix in ignored):
            continue
        left = flat_a.get(key, "<absent>")
        right = flat_b.get(key, "<absent>")
        if left != right:
            lines.append(f"{key}: {left!r} != {right!r}")
    return lines


__all__ = [
    "SNAPSHOT_SCHEMA",
    "SnapshotError",
    "Snapshotable",
    "encode_bytes",
    "decode_bytes",
    "encode_sparse_pages",
    "decode_sparse_pages",
    "dump_document",
    "check_schema",
    "save_document",
    "load_document",
    "diff_documents",
]
