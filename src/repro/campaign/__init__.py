"""Parallel simulation campaigns: matrix → workers → report, as a service.

The paper sweeps binaries × policies × modes by hand; this package
industrializes that batch workload.  A declarative JSON matrix
(:mod:`repro.campaign.matrix`) expands to jobs; three interchangeable
execution paths run them to :class:`~repro.campaign.result.JobResult`
records:

* the in-process, process-per-job pool (:mod:`repro.campaign.scheduler`)
  with crash isolation, per-job wall-clock timeouts and bounded retry;
* socket-attached workers pulling from a broker
  (:mod:`repro.campaign.service`, ``repro worker --connect``), same
  scheduling guarantees one network hop away;
* the content-addressed result cache (:mod:`repro.campaign.cache`),
  which replays previously simulated jobs without booting anything.

All three produce byte-identical ``repro.campaign/1`` aggregates
outside the quarantined ``timing`` section
(:mod:`repro.campaign.report`).

CLI::

    python -m repro campaign run --matrix campaign.json \\
        --jobs 4 --out results/ --cache-dir ~/.cache/repro
    python -m repro campaign run --matrix campaign.json \\
        --listen 0.0.0.0:7421 --out results/     # workers pull jobs
    python -m repro worker --connect broker-host:7421
    python -m repro serve --port 8437 --local-workers 2
    python -m repro campaign report --results results/
"""

from __future__ import annotations

from repro.campaign.cache import (
    CACHE_SCHEMA,
    CacheError,
    ResultCache,
    cacheable,
    job_key,
    open_cache,
    resolve_cache_dir,
)
from repro.campaign.matrix import (
    MATRIX_SCHEMA,
    JobSpec,
    Matrix,
    MatrixError,
    full_matrix,
    load_matrix,
    parse_matrix,
)
from repro.campaign.proto import PROTO_SCHEMA, FrameBuffer, ProtocolError
from repro.campaign.report import (
    CAMPAIGN_SCHEMA,
    aggregate,
    completed_ids,
    deterministic_view,
    load_jsonl,
    render_markdown,
    write_outputs,
)
from repro.campaign.result import JOB_SCHEMA, JobResult
from repro.campaign.scheduler import (
    CampaignResult,
    prepare_warm_snapshots,
    run_campaign,
)
from repro.campaign.service import (
    SERVICE_SCHEMA,
    Broker,
    CampaignService,
    run_campaign_distributed,
    run_worker,
    serve,
)
from repro.campaign.worker import execute_job

__all__ = [
    "JobSpec",
    "JobResult",
    "Matrix",
    "MatrixError",
    "CampaignResult",
    "ResultCache",
    "CacheError",
    "Broker",
    "CampaignService",
    "FrameBuffer",
    "ProtocolError",
    "MATRIX_SCHEMA",
    "CAMPAIGN_SCHEMA",
    "JOB_SCHEMA",
    "CACHE_SCHEMA",
    "PROTO_SCHEMA",
    "SERVICE_SCHEMA",
    "load_matrix",
    "parse_matrix",
    "full_matrix",
    "run_campaign",
    "run_campaign_distributed",
    "run_worker",
    "serve",
    "execute_job",
    "prepare_warm_snapshots",
    "aggregate",
    "completed_ids",
    "deterministic_view",
    "load_jsonl",
    "render_markdown",
    "write_outputs",
    "cacheable",
    "job_key",
    "open_cache",
    "resolve_cache_dir",
]
