"""Parallel simulation campaigns: matrix → worker pool → report.

The paper sweeps binaries × policies × modes by hand; this package
industrializes that batch workload.  A declarative JSON matrix
(:mod:`repro.campaign.matrix`) expands to jobs, a process-per-job
scheduler (:mod:`repro.campaign.scheduler`) runs them with crash
isolation, per-job wall-clock timeouts and bounded retry, and the
results aggregate into versioned reports
(:mod:`repro.campaign.report`, schema ``repro.campaign/1``).

CLI::

    python -m repro campaign run --matrix campaign.json \\
        --jobs 4 --out results/
    python -m repro campaign report --results results/
"""

from __future__ import annotations

from repro.campaign.matrix import (
    MATRIX_SCHEMA,
    JobSpec,
    Matrix,
    MatrixError,
    full_matrix,
    load_matrix,
    parse_matrix,
)
from repro.campaign.report import (
    CAMPAIGN_SCHEMA,
    aggregate,
    deterministic_view,
    load_jsonl,
    render_markdown,
    write_outputs,
)
from repro.campaign.scheduler import CampaignResult, run_campaign
from repro.campaign.worker import JOB_SCHEMA, execute_job

__all__ = [
    "JobSpec",
    "Matrix",
    "MatrixError",
    "CampaignResult",
    "MATRIX_SCHEMA",
    "CAMPAIGN_SCHEMA",
    "JOB_SCHEMA",
    "load_matrix",
    "parse_matrix",
    "full_matrix",
    "run_campaign",
    "execute_job",
    "aggregate",
    "deterministic_view",
    "load_jsonl",
    "render_markdown",
    "write_outputs",
]
