"""Campaign scheduler: fan jobs out across an isolated worker pool.

Each job runs in its **own process** (one process per attempt, never a
long-lived pool worker), so a job that raises, hangs or hard-dies can
never poison a neighbour or take the campaign down:

* a worker that sends a ``crashed`` payload (caught exception) or dies
  without a payload (non-zero exit / killed) is recorded as ``crashed``
  with its traceback / log tail, and retried up to ``spec.retries``
  times with exponential backoff — crashes are treated as potentially
  transient (the ``flaky:N`` injection hook exercises exactly this);
* a worker that exceeds ``spec.timeout`` wall-clock seconds is
  terminated (SIGTERM, then SIGKILL) and recorded as ``timeout`` — no
  retry, a hung simulation would hang again;
* everything else continues unaffected; the campaign itself always
  completes.

Results stream back over per-job pipes; the parent merges each job's
deterministic metrics snapshot into the campaign aggregate
(:func:`repro.obs.merge_snapshots`) and keeps host timings separate, so
the aggregate is byte-identical across ``--jobs 1`` and ``--jobs N``
runs of the same matrix.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from multiprocessing import connection as _mp_connection
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.campaign.matrix import JobSpec
from repro.campaign.result import JOB_STATUSES, JobResult
from repro.campaign.worker import child_main

_LOG_TAIL_LINES = 20


def _mp_context():
    # fork is markedly cheaper for a pure-Python ISS and the parent is
    # single-threaded; fall back to spawn where fork does not exist
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _log_tail(path: str, lines: int = _LOG_TAIL_LINES) -> List[str]:
    try:
        with open(path, errors="replace") as handle:
            return handle.read().splitlines()[-lines:]
    except OSError:
        return []


@dataclass
class _Running:
    spec: JobSpec
    attempt: int
    process: "multiprocessing.process.BaseProcess"
    conn: object
    log_path: str
    deadline: float
    payload: Optional[dict] = None
    history: List[dict] = field(default_factory=list)


@dataclass
class CampaignResult:
    """Everything :func:`run_campaign` produced, in job-id order."""

    records: List[JobResult]
    wall_seconds: float
    #: how many records were served from the result cache (no simulator
    #: boot happened for these)
    cache_hits: int = 0

    @property
    def status_counts(self) -> Dict[str, int]:
        counts = {status: 0 for status in JOB_STATUSES}
        for record in self.records:
            counts[record.status] += 1
        return counts

    @property
    def all_ok(self) -> bool:
        return all(r.status == "ok" for r in self.records)


@dataclass
class _Pending:
    spec: JobSpec
    attempt: int
    ready_at: float = 0.0
    history: List[dict] = field(default_factory=list)


def prepare_warm_snapshots(specs: List[JobSpec], snapshot_dir: str,
                           note: Callable[[str], None]) -> List[JobSpec]:
    """Boot each distinct platform configuration once and snapshot it.

    Jobs sharing (workload, policy, dift_mode, seed, scale) fork from
    one instruction-zero snapshot — boot and stimulus preparation run
    once per configuration instead of once per job.  ``jit`` is
    deliberately *not* part of the key: the trace compiler never travels
    in snapshots, so compiled and interpreted jobs share the same boot
    image (the worker re-enables it at restore).  The snapshot is
    taken before any guest instruction retires and no SystemC process
    has started, so a restored platform is indistinguishable from a
    freshly booted one.
    """
    from dataclasses import replace

    from repro.bench.workloads import get_workload
    from repro.dift.engine import RECORD
    from repro.obs import Observability

    paths: Dict[tuple, str] = {}
    out = []
    for spec in specs:
        key = (spec.workload, spec.policy, spec.dift_mode, spec.seed,
               spec.scale)
        path = paths.get(key)
        if path is None:
            workload = get_workload(spec.workload)
            dift = spec.policy != "none"
            platform = workload.make_platform(
                spec.scale, dift, obs=Observability(),
                dift_mode=spec.dift_mode if dift else "full",
                seed=spec.seed, engine_mode=RECORD)
            path = os.path.join(
                snapshot_dir,
                f"warm.{spec.workload}.{spec.policy}.{spec.dift_mode}"
                f".s{spec.seed}.{spec.scale}.json")
            platform.save_snapshot(path)
            paths[key] = path
            note(f"warm  {os.path.basename(path)}")
        out.append(replace(spec, snapshot=path))
    return out


def run_campaign(specs: List[JobSpec], jobs: int = 1,
                 log_dir: Optional[str] = None,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 poll_interval: float = 0.05,
                 warm_start: bool = False,
                 cache=None,
                 on_record: Optional[Callable[[JobResult], None]] = None,
                 ) -> CampaignResult:
    """Run every spec to a terminal status; never raises for job failures.

    ``timeout`` / ``retries`` override the per-spec values when given
    (the CLI's ``--timeout`` / ``--retries`` flags).  ``log_dir``
    receives one ``<job_id>.a<attempt>.log`` per attempt; when omitted,
    logs go to a temporary directory and only their tails survive (in
    the records of failed jobs).  ``warm_start`` boots each distinct
    platform configuration once in the parent, snapshots it at
    instruction zero, and has every worker resume from the snapshot.

    ``cache`` (a :class:`repro.campaign.cache.ResultCache`) is consulted
    *before* any platform boots: jobs whose content key has a stored
    record are served from disk (``timing.cached`` marks them), and
    fresh ok/failed results of cacheable jobs are stored back.  A fully
    cached campaign runs zero simulations and boots zero snapshots.
    ``on_record`` is invoked once per terminal record as it lands
    (cache hits first, then completions in finish order) — the CLI
    streams the JSONL through it so an interrupted campaign can resume.
    """
    from repro.campaign.cache import consult

    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if not specs:
        raise ValueError("no jobs to run")
    ids = [spec.job_id for spec in specs]
    if len(set(ids)) != len(ids):
        raise ValueError("duplicate job ids in the campaign")

    if log_dir is None:
        import tempfile
        _tmp = tempfile.TemporaryDirectory(prefix="repro-campaign-")
        log_dir = _tmp.name
    else:
        _tmp = None
        os.makedirs(log_dir, exist_ok=True)

    ctx = _mp_context()
    note = progress or (lambda message: None)
    emit = on_record or (lambda record: None)
    started = time.perf_counter()

    records: Dict[str, JobResult] = {}
    hits, specs, cache_keys = consult(cache, list(specs), note)
    for record in hits:
        records[record.job.job_id] = record
        emit(record)
    if warm_start and specs:
        specs = prepare_warm_snapshots(specs, log_dir, note)
    pending = deque(_Pending(spec, 0) for spec in specs)
    delayed: List[_Pending] = []
    running: List[_Running] = []

    def effective_timeout(spec: JobSpec) -> float:
        return timeout if timeout is not None else spec.timeout

    def effective_retries(spec: JobSpec) -> int:
        return retries if retries is not None else spec.retries

    def launch(item: _Pending) -> None:
        spec = item.spec
        recv, send = ctx.Pipe(duplex=False)
        # job ids may embed path separators (dynamic gen/... workloads):
        # flatten them so every log lands directly in log_dir
        safe_id = spec.job_id.replace(os.sep, "_").replace("/", "_")
        log_path = os.path.join(log_dir,
                                f"{safe_id}.a{item.attempt}.log")
        process = ctx.Process(
            target=child_main,
            args=(send, spec.to_dict(), item.attempt, log_path),
            name=f"campaign-{spec.job_id}", daemon=True)
        process.start()
        send.close()   # child's end; keep only the receiving half
        running.append(_Running(
            spec=spec, attempt=item.attempt, process=process, conn=recv,
            log_path=log_path,
            deadline=time.perf_counter() + effective_timeout(spec),
            history=item.history))
        note(f"start {spec.job_id} (attempt {item.attempt})")

    def finalize(job: _Running, payload: dict) -> None:
        payload.setdefault("job", job.spec.to_dict())
        record = replace(
            JobResult.from_json(payload),
            attempts=job.attempt + 1,
            retried_errors=tuple(job.history),
            log_tail=(tuple(_log_tail(job.log_path))
                      if payload["status"] != "ok" else ()))
        if (cache is not None and record.ran
                and record.job.job_id in cache_keys):
            cache.put(cache_keys[record.job.job_id], record)
        records[record.job.job_id] = record
        emit(record)
        note(f"done  {record.job.job_id}: {record.status}")

    def reap(job: _Running) -> None:
        """Process one finished/expired worker; requeue when retryable."""
        running.remove(job)
        job.conn.close()
        payload = job.payload
        if payload is None:
            exitcode = job.process.exitcode
            payload = {
                "job": job.spec.to_dict(),
                "status": "crashed",
                "error": {
                    "type": "WorkerDied",
                    "message": f"worker exited with code {exitcode} "
                               "before sending a result",
                    "exitcode": exitcode,
                },
            }
        if (payload["status"] == "crashed"
                and job.attempt < effective_retries(job.spec)):
            job.history.append(payload.get("error", {}))
            delay = job.spec.backoff * (2 ** job.attempt)
            note(f"retry {job.spec.job_id} in {delay:.2f}s "
                 f"(attempt {job.attempt + 1})")
            delayed.append(_Pending(job.spec, job.attempt + 1,
                                    ready_at=time.perf_counter() + delay,
                                    history=job.history))
            return
        finalize(job, payload)

    def kill(job: _Running) -> None:
        job.process.terminate()
        job.process.join(timeout=2.0)
        if job.process.is_alive():
            job.process.kill()
            job.process.join(timeout=2.0)

    while pending or delayed or running:
        now = time.perf_counter()
        for item in [d for d in delayed if d.ready_at <= now]:
            delayed.remove(item)
            pending.append(item)
        while pending and len(running) < jobs:
            launch(pending.popleft())
        if not running:
            # only backoff-delayed retries left: sleep to the nearest
            time.sleep(max(poll_interval,
                           min(d.ready_at for d in delayed) - now))
            continue

        _mp_connection.wait([job.conn for job in running],
                            timeout=poll_interval)
        now = time.perf_counter()
        for job in list(running):
            got_payload = False
            try:
                if job.conn.poll():
                    job.payload = job.conn.recv()
                    got_payload = True
            except (EOFError, OSError):
                got_payload = True   # pipe closed without a payload
            if got_payload or not job.process.is_alive():
                job.process.join(timeout=5.0)
                if job.process.is_alive():
                    kill(job)
                reap(job)
            elif now >= job.deadline:
                kill(job)
                job.payload = {
                    "job": job.spec.to_dict(),
                    "status": "timeout",
                    "error": {
                        "type": "JobTimeout",
                        "message": f"exceeded the "
                                   f"{effective_timeout(job.spec):g}s "
                                   "wall-clock budget and was terminated",
                    },
                }
                reap(job)

    if _tmp is not None:
        _tmp.cleanup()
    return CampaignResult(
        records=[records[job_id] for job_id in sorted(records)],
        wall_seconds=time.perf_counter() - started,
        cache_hits=len(hits))
