"""Content-addressed campaign result cache.

Every campaign job has a *content identity*: the platform configuration
it builds (policy, seed, DIFT mode, memory geometry — everything
:meth:`PlatformConfig.to_json` serializes), the exact guest binary
bytes, and the execution-budget axes (``max_instructions``, scale,
jit-ness).  Two jobs with the same identity simulate the same machine on
the same input and produce the same deterministic record — so the second
one is a cache hit, not a re-simulation.  A re-submitted matrix only
runs its delta; that is the substrate for serving many overlapping
analysis submissions.

Deliberately **excluded** from the key: the job id (presentation),
timeout/retry/backoff budgets (scheduling policy), warm-start snapshot
paths (execution strategy — warm and cold runs are proven identical),
and failure injection (injected jobs are never cached at all).  ``jit``
*is* included: jit-on and jit-off runs are snapshot-identical but their
records carry jit-specific gauges, so mixing them would break record
byte-identity.

On-disk layout (``repro.campaign.cache/1``)::

    <cache-dir>/
      VERSION                      # the layout schema line
      objects/<kk>/<key>.json      # kk = first two hex chars of key

Entries are written atomically (temp file + ``os.replace``) so a
concurrent reader never observes a torn record and two writers racing on
the same key both leave a valid entry.  Corrupt or foreign entries read
as misses.  The cache directory is discovered from ``--cache-dir`` first
and the ``REPRO_CACHE`` environment variable second; with neither, the
cache is off.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign.matrix import JobSpec
from repro.campaign.result import JobResult

CACHE_SCHEMA = "repro.campaign.cache/1"
KEY_SCHEMA = "repro.campaign.jobkey/1"

#: environment variable consulted when no explicit --cache-dir is given
CACHE_ENV = "REPRO_CACHE"


class CacheError(ValueError):
    """An unusable cache directory (wrong layout version, not ours)."""


def job_key(spec: JobSpec) -> str:
    """The content key: sha256 over the job's simulation identity.

    Builds the guest program and platform config exactly the way the
    worker will (same registry call, same defaults) and hashes the
    canonical JSON of ``{config, binary digest, budget axes}``.  Building
    a program costs milliseconds of assembly — noise against the
    simulation it can save.
    """
    from repro.bench.workloads import get_workload
    from repro.dift.engine import RECORD

    workload = get_workload(spec.workload)
    dift = spec.policy != "none"
    program, config = workload.make_config(
        spec.scale, dift,
        dift_mode=spec.dift_mode if dift else "full",
        seed=spec.seed, engine_mode=RECORD)
    material = {
        "schema": KEY_SCHEMA,
        "config": config.to_json(),
        "binary": {
            "sha256": hashlib.sha256(program.image).hexdigest(),
            "size": len(program.image),
            "entry": program.entry,
        },
        "workload": spec.workload,
        "scale": spec.scale,
        "max_instructions": spec.max_instructions,
        "jit": bool(spec.jit),
    }
    canonical = json.dumps(material, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def cacheable(spec: JobSpec) -> bool:
    """Failure-injected jobs exist to exercise the scheduler, not the
    simulator; their outcomes must never be replayed from a cache."""
    return spec.inject is None


class ResultCache:
    """An on-disk ``repro.campaign.cache/1`` store of job records."""

    def __init__(self, root: str):
        self.root = root
        self._objects = os.path.join(root, "objects")
        os.makedirs(self._objects, exist_ok=True)
        version_path = os.path.join(root, "VERSION")
        if os.path.exists(version_path):
            with open(version_path) as handle:
                found = handle.read().strip()
            if found != CACHE_SCHEMA:
                raise CacheError(
                    f"{root}: cache layout {found!r} is not "
                    f"{CACHE_SCHEMA!r}; refusing to mix layouts "
                    "(point --cache-dir at a fresh directory)")
        else:
            _atomic_write(version_path, CACHE_SCHEMA + "\n")

    def path(self, key: str) -> str:
        return os.path.join(self._objects, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[JobResult]:
        """The stored record for ``key``, or None (corrupt == miss)."""
        try:
            with open(self.path(key)) as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        try:
            if (entry.get("schema") != CACHE_SCHEMA
                    or entry.get("key") != key):
                return None
            return JobResult.from_json(entry["record"])
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, key: str, record: JobResult) -> str:
        """Store ``record`` under ``key`` atomically; returns the path."""
        path = self.path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {"schema": CACHE_SCHEMA, "key": key,
                 "record": record.to_json()}
        _atomic_write(path, json.dumps(entry, sort_keys=True) + "\n")
        return path

    def __len__(self) -> int:
        count = 0
        for _, _, files in os.walk(self._objects):
            count += sum(1 for name in files if name.endswith(".json"))
        return count

    def __repr__(self) -> str:
        return f"ResultCache({self.root!r})"


def _atomic_write(path: str, text: str) -> None:
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-cache-")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def resolve_cache_dir(explicit: Optional[str] = None,
                      disabled: bool = False) -> Optional[str]:
    """``--cache-dir`` beats ``$REPRO_CACHE`` beats off."""
    if disabled:
        return None
    if explicit:
        return explicit
    return os.environ.get(CACHE_ENV) or None


def open_cache(explicit: Optional[str] = None,
               disabled: bool = False) -> Optional[ResultCache]:
    """Discovery + construction in one step; None when caching is off."""
    root = resolve_cache_dir(explicit, disabled=disabled)
    return ResultCache(root) if root else None


def consult(cache: Optional[ResultCache], specs: List[JobSpec],
            note: Callable[[str], None] = lambda message: None,
            ) -> Tuple[List[JobResult], List[JobSpec], Dict[str, str]]:
    """Partition ``specs`` into cache hits and jobs that must run.

    Returns ``(hits, misses, keys)`` where ``hits`` are stored records
    already rebound to the requesting specs, ``misses`` preserve the
    input order, and ``keys`` maps the job id of every *cacheable* spec
    to its content key (the scheduler stores fresh results under these
    after the run).  With ``cache=None`` everything is a miss and
    ``keys`` is empty.
    """
    hits: List[JobResult] = []
    misses: List[JobSpec] = []
    keys: Dict[str, str] = {}
    if cache is None:
        return hits, list(specs), keys
    for spec in specs:
        if not cacheable(spec):
            misses.append(spec)
            continue
        key = job_key(spec)
        keys[spec.job_id] = key
        stored = cache.get(key)
        if stored is None:
            misses.append(spec)
        else:
            hits.append(stored.rebind(spec))
            note(f"cache {spec.job_id}: hit ({key[:12]})")
    return hits, misses, keys
