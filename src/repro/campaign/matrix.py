"""Declarative campaign matrices: workload × policy × dift_mode × seed.

A matrix file is JSON (schema ``repro.campaign.matrix/1``)::

    {
      "schema": "repro.campaign.matrix/1",
      "defaults": {"scale": "quick", "max_instructions": 150000,
                   "timeout": 120, "retries": 1},
      "axes": {
        "workload": ["qsort", "primes"],
        "policy": ["default"],
        "dift_mode": ["full", "demand"],
        "seed": [0]
      },
      "include": [{"workload": "qsort", "inject": "crash"}],
      "exclude": [{"workload": "primes", "dift_mode": "demand"}]
    }

``axes`` expands to the cartesian product; ``exclude`` entries drop
every product job whose fields all match; ``include`` entries append
explicit extra jobs (with ``defaults`` applied).  A top-level
``"warm_start": true`` makes the scheduler boot each distinct platform
configuration once, snapshot it at instruction zero, and fork every job
from the snapshot instead of re-booting per job; ``"cache": false``
opts the whole campaign out of the content-addressed result cache even
when one is configured (``--cache-dir`` / ``$REPRO_CACHE``).  Axis
semantics:

* ``workload`` — a :mod:`repro.bench.workloads` registry name;
* ``policy`` — ``"default"`` runs the workload's own security policy
  (VP+), ``"none"`` runs the plain VP.  For ``"none"`` the
  ``dift_mode`` axis is meaningless, so those jobs collapse to a single
  ``dift_mode="none"`` job instead of one per mode;
* ``dift_mode`` — ``"full"``, ``"demand"``, ``"decoupled"`` or
  ``"decoupled-strict"``;
* ``seed`` — the platform seed (drives sensor data);
* ``jit`` — ``false``/``true``: run with the trace-compiled fast path.
  Host-side execution strategy only — it changes neither the simulated
  machine nor the warm-start snapshot key, so jit-on and jit-off jobs
  share boot snapshots.

Every job gets a stable id ``<workload>.<policy>.<dift_mode>.s<seed>``
(suffixed ``.jit`` when the trace compiler is on, and ``.i<N>`` for
duplicate ``include`` entries), which is the
sort key of the campaign report — so two runs of the same matrix
produce records in the same order regardless of worker count.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from itertools import product
from typing import Dict, List, Optional

from repro.bench.workloads import workload_names

MATRIX_SCHEMA = "repro.campaign.matrix/1"

POLICIES = ("default", "none")
DIFT_MODES = ("full", "demand", "decoupled", "decoupled-strict")
#: the lean default sweep for :func:`full_matrix`; the decoupled modes
#: are opt-in axis values (nightly CI sweeps them explicitly)
DEFAULT_SWEEP_MODES = ("full", "demand")
SCALES = ("quick", "full")
#: failure-injection hooks understood by the worker (plus ``flaky:N``)
INJECT_KINDS = ("crash", "die", "hang")


class MatrixError(ValueError):
    """A malformed matrix file or an invalid job specification."""


@dataclass(frozen=True)
class JobSpec:
    """One fully resolved campaign job."""

    job_id: str
    workload: str
    policy: str = "default"            # "default" (VP+) or "none" (VP)
    dift_mode: str = "full"            # "full" / "demand" / "none"
    seed: int = 0
    scale: str = "quick"
    jit: bool = False                  # run with the trace compiler on
    max_instructions: Optional[int] = None
    timeout: float = 120.0             # wall-clock seconds per attempt
    retries: int = 1                   # extra attempts after a crash
    backoff: float = 0.1               # base retry delay (doubles)
    inject: Optional[str] = None       # crash / die / hang / flaky:N
    #: warm-start snapshot path, filled by the scheduler (not a matrix
    #: field): the worker restores this instead of booting the platform
    snapshot: Optional[str] = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        return cls(**data)


#: job fields settable from ``defaults`` / ``include`` entries
_JOB_FIELDS = ("workload", "policy", "dift_mode", "seed", "scale", "jit",
               "max_instructions", "timeout", "retries", "backoff",
               "inject")
_AXIS_FIELDS = ("workload", "policy", "dift_mode", "seed", "jit")


def _validate_job(entry: dict, where: str) -> None:
    unknown = set(entry) - set(_JOB_FIELDS)
    if unknown:
        raise MatrixError(
            f"{where}: unknown job field(s) {sorted(unknown)}; "
            f"valid fields: {list(_JOB_FIELDS)}")
    workload = entry.get("workload")
    if not isinstance(workload, str):
        raise MatrixError(f"{where}: 'workload' (string) is required")
    if workload.startswith("gen/"):
        # dynamic generated-attack workload: gen/<case-seed-hex>/<variant>
        from repro.gen.campaign import parse_gen_name
        try:
            parse_gen_name(workload)
        except ValueError as exc:
            raise MatrixError(f"{where}: {exc}") from None
    elif workload not in workload_names():
        raise MatrixError(
            f"{where}: unknown workload {workload!r}; available: "
            f"{', '.join(workload_names())} (or a dynamic "
            f"'gen/<case-seed-hex>/<attack|benign>' name)")
    if entry.get("policy", "default") not in POLICIES:
        raise MatrixError(
            f"{where}: policy must be one of {list(POLICIES)}, "
            f"not {entry['policy']!r}")
    mode = entry.get("dift_mode", "full")
    if mode not in DIFT_MODES + ("none",):
        raise MatrixError(
            f"{where}: dift_mode must be one of {list(DIFT_MODES)}, "
            f"not {mode!r}")
    if entry.get("scale", "quick") not in SCALES:
        raise MatrixError(
            f"{where}: scale must be one of {list(SCALES)}, "
            f"not {entry['scale']!r}")
    if not isinstance(entry.get("seed", 0), int):
        raise MatrixError(f"{where}: seed must be an integer")
    if not isinstance(entry.get("jit", False), bool):
        raise MatrixError(f"{where}: jit must be a boolean")
    inject = entry.get("inject")
    if inject is not None and inject not in INJECT_KINDS:
        kind, _, count = inject.partition(":")
        if not (kind == "flaky" and count.isdigit()):
            raise MatrixError(
                f"{where}: inject must be one of {list(INJECT_KINDS)} "
                f"or 'flaky:N', not {inject!r}")


def _job_id(entry: dict) -> str:
    job_id = (f"{entry['workload']}.{entry.get('policy', 'default')}"
              f".{entry.get('dift_mode', 'full')}.s{entry.get('seed', 0)}")
    if entry.get("jit", False):
        # suffix only when on, so pre-jit matrices keep their job ids
        # (and hence their report sort order and baselines)
        job_id += ".jit"
    return job_id


def _normalize(entry: dict) -> dict:
    # plain-VP jobs have no DIFT loop to choose: collapse the mode axis
    if entry.get("policy") == "none":
        entry = dict(entry, dift_mode="none")
    return entry


def _make_spec(entry: dict, defaults: dict, where: str,
               job_id: Optional[str] = None) -> JobSpec:
    merged = dict(defaults)
    merged.update(entry)
    merged = _normalize(merged)
    _validate_job(merged, where)
    return JobSpec(job_id=job_id or _job_id(merged), **merged)


@dataclass
class Matrix:
    """A parsed matrix: expand to the final job list with :meth:`jobs`."""

    axes: Dict[str, list]
    defaults: dict = field(default_factory=dict)
    include: List[dict] = field(default_factory=list)
    exclude: List[dict] = field(default_factory=list)
    source: str = "<memory>"
    #: boot/prepare each distinct platform configuration once, snapshot
    #: it at instruction zero, and fork every job from the snapshot
    warm_start: bool = False
    #: consult the content-addressed result cache (when one is
    #: configured); matrices that must re-simulate set this to false
    cache: bool = True

    def jobs(self) -> List[JobSpec]:
        specs: Dict[str, JobSpec] = {}
        axis_values = [self.axes.get(name) or [None] for name in _AXIS_FIELDS]
        for combo in product(*axis_values):
            entry = {name: value
                     for name, value in zip(_AXIS_FIELDS, combo)
                     if value is not None}
            entry = _normalize(dict(self.defaults, **entry))
            if any(all(entry.get(k) == v for k, v in rule.items())
                   for rule in self.exclude):
                continue
            spec = _make_spec(entry, {}, f"{self.source}: axes")
            specs.setdefault(spec.job_id, spec)
        for n, extra in enumerate(self.include):
            spec = _make_spec(extra, self.defaults,
                              f"{self.source}: include[{n}]")
            if spec.job_id in specs:
                spec = replace(spec, job_id=f"{spec.job_id}.i{n}")
            specs[spec.job_id] = spec
        if not specs:
            raise MatrixError(f"{self.source}: matrix expands to zero jobs")
        return [specs[job_id] for job_id in sorted(specs)]


def parse_matrix(document: dict, source: str = "<memory>") -> Matrix:
    """Validate and parse a matrix document (already JSON-decoded)."""
    if not isinstance(document, dict):
        raise MatrixError(f"{source}: matrix document must be a JSON object")
    schema = document.get("schema", MATRIX_SCHEMA)
    if schema != MATRIX_SCHEMA:
        raise MatrixError(
            f"{source}: unsupported matrix schema {schema!r} "
            f"(expected {MATRIX_SCHEMA!r})")
    unknown = set(document) - {"schema", "defaults", "axes", "include",
                               "exclude", "warm_start", "cache"}
    if unknown:
        raise MatrixError(
            f"{source}: unknown top-level key(s) {sorted(unknown)}")
    axes = document.get("axes", {})
    if not isinstance(axes, dict):
        raise MatrixError(f"{source}: 'axes' must be an object")
    bad_axes = set(axes) - set(_AXIS_FIELDS)
    if bad_axes:
        raise MatrixError(
            f"{source}: unknown axis name(s) {sorted(bad_axes)}; "
            f"valid axes: {list(_AXIS_FIELDS)}")
    for name, values in axes.items():
        if not isinstance(values, list) or not values:
            raise MatrixError(
                f"{source}: axis {name!r} must be a non-empty list")
    include = document.get("include", [])
    exclude = document.get("exclude", [])
    defaults = document.get("defaults", {})
    for key, kind in (("include", include), ("exclude", exclude)):
        if not isinstance(kind, list) or any(
                not isinstance(e, dict) for e in kind):
            raise MatrixError(f"{source}: {key!r} must be a list of objects")
    if not isinstance(defaults, dict):
        raise MatrixError(f"{source}: 'defaults' must be an object")
    if not axes.get("workload") and not include:
        raise MatrixError(
            f"{source}: need a 'workload' axis or explicit 'include' jobs")
    warm_start = document.get("warm_start", False)
    if not isinstance(warm_start, bool):
        raise MatrixError(f"{source}: 'warm_start' must be a boolean")
    cache = document.get("cache", True)
    if not isinstance(cache, bool):
        raise MatrixError(f"{source}: 'cache' must be a boolean")
    return Matrix(axes=axes, defaults=defaults, include=include,
                  exclude=exclude, source=source, warm_start=warm_start,
                  cache=cache)


def load_matrix(path: str) -> Matrix:
    """Load, validate and parse a matrix JSON file."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except OSError as exc:
        raise MatrixError(f"cannot read matrix file {path!r}: "
                          f"{exc.strerror or exc}") from None
    except json.JSONDecodeError as exc:
        raise MatrixError(f"{path}: not valid JSON: {exc}") from None
    return parse_matrix(document, source=path)


def full_matrix(dift_modes=DEFAULT_SWEEP_MODES, **defaults) -> Matrix:
    """The whole-registry matrix: every workload × the given DIFT modes."""
    return Matrix(axes={"workload": workload_names(),
                        "policy": ["default"],
                        "dift_mode": list(dift_modes),
                        "seed": [0]},
                  defaults=defaults, source="<full>")
