"""Campaign-as-a-service: broker, socket workers, and the HTTP facade.

Three layers, each usable on its own:

* :class:`Broker` — a single-threaded ``selectors`` event loop (run on a
  daemon thread) that owns the job queue.  Workers connect over TCP,
  speak :mod:`repro.campaign.proto`, and *pull* jobs; the broker folds
  each returned ``repro.campaign.job/1`` record into its batch
  incrementally (:func:`repro.obs.merge_snapshots`) and preserves every
  scheduling guarantee of the in-process pool: crashed jobs retry with
  exponential backoff, timeouts never retry, and a worker that vanishes
  mid-job (dead socket or silent heartbeat) gets its job requeued as a
  retryable crash.  The result cache is consulted at submit time, so a
  fully cached batch completes without a single worker.
* :func:`run_worker` — the worker side of the protocol
  (``repro worker --connect HOST:PORT``).  Each job runs in a child
  process (the same ``child_main`` as the local pool) so the worker
  itself survives crashes and can enforce the per-job wall-clock budget
  locally, heartbeating while the simulation runs.
* :class:`CampaignService` / :func:`serve` — a stdlib ``http.server``
  facade over one broker: ``POST /campaigns`` submits a matrix document
  and returns 202 + an id, ``GET /campaigns/<id>`` polls progress,
  ``GET /campaigns/<id>/report`` serves the final aggregate (or the
  markdown report with ``?format=markdown``).

Determinism: a batch run through sockets produces the same records as
``run_campaign`` on the same specs (worker count and transport only
change *when* records arrive, never their content), so the
``repro.campaign/1`` aggregate is byte-identical outside ``timing``.
"""

from __future__ import annotations

import hashlib
import json
import os
import selectors
import socket
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign.matrix import JobSpec
from repro.campaign.proto import (
    PROTO_SCHEMA,
    FrameBuffer,
    ProtocolError,
    check_handshake,
    hello,
    pack_frame,
    recv_frame,
    send_frame,
)
from repro.campaign.result import JobResult
from repro.campaign.scheduler import (
    CampaignResult,
    _log_tail,
    _mp_context,
    prepare_warm_snapshots,
)
from repro.obs.metrics import merge_snapshots

SERVICE_SCHEMA = "repro.campaign.service/1"

#: extra wall-clock slack the broker grants on top of a job's timeout
#: before declaring it timed out itself (the worker enforces the real
#: budget locally; the grace only covers transport and scheduling lag)
DEFAULT_GRACE = 10.0

#: a worker silent for this long (no result, heartbeat or request) is
#: considered dead and its job is requeued
DEFAULT_WORKER_TIMEOUT = 15.0


# --------------------------------------------------------------------- #
# broker
# --------------------------------------------------------------------- #

@dataclass
class _BrokerJob:
    batch: "Batch"
    spec: JobSpec
    attempt: int = 0
    ready_at: float = 0.0
    history: List[dict] = field(default_factory=list)


@dataclass
class _Conn:
    sock: socket.socket
    addr: tuple
    buffer: FrameBuffer = field(default_factory=FrameBuffer)
    outbox: bytearray = field(default_factory=bytearray)
    name: str = "?"
    worker_id: int = -1
    hello_done: bool = False
    requested: bool = False
    job: Optional[_BrokerJob] = None
    deadline: float = 0.0
    last_seen: float = 0.0


class Batch:
    """One submitted campaign: records accumulate until all jobs land.

    Thread-safe: the broker loop, the submitting thread (cache hits) and
    HTTP status readers all go through the internal lock.  ``metrics``
    is the *incrementally* folded deterministic snapshot — each ok or
    failed record is merged as it arrives, so a status poll can show
    live aggregate metrics without replaying the record list.
    """

    def __init__(self, batch_id: str, specs: List[JobSpec],
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 cache=None,
                 on_record: Optional[Callable[[JobResult], None]] = None):
        self.batch_id = batch_id
        self.specs = list(specs)
        self.timeout = timeout
        self.retries = retries
        self.cache = cache
        self.cache_keys: Dict[str, str] = {}
        self.cache_hits = 0
        self.started = time.perf_counter()
        self.wall_seconds: Optional[float] = None
        self._on_record = on_record
        self._records: Dict[str, JobResult] = {}
        self._metrics: dict = {}
        self._lock = threading.Lock()
        self._done = threading.Event()

    def record(self, result: JobResult) -> None:
        with self._lock:
            self._records[result.job.job_id] = result
            if result.cached:
                self.cache_hits += 1
            if result.ran:
                self._metrics = merge_snapshots(self._metrics,
                                                result.metrics)
            finished = len(self._records) >= len(self.specs)
            if finished and self.wall_seconds is None:
                self.wall_seconds = time.perf_counter() - self.started
        if self._on_record is not None:
            self._on_record(result)
        if finished:
            self._done.set()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> CampaignResult:
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"batch {self.batch_id} did not finish within {timeout}s")
        return self.result()

    def result(self) -> CampaignResult:
        with self._lock:
            records = [self._records[job_id]
                       for job_id in sorted(self._records)]
            return CampaignResult(records=records,
                                  wall_seconds=self.wall_seconds or 0.0,
                                  cache_hits=self.cache_hits)

    def status(self) -> dict:
        """A JSON-clean progress snapshot (the HTTP poll body)."""
        with self._lock:
            by_status: Dict[str, int] = {}
            for record in self._records.values():
                by_status[record.status] = by_status.get(
                    record.status, 0) + 1
            return {
                "schema": SERVICE_SCHEMA,
                "id": self.batch_id,
                "state": "done" if self._done.is_set() else "running",
                "jobs": {
                    "total": len(self.specs),
                    "completed": len(self._records),
                    "by_status": dict(sorted(by_status.items())),
                },
                "cache_hits": self.cache_hits,
                "wall_seconds": self.wall_seconds,
            }


class Broker:
    """The job distributor: submit batches, let workers pull them.

    All queue state lives on the loop thread; :meth:`submit` only does
    caller-side work (cache consult, warm-snapshot prep) and hands jobs
    over through a locked queue plus a socketpair wakeup, so any thread
    may submit.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 name: str = "broker",
                 cache=None,
                 worker_timeout: float = DEFAULT_WORKER_TIMEOUT,
                 grace: float = DEFAULT_GRACE,
                 tick: float = 0.2,
                 data_dir: Optional[str] = None,
                 progress: Optional[Callable[[str], None]] = None):
        self.name = name
        self.cache = cache
        self.worker_timeout = worker_timeout
        self.grace = grace
        self.tick = tick
        self._note = progress or (lambda message: None)
        self._host, self._port = host, port
        self._listener: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._submit_lock = threading.Lock()
        self._submitted: List[List[_BrokerJob]] = []
        self._artifacts: Dict[str, str] = {}
        self._batch_seq = 0
        self._worker_seq = 0
        self._worker_count = 0
        if data_dir is None:
            self._tmp = tempfile.TemporaryDirectory(
                prefix="repro-broker-")
            self.data_dir = self._tmp.name
        else:
            self._tmp = None
            self.data_dir = data_dir
            os.makedirs(data_dir, exist_ok=True)

    # ----------------------------------------------------------------- #
    # public api (any thread)
    # ----------------------------------------------------------------- #

    @property
    def address(self) -> Tuple[str, int]:
        if self._listener is None:
            raise RuntimeError("broker is not started")
        return self._listener.getsockname()[:2]

    @property
    def worker_count(self) -> int:
        return self._worker_count

    def start(self) -> Tuple[str, int]:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(64)
        listener.setblocking(False)
        self._listener = listener
        self._thread = threading.Thread(target=self._loop,
                                        name="campaign-broker",
                                        daemon=True)
        self._thread.start()
        host, port = self.address
        self._note(f"broker listening on {host}:{port}")
        return host, port

    def stop(self) -> None:
        self._stopping.set()
        self._wakeup()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        if self._tmp is not None:
            self._tmp.cleanup()

    def submit(self, specs: List[JobSpec],
               timeout: Optional[float] = None,
               retries: Optional[int] = None,
               warm_start: bool = False,
               cache: Optional[object] = "inherit",
               on_record: Optional[Callable[[JobResult], None]] = None,
               batch_id: Optional[str] = None) -> Batch:
        """Queue a campaign; returns a live :class:`Batch` immediately.

        Mirrors :func:`run_campaign`: the cache is consulted before any
        platform boots (hits land as records before this returns), warm
        snapshots are prepared for the *misses* only and shipped to
        workers as shared artifacts.  ``cache`` defaults to the broker's
        own; pass ``None`` to disable for this batch.
        """
        from repro.campaign.cache import consult

        specs = list(specs)
        if not specs:
            raise ValueError("no jobs to run")
        ids = [spec.job_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate job ids in the campaign")
        if cache == "inherit":
            cache = self.cache
        if batch_id is None:
            with self._submit_lock:
                self._batch_seq += 1
                batch_id = f"c{self._batch_seq:04d}"
        batch = Batch(batch_id, specs, timeout=timeout, retries=retries,
                      cache=cache, on_record=on_record)
        hits, misses, batch.cache_keys = consult(cache, specs, self._note)
        for record in hits:
            batch.record(record)
        if warm_start and misses:
            snap_dir = os.path.join(self.data_dir, f"{batch_id}-snap")
            os.makedirs(snap_dir, exist_ok=True)
            misses = prepare_warm_snapshots(misses, snap_dir, self._note)
            misses = [replace(spec,
                              snapshot=self._register_artifact(
                                  spec.snapshot))
                      for spec in misses]
        jobs = [_BrokerJob(batch=batch, spec=spec) for spec in misses]
        if jobs:
            with self._submit_lock:
                self._submitted.append(jobs)
            self._wakeup()
        self._note(f"batch {batch_id}: {len(hits)} cached, "
                   f"{len(jobs)} queued")
        return batch

    # ----------------------------------------------------------------- #
    # loop internals (loop thread only, except _register_artifact which
    # is called before the jobs referencing the artifact are queued)
    # ----------------------------------------------------------------- #

    def _register_artifact(self, path: str) -> str:
        with open(path) as handle:
            data = handle.read()
        artifact_id = ("snap-"
                       + hashlib.sha256(data.encode()).hexdigest()[:16])
        self._artifacts.setdefault(artifact_id, data)
        return f"artifact:{artifact_id}"

    def _wakeup(self) -> None:
        try:
            self._wake_w.send(b"\x01")
        except OSError:
            pass

    def _effective_timeout(self, job: _BrokerJob) -> float:
        if job.batch.timeout is not None:
            return job.batch.timeout
        return job.spec.timeout

    def _effective_retries(self, job: _BrokerJob) -> int:
        if job.batch.retries is not None:
            return job.batch.retries
        return job.spec.retries

    def _loop(self) -> None:
        sel = selectors.DefaultSelector()
        sel.register(self._listener, selectors.EVENT_READ, "listener")
        sel.register(self._wake_r, selectors.EVENT_READ, "wakeup")
        pending: deque = deque()
        delayed: List[_BrokerJob] = []
        conns: Dict[socket.socket, _Conn] = {}

        def want(conn: _Conn) -> None:
            events = selectors.EVENT_READ
            if conn.outbox:
                events |= selectors.EVENT_WRITE
            sel.modify(conn.sock, events, conn)

        def push(conn: _Conn, message: dict) -> None:
            conn.outbox.extend(pack_frame(message))
            want(conn)

        def worker_lost(job: _BrokerJob, why: str) -> None:
            payload = {
                "job": job.spec.to_dict(),
                "status": "crashed",
                "error": {"type": "WorkerLost",
                          "message": f"worker connection lost mid-job "
                                     f"({why}); requeued"},
            }
            self._handle_outcome(job, payload, pending, delayed)

        def drop(conn: _Conn, why: str) -> None:
            self._note(f"worker {conn.name}#{conn.worker_id}: {why}")
            if conn.hello_done:
                self._worker_count -= 1
            try:
                sel.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
            conns.pop(conn.sock, None)
            try:
                conn.sock.close()
            except OSError:
                pass
            if conn.job is not None:
                job, conn.job = conn.job, None
                worker_lost(job, why)

        def dispatch() -> None:
            if not pending:
                return
            for conn in list(conns.values()):
                if not pending:
                    return
                if (conn.hello_done and conn.requested
                        and conn.job is None):
                    job = pending.popleft()
                    job_timeout = self._effective_timeout(job)
                    conn.job = job
                    conn.requested = False
                    conn.deadline = (time.perf_counter() + job_timeout
                                     + self.grace)
                    message = {"type": "job",
                               "spec": job.spec.to_dict(),
                               "attempt": job.attempt,
                               "timeout": job_timeout}
                    push(conn, message)
                    self._note(f"assign {job.spec.job_id} -> "
                               f"{conn.name}#{conn.worker_id} "
                               f"(attempt {job.attempt})")

        def on_message(conn: _Conn, message: dict) -> None:
            kind = message.get("type")
            if not conn.hello_done:
                if (kind != "hello"
                        or message.get("proto") != PROTO_SCHEMA):
                    push(conn, {"type": "error",
                                "message": f"handshake must be a "
                                           f"{PROTO_SCHEMA} hello"})
                    raise ProtocolError("bad handshake")
                conn.hello_done = True
                conn.name = str(message.get("name") or "worker")
                self._worker_seq += 1
                conn.worker_id = self._worker_seq
                self._worker_count += 1
                push(conn, {"type": "welcome", "proto": PROTO_SCHEMA,
                            "name": self.name, "id": conn.worker_id})
                self._note(f"worker {conn.name}#{conn.worker_id} "
                           f"connected from {conn.addr[0]}")
                return
            if kind == "request":
                conn.requested = True
                dispatch()
            elif kind == "heartbeat":
                pass   # last_seen was already refreshed
            elif kind == "result":
                record = message.get("record")
                job, conn.job = conn.job, None
                if job is None or not isinstance(record, dict):
                    self._note(f"worker {conn.name}#{conn.worker_id}: "
                               "dropping late/unsolicited result")
                    return
                record.setdefault("job", job.spec.to_dict())
                if record["job"].get("job_id") != job.spec.job_id:
                    conn.job = job   # not ours: keep waiting
                    return
                self._handle_outcome(job, record, pending, delayed)
                dispatch()
            elif kind == "fetch":
                artifact_id = message.get("artifact_id")
                data = self._artifacts.get(artifact_id)
                if data is None:
                    push(conn, {"type": "error",
                                "message": f"unknown artifact "
                                           f"{artifact_id!r}"})
                else:
                    push(conn, {"type": "artifact",
                                "artifact_id": artifact_id,
                                "data": data})
            else:
                raise ProtocolError(f"unexpected message {kind!r}")

        while not self._stopping.is_set():
            for key, events in sel.select(timeout=self.tick):
                if key.data == "wakeup":
                    try:
                        while self._wake_r.recv(4096):
                            pass
                    except BlockingIOError:
                        pass
                elif key.data == "listener":
                    try:
                        sock, addr = self._listener.accept()
                    except OSError:
                        continue
                    sock.setblocking(False)
                    conn = _Conn(sock=sock, addr=addr,
                                 last_seen=time.perf_counter())
                    conns[sock] = conn
                    sel.register(sock, selectors.EVENT_READ, conn)
                else:
                    conn = key.data
                    if events & selectors.EVENT_WRITE and conn.outbox:
                        try:
                            sent = conn.sock.send(conn.outbox)
                            del conn.outbox[:sent]
                            want(conn)
                        except BlockingIOError:
                            pass
                        except OSError as exc:
                            drop(conn, f"send failed: {exc}")
                            continue
                    if events & selectors.EVENT_READ:
                        try:
                            data = conn.sock.recv(65536)
                        except BlockingIOError:
                            continue
                        except OSError as exc:
                            drop(conn, f"recv failed: {exc}")
                            continue
                        if not data:
                            drop(conn, "disconnected")
                            continue
                        conn.last_seen = time.perf_counter()
                        try:
                            for message in conn.buffer.feed(data):
                                on_message(conn, message)
                        except ProtocolError as exc:
                            drop(conn, f"protocol error: {exc}")

            # pick up newly submitted batches
            with self._submit_lock:
                fresh, self._submitted = self._submitted, []
            for jobs in fresh:
                pending.extend(jobs)
            # backoff-delayed retries that are ready again
            now = time.perf_counter()
            for job in [j for j in delayed if j.ready_at <= now]:
                delayed.remove(job)
                pending.append(job)
            dispatch()
            # liveness: silent workers are dead workers
            for conn in list(conns.values()):
                if (conn.hello_done
                        and now - conn.last_seen > self.worker_timeout):
                    drop(conn, "heartbeat silence "
                               f"({self.worker_timeout:g}s); "
                               "requeueing its job")
                elif conn.job is not None and now >= conn.deadline:
                    # the worker should have enforced the budget itself;
                    # it did not report back in time, so the broker rules
                    job, conn.job = conn.job, None
                    payload = {
                        "job": job.spec.to_dict(),
                        "status": "timeout",
                        "error": {
                            "type": "JobTimeout",
                            "message":
                                f"exceeded the "
                                f"{self._effective_timeout(job):g}s "
                                "wall-clock budget and was terminated",
                        },
                    }
                    self._handle_outcome(job, payload, pending, delayed)

        # drain: tell every worker the campaign service is going away
        for conn in list(conns.values()):
            try:
                conn.sock.setblocking(True)
                conn.sock.settimeout(1.0)
                conn.sock.sendall(bytes(conn.outbox)
                                  + pack_frame({"type": "shutdown"}))
            except OSError:
                pass
            try:
                conn.sock.close()
            except OSError:
                pass
        sel.close()
        try:
            self._listener.close()
        except OSError:
            pass

    def _handle_outcome(self, job: _BrokerJob, payload: dict,
                        pending: deque, delayed: List[_BrokerJob]) -> None:
        """Terminal-or-retry decision, mirroring the in-process pool."""
        if (payload.get("status") == "crashed"
                and job.attempt < self._effective_retries(job)):
            job.history.append(payload.get("error", {}))
            delay = job.spec.backoff * (2 ** job.attempt)
            self._note(f"retry {job.spec.job_id} in {delay:.2f}s "
                       f"(attempt {job.attempt + 1})")
            delayed.append(replace_job(job, attempt=job.attempt + 1,
                                       ready_at=(time.perf_counter()
                                                 + delay)))
            return
        record = replace(
            JobResult.from_json(payload),
            attempts=job.attempt + 1,
            retried_errors=tuple(job.history))
        batch = job.batch
        if (batch.cache is not None and record.ran
                and record.job.job_id in batch.cache_keys):
            batch.cache.put(batch.cache_keys[record.job.job_id], record)
        batch.record(record)
        self._note(f"done  {record.job.job_id}: {record.status}")


def replace_job(job: _BrokerJob, **changes) -> _BrokerJob:
    return _BrokerJob(batch=job.batch, spec=job.spec,
                      attempt=changes.get("attempt", job.attempt),
                      ready_at=changes.get("ready_at", job.ready_at),
                      history=job.history)


# --------------------------------------------------------------------- #
# worker
# --------------------------------------------------------------------- #

def _connect(host: str, port: int, connect_timeout: float,
             note: Callable[[str], None]) -> socket.socket:
    deadline = time.monotonic() + connect_timeout
    attempt = 0
    while True:
        try:
            return socket.create_connection((host, port), timeout=5.0)
        except OSError as exc:
            attempt += 1
            if time.monotonic() >= deadline:
                raise ConnectionError(
                    f"could not reach broker at {host}:{port} within "
                    f"{connect_timeout:g}s: {exc}") from None
            if attempt == 1:
                note(f"waiting for broker at {host}:{port} ...")
            time.sleep(0.2)


def _recv_or_heartbeat(sock: socket.socket, buffer: FrameBuffer,
                       heartbeat: float,
                       job_id: Optional[str] = None) -> Optional[dict]:
    """Next broker message; heartbeats through recv timeouts forever."""
    while True:
        try:
            return recv_frame(sock, buffer, timeout=heartbeat)
        except socket.timeout:
            message = {"type": "heartbeat"}
            if job_id is not None:
                message["job_id"] = job_id
            send_frame(sock, message)


def _fetch_artifact(sock: socket.socket, buffer: FrameBuffer,
                    artifact_id: str, cache_dir: str,
                    heartbeat: float) -> str:
    """Download a broker artifact once; reuse it for later jobs."""
    path = os.path.join(cache_dir, f"{artifact_id}.json")
    if os.path.exists(path):
        return path
    send_frame(sock, {"type": "fetch", "artifact_id": artifact_id})
    message = _recv_or_heartbeat(sock, buffer, heartbeat)
    if message is None or message.get("type") != "artifact":
        raise ProtocolError(
            f"broker did not deliver artifact {artifact_id!r}: "
            f"{message and message.get('message')}")
    with open(path + ".tmp", "w") as handle:
        handle.write(message["data"])
    os.replace(path + ".tmp", path)
    return path


def _run_one_job(spec: JobSpec, attempt: int, job_timeout: float,
                 log_path: str, sock: socket.socket,
                 heartbeat: float) -> dict:
    """One attempt in a child process, with local budget enforcement.

    The worker's own process stays alive whatever the job does — the
    same isolation contract as the in-process pool, just one hop away.
    Heartbeats flow to the broker while the simulation runs.
    """
    from repro.campaign.worker import child_main

    ctx = _mp_context()
    recv, send = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=child_main,
        args=(send, spec.to_dict(), attempt, log_path),
        name=f"worker-{spec.job_id}", daemon=True)
    process.start()
    send.close()
    deadline = time.monotonic() + job_timeout
    last_beat = time.monotonic()
    payload: Optional[dict] = None
    while True:
        now = time.monotonic()
        if now - last_beat >= heartbeat:
            send_frame(sock, {"type": "heartbeat",
                              "job_id": spec.job_id})
            last_beat = now
        try:
            if recv.poll(0.1):
                payload = recv.recv()
                break
        except (EOFError, OSError):
            break
        if not process.is_alive():
            break
        if now >= deadline:
            process.terminate()
            process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
            payload = {
                "job": spec.to_dict(),
                "status": "timeout",
                "error": {
                    "type": "JobTimeout",
                    "message": f"exceeded the {job_timeout:g}s "
                               "wall-clock budget and was terminated",
                },
            }
            break
    process.join(timeout=5.0)
    if process.is_alive():
        process.kill()
        process.join(timeout=2.0)
    recv.close()
    if payload is None:
        exitcode = process.exitcode
        payload = {
            "job": spec.to_dict(),
            "status": "crashed",
            "error": {
                "type": "WorkerDied",
                "message": f"worker exited with code {exitcode} "
                           "before sending a result",
                "exitcode": exitcode,
            },
        }
    if payload.get("status") != "ok":
        payload.setdefault("log_tail", _log_tail(log_path))
    return payload


def run_worker(host: str, port: int, name: Optional[str] = None,
               heartbeat: float = 2.0,
               connect_timeout: float = 30.0,
               once: bool = False,
               progress: Optional[Callable[[str], None]] = None) -> dict:
    """Connect to a broker and pull jobs until it says shutdown.

    Returns worker statistics (``{"jobs": n, "by_status": {...}}``).
    ``once`` exits after the first completed job (handy in tests and for
    scale-to-zero deployments).
    """
    note = progress or (lambda message: None)
    name = name or f"{socket.gethostname()}-{os.getpid()}"
    stats: Dict[str, int] = {}
    jobs_done = 0
    sock = _connect(host, port, connect_timeout, note)
    buffer = FrameBuffer()
    try:
        send_frame(sock, hello(name))
        welcome = check_handshake(
            recv_frame(sock, buffer, timeout=10.0), "welcome")
        note(f"connected to {welcome.get('name')} at {host}:{port} "
             f"as worker #{welcome.get('id')}")
        with tempfile.TemporaryDirectory(
                prefix="repro-worker-") as workdir:
            artifact_dir = os.path.join(workdir, "artifacts")
            os.makedirs(artifact_dir, exist_ok=True)
            while True:
                send_frame(sock, {"type": "request"})
                message = _recv_or_heartbeat(sock, buffer, heartbeat)
                if message is None or message.get("type") == "shutdown":
                    note("broker finished; shutting down")
                    break
                kind = message.get("type")
                if kind == "idle":
                    time.sleep(float(message.get("delay", 0.2)))
                    continue
                if kind == "error":
                    raise ProtocolError(
                        f"broker error: {message.get('message')}")
                if kind != "job":
                    raise ProtocolError(
                        f"unexpected broker message {kind!r}")
                spec = JobSpec.from_dict(dict(message["spec"]))
                attempt = int(message.get("attempt", 0))
                job_timeout = float(message.get("timeout",
                                                spec.timeout))
                if spec.snapshot and spec.snapshot.startswith(
                        "artifact:"):
                    local = _fetch_artifact(
                        sock, buffer, spec.snapshot.split(":", 1)[1],
                        artifact_dir, heartbeat)
                    spec = replace(spec, snapshot=local)
                safe_id = (spec.job_id.replace(os.sep, "_")
                           .replace("/", "_"))
                log_path = os.path.join(
                    workdir, f"{safe_id}.a{attempt}.log")
                note(f"run   {spec.job_id} (attempt {attempt})")
                payload = _run_one_job(spec, attempt, job_timeout,
                                       log_path, sock, heartbeat)
                send_frame(sock, {"type": "result", "record": payload})
                status = payload.get("status", "?")
                stats[status] = stats.get(status, 0) + 1
                jobs_done += 1
                note(f"sent  {spec.job_id}: {status}")
                if once:
                    break
    except (ConnectionError, BrokenPipeError, OSError) as exc:
        note(f"connection to broker lost: {exc}")
    finally:
        try:
            sock.close()
        except OSError:
            pass
    return {"jobs": jobs_done, "by_status": dict(sorted(stats.items()))}


def _worker_proc(host: str, port: int, index: int) -> None:
    # a Ctrl-C on the parent CLI lands on the whole process group; the
    # worker's lifetime is governed by the broker's shutdown frame (or
    # its socket closing), so the signal itself is noise here
    import signal
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    run_worker(host, port, name=f"local-{index}")


def run_campaign_distributed(
        specs: List[JobSpec],
        host: str = "127.0.0.1", port: int = 0,
        workers: int = 0,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        warm_start: bool = False,
        cache=None,
        on_record: Optional[Callable[[JobResult], None]] = None,
        progress: Optional[Callable[[str], None]] = None,
        wait_timeout: Optional[float] = None) -> CampaignResult:
    """One campaign over the socket path, broker lifecycle included.

    Starts a broker on ``host:port``, optionally spawns ``workers``
    local worker processes, waits for the batch, and tears everything
    down.  With ``workers=0`` the call blocks until *external* workers
    (``repro worker --connect``) drain the queue — that is the
    ``campaign run --listen`` mode.
    """
    broker = Broker(host=host, port=port, cache=cache, progress=progress)
    bound_host, bound_port = broker.start()
    procs = []
    try:
        batch = broker.submit(specs, timeout=timeout, retries=retries,
                              warm_start=warm_start, on_record=on_record)
        ctx = _mp_context()
        for index in range(workers):
            # not daemonic: each worker forks a child per job attempt
            proc = ctx.Process(target=_worker_proc,
                               args=(bound_host, bound_port, index),
                               name=f"campaign-worker-{index}")
            proc.start()
            procs.append(proc)
        return batch.wait(timeout=wait_timeout)
    finally:
        broker.stop()
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)


# --------------------------------------------------------------------- #
# http facade
# --------------------------------------------------------------------- #

class CampaignService:
    """Campaign submissions over HTTP, backed by one :class:`Broker`.

    The API is deliberately async-poll (202 + status URL) because a
    campaign runs for minutes: nothing in the stack holds an HTTP
    connection open across a simulation.
    """

    def __init__(self, broker: Broker):
        self.broker = broker
        self._lock = threading.Lock()
        self._seq = 0
        self._campaigns: Dict[str, Batch] = {}
        self._errors: Dict[str, str] = {}

    def submit(self, document: dict) -> dict:
        """Parse a matrix document and queue it; returns the 202 body."""
        from repro.campaign.matrix import parse_matrix

        matrix = parse_matrix(document, source="<http>")
        specs = matrix.jobs()
        with self._lock:
            self._seq += 1
            campaign_id = f"c{self._seq:06d}"
        cache = self.broker.cache if matrix.cache else None
        batch = self.broker.submit(
            specs, warm_start=matrix.warm_start, cache=cache,
            batch_id=campaign_id)
        with self._lock:
            self._campaigns[campaign_id] = batch
        return {
            "schema": SERVICE_SCHEMA,
            "id": campaign_id,
            "jobs": len(specs),
            "status_url": f"/campaigns/{campaign_id}",
            "report_url": f"/campaigns/{campaign_id}/report",
        }

    def get(self, campaign_id: str) -> Optional[Batch]:
        with self._lock:
            return self._campaigns.get(campaign_id)

    def health(self) -> dict:
        with self._lock:
            campaigns = len(self._campaigns)
        return {"schema": SERVICE_SCHEMA, "ok": True,
                "workers": self.broker.worker_count,
                "campaigns": campaigns}


def _make_handler(service: CampaignService):
    from http.server import BaseHTTPRequestHandler

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-campaign/1"

        def log_message(self, format, *args):   # noqa: A002 - stdlib name
            pass   # the progress callback is the service's log

        def _reply(self, code: int, body, content_type="application/json"):
            if isinstance(body, (dict, list)):
                data = (json.dumps(body, indent=2, sort_keys=True)
                        + "\n").encode()
            else:
                data = body.encode() if isinstance(body, str) else body
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self):
            path, _, query = self.path.partition("?")
            parts = [p for p in path.split("/") if p]
            if parts == ["healthz"]:
                return self._reply(200, service.health())
            if len(parts) >= 2 and parts[0] == "campaigns":
                batch = service.get(parts[1])
                if batch is None:
                    return self._reply(404, {"error": "no such campaign",
                                             "id": parts[1]})
                if len(parts) == 2:
                    return self._reply(200, batch.status())
                if parts[2] == "report":
                    if not batch.done:
                        return self._reply(
                            409, {"error": "campaign still running",
                                  "status": batch.status()})
                    from repro.campaign.report import (
                        aggregate, render_markdown)
                    result = batch.result()
                    document = aggregate(
                        result.records,
                        wall_seconds=result.wall_seconds)
                    if "format=markdown" in query:
                        return self._reply(
                            200, render_markdown(result.records,
                                                 document),
                            content_type="text/markdown")
                    return self._reply(200, document)
            return self._reply(404, {"error": f"no route for {path}"})

        def do_POST(self):
            path = self.path.partition("?")[0].rstrip("/")
            if path != "/campaigns":
                return self._reply(404, {"error": f"no route for {path}"})
            try:
                length = int(self.headers.get("Content-Length", 0))
                document = json.loads(self.rfile.read(length) or b"{}")
                body = service.submit(document)
            except ValueError as exc:
                return self._reply(400, {"error": str(exc)})
            return self._reply(202, body)

    return Handler


def serve(host: str = "127.0.0.1", port: int = 8437,
          worker_host: str = "127.0.0.1", worker_port: int = 0,
          cache=None, local_workers: int = 0,
          data_dir: Optional[str] = None,
          progress: Optional[Callable[[str], None]] = None,
          ready: Optional[Callable[[dict], None]] = None) -> None:
    """Run the campaign service until interrupted.

    Starts the broker (workers connect to ``worker_host:worker_port``),
    optionally spawns ``local_workers`` worker processes against it, and
    serves the HTTP API on ``host:port``.  ``ready`` (if given) receives
    the bound addresses once everything is listening — tests use it,
    humans read the progress lines.
    """
    from http.server import ThreadingHTTPServer

    note = progress or (lambda message: None)
    broker = Broker(host=worker_host, port=worker_port, cache=cache,
                    data_dir=data_dir, progress=note)
    bound_host, bound_port = broker.start()
    service = CampaignService(broker)
    server = ThreadingHTTPServer((host, port), _make_handler(service))
    procs = []
    ctx = _mp_context()
    for index in range(local_workers):
        # not daemonic: each worker forks a child per job attempt
        proc = ctx.Process(target=_worker_proc,
                           args=(bound_host, bound_port, index),
                           name=f"service-worker-{index}")
        proc.start()
        procs.append(proc)
    addresses = {"http": server.server_address[:2],
                 "broker": (bound_host, bound_port),
                 # embedders (tests) stop the service through this; the
                 # CLI stops it with SIGINT
                 "shutdown": server.shutdown}
    note(f"campaign service on http://{addresses['http'][0]}:"
         f"{addresses['http'][1]} (broker {bound_host}:{bound_port}, "
         f"{local_workers} local workers)")
    if ready is not None:
        ready(addresses)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        note("interrupted; shutting down")
    finally:
        server.shutdown()
        server.server_close()
        broker.stop()
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
