"""Campaign worker: runs ONE job in a child process.

The child builds a fresh platform from the job spec, simulates it, and
ships a plain-dict result back through a pipe.  Everything here must
stay picklable and import-light: under the ``spawn`` start method the
module is re-imported in every worker.

Failure injection
-----------------
A job spec may carry ``inject`` to exercise the scheduler's isolation
machinery (the campaign-level analogue of
``tests/test_failure_injection.py``):

* ``"crash"``   — raise inside the worker (well-behaved failure: the
  traceback travels back through the pipe);
* ``"die"``     — ``os._exit(13)`` (hard death: the parent sees the pipe
  close and a non-zero exit code, no payload);
* ``"hang"``    — spin forever; the parent's per-job timeout terminates
  the process;
* ``"flaky:N"`` — raise on the first N attempts, succeed afterwards
  (exercises retry-with-backoff deterministically).
"""

from __future__ import annotations

import os
import time
import traceback
from contextlib import redirect_stderr, redirect_stdout
from typing import Tuple

from repro.campaign.matrix import JobSpec
from repro.campaign.result import JOB_SCHEMA, JobResult

#: hard-death exit code (distinguishable from interpreter crashes)
DIE_EXIT_CODE = 13

#: substrings marking host-timing metrics, excluded from deterministic
#: aggregation (two campaign runs must agree on everything else)
TIMING_METRIC_MARKERS = ("wall", "mips", "seconds")


class InjectedFailure(RuntimeError):
    """Raised by the ``crash`` / ``flaky`` injection hooks."""


def is_timing_metric(name: str) -> bool:
    return any(marker in name for marker in TIMING_METRIC_MARKERS)


def split_timing_metrics(snapshot: dict) -> Tuple[dict, dict]:
    """Split a metrics snapshot into (deterministic, host-timing) parts."""
    deterministic, timing = {}, {}
    for name, value in snapshot.items():
        (timing if is_timing_metric(name) else deterministic)[name] = value
    return deterministic, timing


def _apply_injection(spec: JobSpec, attempt: int) -> None:
    inject = spec.inject
    if not inject:
        return
    if inject == "crash":
        raise InjectedFailure(f"injected worker crash in {spec.job_id}")
    if inject == "die":
        print(f"worker {spec.job_id}: injected hard death", flush=True)
        os._exit(DIE_EXIT_CODE)
    if inject == "hang":
        print(f"worker {spec.job_id}: injected hang", flush=True)
        while True:
            time.sleep(0.05)
    kind, _, count = inject.partition(":")
    if kind == "flaky" and attempt < int(count):
        raise InjectedFailure(
            f"injected flaky failure in {spec.job_id} "
            f"(attempt {attempt} of {count} injected failures)")


def execute_job(spec: JobSpec, attempt: int) -> JobResult:
    """Run one job to completion in the current process."""
    from repro.bench.workloads import get_workload
    from repro.dift.engine import RECORD
    from repro.obs import Observability

    _apply_injection(spec, attempt)
    workload = get_workload(spec.workload)
    dift = spec.policy != "none"
    if spec.snapshot:
        # warm start: resume the instruction-zero snapshot the scheduler
        # prepared instead of re-booting the platform.  The snapshot
        # carries the boot-time metrics, so the aggregate's deterministic
        # part is identical to a cold-started run.
        from repro.vp.platform import Platform
        platform = Platform.restore(
            spec.snapshot, obs=Observability(),
            program=workload.build(spec.scale),
            externals=workload.restore_externals(spec.scale),
            jit=spec.jit)
    else:
        platform = workload.make_platform(
            spec.scale, dift, obs=Observability(),
            dift_mode=spec.dift_mode if dift else "full",
            seed=spec.seed, engine_mode=RECORD, jit=spec.jit)
    started = time.perf_counter()
    result = platform.run(max_instructions=spec.max_instructions)
    wall = time.perf_counter() - started
    if workload.ok_check is not None:
        ok = bool(workload.ok_check(platform, result, dift))
    else:
        ok = (result.reason == "budget"
              or (result.reason == "halt" and result.exit_code == 0))
    deterministic, timing = split_timing_metrics(platform.obs.snapshot())
    return JobResult(
        job=spec,
        status="ok" if ok else "failed",
        reason=result.reason,
        exit_code=result.exit_code,
        instructions=result.instructions,
        violations=len(result.violations),
        metrics=deterministic,
        timing={
            "wall_seconds": wall,
            "mips": result.mips,
            "metrics": timing,
        },
    )


def child_main(conn, spec_dict: dict, attempt: int, log_path: str) -> None:
    """Process entry point: run the job, send the payload, exit.

    All worker output (including an exception traceback) lands in
    ``log_path`` so the parent can attach a log tail to failed jobs; the
    pipe carries exactly zero or one payload.
    """
    spec = JobSpec.from_dict(spec_dict)
    with open(log_path, "w", buffering=1) as log, \
            redirect_stdout(log), redirect_stderr(log):
        try:
            payload = execute_job(spec, attempt).to_json()
        except BaseException as exc:   # isolation boundary: report, never leak
            traceback.print_exc()
            tail = traceback.format_exc().splitlines()[-8:]
            payload = JobResult(
                job=spec,
                status="crashed",
                error={
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "traceback_tail": tail,
                },
            ).to_json()
        try:
            conn.send(payload)
        finally:
            conn.close()
