"""The campaign job result: one frozen value type for every transport.

:class:`JobResult` is the single shape a finished job takes everywhere a
result travels — the in-process scheduler pool, the broker/worker socket
protocol, the content-addressed result cache, and the
``repro.campaign.job/1`` JSONL report all carry exactly this type (as a
Python object in memory, as its :meth:`to_json` document on the wire and
on disk).  Before this type existed each layer passed ad-hoc dicts
around and every consumer re-discovered which keys a record of a given
status carries; now the shape is written down once.

``to_json`` emits the historical ``repro.campaign.job/1`` document
unchanged: optional fields are omitted rather than null (a crashed
record has no ``metrics``, an ok record has no ``error``), so reports
produced before and after the redesign stay byte-compatible.  Use the
attributes in code and :meth:`JobResult.from_json` for on-disk records;
the transitional dict-style access shim has been removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Tuple

from repro.campaign.matrix import JobSpec

JOB_SCHEMA = "repro.campaign.job/1"

#: statuses a job record can end with
JOB_STATUSES = ("ok", "failed", "crashed", "timeout")


@dataclass(frozen=True)
class JobResult:
    """One terminal campaign job outcome.

    ``metrics`` holds the deterministic slice of the job's obs snapshot
    (host timings live under ``timing`` and are quarantined from every
    determinism contract).  ``timing["cached"]`` marks a record that was
    served from the result cache instead of a fresh simulation — cache
    provenance is host-side execution strategy, so it rides in the
    quarantined section and never perturbs aggregate byte-identity.
    """

    job: JobSpec
    status: str
    reason: Optional[str] = None
    exit_code: Optional[int] = None
    instructions: int = 0
    violations: int = 0
    metrics: Mapping = field(default_factory=dict)
    timing: Mapping = field(default_factory=dict)
    error: Optional[Mapping] = None
    attempts: int = 1
    retried_errors: Tuple[Mapping, ...] = ()
    log_tail: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.status not in JOB_STATUSES:
            raise ValueError(
                f"unknown job status {self.status!r}; "
                f"expected one of {list(JOB_STATUSES)}")

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #

    @property
    def ran(self) -> bool:
        """True when the guest actually simulated to a verdict (the
        record carries ``reason``/``metrics``/``timing``)."""
        return self.status in ("ok", "failed")

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def cached(self) -> bool:
        """True when this record came from the result cache."""
        return bool(self.timing.get("cached", False))

    # ------------------------------------------------------------------ #
    # serialization: the repro.campaign.job/1 document
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        """The ``repro.campaign.job/1`` record (JSON-clean plain dict)."""
        document = {
            "schema": JOB_SCHEMA,
            "job": self.job.to_dict(),
            "status": self.status,
            "attempts": self.attempts,
        }
        if self.ran:
            document["reason"] = self.reason
            document["exit_code"] = self.exit_code
            document["instructions"] = self.instructions
            document["violations"] = self.violations
            document["metrics"] = dict(self.metrics)
            document["timing"] = dict(self.timing)
        elif self.timing:
            document["timing"] = dict(self.timing)
        if self.error is not None:
            document["error"] = dict(self.error)
        if self.retried_errors:
            document["retried_errors"] = [dict(e)
                                          for e in self.retried_errors]
        if self.log_tail:
            document["log_tail"] = list(self.log_tail)
        return document

    @classmethod
    def from_json(cls, data: Mapping) -> "JobResult":
        """Inverse of :meth:`to_json`; tolerant of omitted optionals."""
        if not isinstance(data, Mapping):
            raise ValueError(
                f"job record must be a JSON object, not {type(data).__name__}")
        schema = data.get("schema", JOB_SCHEMA)
        if schema != JOB_SCHEMA:
            raise ValueError(f"unsupported job record schema {schema!r} "
                             f"(expected {JOB_SCHEMA!r})")
        if "job" not in data or "status" not in data:
            raise ValueError("job record needs 'job' and 'status' keys")
        return cls(
            job=JobSpec.from_dict(dict(data["job"])),
            status=data["status"],
            reason=data.get("reason"),
            exit_code=data.get("exit_code"),
            instructions=data.get("instructions", 0),
            violations=data.get("violations", 0),
            metrics=dict(data.get("metrics", {})),
            timing=dict(data.get("timing", {})),
            error=data.get("error"),
            attempts=data.get("attempts", 1),
            retried_errors=tuple(data.get("retried_errors", ())),
            log_tail=tuple(data.get("log_tail", ())),
        )

    def rebind(self, spec: JobSpec) -> "JobResult":
        """This result re-attributed to ``spec`` and marked cache-served.

        The result cache stores outcomes under a content key that
        deliberately ignores presentation fields (``job_id`` suffixes,
        timeout/retry budgets, warm-start snapshot paths), so a hit must
        be rebound to the *requesting* spec before it enters a report.
        Cache provenance lands in the quarantined ``timing`` section;
        per-run provenance (``log_tail``/``retried_errors``) is dropped —
        it described the producing run, not this one.
        """
        return replace(self, job=spec,
                       timing={**dict(self.timing), "cached": True},
                       retried_errors=(), log_tail=())
