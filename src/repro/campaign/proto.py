"""Broker/worker wire protocol: length-prefixed JSON frames.

One frame = a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  Every message is an object with a ``"type"`` key;
the protocol version travels once, in the ``hello``/``welcome``
handshake, as ``repro.campaign.proto/1``.

Message types
-------------

========== ========= ====================================================
type       direction payload
========== ========= ====================================================
hello      w -> b    ``proto``, worker ``name``
welcome    b -> w    ``proto``, broker ``name``, assigned worker ``id``
request    w -> b    idle worker asks for the next job
job        b -> w    ``spec`` (a JobSpec dict), ``attempt``
idle       b -> w    nothing runnable right now; ask again after ``delay``
result     w -> b    a ``repro.campaign.job/1`` document in ``record``
heartbeat  w -> b    liveness while a job simulates (``job_id``)
fetch      w -> b    request a shared artifact by ``artifact_id``
artifact   b -> w    ``artifact_id`` + ``data`` (warm-start snapshots)
shutdown   b -> w    campaign over; worker disconnects (or exits)
error      either    terminal protocol failure, ``message``
========== ========= ====================================================

The framing layer is transport-dumb on purpose: :class:`FrameBuffer`
turns a byte stream into messages without ever blocking, so the broker
can run all connections off one ``selectors`` loop, and the worker can
use plain blocking sockets.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import List, Optional

PROTO_SCHEMA = "repro.campaign.proto/1"

_HEADER = struct.Struct(">I")

#: refuse frames above this size — a corrupted length prefix must not
#: make a peer allocate gigabytes (largest legit frame is a warm-start
#: snapshot artifact, single-digit MiB)
MAX_FRAME = 64 * 1024 * 1024


class ProtocolError(RuntimeError):
    """The peer sent something that is not this protocol."""


def pack_frame(message: dict) -> bytes:
    """Serialize one message into its wire frame."""
    payload = json.dumps(message, sort_keys=True,
                         separators=(",", ":")).encode()
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(MAX_FRAME is {MAX_FRAME})")
    return _HEADER.pack(len(payload)) + payload


def send_frame(sock: socket.socket, message: dict) -> None:
    sock.sendall(pack_frame(message))


class FrameBuffer:
    """Incremental frame decoder: feed bytes in, get messages out.

    Never blocks and never raises on a *partial* frame — only on a
    malformed one — so it drives both the broker's non-blocking loop and
    the worker's blocking reads.  Messages decoded beyond what a caller
    consumed can be :meth:`pushback`-ed and reappear first on the next
    :meth:`feed`.
    """

    def __init__(self):
        self._buffer = bytearray()
        self._ready: List[dict] = []

    def feed(self, data: bytes) -> List[dict]:
        """Absorb ``data``; return every now-complete message."""
        messages, self._ready = self._ready, []
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _HEADER.size:
                return messages
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME:
                raise ProtocolError(
                    f"frame length {length} exceeds MAX_FRAME "
                    f"({MAX_FRAME}); stream is corrupt or not ours")
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return messages
            payload = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            try:
                message = json.loads(payload)
            except json.JSONDecodeError as exc:
                raise ProtocolError(f"frame is not JSON: {exc}")
            if not isinstance(message, dict) or "type" not in message:
                raise ProtocolError("frame is not a typed message object")
            messages.append(message)

    def pushback(self, messages: List[dict]) -> None:
        """Return unconsumed messages; the next feed() yields them first."""
        self._ready = list(messages) + self._ready

    def __len__(self) -> int:
        return len(self._buffer) + sum(1 for _ in self._ready)


def recv_frame(sock: socket.socket, buffer: FrameBuffer,
               timeout: Optional[float] = None) -> Optional[dict]:
    """Blocking single-message read for the worker side.

    Returns the next message, or None when the peer closed the
    connection cleanly.  ``timeout`` bounds the wait (``socket.timeout``
    propagates so callers can heartbeat and retry).
    """
    pending = buffer.feed(b"")
    if pending:
        buffer.pushback(pending[1:])
        return pending[0]
    sock.settimeout(timeout)
    while True:
        data = sock.recv(65536)
        if not data:
            return None
        messages = buffer.feed(data)
        if messages:
            buffer.pushback(messages[1:])
            return messages[0]


def hello(name: str) -> dict:
    return {"type": "hello", "proto": PROTO_SCHEMA, "name": name}


def check_handshake(message: Optional[dict], expected_type: str) -> dict:
    """Validate the first message a peer sends; raise on any mismatch."""
    if message is None:
        raise ProtocolError("peer closed the connection mid-handshake")
    if message.get("type") == "error":
        raise ProtocolError(
            f"peer rejected handshake: {message.get('message')}")
    if message.get("type") != expected_type:
        raise ProtocolError(
            f"expected a {expected_type!r} message, "
            f"got {message.get('type')!r}")
    proto = message.get("proto")
    if proto != PROTO_SCHEMA:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {proto!r}, "
            f"this side speaks {PROTO_SCHEMA!r}")
    return message
