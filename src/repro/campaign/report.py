"""Campaign reports: versioned JSONL records, aggregate, markdown.

Three artifacts per campaign, all derived from the same
:class:`~repro.campaign.result.JobResult` records:

* ``campaign.jsonl`` — one ``repro.campaign.job/1`` record per line, in
  job-id order (worker count never reorders the file).  While a
  campaign is *running* the CLI appends records in completion order;
  the sorted rewrite happens at the end — an interrupted campaign
  therefore leaves a valid (unordered, possibly torn-last-line) JSONL
  that ``--resume`` reads back tolerantly;
* ``aggregate.json`` — the ``repro.campaign/1`` summary.  Everything
  outside its ``"timing"`` key is deterministic: two runs of the same
  matrix agree byte-for-byte there regardless of ``--jobs``, of whether
  results came from the in-process pool, socket-attached workers or the
  result cache;
* the markdown summary table (``campaign report``).

Every entry point takes :class:`JobResult` records; on-disk documents
come back through :func:`load_jsonl` / :meth:`JobResult.from_json`.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, Iterable, List, Optional, Set

from repro.campaign.result import JobResult
from repro.obs.metrics import merge_snapshots

CAMPAIGN_SCHEMA = "repro.campaign/1"

JSONL_NAME = "campaign.jsonl"
AGGREGATE_NAME = "aggregate.json"


def write_jsonl(path: str, records: List[JobResult]) -> str:
    """Write records (sorted by job id) as one JSON object per line."""
    ordered = sorted(records, key=lambda r: r.job.job_id)
    with open(path, "w") as handle:
        for record in ordered:
            handle.write(json.dumps(record.to_json(), sort_keys=True)
                         + "\n")
    return path


def load_jsonl(path: str, tolerant: bool = False) -> List[JobResult]:
    """Read a campaign JSONL back into :class:`JobResult` records.

    ``tolerant`` skips unparseable lines instead of raising — the resume
    path uses it because a campaign killed mid-write (the kill -9 case)
    legitimately leaves a torn final line; every intact record before it
    is still a completed job.
    """
    records = []
    with open(path) as handle:
        for n, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(JobResult.from_json(json.loads(line)))
            except (json.JSONDecodeError, ValueError) as exc:
                if tolerant:
                    print(f"warning: {path}:{n}: skipping unreadable "
                          f"record ({exc})", file=sys.stderr)
                    continue
                raise ValueError(f"{path}:{n}: not a valid job record: "
                                 f"{exc}")
    return records


def completed_ids(records: Iterable) -> Set[str]:
    """Job ids with any terminal record — the resume 'done' set.

    Every recorded status counts: ``crashed`` means retries were already
    exhausted and ``timeout`` is deliberately never retried (PR 3's
    contract), so re-running either would just repeat the failure.
    """
    return {record.job.job_id for record in records}


def _quantile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank quantile over an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


def aggregate(records: List[JobResult],
              wall_seconds: Optional[float] = None) -> dict:
    """Fold job records into the ``repro.campaign/1`` summary document."""
    ordered = sorted(records, key=lambda r: r.job.job_id)
    by_status: Dict[str, List[str]] = {}
    violations_by_policy: Dict[str, int] = {}
    instructions = 0
    snapshots = []
    latencies = []
    cache_hits = 0
    for record in ordered:
        by_status.setdefault(record.status, []).append(record.job.job_id)
        if record.cached:
            cache_hits += 1
        if record.ran:
            policy = record.job.policy
            violations_by_policy[policy] = (
                violations_by_policy.get(policy, 0) + record.violations)
            instructions += record.instructions
            snapshots.append(record.metrics)
            if not record.cached and "wall_seconds" in record.timing:
                latencies.append(record.timing["wall_seconds"])
    latencies.sort()
    completed = sum(len(ids) for status, ids in by_status.items()
                    if status in ("ok", "failed"))
    document = {
        "schema": CAMPAIGN_SCHEMA,
        "jobs": {
            "total": len(ordered),
            "by_status": {status: len(ids)
                          for status, ids in sorted(by_status.items())},
            "not_ok": sorted(job_id
                             for status, ids in by_status.items()
                             if status != "ok" for job_id in ids),
        },
        "instructions_total": instructions,
        "violations_by_policy": dict(sorted(violations_by_policy.items())),
        "metrics": merge_snapshots(*snapshots),
        "timing": {
            "campaign_wall_seconds": wall_seconds,
            "job_latency_p50_s": _quantile(latencies, 0.50),
            "job_latency_p95_s": _quantile(latencies, 0.95),
            "throughput_jobs_per_s": (
                completed / wall_seconds
                if wall_seconds else None),
            # host-side provenance, quarantined with the other timings:
            # a fully-cached re-run and a fresh run agree everywhere
            # outside "timing", including when this count differs
            "jobs.cache_hits": cache_hits,
        },
    }
    return document


def deterministic_view(document: dict) -> dict:
    """The aggregate minus its host-timing key (for run-to-run diffs)."""
    return {key: value for key, value in document.items()
            if key != "timing"}


def write_outputs(out_dir: str, records: List,
                  wall_seconds: Optional[float] = None) -> dict:
    """Write ``campaign.jsonl`` + ``aggregate.json`` into ``out_dir``."""
    os.makedirs(out_dir, exist_ok=True)
    write_jsonl(os.path.join(out_dir, JSONL_NAME), records)
    document = aggregate(records, wall_seconds=wall_seconds)
    with open(os.path.join(out_dir, AGGREGATE_NAME), "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def find_jsonl(results: str) -> str:
    """Accept either a results directory or the JSONL file itself."""
    if os.path.isdir(results):
        return os.path.join(results, JSONL_NAME)
    return results


def render_markdown(records: List[JobResult],
                    document: Optional[dict] = None) -> str:
    """Markdown summary: per-job table plus the aggregate section."""
    if document is None:
        document = aggregate(records)
    ordered = sorted(records, key=lambda r: r.job.job_id)
    lines = [
        "# Campaign report",
        "",
        "| job | workload | policy | mode | seed | status | attempts "
        "| instructions | violations | wall [s] |",
        "|---|---|---|---|---:|---|---:|---:|---:|---:|",
    ]
    for record in ordered:
        job = record.job
        wall = record.timing.get("wall_seconds")
        if record.cached:
            tail = (f"{record.instructions:,} "
                    f"| {record.violations} | cached |")
        elif wall is not None:
            tail = (f"{record.instructions:,} "
                    f"| {record.violations} | {wall:.2f} |")
        else:
            tail = "- | - | - |"
        lines.append(
            f"| {job.job_id} | {job.workload} | {job.policy} "
            f"| {job.dift_mode} | {job.seed} | {record.status} "
            f"| {record.attempts} | {tail}")
    jobs = document["jobs"]
    timing = document.get("timing", {})
    lines += [
        "",
        "## Aggregate",
        "",
        f"- jobs: {jobs['total']} total, "
        + ", ".join(f"{n} {status}"
                    for status, n in jobs["by_status"].items()),
        f"- instructions (completed jobs): "
        f"{document['instructions_total']:,}",
        f"- violations by policy: "
        + (", ".join(f"{policy}: {count}" for policy, count
                     in document["violations_by_policy"].items())
           or "none"),
    ]
    hits = timing.get("jobs.cache_hits")
    if hits:
        lines.append(f"- result-cache hits: {hits} of {jobs['total']} "
                     "jobs served without a simulation")
    p50 = timing.get("job_latency_p50_s")
    p95 = timing.get("job_latency_p95_s")
    if p50 is not None:
        lines.append(f"- job latency: p50 {p50:.2f}s, p95 {p95:.2f}s")
    throughput = timing.get("throughput_jobs_per_s")
    if throughput:
        lines.append(f"- throughput: {throughput:.2f} jobs/s "
                     f"over {timing['campaign_wall_seconds']:.2f}s")
    if jobs["not_ok"]:
        lines += ["", "## Jobs needing attention", ""]
        for record in ordered:
            if record.status == "ok":
                continue
            error = record.error or {}
            lines.append(f"- `{record.job.job_id}` "
                         f"({record.status}): "
                         f"{error.get('type', record.reason or '?')}"
                         f" — {error.get('message', '')}".rstrip(" —"))
    return "\n".join(lines) + "\n"
