"""Campaign reports: versioned JSONL records, aggregate, markdown.

Three artifacts per campaign, all derived from the same job records:

* ``campaign.jsonl`` — one ``repro.campaign.job/1`` record per line, in
  job-id order (worker count never reorders the file);
* ``aggregate.json`` — the ``repro.campaign/1`` summary.  Everything
  outside its ``"timing"`` key is deterministic: two runs of the same
  matrix agree byte-for-byte there regardless of ``--jobs``;
* the markdown summary table (``campaign report``).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.obs.metrics import merge_snapshots

CAMPAIGN_SCHEMA = "repro.campaign/1"

JSONL_NAME = "campaign.jsonl"
AGGREGATE_NAME = "aggregate.json"


def write_jsonl(path: str, records: List[dict]) -> str:
    """Write records (sorted by job id) as one JSON object per line."""
    ordered = sorted(records, key=lambda r: r["job"]["job_id"])
    with open(path, "w") as handle:
        for record in ordered:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_jsonl(path: str) -> List[dict]:
    records = []
    with open(path) as handle:
        for n, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{n}: not valid JSON: {exc}")
    return records


def _quantile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank quantile over an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


def aggregate(records: List[dict],
              wall_seconds: Optional[float] = None) -> dict:
    """Fold job records into the ``repro.campaign/1`` summary document."""
    ordered = sorted(records, key=lambda r: r["job"]["job_id"])
    by_status: Dict[str, List[str]] = {}
    violations_by_policy: Dict[str, int] = {}
    instructions = 0
    snapshots = []
    latencies = []
    for record in ordered:
        job = record["job"]
        by_status.setdefault(record["status"], []).append(job["job_id"])
        if record["status"] in ("ok", "failed"):
            policy = job["policy"]
            violations_by_policy[policy] = (
                violations_by_policy.get(policy, 0)
                + record.get("violations", 0))
            instructions += record.get("instructions", 0)
            snapshots.append(record.get("metrics", {}))
            timing = record.get("timing", {})
            if "wall_seconds" in timing:
                latencies.append(timing["wall_seconds"])
    latencies.sort()
    completed = sum(len(ids) for status, ids in by_status.items()
                    if status in ("ok", "failed"))
    document = {
        "schema": CAMPAIGN_SCHEMA,
        "jobs": {
            "total": len(ordered),
            "by_status": {status: len(ids)
                          for status, ids in sorted(by_status.items())},
            "not_ok": sorted(job_id
                             for status, ids in by_status.items()
                             if status != "ok" for job_id in ids),
        },
        "instructions_total": instructions,
        "violations_by_policy": dict(sorted(violations_by_policy.items())),
        "metrics": merge_snapshots(*snapshots),
        "timing": {
            "campaign_wall_seconds": wall_seconds,
            "job_latency_p50_s": _quantile(latencies, 0.50),
            "job_latency_p95_s": _quantile(latencies, 0.95),
            "throughput_jobs_per_s": (
                completed / wall_seconds
                if wall_seconds else None),
        },
    }
    return document


def deterministic_view(document: dict) -> dict:
    """The aggregate minus its host-timing key (for run-to-run diffs)."""
    return {key: value for key, value in document.items()
            if key != "timing"}


def write_outputs(out_dir: str, records: List[dict],
                  wall_seconds: Optional[float] = None) -> dict:
    """Write ``campaign.jsonl`` + ``aggregate.json`` into ``out_dir``."""
    os.makedirs(out_dir, exist_ok=True)
    write_jsonl(os.path.join(out_dir, JSONL_NAME), records)
    document = aggregate(records, wall_seconds=wall_seconds)
    with open(os.path.join(out_dir, AGGREGATE_NAME), "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def find_jsonl(results: str) -> str:
    """Accept either a results directory or the JSONL file itself."""
    if os.path.isdir(results):
        return os.path.join(results, JSONL_NAME)
    return results


def render_markdown(records: List[dict],
                    document: Optional[dict] = None) -> str:
    """Markdown summary: per-job table plus the aggregate section."""
    if document is None:
        document = aggregate(records)
    ordered = sorted(records, key=lambda r: r["job"]["job_id"])
    lines = [
        "# Campaign report",
        "",
        "| job | workload | policy | mode | seed | status | attempts "
        "| instructions | violations | wall [s] |",
        "|---|---|---|---|---:|---|---:|---:|---:|---:|",
    ]
    for record in ordered:
        job = record["job"]
        wall = record.get("timing", {}).get("wall_seconds")
        if wall is not None:
            tail = (f"{record.get('instructions', 0):,} "
                    f"| {record.get('violations', 0)} | {wall:.2f} |")
        else:
            tail = "- | - | - |"
        lines.append(
            f"| {job['job_id']} | {job['workload']} | {job['policy']} "
            f"| {job['dift_mode']} | {job['seed']} | {record['status']} "
            f"| {record.get('attempts', 1)} | {tail}")
    jobs = document["jobs"]
    timing = document.get("timing", {})
    lines += [
        "",
        "## Aggregate",
        "",
        f"- jobs: {jobs['total']} total, "
        + ", ".join(f"{n} {status}"
                    for status, n in jobs["by_status"].items()),
        f"- instructions (completed jobs): "
        f"{document['instructions_total']:,}",
        f"- violations by policy: "
        + (", ".join(f"{policy}: {count}" for policy, count
                     in document["violations_by_policy"].items())
           or "none"),
    ]
    p50 = timing.get("job_latency_p50_s")
    p95 = timing.get("job_latency_p95_s")
    if p50 is not None:
        lines.append(f"- job latency: p50 {p50:.2f}s, p95 {p95:.2f}s")
    throughput = timing.get("throughput_jobs_per_s")
    if throughput:
        lines.append(f"- throughput: {throughput:.2f} jobs/s "
                     f"over {timing['campaign_wall_seconds']:.2f}s")
    if jobs["not_ok"]:
        lines += ["", "## Jobs needing attention", ""]
        for record in ordered:
            if record["status"] == "ok":
                continue
            error = record.get("error", {})
            lines.append(f"- `{record['job']['job_id']}` "
                         f"({record['status']}): "
                         f"{error.get('type', record.get('reason', '?'))}"
                         f" — {error.get('message', '')}".rstrip(" —"))
    return "\n".join(lines) + "\n"
