"""Pre-built Information Flow Policies from the paper (Fig. 1).

* :func:`ifp1` — confidentiality: ``LC -> HC`` (secret data must not leave).
* :func:`ifp2` — integrity: ``HI -> LI`` (untrusted data must not influence
  trusted state).
* :func:`ifp3` — the product of IFP-1 and IFP-2 with the four classes
  ``(LC,HI)``, ``(LC,LI)``, ``(HC,HI)``, ``(HC,LI)``.
* :func:`per_byte_key_ifp` — the Section VI-A fix: one confidentiality class
  per key byte so that key bytes cannot be substituted for one another
  without tripping the policy.

Class-name constants (``LC``, ``HC``, ``HI``, ``LI``) are exported so policy
code never hard-codes strings.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.policy.lattice import Lattice, product

LC = "LC"  # Low-Confidentiality (public)
HC = "HC"  # High-Confidentiality (secret)
HI = "HI"  # High-Integrity (trusted)
LI = "LI"  # Low-Integrity (untrusted)


def ifp1() -> Lattice:
    """Confidentiality IFP: data may flow LC -> HC but never HC -> LC."""
    return Lattice([LC, HC], [(LC, HC)])


def ifp2() -> Lattice:
    """Integrity IFP: data may flow HI -> LI but never LI -> HI."""
    return Lattice([HI, LI], [(HI, LI)])


def ifp3() -> Lattice:
    """Combined confidentiality+integrity IFP (product of IFP-1 and IFP-2).

    The paper's example holds here:
    ``LUB((LC,LI), (HC,HI)) == (HC,LI)`` — combining untrusted-public data
    with trusted-secret data yields untrusted-secret data.
    """
    return product(ifp1(), ifp2())


def ifp3_class(conf: str, integ: str) -> str:
    """Name of the IFP-3 class for a (confidentiality, integrity) pair."""
    if conf not in (LC, HC) or integ not in (HI, LI):
        raise ValueError(f"not an IFP-3 component pair: ({conf}, {integ})")
    return f"({conf},{integ})"


#: The four IFP-3 class names, for convenience.
LC_HI = ifp3_class(LC, HI)
LC_LI = ifp3_class(LC, LI)
HC_HI = ifp3_class(HC, HI)
HC_LI = ifp3_class(HC, LI)


def per_byte_key_ifp(n_key_bytes: int) -> Tuple[Lattice, Sequence[str]]:
    """IFP-3 extended with one secret class per key byte (Section VI-A fix).

    Each key byte *i* gets its own class ``(HCi,HI)`` sitting strictly above
    ``(LC,HI)`` in confidentiality.  Distinct key-byte classes are
    incomparable, so copying byte 1 over byte 2 produces a value whose tag is
    the LUB of two incomparable secret classes — the shared top ``(HCtop,LI)``
    family — and any subsequent *integrity-sensitive* use fails.  More
    directly, a store of class ``(HC1,*)`` into a location that must only
    ever be written with class ``(HC2,HI)`` data fails ``allowedFlow``.

    Returns the lattice and the per-byte class names (integrity-high
    variants), ``classes[i]`` being the class for key byte ``i``.
    """
    if n_key_bytes < 1:
        raise ValueError("need at least one key byte")
    conf_names = [LC] + [f"HC{i}" for i in range(n_key_bytes)] + ["HCtop"]
    conf_flows = [(LC, f"HC{i}") for i in range(n_key_bytes)]
    conf_flows += [(f"HC{i}", "HCtop") for i in range(n_key_bytes)]
    conf = Lattice(conf_names, conf_flows)
    lattice = product(conf, ifp2())
    byte_classes = [f"(HC{i},HI)" for i in range(n_key_bytes)]
    return lattice, byte_classes
