"""Security policies: IFP lattices, classification, clearance.

See the paper's Section IV.  Quick start::

    from repro.policy import builders, SecurityPolicy

    ifp = builders.ifp3()
    policy = SecurityPolicy(ifp, default_class=builders.LC_LI)
    policy.classify_region(0x1000, 0x1010, builders.HC_HI)   # the secret key
    policy.clear_sink("uart0.tx", builders.LC_LI)
    policy.set_execution_clearance(fetch=builders.LC_LI)
"""

from repro.policy.lattice import Lattice, Tag, chain, product
from repro.policy.policy import (
    ExecutionClearance,
    MemoryClassification,
    SecurityPolicy,
)
from repro.policy import builders

__all__ = [
    "Lattice",
    "Tag",
    "chain",
    "product",
    "ExecutionClearance",
    "MemoryClassification",
    "SecurityPolicy",
    "builders",
]
