"""Security policies: classification, IFP, clearance (paper Section IV-A).

A :class:`SecurityPolicy` bundles the three components the paper defines:

1. **classification** — which security class data carries when it enters the
   system.  Two granularities are supported: named *sources* (peripheral
   inputs such as ``"sensor0"`` or ``"uart0.rx"``) and *memory regions*
   (e.g. the secret key bytes, or the program image classified ``HI`` at
   load time).
2. **IFP** — the lattice (see :mod:`repro.policy.lattice`).
3. **clearance** — which security classes may reach named *sinks*
   (peripheral outputs such as ``"uart0.tx"``) and the *execution
   clearance* of the three CPU units the paper identifies: instruction
   fetch, branch condition, and memory-access address (Section V-B2).

Declassification (Section IV-A) is modelled as a privilege: only component
names registered via :meth:`SecurityPolicy.allow_declassification` may
re-tag data, and the DIFT engine enforces that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import PolicyError
from repro.policy.lattice import Lattice, Tag


@dataclass(frozen=True)
class MemoryClassification:
    """Classify guest physical bytes ``[start, end)`` as ``security_class``."""

    start: int
    end: int
    security_class: str

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise PolicyError(
                f"empty memory classification [{self.start:#x}, {self.end:#x})"
            )

    def __contains__(self, address: int) -> bool:
        return self.start <= address < self.end


@dataclass
class ExecutionClearance:
    """Per-unit execution clearance (paper Section V-B2).

    Each field names the security class the unit is cleared for, or ``None``
    to disable the check entirely (useful for ablation studies).  A check
    passes iff ``allowedFlow(data_class, unit_class)``.
    """

    fetch: Optional[str] = None
    branch: Optional[str] = None
    mem_addr: Optional[str] = None

    def units(self) -> Iterator[Tuple[str, Optional[str]]]:
        yield "fetch", self.fetch
        yield "branch", self.branch
        yield "mem-addr", self.mem_addr


class SecurityPolicy:
    """A complete security policy over a given IFP lattice.

    Parameters
    ----------
    lattice:
        The Information Flow Policy.
    default_class:
        Class assigned to data with no explicit classification.  Defaults to
        the lattice bottom (least restrictive), which matches the usual
        convention that unlabeled data is public/untrusted-neutral.
    name:
        Human-readable policy name, used in reports.
    """

    def __init__(
        self,
        lattice: Lattice,
        default_class: Optional[str] = None,
        name: str = "policy",
    ):
        self.name = name
        self.lattice = lattice
        self._default = default_class if default_class is not None else lattice.bottom
        if self._default not in lattice:
            raise PolicyError(f"default class {self._default!r} not in lattice")
        self._sources: Dict[str, str] = {}
        self._sinks: Dict[str, str] = {}
        self._regions: List[MemoryClassification] = []
        self._declassifiers: Dict[str, Optional[str]] = {}
        self.execution = ExecutionClearance()

    # ------------------------------------------------------------------ #
    # classification
    # ------------------------------------------------------------------ #

    @property
    def default_class(self) -> str:
        """Class of unlabeled data."""
        return self._default

    def classify_source(self, source: str, security_class: str) -> "SecurityPolicy":
        """Assign a class to a named input source (e.g. ``"sensor0"``)."""
        self._check_class(security_class)
        self._sources[source] = security_class
        return self

    def classify_region(
        self, start: int, end: int, security_class: str
    ) -> "SecurityPolicy":
        """Assign a class to guest memory bytes ``[start, end)``.

        Later classifications take precedence over earlier ones for
        overlapping ranges, so a broad "program image is HI" rule can be
        refined with a narrow "key bytes are (HC,HI)" rule.
        """
        self._check_class(security_class)
        self._regions.append(MemoryClassification(start, end, security_class))
        return self

    def source_class(self, source: str) -> str:
        """Class of a named source (default class if unclassified)."""
        return self._sources.get(source, self._default)

    def region_class(self, address: int) -> str:
        """Class of a memory byte at load time (last matching rule wins)."""
        result = self._default
        for region in self._regions:
            if address in region:
                result = region.security_class
        return result

    def iter_regions(self) -> Iterator[MemoryClassification]:
        """All region classifications, in declaration order."""
        return iter(self._regions)

    # ------------------------------------------------------------------ #
    # clearance
    # ------------------------------------------------------------------ #

    def clear_sink(self, sink: str, security_class: str) -> "SecurityPolicy":
        """Assign output clearance to a named sink (e.g. ``"uart0.tx"``)."""
        self._check_class(security_class)
        self._sinks[sink] = security_class
        return self

    def sink_clearance(self, sink: str) -> str:
        """Clearance class of a named sink (default class if uncleared)."""
        return self._sinks.get(sink, self._default)

    def has_sink(self, sink: str) -> bool:
        """Was an explicit clearance declared for this sink?"""
        return sink in self._sinks

    def set_execution_clearance(
        self,
        fetch: Optional[str] = None,
        branch: Optional[str] = None,
        mem_addr: Optional[str] = None,
    ) -> "SecurityPolicy":
        """Configure the CPU execution clearance (any subset of the units)."""
        for cls in (fetch, branch, mem_addr):
            if cls is not None:
                self._check_class(cls)
        self.execution = ExecutionClearance(fetch=fetch, branch=branch, mem_addr=mem_addr)
        return self

    # ------------------------------------------------------------------ #
    # declassification
    # ------------------------------------------------------------------ #

    def allow_declassification(
        self, component: str, to_class: Optional[str] = None
    ) -> "SecurityPolicy":
        """Grant a (trusted HW) component the right to declassify data.

        ``to_class`` optionally pins the class the component declassifies
        *to*; ``None`` allows re-tagging to any class.  Per the threat model
        only hardware peripherals should be granted this.
        """
        if to_class is not None:
            self._check_class(to_class)
        self._declassifiers[component] = to_class
        return self

    def may_declassify(self, component: str, to_class: str) -> bool:
        """May ``component`` re-tag data to ``to_class``?"""
        if component not in self._declassifiers:
            return False
        pinned = self._declassifiers[component]
        return pinned is None or pinned == to_class

    # ------------------------------------------------------------------ #
    # tag-level helpers (for the DIFT engine)
    # ------------------------------------------------------------------ #

    def tag_of(self, security_class: str) -> Tag:
        """Dense tag for a class name (delegates to the lattice)."""
        return self.lattice.tag_of(security_class)

    def default_tag(self) -> Tag:
        """Tag of the default class."""
        return self.lattice.tag_of(self._default)

    def source_tag(self, source: str) -> Tag:
        """Tag of a named source's class."""
        return self.lattice.tag_of(self.source_class(source))

    def sink_tag(self, sink: str) -> Tag:
        """Tag of a named sink's clearance class."""
        return self.lattice.tag_of(self.sink_clearance(sink))

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _check_class(self, security_class: str) -> None:
        if security_class not in self.lattice:
            raise PolicyError(
                f"security class {security_class!r} is not part of the IFP "
                f"(known: {list(self.lattice.classes)})"
            )

    def __repr__(self) -> str:
        return (
            f"SecurityPolicy({self.name!r}, classes={len(self.lattice)}, "
            f"sources={len(self._sources)}, sinks={len(self._sinks)}, "
            f"regions={len(self._regions)})"
        )
