"""Security-policy (de)serialization.

Policies are plain data — a lattice, some maps — so they round-trip
through dictionaries (and hence JSON/TOML files, which is how the CLI
accepts them).  Format::

    {
      "name": "immobilizer",
      "ifp": "ifp3",                      # builtin name, or an object:
      # "ifp": {"classes": [...], "flows": [["LC","HC"], ...]},
      "default_class": "(LC,LI)",
      "sources": {"can0.rx": "(LC,LI)"},
      "sinks": {"uart0.tx": "(LC,LI)"},
      "regions": [[4096, 4112, "(HC,HI)"]],
      "execution": {"fetch": "(LC,LI)", "branch": null, "mem_addr": null},
      "declassify": {"aes0": "(LC,LI)"}   # value null = any target class
    }
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import PolicyError
from repro.policy import builders
from repro.policy.lattice import Lattice
from repro.policy.policy import SecurityPolicy

_BUILTIN_IFPS = {
    "ifp1": builders.ifp1,
    "ifp2": builders.ifp2,
    "ifp3": builders.ifp3,
}


def lattice_from_spec(spec: Any) -> Lattice:
    """Build a lattice from a builtin name or a classes/flows object."""
    if isinstance(spec, str):
        try:
            return _BUILTIN_IFPS[spec]()
        except KeyError:
            raise PolicyError(
                f"unknown builtin IFP {spec!r} "
                f"(known: {sorted(_BUILTIN_IFPS)})") from None
    if isinstance(spec, dict):
        try:
            classes = spec["classes"]
            flows = [tuple(edge) for edge in spec.get("flows", [])]
        except (KeyError, TypeError) as exc:
            raise PolicyError(f"malformed IFP spec: {exc}") from exc
        return Lattice(classes, flows)
    raise PolicyError(f"IFP spec must be a name or an object, got {spec!r}")


def lattice_to_spec(lattice: Lattice) -> Dict[str, Any]:
    """Serialize a lattice as its full (reflexive-transitively closed)
    flow relation.  Round-trips through :func:`lattice_from_spec`."""
    flows = [
        [a, b]
        for a in lattice.classes
        for b in lattice.classes
        if a != b and lattice.allowed_flow(a, b)
    ]
    return {"classes": list(lattice.classes), "flows": flows}


def policy_from_dict(data: Dict[str, Any]) -> SecurityPolicy:
    """Deserialize a :class:`SecurityPolicy`."""
    lattice = lattice_from_spec(data.get("ifp", "ifp1"))
    policy = SecurityPolicy(
        lattice,
        default_class=data.get("default_class"),
        name=data.get("name", "policy"),
    )
    for source, cls in data.get("sources", {}).items():
        policy.classify_source(source, cls)
    for sink, cls in data.get("sinks", {}).items():
        policy.clear_sink(sink, cls)
    for region in data.get("regions", []):
        if len(region) != 3:
            raise PolicyError(f"region must be [start, end, class]: {region}")
        start, end, cls = region
        policy.classify_region(int(start), int(end), cls)
    execution = data.get("execution", {})
    if execution:
        policy.set_execution_clearance(
            fetch=execution.get("fetch"),
            branch=execution.get("branch"),
            mem_addr=execution.get("mem_addr"),
        )
    for component, target in data.get("declassify", {}).items():
        policy.allow_declassification(component, target)
    return policy


def policy_to_dict(policy: SecurityPolicy) -> Dict[str, Any]:
    """Serialize a :class:`SecurityPolicy` (round-trips with from_dict)."""
    return {
        "name": policy.name,
        "ifp": lattice_to_spec(policy.lattice),
        "default_class": policy.default_class,
        "sources": dict(policy._sources),
        "sinks": dict(policy._sinks),
        "regions": [[r.start, r.end, r.security_class]
                    for r in policy.iter_regions()],
        "execution": {
            "fetch": policy.execution.fetch,
            "branch": policy.execution.branch,
            "mem_addr": policy.execution.mem_addr,
        },
        "declassify": dict(policy._declassifiers),
    }
