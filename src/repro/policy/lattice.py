"""Finite security lattices for Information Flow Policies (IFPs).

An IFP (paper Section IV-A) is a lattice of security classes.  Information
may flow from class ``X`` to class ``Y`` iff the lattice order permits it
(``allowed_flow(X, Y)``), and the class of data produced by combining two
operands is their *Least Upper Bound* (LUB).

This module provides a general finite-lattice implementation built from a
cover relation (Hasse diagram edges).  Security classes are referred to by
name at the API level; internally each class is mapped to a dense integer
*tag* so the DIFT engine can use O(1) table lookups in hot paths
(:attr:`Lattice.lub_table`, :attr:`Lattice.flow_table`).

The direction convention matches the paper: an edge ``A -> B`` in the IFP
means data of class ``A`` may flow to places cleared for class ``B``.  The
lattice *top* is therefore the most restrictive class (e.g. ``HC`` in IFP-1)
and *bottom* the least restrictive (``LC``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import LatticeError

Tag = int


class Lattice:
    """A finite lattice of named security classes.

    Parameters
    ----------
    classes:
        Iterable of unique class names.  Their order defines the dense tag
        numbering (``tag_of(classes[i]) == i``).
    flows:
        Iterable of ``(src, dst)`` cover edges meaning "data of class *src*
        may flow to *dst*".  Reflexive and transitive closure is applied
        automatically.

    Raises
    ------
    LatticeError
        If the relation is not a partial order (has cycles between distinct
        classes) or if some pair of classes lacks a unique least upper bound
        (i.e. the poset is not a lattice).
    """

    def __init__(self, classes: Iterable[str], flows: Iterable[Tuple[str, str]]):
        self._names: List[str] = list(classes)
        if len(set(self._names)) != len(self._names):
            raise LatticeError("duplicate security class names")
        if not self._names:
            raise LatticeError("a lattice needs at least one security class")
        self._tags: Dict[str, Tag] = {name: i for i, name in enumerate(self._names)}

        n = len(self._names)
        # reachable[a][b] == True iff flow a -> b allowed (reflexive-transitive
        # closure of the cover edges).
        reach = [[False] * n for _ in range(n)]
        for i in range(n):
            reach[i][i] = True
        for src, dst in flows:
            reach[self._require(src)][self._require(dst)] = True
        # Floyd-Warshall style transitive closure; n is small (policy-sized).
        for k in range(n):
            rk = reach[k]
            for i in range(n):
                if reach[i][k]:
                    ri = reach[i]
                    for j in range(n):
                        if rk[j]:
                            ri[j] = True
        # Antisymmetry: two distinct classes must not flow into each other.
        for i in range(n):
            for j in range(i + 1, n):
                if reach[i][j] and reach[j][i]:
                    raise LatticeError(
                        f"classes {self._names[i]!r} and {self._names[j]!r} "
                        "flow into each other; the IFP must be a partial order"
                    )

        self._flow = reach
        self._lub = self._compute_lub_table(reach)
        self._glb = self._compute_glb_table(reach)
        self._top = self._find_extreme(reach, top=True)
        self._bottom = self._find_extreme(reach, top=False)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    def _require(self, name: str) -> Tag:
        try:
            return self._tags[name]
        except KeyError:
            raise LatticeError(f"unknown security class {name!r}") from None

    def _compute_lub_table(self, reach: List[List[bool]]) -> List[List[Tag]]:
        n = len(self._names)
        table: List[List[Tag]] = [[0] * n for _ in range(n)]
        for a in range(n):
            for b in range(n):
                # upper bounds: classes c with a -> c and b -> c
                uppers = [c for c in range(n) if reach[a][c] and reach[b][c]]
                if not uppers:
                    raise LatticeError(
                        f"classes {self._names[a]!r} and {self._names[b]!r} "
                        "have no common upper bound; the IFP is not a lattice"
                    )
                # least: the upper bound that flows into every other one
                least = [c for c in uppers if all(reach[c][u] for u in uppers)]
                if len(least) != 1:
                    raise LatticeError(
                        f"classes {self._names[a]!r} and {self._names[b]!r} "
                        "lack a unique least upper bound"
                    )
                table[a][b] = least[0]
        return table

    def _compute_glb_table(self, reach: List[List[bool]]) -> List[List[Tag]]:
        n = len(self._names)
        table: List[List[Tag]] = [[0] * n for _ in range(n)]
        for a in range(n):
            for b in range(n):
                lowers = [c for c in range(n) if reach[c][a] and reach[c][b]]
                if not lowers:
                    raise LatticeError(
                        f"classes {self._names[a]!r} and {self._names[b]!r} "
                        "have no common lower bound; the IFP is not a lattice"
                    )
                greatest = [c for c in lowers if all(reach[l][c] for l in lowers)]
                if len(greatest) != 1:
                    raise LatticeError(
                        f"classes {self._names[a]!r} and {self._names[b]!r} "
                        "lack a unique greatest lower bound"
                    )
                table[a][b] = greatest[0]
        return table

    def _find_extreme(self, reach: List[List[bool]], top: bool) -> Tag:
        n = len(self._names)
        for c in range(n):
            if top and all(reach[x][c] for x in range(n)):
                return c
            if not top and all(reach[c][x] for x in range(n)):
                return c
        raise LatticeError("lattice has no top/bottom element")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # queries (name level)
    # ------------------------------------------------------------------ #

    @property
    def classes(self) -> Sequence[str]:
        """All security class names, in tag order."""
        return tuple(self._names)

    @property
    def top(self) -> str:
        """The most restrictive class (every class may flow into it)."""
        return self._names[self._top]

    @property
    def bottom(self) -> str:
        """The least restrictive class (it may flow into every class)."""
        return self._names[self._bottom]

    def tag_of(self, name: str) -> Tag:
        """Dense integer tag for a class name."""
        return self._require(name)

    def name_of(self, tag: Tag) -> str:
        """Class name for a dense integer tag."""
        if not 0 <= tag < len(self._names):
            raise LatticeError(f"tag {tag} out of range")
        return self._names[tag]

    def allowed_flow(self, src: str, dst: str) -> bool:
        """May information of class ``src`` flow to class ``dst``?"""
        return self._flow[self._require(src)][self._require(dst)]

    def lub(self, a: str, b: str) -> str:
        """Least upper bound of two classes, by name."""
        return self._names[self._lub[self._require(a)][self._require(b)]]

    def glb(self, a: str, b: str) -> str:
        """Greatest lower bound of two classes, by name."""
        return self._names[self._glb[self._require(a)][self._require(b)]]

    def lub_many(self, names: Iterable[str]) -> str:
        """LUB of an arbitrary non-empty collection of classes."""
        it = iter(names)
        try:
            acc = self._require(next(it))
        except StopIteration:
            raise LatticeError("lub_many of empty collection") from None
        for name in it:
            acc = self._lub[acc][self._require(name)]
        return self._names[acc]

    # ------------------------------------------------------------------ #
    # queries (tag level — used by the DIFT engine hot paths)
    # ------------------------------------------------------------------ #

    @property
    def lub_table(self) -> List[List[Tag]]:
        """``lub_table[a][b]`` is the tag of LUB(a, b).  Do not mutate."""
        return self._lub

    @property
    def flow_table(self) -> List[List[bool]]:
        """``flow_table[a][b]`` iff flow a -> b is allowed.  Do not mutate."""
        return self._flow

    def lub_tag(self, a: Tag, b: Tag) -> Tag:
        """LUB on raw tags (bounds-checked convenience wrapper)."""
        n = len(self._names)
        if not (0 <= a < n and 0 <= b < n):
            raise LatticeError(f"tag out of range: lub({a}, {b})")
        return self._lub[a][b]

    def allowed_flow_tag(self, src: Tag, dst: Tag) -> bool:
        """allowedFlow on raw tags (bounds-checked convenience wrapper)."""
        n = len(self._names)
        if not (0 <= src < n and 0 <= dst < n):
            raise LatticeError(f"tag out of range: allowed_flow({src}, {dst})")
        return self._flow[src][dst]

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._tags

    def __repr__(self) -> str:
        return f"Lattice({list(self._names)!r}, top={self.top!r}, bottom={self.bottom!r})"


def product(a: Lattice, b: Lattice, joiner: str = ",") -> Lattice:
    """Product lattice of two IFPs (paper Fig. 1, IFP-3 = IFP-1 x IFP-2).

    Class names are ``f"({x}{joiner}{y})"`` for x in ``a`` and y in ``b``.
    A flow is allowed iff it is allowed component-wise, exactly as the paper
    defines the combination of confidentiality and integrity.
    """
    names = [f"({x}{joiner}{y})" for x in a.classes for y in b.classes]
    flows = []
    for x1 in a.classes:
        for y1 in b.classes:
            for x2 in a.classes:
                for y2 in b.classes:
                    if a.allowed_flow(x1, x2) and b.allowed_flow(y1, y2):
                        flows.append(
                            (f"({x1}{joiner}{y1})", f"({x2}{joiner}{y2})")
                        )
    return Lattice(names, flows)


def chain(names: Sequence[str]) -> Lattice:
    """Total-order lattice: ``names[0]`` flows to ``names[1]`` flows to ...

    ``names[0]`` is the bottom (least restrictive) class.
    """
    if not names:
        raise LatticeError("chain of zero classes")
    return Lattice(names, [(names[i], names[i + 1]) for i in range(len(names) - 1)])
