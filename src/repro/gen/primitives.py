"""Parameterized Wilander–Kamkar attack primitives.

Each :class:`Primitive` is one generated overflow: a vulnerable function
with an attacker-controlled ``memcpy`` length (the classic
length-prefixed-protocol bug), parameterized along the three W–K axes

* **location** — ``stack`` (locals) or ``data`` (adjacent globals),
* **target** — ``ret`` (saved return address), ``fnptr`` (a function
  pointer called after the copy) or ``jmpbuf`` (a ``setjmp`` buffer
  later passed to ``longjmp``),
* **technique** — ``direct`` (the overflow reaches the target slot
  itself) or ``indirect`` (the overflow first corrupts a data pointer
  and the program then writes an attacker word through it),

plus layout parameters (``buffer_size``, ``gap``) that vary the frame
geometry — the knowledge :mod:`repro.sw.wk_suite` hard-codes per attack
is computed here from the parameters.

Unlike the fixed Table I suite, every primitive has a true **benign
twin**: the same binary driven with an in-bounds copy length performs
the copy, calls through the (intact) pointer, returns cleanly.  The
overflow only happens when the attacker supplies an out-of-bounds
length, which is what makes the detection-soundness oracle (flag the
attack, stay silent on the twin) meaningful.

Input wire format: the guest reads ``n_primitives * SEG_SIZE`` bytes
from the UART into ``input_buf``; primitive *i* owns segment ``i``:

====================  =================================================
``seg[0]``            copy length ``n`` (one byte, attacker-controlled)
``seg[1 : 1+n]``      bytes copied over the buffer
``seg[VALUE_OFF..]``  word written through the corrupted pointer
                      (indirect technique only)
``seg[PAYLOAD_OFF..]``injected machine code (``payload_mode="inject"``:
                      the attack jumps *into the received bytes*)
====================  =================================================
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Tuple

from repro.vp.platform import STACK_TOP

LOCATIONS = ("stack", "data")
TARGETS = ("ret", "fnptr", "jmpbuf")
TECHNIQUES = ("direct", "indirect")

#: (location, target, technique) combinations the generator draws from.
#: ``ret``/``jmpbuf`` only exist on the stack; ``jmpbuf`` only direct
#: (the jmp_buf-through-pointer form is covered by ``fnptr/indirect``).
SHAPES: Tuple[Tuple[str, str, str], ...] = (
    ("stack", "ret", "direct"),
    ("stack", "ret", "indirect"),
    ("stack", "fnptr", "direct"),
    ("stack", "fnptr", "indirect"),
    ("stack", "jmpbuf", "direct"),
    ("data", "fnptr", "direct"),
    ("data", "fnptr", "indirect"),
)

#: one input segment per primitive, in bytes
SEG_SIZE = 144
#: segment offset of the indirect-write value word
VALUE_OFF = 88
#: segment offset of injected payload code (word-aligned)
PAYLOAD_OFF = 96
#: bytes available for injected payload code
PAYLOAD_ROOM = SEG_SIZE - PAYLOAD_OFF

#: layout bounds (bytes, multiples of 4)
MIN_BUFFER = 8
MAX_BUFFER = 64
MAX_GAP = 16

_JMPBUF_BYTES = 56  # ra, sp, s0..s11 (14 words) — see repro.sw.runtime

#: every ``vulnerable_<i>`` runs with entry sp = STACK_TOP - 16
#: (crt0 sets sp = STACK_TOP; main's frame is 16 bytes)
VULN_SP = STACK_TOP - 16


def _align16(n: int) -> int:
    return (n + 15) & ~15


@dataclass(frozen=True)
class Primitive:
    """One parameterized overflow primitive."""

    location: str        # "stack" | "data"
    target: str          # "ret" | "fnptr" | "jmpbuf"
    technique: str       # "direct" | "indirect"
    buffer_size: int     # overflowed buffer, bytes (multiple of 4)
    gap: int             # buffer-to-target padding, bytes (multiple of 4)

    def __post_init__(self) -> None:
        if (self.location, self.target, self.technique) not in SHAPES:
            raise ValueError(
                f"unsupported primitive shape {self.location}/{self.target}"
                f"/{self.technique}")
        if self.buffer_size % 4 or not (
                MIN_BUFFER <= self.buffer_size <= MAX_BUFFER):
            raise ValueError(f"bad buffer_size {self.buffer_size}")
        if self.gap % 4 or not (0 <= self.gap <= MAX_GAP):
            raise ValueError(f"bad gap {self.gap}")

    # ------------------------------------------------------------------ #
    # layout
    # ------------------------------------------------------------------ #

    @property
    def slot(self) -> int:
        """Byte offset of the first corrupted slot past the buffer."""
        return self.buffer_size + self.gap

    @property
    def frame(self) -> int:
        """Stack frame size (stack location only)."""
        slot = self.slot
        if self.target == "jmpbuf":
            return _align16(slot + _JMPBUF_BYTES + 4)
        if self.technique == "indirect":
            # ptr at slot, then (fnptr at slot+4,) ra above
            extra = 12 if self.target == "fnptr" else 8
            return _align16(slot + extra)
        if self.target == "ret":
            return _align16(slot + 4)
        return _align16(slot + 8)  # fnptr slot + saved ra

    @property
    def overflow_len(self) -> int:
        """Attack copy length: everything up to and including the first
        corrupted word (target slot or data pointer)."""
        return self.slot + 4

    def _frame_base(self) -> int:
        return VULN_SP - self.frame

    # ------------------------------------------------------------------ #
    # code generation
    # ------------------------------------------------------------------ #

    def emit(self, index: int) -> Tuple[str, str]:
        """(text-section code, bss declarations) for ``vulnerable_<i>``."""
        seg = index * SEG_SIZE
        read_seg = f"""\
    la   a1, input_buf
    addi a1, a1, {seg}
    lbu  a2, 0(a1)
    addi a1, a1, 1"""
        if self.location == "data":
            return self._emit_data(index, read_seg, seg)
        if self.target == "jmpbuf":
            return self._emit_jmpbuf(index, read_seg, seg)
        return self._emit_stack(index, read_seg, seg)

    def _indirect_write(self, seg: int, load_ptr: str) -> str:
        return f"""\
{load_ptr}
    la   t1, input_buf
    addi t1, t1, {seg + VALUE_OFF}
    lw   t1, 0(t1)
    sw   t1, 0(t0)"""

    def _emit_stack(self, index: int, read_seg: str, seg: int
                    ) -> Tuple[str, str]:
        frame, slot = self.frame, self.slot
        init: List[str] = []
        post: List[str] = []
        if self.target == "ret" and self.technique == "direct":
            ra_off = slot                    # the saved ra IS the target
        elif self.technique == "direct":     # fnptr direct
            ra_off = frame - 4
            init.append(f"""\
    la   t0, safe_func
    sw   t0, {slot}(sp)""")
            post.append(f"""\
    lw   t0, {slot}(sp)
    jalr ra, t0, 0""")
        else:                                # indirect (ret or fnptr)
            ptr_off = slot
            init.append(f"""\
    la   t0, scratch_slot
    sw   t0, {ptr_off}(sp)""")
            if self.target == "fnptr":
                ra_off = slot + 8
                init.append(f"""\
    la   t0, safe_func
    sw   t0, {slot + 4}(sp)""")
                post.append(self._indirect_write(
                    seg, f"    lw   t0, {ptr_off}(sp)"))
                post.append(f"""\
    lw   t0, {slot + 4}(sp)
    jalr ra, t0, 0""")
            else:                            # ret indirect
                ra_off = slot + 4
                post.append(self._indirect_write(
                    seg, f"    lw   t0, {ptr_off}(sp)"))
        body = "\n".join(
            [f"vulnerable_{index}:",
             f"    addi sp, sp, -{frame}",
             f"    sw   ra, {ra_off}(sp)"]
            + init
            + [read_seg,
               "    mv   a0, sp",
               "    call memcpy"]
            + post
            + [f"    lw   ra, {ra_off}(sp)",
               f"    addi sp, sp, {frame}",
               "    ret"])
        return body, ""

    def _emit_jmpbuf(self, index: int, read_seg: str, seg: int
                     ) -> Tuple[str, str]:
        frame, slot = self.frame, self.slot
        body = f"""\
vulnerable_{index}:
    addi sp, sp, -{frame}
    sw   ra, {frame - 4}(sp)
    addi a0, sp, {slot}
    call setjmp
    bnez a0, vuln_out_{index}
{read_seg}
    mv   a0, sp
    call memcpy
    addi a0, sp, {slot}
    li   a1, 1
    call longjmp
vuln_out_{index}:
    lw   ra, {frame - 4}(sp)
    addi sp, sp, {frame}
    ret"""
        return body, ""

    def _emit_data(self, index: int, read_seg: str, seg: int
                   ) -> Tuple[str, str]:
        init = [f"""\
    la   t0, safe_func
    la   t1, g_fnptr_{index}
    sw   t0, 0(t1)"""]
        post: List[str] = []
        if self.technique == "indirect":
            init.append(f"""\
    la   t0, scratch_slot
    la   t1, g_ptr_{index}
    sw   t0, 0(t1)""")
            post.append(self._indirect_write(seg, f"""\
    la   t1, g_ptr_{index}
    lw   t0, 0(t1)"""))
        post.append(f"""\
    la   t1, g_fnptr_{index}
    lw   t0, 0(t1)
    jalr ra, t0, 0""")
        body = "\n".join(
            [f"vulnerable_{index}:",
             "    addi sp, sp, -16",
             "    sw   ra, 12(sp)"]
            + init
            + [read_seg,
               f"    la   a0, g_buf_{index}",
               "    call memcpy"]
            + post
            + ["    lw   ra, 12(sp)",
               "    addi sp, sp, 16",
               "    ret"])
        bss = [f"g_buf_{index}:   .space {self.slot}"]
        if self.technique == "indirect":
            bss.append(f"g_ptr_{index}:   .space 4")
        bss.append(f"g_fnptr_{index}: .space 4")
        return body, "\n".join(bss)

    # ------------------------------------------------------------------ #
    # input segments
    # ------------------------------------------------------------------ #

    def attack_segment(self, program, index: int, payload_address: int,
                       filler: int = 0x41) -> bytes:
        """The attacker's input segment for this primitive."""
        from struct import pack

        seg = bytearray(SEG_SIZE)
        n = self.overflow_len
        seg[0] = n
        data = bytes([filler]) * self.slot
        if self.technique == "direct":
            data += pack("<I", payload_address & 0xFFFFFFFF)
        else:
            # the corrupted pointer must aim at the real target slot:
            # the fnptr global (data) or the fnptr/saved-ra stack slot,
            # which both sit one word above the pointer (stack).
            if self.location == "data":
                slot_addr = program.symbol(f"g_fnptr_{index}")
            else:
                slot_addr = self._frame_base() + self.slot + 4
            data += pack("<I", slot_addr & 0xFFFFFFFF)
            seg[VALUE_OFF:VALUE_OFF + 4] = pack(
                "<I", payload_address & 0xFFFFFFFF)
        seg[1:1 + len(data)] = data
        return bytes(seg)

    def benign_segment(self, rng) -> bytes:
        """An in-bounds segment: the copy stays inside the buffer."""
        seg = bytearray(SEG_SIZE)
        n = rng.randrange(0, self.buffer_size + 1)
        seg[0] = n
        for i in range(n):
            seg[1 + i] = rng.randrange(0, 256)
        return bytes(seg)

    # ------------------------------------------------------------------ #
    # (de)serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Primitive":
        return cls(location=data["location"], target=data["target"],
                   technique=data["technique"],
                   buffer_size=int(data["buffer_size"]),
                   gap=int(data["gap"]))

    @property
    def shape(self) -> str:
        return f"{self.location}/{self.target}/{self.technique}"
