"""Campaign integration: generated cases as dynamic workloads.

The campaign runner addresses workloads by registry name.  Generated
cases are an *unbounded* family, so instead of registering them
eagerly, :func:`gen_workload` resolves the dynamic name form

    ``gen/<case-seed-hex>/<variant>``      (variant: attack | benign)

into a fully-formed :class:`repro.bench.workloads.Workload` on demand —
:func:`repro.bench.workloads.get_workload` falls back to this resolver
for any ``gen/``-prefixed name, which makes generated cases first-class
matrix citizens::

    {"schema": "repro.campaign.matrix/1",
     "axes": {"workload": ["gen/0000002a/attack"],
              "dift_mode": ["full", "demand"]}}

Because the campaign's success notion ("ran to budget or exited 0")
is wrong for attack runs — a *detected* attack stops early with reason
``security`` and that is the expected outcome — the resolved workload
carries an ``ok_check`` hook the worker consults instead:

* ``attack`` under a policy: ok iff the DIFT engine detected it;
* ``attack`` without a policy: ok iff the payload ran (console ``X``);
* ``benign``: ok iff the guest exited 0 with no violations.

:func:`make_matrix` emits a ready-to-run matrix document covering a
corpus seed range across both DIFT modes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.gen.generator import case_from_seed, iter_cases

VARIANTS = ("attack", "benign")
_PREFIX = "gen/"


def is_gen_name(name: str) -> bool:
    return isinstance(name, str) and name.startswith(_PREFIX)


def parse_gen_name(name: str) -> Tuple[int, str]:
    """``gen/<case-seed-hex>/<variant>`` → ``(case_seed, variant)``."""
    parts = name.split("/")
    if len(parts) != 3 or parts[0] != "gen":
        raise ValueError(
            f"bad generated-workload name {name!r}; expected "
            f"'gen/<case-seed-hex>/<attack|benign>'")
    try:
        case_seed = int(parts[1], 16)
    except ValueError:
        raise ValueError(
            f"bad case seed {parts[1]!r} in {name!r} (hex expected)"
        ) from None
    if parts[2] not in VARIANTS:
        raise ValueError(
            f"bad variant {parts[2]!r} in {name!r}; "
            f"expected one of {VARIANTS}")
    return case_seed, parts[2]


def gen_name(case_seed: int, variant: str) -> str:
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}")
    return f"gen/{case_seed:08x}/{variant}"


def gen_workload(name: str):
    """Resolve a ``gen/...`` name into a Workload (used by get_workload)."""
    from repro.bench.workloads import Workload

    case_seed, variant = parse_gen_name(name)
    case = case_from_seed(case_seed)
    program, attack_input, benign_input = case.build()
    feed = attack_input if variant == "attack" else benign_input

    def _ok_check(platform, result, dift: bool) -> bool:
        if variant == "attack":
            if dift:
                return bool(result.detected)
            return (result.reason == "halt" and result.exit_code == 0
                    and "X" in platform.console())
        return (result.reason == "halt" and result.exit_code == 0
                and not result.violations)

    return Workload(
        name=name,
        build=lambda scale: program,
        platform_kwargs=lambda scale: {},
        policy=lambda prog: case.policy(prog),
        prepare=lambda platform, prog, scale: platform.uart.feed(feed),
        ok_check=_ok_check,
    )


def make_matrix(seed: int, count: int,
                dift_modes: Tuple[str, ...] = ("full", "demand"),
                max_instructions: Optional[int] = 200_000
                ) -> Dict[str, object]:
    """A ``repro.campaign.matrix/1`` document over ``count`` cases.

    Every case contributes its attack and its benign twin, crossed with
    the requested DIFT modes — the campaign-scale version of the
    detection-soundness oracle.
    """
    workloads = []
    for case in _first_cases(seed, count):
        workloads.append(gen_name(case.case_seed, "attack"))
        workloads.append(gen_name(case.case_seed, "benign"))
    document: Dict[str, object] = {
        "schema": "repro.campaign.matrix/1",
        "axes": {
            "workload": workloads,
            "dift_mode": list(dift_modes),
        },
    }
    if max_instructions is not None:
        document["defaults"] = {"max_instructions": max_instructions}
    return document


def _first_cases(seed: int, count: int):
    stream = iter_cases(seed)
    return [next(stream) for _ in range(count)]
