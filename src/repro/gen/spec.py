"""Self-describing generated attack cases (:class:`GeneratedAttack`).

A :class:`GeneratedAttack` is everything needed to rebuild one test
case: the primitive list (:mod:`repro.gen.primitives`), which primitive
carries the attack (``victim``), the payload mode, and the generated
security lattice with its (hi, li) class pair.  From the spec alone the
case assembles into a runnable guest binary, the paired **attack** and
**benign** UART inputs, and the generated :class:`SecurityPolicy` — so
a spec serialized into ``tests/corpus/`` replays bit-exactly forever.

Payload modes:

* ``inject`` — the payload is *real machine code carried in the
  attacker's input bytes*: it arrives over the UART, lands in
  ``input_buf`` (tainted LI by the generated policy's ``uart0.rx``
  classification) and the hijacked control flow jumps straight into the
  received bytes.  No pre-classified region needed — detection rests
  purely on tag propagation through the copy chain.
* ``reuse`` — the paper's Table I methodology: a resident
  ``attack_code`` function pre-classified LI stands in for the payload
  and the hijack jumps there.

The guest program is honest about both variants: each ``vulnerable_<i>``
reads a length-prefixed segment and the overflow only happens when the
segment claims an out-of-bounds length, so the *same binary* serves the
attack run and its benign twin.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.asm import Program, assemble
from repro.gen.lattices import lattice_from_generated_spec
from repro.gen.primitives import PAYLOAD_OFF, PAYLOAD_ROOM, SEG_SIZE, Primitive
from repro.policy import SecurityPolicy
from repro.sw import runtime
from repro.vp.platform import UART_BASE

PAYLOAD_MODES = ("inject", "reuse")

#: the "shellcode": print ``X`` on the UART, then exit(0) cleanly so an
#: undetected hijack is observable (console contains ``X``) without
#: wedging the simulation.
_PAYLOAD_BODY = f"""\
    li   t0, {UART_BASE:#x}
    li   a0, 'X'
    sb   a0, 0(t0)
    li   a0, 0
    li   a7, 93
    ecall"""


def _canonical_json(data) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class GeneratedAttack:
    """One generated case: primitives × lattice × payload mode."""

    case_seed: int
    primitives: Tuple[Primitive, ...]
    victim: int                      # index of the attacking primitive
    payload_mode: str                # "inject" | "reuse"
    lattice_spec: Dict[str, object]  # serialized classes/flows
    lattice_strategy: str
    hi_class: str
    li_class: str
    _cache: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.primitives:
            raise ValueError("a case needs at least one primitive")
        if not 0 <= self.victim < len(self.primitives):
            raise ValueError(f"victim index {self.victim} out of range")
        if self.payload_mode not in PAYLOAD_MODES:
            raise ValueError(f"unknown payload mode {self.payload_mode!r}")

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        return {
            "case_seed": self.case_seed,
            "primitives": [p.to_dict() for p in self.primitives],
            "victim": self.victim,
            "payload_mode": self.payload_mode,
            "lattice": {
                "spec": self.lattice_spec,
                "strategy": self.lattice_strategy,
                "hi": self.hi_class,
                "li": self.li_class,
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GeneratedAttack":
        lat = data["lattice"]
        return cls(
            case_seed=int(data["case_seed"]),
            primitives=tuple(Primitive.from_dict(p)
                             for p in data["primitives"]),
            victim=int(data["victim"]),
            payload_mode=data["payload_mode"],
            lattice_spec=lat["spec"],
            lattice_strategy=lat["strategy"],
            hi_class=lat["hi"],
            li_class=lat["li"],
        )

    @property
    def spec_hash(self) -> str:
        """Content hash of the spec (sha256 of its canonical JSON)."""
        return hashlib.sha256(
            _canonical_json(self.to_dict()).encode()).hexdigest()

    @property
    def name(self) -> str:
        prim = self.primitives[self.victim]
        return (f"gen-{self.case_seed:08x}-{prim.location}-{prim.target}"
                f"-{prim.technique}-{self.payload_mode}")

    # ------------------------------------------------------------------ #
    # guest program
    # ------------------------------------------------------------------ #

    @property
    def input_length(self) -> int:
        return len(self.primitives) * SEG_SIZE

    def source(self) -> str:
        """The complete guest assembly source."""
        texts, bsss = [], []
        for index, prim in enumerate(self.primitives):
            text, bss = prim.emit(index)
            texts.append(text)
            if bss:
                bsss.append(bss)
        calls = "\n".join(f"    call vulnerable_{i}"
                          for i in range(len(self.primitives)))
        reuse = ""
        if self.payload_mode == "reuse":
            reuse = f"""
# ---- resident payload stand-in: pre-classified Low-Integrity ----
.align 2
attack_code:
{_PAYLOAD_BODY}
attack_code_end:
"""
        body = "\n\n".join(texts)
        bss_decls = "\n".join(bsss)
        return runtime.program(f"""
.equ INPUT_LEN, {self.input_length}

.text
main:
    addi sp, sp, -16
    sw   ra, 12(sp)
    call read_input
{calls}
    # clean finish: every overflow stayed in bounds
    li   a0, 'B'
    call putc
    li   a0, 0
    lw   ra, 12(sp)
    addi sp, sp, 16
    ret

# read INPUT_LEN attacker bytes from the UART into input_buf
read_input:
    la   t0, input_buf
    li   t1, INPUT_LEN
ri_loop:
    li   t2, UART_STATUS
ri_wait:
    lw   t3, 0(t2)
    andi t3, t3, 1
    beqz t3, ri_wait
    li   t2, UART_RXDATA
    lw   t3, 0(t2)
    sb   t3, 0(t0)
    addi t0, t0, 1
    addi t1, t1, -1
    bnez t1, ri_loop
    ret

safe_func:
    ret

{body}
{reuse}
.bss
.align 2
input_buf:    .space INPUT_LEN
scratch_slot: .space 4
{bss_decls}
""")

    def build(self) -> Tuple[Program, bytes, bytes]:
        """Assemble and return ``(program, attack_input, benign_input)``.

        Deterministic: benign filler bytes come from an RNG derived from
        ``case_seed``, so rebuilding a spec always yields identical
        inputs (the corpus byte-for-byte guarantee).
        """
        if "build" in self._cache:
            return self._cache["build"]
        program = assemble(self.source())
        payload_addr, payload_bytes = self._payload(program)

        rng = random.Random(self.case_seed ^ 0xBE9161)
        benign = b"".join(p.benign_segment(rng) for p in self.primitives)

        rng = random.Random(self.case_seed ^ 0xBE9161)  # same twin filler
        segments = []
        for index, prim in enumerate(self.primitives):
            if index == self.victim:
                seg = bytearray(prim.attack_segment(program, index,
                                                    payload_addr))
                if payload_bytes:
                    seg[PAYLOAD_OFF:PAYLOAD_OFF + len(payload_bytes)] = \
                        payload_bytes
                segments.append(bytes(seg))
                prim.benign_segment(rng)     # keep twin streams aligned
            else:
                segments.append(prim.benign_segment(rng))
        attack = b"".join(segments)
        result = (program, attack, benign)
        self._cache["build"] = result
        return result

    def _payload(self, program: Program) -> Tuple[int, bytes]:
        """(payload address, injected bytes-or-empty) for this mode."""
        if self.payload_mode == "reuse":
            return program.symbol("attack_code"), b""
        address = (program.symbol("input_buf")
                   + self.victim * SEG_SIZE + PAYLOAD_OFF)
        payload = assemble(f".text\npayload:\n{_PAYLOAD_BODY}\n",
                           base=address)
        if payload.size > PAYLOAD_ROOM:
            raise AssertionError(
                f"payload ({payload.size} B) exceeds segment room")
        return address, payload.image

    # ------------------------------------------------------------------ #
    # generated policies
    # ------------------------------------------------------------------ #

    def policy(self, program: Program) -> SecurityPolicy:
        """The full generated policy: detect li-tagged fetches.

        Mirrors the paper's code-injection policy but over the generated
        lattice: program image ``hi``, UART input ``li``, fetch
        clearance ``hi``; ``reuse`` mode also classifies the resident
        payload ``li``.  Default class is the lattice bottom so
        demand-friendly draws boot with a clean tag state.
        """
        lattice = lattice_from_generated_spec(self.lattice_spec)
        policy = SecurityPolicy(lattice, default_class=lattice.bottom,
                                name=self.name)
        text_start, text_end = program.sections[".text"]
        policy.classify_region(text_start, text_end, self.hi_class)
        if self.payload_mode == "reuse":
            policy.classify_region(program.symbol("attack_code"),
                                   program.symbol("attack_code_end"),
                                   self.li_class)
        policy.classify_source("uart0.rx", self.li_class)
        policy.set_execution_clearance(fetch=self.hi_class)
        return policy

    def policy_stripped(self, program: Program) -> SecurityPolicy:
        """The same classifications with **no clearance checks**.

        Tag propagation runs identically to :meth:`policy` but nothing
        can be flagged, so the attack executes to completion — the
        architectural-invisibility oracle compares this run against the
        plain (untagged) VP.
        """
        policy = self.policy(program)
        policy.execution = type(policy.execution)()
        return policy
