"""Automatic shrinking of failing generated cases.

When an oracle fails, the raw case is rarely the best bug report: it may
carry bystander primitives, a five-class product lattice and a large
frame.  :func:`shrink` greedily reduces the case while re-checking that
it *still fails the same oracle*, yielding the minimal repro that gets
committed into ``tests/corpus/``.

Reduction moves, applied to a fixpoint (greedy first-improvement):

1. **drop primitives** — remove every non-victim primitive (the attack
   carrier must stay);
2. **simplify the lattice** — replace the generated lattice with the
   canonical 2-chain ``HI -> LI`` (remapping the case's hi/li classes);
3. **reduce payload geometry** — halve ``buffer_size`` toward the
   minimum and drop ``gap`` to zero;
4. **prefer the simpler payload mode** — ``reuse`` (a resident
   function) over ``inject`` (code in the input bytes).

Shrinking preserves the ``case_seed`` so the provenance of a shrunk
repro remains traceable to the generating seed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.gen.lattices import minimal_lattice_spec
from repro.gen.oracles import OracleVerdict, run_case
from repro.gen.primitives import MIN_BUFFER, Primitive
from repro.gen.spec import GeneratedAttack

#: safety valve: maximum oracle re-runs per shrink
MAX_SHRINK_RUNS = 64


def _with_primitives(case: GeneratedAttack,
                     primitives: Tuple[Primitive, ...],
                     victim: int) -> GeneratedAttack:
    return replace(case, primitives=primitives, victim=victim, _cache={})


def _candidates(case: GeneratedAttack) -> Iterator[GeneratedAttack]:
    """Strictly simpler variants of ``case``, most aggressive first."""
    # 1. drop all bystander primitives at once, then one at a time
    if len(case.primitives) > 1:
        yield _with_primitives(case, (case.primitives[case.victim],), 0)
        for drop in range(len(case.primitives)):
            if drop == case.victim:
                continue
            kept = tuple(p for i, p in enumerate(case.primitives)
                         if i != drop)
            victim = case.victim - (1 if drop < case.victim else 0)
            yield _with_primitives(case, kept, victim)

    # 2. canonical minimal lattice
    minimal = minimal_lattice_spec()
    if case.lattice_spec != minimal:
        yield replace(case, lattice_spec=minimal, lattice_strategy="chain",
                      hi_class="HI", li_class="LI", _cache={})

    # 3. shrink the victim's frame geometry
    prim = case.primitives[case.victim]
    moves = []
    if prim.buffer_size > MIN_BUFFER:
        half = max(MIN_BUFFER, (prim.buffer_size // 8) * 4)
        moves.append(replace(prim, buffer_size=half))
        moves.append(replace(prim, buffer_size=MIN_BUFFER))
    if prim.gap:
        moves.append(replace(prim, gap=0))
    if prim.buffer_size > MIN_BUFFER and prim.gap:
        moves.append(replace(prim, buffer_size=MIN_BUFFER, gap=0))
    for smaller in moves:
        prims = list(case.primitives)
        prims[case.victim] = smaller
        yield _with_primitives(case, tuple(prims), case.victim)

    # 4. simpler payload mode
    if case.payload_mode == "inject":
        yield replace(case, payload_mode="reuse", _cache={})


def _complexity(case: GeneratedAttack) -> tuple:
    prim = case.primitives[case.victim]
    return (len(case.primitives),
            len(case.lattice_spec.get("classes", ())),
            prim.buffer_size + prim.gap,
            0 if case.payload_mode == "reuse" else 1)


def shrink(case: GeneratedAttack,
           failed: OracleVerdict,
           check: Optional[Callable[[GeneratedAttack], OracleVerdict]]
           = None) -> Tuple[GeneratedAttack, OracleVerdict]:
    """Minimize ``case`` while it keeps failing the same oracles.

    ``check`` defaults to :func:`repro.gen.oracles.run_case`; mutation
    tests pass a closure that re-applies their ``mutate`` hook.  Returns
    the smallest failing case found and its verdict.
    """
    if failed.passed:
        raise ValueError("shrink() needs a failing verdict to preserve")
    if check is None:
        check = run_case
    target = frozenset(failed.failures)

    best, best_verdict = case, failed
    runs = 0
    improved = True
    while improved and runs < MAX_SHRINK_RUNS:
        improved = False
        for candidate in _candidates(best):
            if _complexity(candidate) >= _complexity(best):
                continue
            runs += 1
            try:
                verdict = check(candidate)
            except ReproError:
                continue                     # candidate broke the build
            if not verdict.passed and frozenset(verdict.failures) & target:
                best, best_verdict = candidate, verdict
                improved = True
                break                        # greedy: restart from best
            if runs >= MAX_SHRINK_RUNS:
                break
    return best, best_verdict


def shrink_all(failures: List[OracleVerdict],
               check: Optional[Callable[[GeneratedAttack], OracleVerdict]]
               = None) -> List[Tuple[GeneratedAttack, OracleVerdict]]:
    """Shrink every failing verdict; returns (minimal case, verdict)."""
    return [shrink(v.case, v, check=check) for v in failures]
