"""Seeded case generation: seeds → :class:`GeneratedAttack` specs.

Determinism contract:

* :func:`case_from_seed` is a pure function of its ``case_seed`` — the
  same seed always yields the identical spec (and, via
  :meth:`GeneratedAttack.build`, identical binaries and inputs);
* :func:`generate_corpus` derives per-case seeds from one corpus seed
  and de-duplicates by ``spec_hash``, so ``repro fuzz --seed N`` always
  reproduces the same corpus byte-for-byte.

All randomness flows through locally constructed
:class:`random.Random` instances — the module-level stream is never
touched, so concurrent campaign jobs cannot perturb each other.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.gen.lattices import random_lattice
from repro.gen.primitives import (
    MAX_BUFFER,
    MAX_GAP,
    MIN_BUFFER,
    SHAPES,
    Primitive,
)
from repro.gen.spec import PAYLOAD_MODES, GeneratedAttack

#: primitives per generated case
MIN_PRIMITIVES = 1
MAX_PRIMITIVES = 3

#: stream separator so case seeds and lattice draws are independent
_CASE_SALT = 0xA77AC4


def random_primitive(rng: random.Random) -> Primitive:
    """Draw one primitive: a W–K shape plus random frame geometry."""
    location, target, technique = rng.choice(SHAPES)
    buffer_size = 4 * rng.randint(MIN_BUFFER // 4, MAX_BUFFER // 4)
    gap = 4 * rng.randint(0, MAX_GAP // 4)
    return Primitive(location=location, target=target, technique=technique,
                     buffer_size=buffer_size, gap=gap)


def case_from_seed(case_seed: int) -> GeneratedAttack:
    """Build the (unique) spec for one case seed."""
    rng = random.Random(case_seed ^ _CASE_SALT)
    generated = random_lattice(rng)
    n = rng.randint(MIN_PRIMITIVES, MAX_PRIMITIVES)
    primitives = tuple(random_primitive(rng) for _ in range(n))
    victim = rng.randrange(n)
    payload_mode = rng.choice(PAYLOAD_MODES)
    return GeneratedAttack(
        case_seed=case_seed,
        primitives=primitives,
        victim=victim,
        payload_mode=payload_mode,
        lattice_spec=generated.spec,
        lattice_strategy=generated.strategy,
        hi_class=generated.hi_class,
        li_class=generated.li_class,
    )


def iter_cases(seed: int) -> Iterator[GeneratedAttack]:
    """Infinite stream of distinct cases derived from one corpus seed."""
    rng = random.Random(seed)
    seen = set()
    while True:
        case = case_from_seed(rng.getrandbits(32))
        digest = case.spec_hash
        if digest in seen:
            continue
        seen.add(digest)
        yield case


def generate_corpus(seed: int, count: int) -> List[GeneratedAttack]:
    """``count`` distinct cases (by spec hash), deterministically."""
    stream = iter_cases(seed)
    return [next(stream) for _ in range(count)]
