"""Random security-lattice generation for adversarial policies.

The generator produces *random DAGs with valid LUB structure*: every
result is a genuine finite lattice (verified constructively — the
:class:`~repro.policy.lattice.Lattice` constructor rejects any poset
without unique LUBs/GLBs), so generated policies can never crash the
DIFT engine with a malformed IFP.

Three strategies, chosen per seed:

* ``chain``   — a random-length total order (always a lattice);
* ``product`` — a product of two random chains (products of lattices
  are lattices; this is how the paper builds IFP-3 from IFP-1 × IFP-2,
  see :func:`repro.policy.lattice.product`);
* ``dag``     — a genuinely random DAG over a topological order, closed
  with an explicit bottom and top, then *rejection-sampled*: candidates
  whose poset lacks unique least upper bounds are discarded and
  re-drawn.  Falls back to a chain if no valid draw appears.

Every generated lattice comes with the **(hi, li) class pair** the
attack policy needs: ``li`` (the class of attacker input) must not be
allowed to flow into ``hi`` (the fetch clearance).  A *demand-friendly*
draw pins ``hi`` to the lattice bottom, so a generated guest starts
with an all-bottom (clean) tag state and exercises the demand-mode
fast-path handover the moment tainted input arrives.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import LatticeError
from repro.policy.lattice import Lattice, chain, product
from repro.policy.serialize import lattice_from_spec, lattice_to_spec

STRATEGIES = ("chain", "product", "dag")

#: bounded rejection sampling for the ``dag`` strategy
_DAG_ATTEMPTS = 12


@dataclass(frozen=True)
class GeneratedLattice:
    """A generated IFP plus the class pair the attack policy uses.

    ``spec`` is the serialized classes/flows form accepted by
    :func:`repro.policy.serialize.lattice_from_spec`, so a generated
    lattice survives a JSON round-trip bit-exactly.
    """

    lattice: Lattice
    spec: Dict[str, object]
    strategy: str
    hi_class: str       # fetch clearance + program-image class
    li_class: str       # attacker-input class; must NOT flow into hi

    @property
    def demand_friendly(self) -> bool:
        """True iff ``hi`` is the bottom class (clean boot tag state)."""
        return self.hi_class == self.lattice.bottom


def _random_chain(rng: random.Random, prefix: str = "S") -> Lattice:
    length = rng.randint(2, 4)
    return chain([f"{prefix}{i}" for i in range(length)])


def _random_product(rng: random.Random) -> Lattice:
    a = chain([f"A{i}" for i in range(rng.randint(2, 3))])
    b = chain([f"B{i}" for i in range(rng.randint(2, 3))])
    return product(a, b)


def _random_dag(rng: random.Random) -> Lattice:
    """One candidate draw: random edges over a topological order, with
    an explicit bottom/top welded on.  May raise :class:`LatticeError`
    when the draw lacks unique LUBs — the caller resamples."""
    n = rng.randint(2, 5)
    names = [f"S{i}" for i in range(n)]
    flows: List[Tuple[str, str]] = []
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.35:
                flows.append((names[i], names[j]))
    classes = ["BOT"] + names + ["TOP"]
    flows += [("BOT", name) for name in names]
    flows += [(name, "TOP") for name in names]
    flows.append(("BOT", "TOP"))
    return Lattice(classes, flows)


def random_lattice(rng: random.Random,
                   demand_friendly_bias: float = 0.7) -> GeneratedLattice:
    """Draw one random lattice and its (hi, li) attack-class pair.

    All randomness comes from the injected ``rng`` — no module-level
    stream is touched, so concurrent campaign jobs cannot perturb each
    other.
    """
    strategy = rng.choice(STRATEGIES)
    if strategy == "chain":
        lattice = _random_chain(rng)
    elif strategy == "product":
        lattice = _random_product(rng)
    else:
        lattice = None
        for _ in range(_DAG_ATTEMPTS):
            try:
                lattice = _random_dag(rng)
                break
            except LatticeError:
                continue
        if lattice is None:
            strategy = "chain"
            lattice = _random_chain(rng)

    bottom = lattice.bottom
    non_bottom = [name for name in lattice.classes if name != bottom]
    if rng.random() < demand_friendly_bias:
        # hi = bottom: any non-bottom li works (only bottom flows into
        # bottom in a partial order), and the guest boots clean.
        hi = bottom
        li = rng.choice(non_bottom)
    else:
        pairs = [(h, l) for h in lattice.classes for l in lattice.classes
                 if not lattice.allowed_flow(l, h)]
        hi, li = rng.choice(pairs)
    return GeneratedLattice(lattice=lattice, spec=lattice_to_spec(lattice),
                            strategy=strategy, hi_class=hi, li_class=li)


def minimal_lattice_spec() -> Dict[str, object]:
    """The smallest valid attack lattice: a 2-chain ``HI -> LI``.

    ``HI`` is the bottom (trusted code), ``LI`` the top (attacker
    input); ``LI`` cannot flow into ``HI``.  Used by the shrinker to
    replace an arbitrary generated lattice with the canonical minimum.
    """
    return lattice_to_spec(Lattice(["HI", "LI"], [("HI", "LI")]))


def lattice_from_generated_spec(spec: Dict[str, object]) -> Lattice:
    """Rebuild a generated lattice from its serialized spec."""
    return lattice_from_spec(spec)
