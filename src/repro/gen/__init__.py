"""Adversarial attack-corpus generation (``repro.gen``).

The paper validates its DIFT approach against the 18 fixed
Wilander–Kamkar attack forms (Table I) and names "automatic test-case
generation ... tailored for stress-testing security policies" as future
work.  This package implements that future work: a **seeded adversarial
workload generator** that composes W–K attack primitives (overflow
location × target × directness, the same frame-layout knowledge as
:mod:`repro.sw.wk_suite`) with **randomly generated policy lattices**
into self-describing :class:`~repro.gen.spec.GeneratedAttack` specs that
assemble into runnable guest binaries.

Three differential oracles run over every generated case:

1. **architectural invisibility** — the DIFT instrumentation must never
   change what the guest computes (plain VP vs VP+ state equality);
2. **mode equivalence** — ``full`` and ``demand`` DIFT must end in
   snapshot-identical states (via the ``repro.state`` machinery);
3. **detection soundness** — the generated policy must flag the attack
   variant and stay silent on the auto-generated benign twin.

Failing cases are automatically shrunk (:mod:`repro.gen.shrink`) to a
minimal repro and written into the committed ``tests/corpus/``
regression directory, which tier-1 replays on every run.  The ``repro
fuzz`` CLI subcommand and the ``gen/<case-seed>/<variant>`` campaign
workloads make the generator a standing campaign.
"""

from repro.gen.corpus import (
    CASE_SCHEMA,
    CorpusError,
    case_filename,
    iter_corpus,
    load_case,
    save_case,
)
from repro.gen.generator import case_from_seed, generate_corpus
from repro.gen.lattices import GeneratedLattice, random_lattice
from repro.gen.oracles import ORACLE_NAMES, OracleVerdict, run_case
from repro.gen.primitives import LOCATIONS, TARGETS, TECHNIQUES, Primitive
from repro.gen.shrink import shrink
from repro.gen.spec import GeneratedAttack

__all__ = [
    "CASE_SCHEMA",
    "CorpusError",
    "GeneratedAttack",
    "GeneratedLattice",
    "LOCATIONS",
    "ORACLE_NAMES",
    "OracleVerdict",
    "Primitive",
    "TARGETS",
    "TECHNIQUES",
    "case_filename",
    "case_from_seed",
    "generate_corpus",
    "iter_corpus",
    "load_case",
    "random_lattice",
    "run_case",
    "save_case",
    "shrink",
]
