"""The committed regression corpus (``tests/corpus/``).

Every file is one self-describing ``repro.gen.case/1`` document: the
full :class:`~repro.gen.spec.GeneratedAttack` spec, its content hash
and its provenance (a straight generator draw, or the shrunk minimal
repro of a once-failing case).  Files are written with sorted keys and
compact separators, so re-running ``repro fuzz`` with the same seed
reproduces the corpus **byte-for-byte** — the property the acceptance
gate checks.

Tier-1 replays every corpus case through all three oracles
(``tests/test_gen_corpus.py``), which is what turns a one-time fuzzing
find into a permanent regression test.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.gen.spec import GeneratedAttack

CASE_SCHEMA = "repro.gen.case/1"

#: provenance kinds a corpus file may carry
ORIGINS = ("generated", "shrunk", "manual")


class CorpusError(ReproError):
    """A corpus case file is malformed or inconsistent."""


def case_document(case: GeneratedAttack, origin: str = "generated",
                  note: str = "") -> Dict[str, object]:
    """The serializable corpus document for one case."""
    if origin not in ORIGINS:
        raise CorpusError(f"unknown corpus origin {origin!r}")
    return {
        "schema": CASE_SCHEMA,
        "origin": {"kind": origin, "note": note},
        "spec_hash": case.spec_hash,
        "spec": case.to_dict(),
    }


def dump_case(document: Dict[str, object]) -> str:
    """Deterministic text form (sorted keys, compact separators)."""
    return json.dumps(document, sort_keys=True,
                      separators=(",", ":")) + "\n"


def case_filename(case: GeneratedAttack, origin: str = "generated") -> str:
    prefix = "shrunk-" if origin == "shrunk" else ""
    return f"{prefix}{case.name}-{case.spec_hash[:8]}.json"


def save_case(directory: str, case: GeneratedAttack,
              origin: str = "generated", note: str = "") -> str:
    """Write one case into ``directory``; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, case_filename(case, origin))
    with open(path, "w") as handle:
        handle.write(dump_case(case_document(case, origin, note)))
    return path


def parse_case(document: Dict[str, object],
               name: str = "<corpus>") -> GeneratedAttack:
    """Validate one corpus document and rebuild its case."""
    if not isinstance(document, dict):
        raise CorpusError(f"{name}: corpus case must be an object")
    if document.get("schema") != CASE_SCHEMA:
        raise CorpusError(
            f"{name}: unsupported schema {document.get('schema')!r} "
            f"(this build reads exactly {CASE_SCHEMA!r})")
    try:
        case = GeneratedAttack.from_dict(document["spec"])
    except (KeyError, TypeError, ValueError, ReproError) as exc:
        raise CorpusError(f"{name}: malformed spec: {exc}") from exc
    recorded = document.get("spec_hash")
    if recorded != case.spec_hash:
        raise CorpusError(
            f"{name}: spec_hash mismatch — file says {recorded!r}, "
            f"spec hashes to {case.spec_hash!r} (corrupted or "
            f"hand-edited without rehashing)")
    return case


def load_case(path: str) -> GeneratedAttack:
    """Load and validate one corpus file."""
    name = os.path.basename(path)
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CorpusError(f"{name}: unreadable corpus case: {exc}") from exc
    return parse_case(document, name)


def corpus_files(directory: str) -> List[str]:
    """Sorted corpus file paths under ``directory`` (may be empty)."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, entry)
        for entry in os.listdir(directory)
        if entry.endswith(".json"))


def iter_corpus(directory: str
                ) -> Iterator[Tuple[str, GeneratedAttack]]:
    """Yield ``(path, case)`` for every case file in ``directory``."""
    for path in corpus_files(directory):
        yield path, load_case(path)


def default_corpus_dir(start: Optional[str] = None) -> str:
    """The repository's committed corpus directory.

    Resolved relative to this file so it works from any CWD; falls back
    to ``<start or cwd>/tests/corpus`` when the source tree layout is
    not recognizable (e.g. an installed package).
    """
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    candidate = os.path.join(root, "tests", "corpus")
    if os.path.isdir(candidate):
        return candidate
    return os.path.join(start or os.getcwd(), "tests", "corpus")
