"""The three differential oracles run over every generated case.

Seven platform runs share one assembled binary per case:

=========  ========================  =====================================
variant    platform                  purpose
=========  ========================  =====================================
attack     plain VP (no DIFT)        ground truth: the exploit *works*
benign     plain VP                  ground truth: the twin is clean
attack     VP+ ``full``              detection + mode-equivalence baseline
benign     VP+ ``full``              false-positive check + baselines
attack     VP+ ``demand``            mode equivalence
benign     VP+ ``demand``            mode equivalence
attack     VP+ ``full``, *stripped*  invisibility under active tagging
=========  ========================  =====================================

**Oracle 1 — architectural invisibility.**  Tag propagation must never
change what the guest computes.  Compared via
:func:`repro.verify.differential.arch_state`: the benign run under the
full policy must equal the plain VP, and the *attack* run under the
stripped policy (same classifications, clearance checks disabled, so
nothing halts the exploit) must equal the plain VP too.

**Oracle 2 — mode equivalence.**  ``full`` and ``demand`` DIFT must end
in snapshot-identical states: the complete ``repro.snapshot/1``
documents are diffed leaf-by-leaf via
:func:`repro.state.diff_documents`, ignoring only the fields that
legitimately encode *how* the run was executed (the liveness
accelerator's own counters, the engine's check count and the config's
``dift_mode`` itself) — never *what* was computed.

**Oracle 3 — detection soundness.**  The generated policy must flag the
attack variant (in both modes) and stay perfectly silent on the benign
twin.

A ``mutate(platform)`` hook (applied to every DIFT platform after
construction, before the run) lets mutation tests inject propagation
bugs and prove the oracles catch them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.dift.engine import RECORD
from repro.gen.spec import GeneratedAttack
from repro.state import diff_documents
from repro.verify.differential import arch_state
from repro.vp.config import PlatformConfig
from repro.vp.platform import Platform

ORACLE_NAMES = ("invisibility", "mode-equivalence", "detection")

#: instruction budget per run — generated guests retire a few thousand
#: instructions, so this only bounds pathological cases
DEFAULT_BUDGET = 200_000

#: snapshot paths that may legitimately differ between full and demand
#: mode: the mode selector itself, the liveness accelerator's private
#: counters and the engine's bookkeeping of how many checks ran on the
#: slow path.  Everything else — registers, tags, RAM, shadow RAM,
#: violations, peripherals, kernel time — must match bit-for-bit.
MODE_IGNORE_PREFIXES = (
    "config.dift_mode",
    "modules.liveness",
    "modules.engine.checks_performed",
)

#: how many diff lines to carry into a failure message
_DIFF_LIMIT = 12


@dataclass
class CaseRun:
    """One platform run of a case variant."""

    platform: Platform
    result: object
    arch: dict

    @property
    def detected(self) -> bool:
        return bool(self.result.detected)


@dataclass
class OracleVerdict:
    """The oracle outcome for one generated case."""

    case: GeneratedAttack
    failures: Dict[str, str] = field(default_factory=dict)
    exploit_works: bool = False

    @property
    def passed(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        if self.passed:
            return f"{self.case.name}: all oracles green"
        parts = [f"{name}: {msg}" for name, msg in self.failures.items()]
        return f"{self.case.name}: " + "; ".join(parts)


def _arch_mismatch(a: dict, b: dict) -> str:
    for key in a:
        if a[key] != b[key]:
            return f"{key} differs: {a[key]!r} != {b[key]!r}"
    return ""


def _run_variant(program, feed: bytes, policy, dift_mode: str,
                 mutate: Optional[Callable[[Platform], None]],
                 budget: int) -> CaseRun:
    if policy is None:
        platform = Platform()
    else:
        platform = Platform.from_config(PlatformConfig(
            policy=policy, engine_mode=RECORD, dift_mode=dift_mode))
    platform.load(program)
    platform.uart.feed(feed)
    if mutate is not None and policy is not None:
        mutate(platform)
    result = platform.run(max_instructions=budget)
    return CaseRun(platform, result, arch_state(platform, result))


def run_case(case: GeneratedAttack,
             mutate: Optional[Callable[[Platform], None]] = None,
             budget: int = DEFAULT_BUDGET) -> OracleVerdict:
    """Run all seven variants of one case and apply the three oracles."""
    program, attack, benign = case.build()
    policy = case.policy(program)

    plain_atk = _run_variant(program, attack, None, "full", mutate, budget)
    plain_ben = _run_variant(program, benign, None, "full", mutate, budget)
    full_atk = _run_variant(program, attack, policy, "full", mutate, budget)
    full_ben = _run_variant(program, benign, policy, "full", mutate, budget)
    demand_atk = _run_variant(program, attack, policy, "demand",
                              mutate, budget)
    demand_ben = _run_variant(program, benign, policy, "demand",
                              mutate, budget)
    stripped_atk = _run_variant(program, attack,
                                case.policy_stripped(program), "full",
                                mutate, budget)

    verdict = OracleVerdict(case=case)
    verdict.exploit_works = (
        plain_atk.result.reason == "halt"
        and plain_atk.result.exit_code == 0
        and "X" in plain_atk.platform.console())
    if not verdict.exploit_works:
        verdict.failures["detection"] = (
            "exploit inert on the plain VP: "
            f"stop={plain_atk.result.reason!r} "
            f"console={plain_atk.platform.console()!r}")
        return verdict

    # ---- oracle 1: architectural invisibility -------------------------
    problems: List[str] = []
    mismatch = _arch_mismatch(plain_ben.arch, full_ben.arch)
    if mismatch:
        problems.append(f"benign/full vs plain: {mismatch}")
    mismatch = _arch_mismatch(plain_atk.arch, stripped_atk.arch)
    if mismatch:
        problems.append(f"attack/stripped vs plain: {mismatch}")
    if stripped_atk.result.violations:
        problems.append("stripped policy still raised violations")
    if problems:
        verdict.failures["invisibility"] = "; ".join(problems)

    # ---- oracle 2: full/demand mode equivalence -----------------------
    problems = []
    for label, full, demand in (("attack", full_atk, demand_atk),
                                ("benign", full_ben, demand_ben)):
        diff = diff_documents(full.platform.snapshot_document(),
                              demand.platform.snapshot_document(),
                              ignore_prefixes=MODE_IGNORE_PREFIXES)
        if diff:
            shown = diff[:_DIFF_LIMIT]
            if len(diff) > len(shown):
                shown.append(f"... {len(diff) - len(shown)} more")
            problems.append(f"{label}: " + "; ".join(shown))
    if problems:
        verdict.failures["mode-equivalence"] = " | ".join(problems)

    # ---- oracle 3: detection soundness --------------------------------
    problems = []
    if not full_atk.detected:
        problems.append(
            f"attack undetected in full mode "
            f"(stop={full_atk.result.reason!r}, "
            f"console={full_atk.platform.console()!r})")
    if not demand_atk.detected:
        problems.append("attack undetected in demand mode")
    for label, run in (("full", full_ben), ("demand", demand_ben)):
        if run.result.violations:
            problems.append(
                f"false positive on benign twin ({label} mode): "
                f"{run.result.violations[0]}")
    if problems:
        verdict.failures["detection"] = "; ".join(problems)
    return verdict


def run_cases(cases, mutate=None, budget: int = DEFAULT_BUDGET
              ) -> Tuple[List[OracleVerdict], List[OracleVerdict]]:
    """Run many cases; returns ``(passed, failed)`` verdict lists."""
    passed, failed = [], []
    for case in cases:
        verdict = run_case(case, mutate=mutate, budget=budget)
        (passed if verdict.passed else failed).append(verdict)
    return passed, failed
