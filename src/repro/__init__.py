"""VP-DIFT: Dynamic Information Flow Tracking for embedded binaries on a
SystemC-style RISC-V virtual prototype.

Reproduction of Pieper, Herdt, Grosse, Drechsler (DAC 2020).  The public
API surfaces the four layers of the system:

* :mod:`repro.policy` — IFP lattices and security policies (Section IV);
* :mod:`repro.dift`   — the Taint type and the DIFT engine (Section V);
* :mod:`repro.sysc`   — the SystemC/TLM-style simulation substrate;
* :mod:`repro.vp`     — the RISC-V virtual prototype (VP and VP+);
* :mod:`repro.asm`    — the RV32IM assembler for guest software;
* :mod:`repro.sw`     — guest benchmarks and attack suites;
* :mod:`repro.bench`  — Table I / Table II reproduction harness;
* :mod:`repro.casestudy` — the Section VI-A immobilizer case study;
* :mod:`repro.obs`    — observability: metrics, structured tracing;
* :mod:`repro.state`  — checkpoint/restore snapshot artifacts.

Quick start::

    from repro import (Platform, PlatformConfig, SecurityPolicy,
                       builders, assemble)

    program = assemble(open("guest.s").read())
    policy = SecurityPolicy(builders.ifp1(), default_class="LC")
    policy.clear_sink("uart0.tx", "LC")
    vp_plus = Platform.from_config(PlatformConfig(policy=policy))
    vp_plus.load(program)
    result = vp_plus.run()
"""

from repro.asm import Assembler, Program, assemble, disassemble
from repro.dift import DiftEngine, ShadowTags, Taint, ViolationRecord
from repro.errors import (
    ClearanceException,
    DeclassificationError,
    ExecutionClearanceError,
    ReproError,
    SecurityViolation,
)
from repro.obs import MetricsRegistry, Observability
from repro.policy import Lattice, SecurityPolicy, builders
from repro.vp import Platform, PlatformConfig, RunResult, run_program

__version__ = "1.0.0"

__all__ = [
    "Platform",
    "PlatformConfig",
    "RunResult",
    "run_program",
    "SecurityPolicy",
    "Lattice",
    "builders",
    "DiftEngine",
    "Taint",
    "ShadowTags",
    "ViolationRecord",
    "Observability",
    "MetricsRegistry",
    "Assembler",
    "Program",
    "assemble",
    "disassemble",
    "ReproError",
    "SecurityViolation",
    "ClearanceException",
    "ExecutionClearanceError",
    "DeclassificationError",
    "__version__",
]
