"""A reference RV32IM interpreter, as an independent ISS oracle.

The production ISS (:mod:`repro.vp.cpu`) is written for speed: flat
dispatch ladders, decode caching, DMI.  This module is the opposite — a
deliberately naive, dictionary-dispatched interpreter over the same
decoded form, with no cache, no TLM and no DIFT.  Its only job is to be
*obviously correct* so the two implementations can be differential-tested
against each other on random programs (:func:`compare_with_iss`).

Supported: the full RV32IM user-level subset the random-program generator
emits (ALU, mul/div, loads/stores, branches, jal/jalr, lui/auipc, ecall
exit).  Traps, CSRs and MMIO are out of scope — the oracle rejects
programs that need them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.asm.assembler import Program
from repro.vp import decode as D

_MASK = 0xFFFFFFFF


def _signed(x: int) -> int:
    return x - (1 << 32) if x >= (1 << 31) else x


class OracleUnsupported(Exception):
    """The program used a feature outside the oracle's subset."""


@dataclass
class ReferenceState:
    """Final architectural state of a reference run."""

    regs: List[int]
    memory: bytearray
    pc: int
    instructions: int
    exit_code: int
    halted: bool = True


class ReferenceCpu:
    """The naive interpreter."""

    def __init__(self, memory_size: int = 4 * 1024 * 1024):
        self.memory = bytearray(memory_size)
        self.regs = [0] * 32
        self.pc = 0
        self.instructions = 0
        self.exit_code = 0
        self.halted = False
        self._handlers = self._build_handlers()

    # ------------------------------------------------------------------ #
    # setup / run
    # ------------------------------------------------------------------ #

    def load(self, program: Program, stack_top: int) -> None:
        base = program.base
        self.memory[base:base + program.size] = program.image
        self.pc = program.entry
        self.regs[2] = stack_top

    def run(self, max_instructions: int = 1_000_000) -> ReferenceState:
        while not self.halted and self.instructions < max_instructions:
            self.step()
        return ReferenceState(
            regs=list(self.regs),
            memory=self.memory,
            pc=self.pc,
            instructions=self.instructions,
            exit_code=self.exit_code,
            halted=self.halted,
        )

    def step(self) -> None:
        if self.pc + 4 > len(self.memory) or self.pc & 3:
            raise OracleUnsupported(f"bad fetch at {self.pc:#x}")
        word = int.from_bytes(self.memory[self.pc:self.pc + 4], "little")
        op, rd, rs1, rs2, imm = D.decode(word)
        handler = self._handlers.get(op)
        if handler is None:
            raise OracleUnsupported(
                f"op {D.OP_NAMES[op]} at {self.pc:#x}")
        self.instructions += 1
        handler(rd, rs1, rs2, imm)
        self.regs[0] = 0

    # ------------------------------------------------------------------ #
    # handlers (dictionary-dispatched, one tiny closure per opcode)
    # ------------------------------------------------------------------ #

    def _build_handlers(self) -> Dict[int, object]:
        regs = self.regs

        def advance():
            self.pc += 4

        def alu(fn):
            def handler(rd, rs1, rs2, imm):
                regs[rd] = fn(regs[rs1], regs[rs2]) & _MASK
                advance()
            return handler

        def alu_imm(fn):
            def handler(rd, rs1, rs2, imm):
                regs[rd] = fn(regs[rs1], imm) & _MASK
                advance()
            return handler

        def branch(cond):
            def handler(rd, rs1, rs2, imm):
                if cond(regs[rs1], regs[rs2]):
                    self.pc = (self.pc + imm) & _MASK
                else:
                    advance()
            return handler

        def load(size, signed):
            def handler(rd, rs1, rs2, imm):
                addr = (regs[rs1] + imm) & _MASK
                if addr + size > len(self.memory):
                    raise OracleUnsupported(f"load at {addr:#x}")
                value = int.from_bytes(
                    self.memory[addr:addr + size], "little")
                if signed and value >= 1 << (8 * size - 1):
                    value -= 1 << (8 * size)
                regs[rd] = value & _MASK
                advance()
            return handler

        def store(size):
            def handler(rd, rs1, rs2, imm):
                addr = (regs[rs1] + imm) & _MASK
                if addr + size > len(self.memory):
                    raise OracleUnsupported(f"store at {addr:#x}")
                self.memory[addr:addr + size] = \
                    (regs[rs2] & ((1 << (8 * size)) - 1)).to_bytes(
                        size, "little")
                advance()
            return handler

        def jal(rd, rs1, rs2, imm):
            regs[rd] = (self.pc + 4) & _MASK
            self.pc = (self.pc + imm) & _MASK

        def jalr(rd, rs1, rs2, imm):
            target = (regs[rs1] + imm) & 0xFFFFFFFE
            regs[rd] = (self.pc + 4) & _MASK
            self.pc = target

        def lui(rd, rs1, rs2, imm):
            regs[rd] = imm & _MASK
            advance()

        def auipc(rd, rs1, rs2, imm):
            regs[rd] = (self.pc + imm) & _MASK
            advance()

        def ecall(rd, rs1, rs2, imm):
            if regs[17] != 93:
                raise OracleUnsupported("non-exit ecall")
            self.exit_code = regs[10]
            self.halted = True
            self.pc += 4

        def fence(rd, rs1, rs2, imm):
            advance()

        def div(a, b):
            sa, sb = _signed(a), _signed(b)
            if b == 0:
                return _MASK
            if sa == -(1 << 31) and sb == -1:
                return 1 << 31
            q = abs(sa) // abs(sb)
            return q if (sa < 0) == (sb < 0) else -q

        def rem(a, b):
            sa, sb = _signed(a), _signed(b)
            if b == 0:
                return a
            if sa == -(1 << 31) and sb == -1:
                return 0
            r = abs(sa) % abs(sb)
            return r if sa >= 0 else -r

        return {
            D.ADD: alu(lambda a, b: a + b),
            D.SUB: alu(lambda a, b: a - b),
            D.SLL: alu(lambda a, b: a << (b & 31)),
            D.SLT: alu(lambda a, b: int(_signed(a) < _signed(b))),
            D.SLTU: alu(lambda a, b: int(a < b)),
            D.XOR: alu(lambda a, b: a ^ b),
            D.SRL: alu(lambda a, b: a >> (b & 31)),
            D.SRA: alu(lambda a, b: _signed(a) >> (b & 31)),
            D.OR: alu(lambda a, b: a | b),
            D.AND: alu(lambda a, b: a & b),
            D.MUL: alu(lambda a, b: a * b),
            D.MULH: alu(lambda a, b: (_signed(a) * _signed(b)) >> 32),
            D.MULHSU: alu(lambda a, b: (_signed(a) * b) >> 32),
            D.MULHU: alu(lambda a, b: (a * b) >> 32),
            D.DIV: alu(div),
            D.DIVU: alu(lambda a, b: _MASK if b == 0 else a // b),
            D.REM: alu(rem),
            D.REMU: alu(lambda a, b: a if b == 0 else a % b),
            D.ADDI: alu_imm(lambda a, i: a + i),
            D.SLTI: alu_imm(lambda a, i: int(_signed(a) < i)),
            D.SLTIU: alu_imm(lambda a, i: int(a < (i & _MASK))),
            D.XORI: alu_imm(lambda a, i: a ^ (i & _MASK)),
            D.ORI: alu_imm(lambda a, i: a | (i & _MASK)),
            D.ANDI: alu_imm(lambda a, i: a & (i & _MASK)),
            D.SLLI: alu_imm(lambda a, i: a << i),
            D.SRLI: alu_imm(lambda a, i: a >> i),
            D.SRAI: alu_imm(lambda a, i: _signed(a) >> i),
            D.BEQ: branch(lambda a, b: a == b),
            D.BNE: branch(lambda a, b: a != b),
            D.BLT: branch(lambda a, b: _signed(a) < _signed(b)),
            D.BGE: branch(lambda a, b: _signed(a) >= _signed(b)),
            D.BLTU: branch(lambda a, b: a < b),
            D.BGEU: branch(lambda a, b: a >= b),
            D.LB: load(1, True),
            D.LH: load(2, True),
            D.LW: load(4, False),
            D.LBU: load(1, False),
            D.LHU: load(2, False),
            D.SB: store(1),
            D.SH: store(2),
            D.SW: store(4),
            D.JAL: jal,
            D.JALR: jalr,
            D.LUI: lui,
            D.AUIPC: auipc,
            D.ECALL: ecall,
            D.FENCE: fence,
        }


@dataclass
class OracleComparison:
    """Result of one ISS-vs-oracle differential run."""

    seed: int
    equivalent: bool
    instructions: int
    mismatch: str = ""


def compare_with_iss(seed: int, n_instructions: int = 150,
                     max_instructions: int = 200_000) -> OracleComparison:
    """Run a random program on the production ISS and the oracle."""
    from repro.asm import assemble
    from repro.verify.differential import random_program
    from repro.vp.platform import RAM_SIZE, STACK_TOP, Platform

    program = assemble(random_program(seed, n_instructions))

    platform = Platform()
    platform.load(program)
    iss_result = platform.run(max_instructions=max_instructions)

    oracle = ReferenceCpu(memory_size=RAM_SIZE)
    oracle.load(program, stack_top=STACK_TOP)
    ref = oracle.run(max_instructions=max_instructions)

    if iss_result.reason != "halt" or not ref.halted:
        return OracleComparison(seed, False, ref.instructions,
                                "one side did not halt")
    scratch = program.symbol("scratch")
    checks = [
        ("exit", iss_result.exit_code, ref.exit_code),
        ("instructions", iss_result.instructions, ref.instructions),
        ("regs", platform.cpu.regs, ref.regs),
        ("scratch", platform.memory.read_block(scratch, 256),
         bytes(ref.memory[scratch:scratch + 256])),
    ]
    for name, iss_value, ref_value in checks:
        if iss_value != ref_value:
            return OracleComparison(
                seed, False, ref.instructions,
                f"{name} differs: ISS={iss_value!r} oracle={ref_value!r}")
    return OracleComparison(seed, True, ref.instructions)
