"""Policy stress-fuzzing: randomized command traffic against a policy.

Implements the paper's future-work idea ("automatic test-case generation
... tailored for stress-testing security policies") for the immobilizer
case study: drive the firmware with random UART command sequences and
CAN traffic, and check the two properties a sound policy deployment
needs:

* **no false negatives** — every sequence containing a leaking command
  (`d` on the vulnerable build, `1`, `b`, `2`) is detected;
* **no false positives** — sequences of purely benign traffic (unknown
  command bytes, challenge serving, fixed-build dumps) never trip the
  policy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.casestudy.immobilizer import PIN, EngineEcu, baseline_policy
from repro.dift.engine import RECORD
from repro.sw import immobilizer as immo_sw
from repro.vp.config import PlatformConfig
from repro.vp.platform import Platform

#: commands that must trigger a detection under the baseline policy
LEAKING_COMMANDS = b"1b2"
#: commands that must never trigger one on the *fixed* build
BENIGN_COMMANDS = b"zxy?#!"


@dataclass
class FuzzOutcome:
    """Result of one fuzzed run."""

    seed: int
    commands: bytes
    contains_leak: bool
    detected: bool
    violation: str = ""

    @property
    def sound(self) -> bool:
        """Detection iff a leaking command was present."""
        return self.detected == self.contains_leak


def random_command_script(rng: random.Random, length: int,
                          leak_probability: float) -> bytes:
    """A random UART script mixing benign bytes and (maybe) leak commands."""
    script = bytearray()
    for __ in range(length):
        if rng.random() < leak_probability:
            script.append(rng.choice(LEAKING_COMMANDS))
        else:
            script.append(rng.choice(BENIGN_COMMANDS))
    script += b"q"
    return bytes(script)


def run_script(commands: bytes, n_challenges: int = 1,
               max_instructions: int = 2_000_000) -> FuzzOutcome:
    """Run one command script on the fixed firmware + baseline policy."""
    program = immo_sw.build(variant="fixed", n_challenges=n_challenges)
    policy = baseline_policy(program)
    platform = Platform.from_config(PlatformConfig(
        policy=policy, engine_mode=RECORD, aes_declassify_to="(LC,LI)"))
    platform.load(program)
    engine = EngineEcu(platform.can_bus, PIN, n_challenges=n_challenges)
    platform.uart.feed(commands)
    engine.start()
    result = platform.run(max_instructions=max_instructions)
    contains_leak = any(byte in LEAKING_COMMANDS for byte in commands)
    return FuzzOutcome(
        seed=-1,
        commands=commands,
        contains_leak=contains_leak,
        detected=result.detected,
        violation=str(result.violations[0]) if result.violations else "",
    )


def fuzz_immobilizer(n_runs: int = 25, seed: int = 0,
                     script_length: int = 6,
                     leak_probability: float = 0.3) -> List[FuzzOutcome]:
    """Fuzz ``n_runs`` random scripts; returns per-run outcomes.

    A sound policy+firmware pair yields ``outcome.sound`` for every run.
    """
    rng = random.Random(seed)
    outcomes = []
    for index in range(n_runs):
        script = random_command_script(rng, script_length, leak_probability)
        outcome = run_script(script)
        outcome.seed = seed + index
        outcomes.append(outcome)
    return outcomes


def summarize(outcomes: List[FuzzOutcome]) -> str:
    """Short fuzzing report."""
    total = len(outcomes)
    unsound = [o for o in outcomes if not o.sound]
    leaks = sum(1 for o in outcomes if o.contains_leak)
    lines = [
        f"fuzzed {total} command scripts "
        f"({leaks} containing leak commands)",
        f"sound: {total - len(unsound)}/{total}",
    ]
    for outcome in unsound:
        kind = ("FALSE NEGATIVE (leak not detected)"
                if outcome.contains_leak else
                "FALSE POSITIVE (benign traffic flagged)")
        lines.append(f"  {kind}: script={outcome.commands!r}")
    return "\n".join(lines)
