"""Differential testing: VP vs VP+ on randomly generated programs.

The DIFT instrumentation must be *architecturally invisible*: for any
program, the tagged platform (VP+) under a violation-free policy must
produce exactly the same register file, memory contents and instruction
count as the plain VP.  This harness generates random-but-terminating
RV32IM programs and checks that equivalence — the reproduction analogue
of the authors' coverage-guided ISS fuzzing line of work ([32] in the
paper's references) applied to the DIFT layer.

Program shape: a register-initialization prologue, ``n`` random
instructions (ALU, mul/div, shifts, loads/stores confined to a scratch
buffer, short *forward* branches — so termination is structural), and an
epilogue that folds every register into a checksum and stores the scratch
buffer state for comparison.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.asm import assemble
from repro.policy import SecurityPolicy, builders
from repro.vp.config import PlatformConfig
from repro.vp.platform import Platform

#: registers the generator plays with (avoids sp/ra and the buffer base s0)
_WORK_REGS = ["t0", "t1", "t2", "a0", "a1", "a2", "a3", "a4",
              "a5", "s1", "s2", "s3", "t3", "t4"]

_RR_OPS = ["add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or",
           "and", "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem",
           "remu"]
_RI_OPS = ["addi", "slti", "sltiu", "xori", "ori", "andi"]
_SHIFT_OPS = ["slli", "srli", "srai"]
_LOADS = ["lw", "lh", "lhu", "lb", "lbu"]
_STORES = ["sw", "sh", "sb"]
_BRANCHES = ["beq", "bne", "blt", "bge", "bltu", "bgeu"]

_BUF_SIZE = 256


def random_program(seed: int, n_instructions: int = 200) -> str:
    """Generate a terminating RV32IM torture program (assembly text)."""
    rng = random.Random(seed)
    lines: List[str] = [
        ".text",
        "_start:",
        "    la   s0, scratch",          # memory ops are buffer-relative
    ]
    # prologue: pseudo-random register init
    for i, reg in enumerate(_WORK_REGS):
        lines.append(f"    li   {reg}, {rng.getrandbits(32):#010x}")

    label_counter = 0
    pending_labels: List[tuple] = []  # (emit_at_index, label)
    body: List[str] = []

    for i in range(n_instructions):
        # emit any branch targets that land here
        for at, label in list(pending_labels):
            if at <= i:
                body.append(f"{label}:")
                pending_labels.remove((at, label))
        kind = rng.random()
        rd = rng.choice(_WORK_REGS)
        rs1 = rng.choice(_WORK_REGS)
        rs2 = rng.choice(_WORK_REGS)
        if kind < 0.45:
            body.append(f"    {rng.choice(_RR_OPS)} {rd}, {rs1}, {rs2}")
        elif kind < 0.60:
            imm = rng.randint(-2048, 2047)
            body.append(f"    {rng.choice(_RI_OPS)} {rd}, {rs1}, {imm}")
        elif kind < 0.70:
            body.append(f"    {rng.choice(_SHIFT_OPS)} {rd}, {rs1}, "
                        f"{rng.randint(0, 31)}")
        elif kind < 0.80:
            # bounded load: mask the index into the buffer, align by op
            op = rng.choice(_LOADS)
            align = {"lw": 0xFC, "lh": 0xFE, "lhu": 0xFE}.get(op, 0xFF)
            body.append(f"    andi t5, {rs1}, {align:#x}")
            body.append("    add  t5, t5, s0")
            body.append(f"    {op} {rd}, 0(t5)")
        elif kind < 0.90:
            op = rng.choice(_STORES)
            align = {"sw": 0xFC, "sh": 0xFE}.get(op, 0xFF)
            body.append(f"    andi t5, {rs1}, {align:#x}")
            body.append("    add  t5, t5, s0")
            body.append(f"    {op} {rs2}, 0(t5)")
        else:
            # short forward branch (never backward: termination is free)
            label = f"fwd{label_counter}"
            label_counter += 1
            body.append(f"    {rng.choice(_BRANCHES)} {rs1}, {rs2}, {label}")
            skip = rng.randint(1, 4)
            pending_labels.append((i + skip, label))

    # flush any labels still pending past the end
    for __, label in pending_labels:
        body.append(f"{label}:")

    lines += body
    # epilogue: fold all registers into a0 and exit with the checksum
    lines.append("    li   a0, 0")
    for reg in _WORK_REGS:
        if reg != "a0":
            lines.append(f"    add  a0, a0, {reg}")
            lines.append("    slli a0, a0, 1")
    lines += [
        "    li   a7, 93",
        "    ecall",
        ".data",
        "scratch:",
    ]
    rng2 = random.Random(seed ^ 0x5A5A)
    for __ in range(_BUF_SIZE // 4):
        lines.append(f"    .word {rng2.getrandbits(32):#010x}")
    return "\n".join(lines)


@dataclass
class DifferentialResult:
    """Outcome of one VP-vs-VP+ differential run."""

    seed: int
    equivalent: bool
    instructions: int
    mismatch: str = ""


def _benign_policy() -> SecurityPolicy:
    policy = SecurityPolicy(builders.ifp3(), default_class=builders.LC_LI,
                            name="differential")
    policy.set_execution_clearance(fetch=builders.LC_LI,
                                   branch=builders.LC_LI,
                                   mem_addr=builders.LC_LI)
    return policy


def run_differential(seed: int, n_instructions: int = 200,
                     max_instructions: int = 100_000
                     ) -> DifferentialResult:
    """Run one random program on VP and VP+ and compare all visible state."""
    source = random_program(seed, n_instructions)
    program = assemble(source)

    outcomes = []
    for policy in (None, _benign_policy()):
        platform = Platform.from_config(PlatformConfig(policy=policy))
        platform.load(program)
        result = platform.run(max_instructions=max_instructions)
        scratch = program.symbol("scratch")
        outcomes.append({
            "reason": result.reason,
            "exit": result.exit_code,
            "instructions": result.instructions,
            "regs": list(platform.cpu.regs),
            "buffer": platform.memory.read_block(scratch, _BUF_SIZE),
            "violations": len(result.violations),
        })

    vp, vp_plus = outcomes
    if vp_plus["violations"]:
        return DifferentialResult(seed, False, vp["instructions"],
                                  "unexpected policy violation on VP+")
    for key in ("reason", "exit", "instructions", "regs", "buffer"):
        if vp[key] != vp_plus[key]:
            return DifferentialResult(
                seed, False, vp["instructions"],
                f"{key} differs: VP={vp[key]!r} VP+={vp_plus[key]!r}")
    return DifferentialResult(seed, True, vp["instructions"])


def sweep(seeds, n_instructions: int = 200) -> List[DifferentialResult]:
    """Differential-test a batch of seeds; returns all results."""
    return [run_differential(seed, n_instructions) for seed in seeds]
