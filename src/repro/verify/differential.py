"""Differential testing: VP vs VP+ on randomly generated programs.

The DIFT instrumentation must be *architecturally invisible*: for any
program, the tagged platform (VP+) under a violation-free policy must
produce exactly the same register file, memory contents and instruction
count as the plain VP.  This harness generates random-but-terminating
RV32IM programs and checks that equivalence — the reproduction analogue
of the authors' coverage-guided ISS fuzzing line of work ([32] in the
paper's references) applied to the DIFT layer.

Program shape: a register-initialization prologue, ``n`` random
instructions (ALU, mul/div, shifts, loads/stores confined to a scratch
buffer, short *forward* branches, *backward* branches bounded by a
dedicated counter register — so termination stays structural — and
``lui``/``auipc`` address-formation idioms), and an epilogue that folds
every register into a checksum and stores the scratch buffer state for
comparison.

All randomness flows through an **injected** :class:`random.Random`
instance — the module-level stream is never touched, so concurrent
campaign jobs (each with their own seeds) cannot perturb each other.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.asm import assemble
from repro.policy import SecurityPolicy, builders
from repro.vp.config import PlatformConfig
from repro.vp.platform import Platform

#: registers the generator plays with.  ``sp``/``ra`` are off-limits,
#: ``s0`` is the scratch-buffer base, ``t5`` the address temporary and
#: ``t6`` the backward-branch loop counter.
_WORK_REGS = ["t0", "t1", "t2", "a0", "a1", "a2", "a3", "a4",
              "a5", "s1", "s2", "s3", "t3", "t4"]

_RR_OPS = ["add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or",
           "and", "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem",
           "remu"]
_RI_OPS = ["addi", "slti", "sltiu", "xori", "ori", "andi"]
_SHIFT_OPS = ["slli", "srli", "srai"]
_LOADS = ["lw", "lh", "lhu", "lb", "lbu"]
_STORES = ["sw", "sh", "sb"]
_BRANCHES = ["beq", "bne", "blt", "bge", "bltu", "bgeu"]

_BUF_SIZE = 256


def _emit_load(body: List[str], rng: random.Random, rd: str, rs1: str,
               form_base: bool) -> None:
    """A bounded load; with ``form_base`` the buffer base is re-formed
    in-line with the ``lui``/``%lo`` idiom instead of reusing ``s0``."""
    op = rng.choice(_LOADS)
    align = {"lw": 0xFC, "lh": 0xFE, "lhu": 0xFE}.get(op, 0xFF)
    body.append(f"    andi t5, {rs1}, {align:#x}")
    if form_base:
        base = rng.choice(_WORK_REGS)
        body.append(f"    lui  {base}, %hi(scratch)")
        body.append(f"    addi {base}, {base}, %lo(scratch)")
        body.append(f"    add  t5, t5, {base}")
    else:
        body.append("    add  t5, t5, s0")
    body.append(f"    {op} {rd}, 0(t5)")


def _emit_store(body: List[str], rng: random.Random, rs1: str,
                rs2: str) -> None:
    op = rng.choice(_STORES)
    align = {"sw": 0xFC, "sh": 0xFE}.get(op, 0xFF)
    body.append(f"    andi t5, {rs1}, {align:#x}")
    body.append("    add  t5, t5, s0")
    body.append(f"    {op} {rs2}, 0(t5)")


def _emit_bounded_loop(body: List[str], rng: random.Random,
                       label: str) -> None:
    """A backward branch bounded by the ``t6`` counter register.

    The loop body only uses straight-line ALU ops over work registers
    (never ``t6``), so the trip count — and with it termination — is
    structural, exactly like the forward-branch guarantee.
    """
    trips = rng.randint(1, 4)
    body.append(f"    li   t6, {trips}")
    body.append(f"{label}:")
    for _ in range(rng.randint(1, 3)):
        rd = rng.choice(_WORK_REGS)
        rs1 = rng.choice(_WORK_REGS)
        if rng.random() < 0.5:
            body.append(f"    {rng.choice(_RR_OPS)} {rd}, {rs1}, "
                        f"{rng.choice(_WORK_REGS)}")
        else:
            body.append(f"    {rng.choice(_RI_OPS)} {rd}, {rs1}, "
                        f"{rng.randint(-2048, 2047)}")
    body.append("    addi t6, t6, -1")
    body.append(f"    bnez t6, {label}")


def random_program(seed: int = 0, n_instructions: int = 200,
                   rng: Optional[random.Random] = None) -> str:
    """Generate a terminating RV32IM torture program (assembly text).

    Pass either a ``seed`` (a private :class:`random.Random` is built
    from it) or an explicit ``rng`` — the generator never touches the
    module-level random stream.
    """
    if rng is None:
        rng = random.Random(seed)
    lines: List[str] = [
        ".text",
        "_start:",
        "    la   s0, scratch",          # memory ops are buffer-relative
    ]
    # prologue: pseudo-random register init
    for reg in _WORK_REGS:
        lines.append(f"    li   {reg}, {rng.getrandbits(32):#010x}")

    label_counter = 0
    pending_labels: List[tuple] = []  # (emit_at_index, label)
    body: List[str] = []

    for i in range(n_instructions):
        # emit any branch targets that land here
        for at, label in list(pending_labels):
            if at <= i:
                body.append(f"{label}:")
                pending_labels.remove((at, label))
        kind = rng.random()
        rd = rng.choice(_WORK_REGS)
        rs1 = rng.choice(_WORK_REGS)
        rs2 = rng.choice(_WORK_REGS)
        if kind < 0.40:
            body.append(f"    {rng.choice(_RR_OPS)} {rd}, {rs1}, {rs2}")
        elif kind < 0.52:
            imm = rng.randint(-2048, 2047)
            body.append(f"    {rng.choice(_RI_OPS)} {rd}, {rs1}, {imm}")
        elif kind < 0.60:
            body.append(f"    {rng.choice(_SHIFT_OPS)} {rd}, {rs1}, "
                        f"{rng.randint(0, 31)}")
        elif kind < 0.66:
            # upper-immediate / pc-relative address formation
            if rng.random() < 0.5:
                body.append(f"    lui  {rd}, {rng.randint(0, 0xFFFFF):#x}")
            else:
                body.append(f"    auipc {rd}, {rng.randint(0, 0xFFF):#x}")
        elif kind < 0.76:
            _emit_load(body, rng, rd, rs1, form_base=rng.random() < 0.3)
        elif kind < 0.86:
            _emit_store(body, rng, rs1, rs2)
        elif kind < 0.93:
            # backward branch, trip count pinned by the t6 counter
            label = f"back{label_counter}"
            label_counter += 1
            _emit_bounded_loop(body, rng, label)
        else:
            # short forward branch
            label = f"fwd{label_counter}"
            label_counter += 1
            body.append(f"    {rng.choice(_BRANCHES)} {rs1}, {rs2}, {label}")
            skip = rng.randint(1, 4)
            pending_labels.append((i + skip, label))

    # flush any labels still pending past the end
    for __, label in pending_labels:
        body.append(f"{label}:")

    lines += body
    # epilogue: fold all registers into a0 and exit with the checksum
    lines.append("    li   a0, 0")
    for reg in _WORK_REGS:
        if reg != "a0":
            lines.append(f"    add  a0, a0, {reg}")
            lines.append("    slli a0, a0, 1")
    lines += [
        "    li   a7, 93",
        "    ecall",
        ".data",
        "scratch:",
    ]
    for __ in range(_BUF_SIZE // 4):
        lines.append(f"    .word {rng.getrandbits(32):#010x}")
    return "\n".join(lines)


def arch_state(platform: Platform, result) -> dict:
    """The architecturally visible machine state after a run.

    Everything a DIFT layer must leave untouched: stop disposition,
    retired-instruction count, the register file, the program counter,
    a digest of all of RAM, and the console transcript.  Tag state is
    deliberately absent — that is the *invisible* part.
    """
    return {
        "reason": result.reason,
        "exit": result.exit_code,
        "instructions": result.instructions,
        "regs": list(platform.cpu.regs),
        "pc": platform.cpu.pc,
        "ram_digest": hashlib.sha256(bytes(platform.memory.data))
        .hexdigest(),
        "console": platform.console(),
    }


@dataclass
class DifferentialResult:
    """Outcome of one VP-vs-VP+ differential run."""

    seed: int
    equivalent: bool
    instructions: int
    mismatch: str = ""


def _benign_policy() -> SecurityPolicy:
    policy = SecurityPolicy(builders.ifp3(), default_class=builders.LC_LI,
                            name="differential")
    policy.set_execution_clearance(fetch=builders.LC_LI,
                                   branch=builders.LC_LI,
                                   mem_addr=builders.LC_LI)
    return policy


def run_differential(seed: int, n_instructions: int = 200,
                     max_instructions: int = 100_000
                     ) -> DifferentialResult:
    """Run one random program on VP and VP+ and compare all visible state."""
    source = random_program(rng=random.Random(seed),
                            n_instructions=n_instructions)
    program = assemble(source)

    outcomes = []
    for policy in (None, _benign_policy()):
        platform = Platform.from_config(PlatformConfig(policy=policy))
        platform.load(program)
        result = platform.run(max_instructions=max_instructions)
        state = arch_state(platform, result)
        state["violations"] = len(result.violations)
        outcomes.append(state)

    vp, vp_plus = outcomes
    if vp_plus["violations"]:
        return DifferentialResult(seed, False, vp["instructions"],
                                  "unexpected policy violation on VP+")
    for key in ("reason", "exit", "instructions", "regs", "pc",
                "ram_digest", "console"):
        if vp[key] != vp_plus[key]:
            return DifferentialResult(
                seed, False, vp["instructions"],
                f"{key} differs: VP={vp[key]!r} VP+={vp_plus[key]!r}")
    return DifferentialResult(seed, True, vp["instructions"])


def sweep(seeds, n_instructions: int = 200) -> List[DifferentialResult]:
    """Differential-test a batch of seeds; returns all results."""
    return [run_differential(seed, n_instructions) for seed in seeds]
