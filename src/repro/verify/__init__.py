"""Verification harnesses: differential testing and policy stress fuzzing.

The paper's future-work section proposes "automatic test-case generation
methods ... tailored for stress-testing security policies".  This package
implements two such harnesses:

* :mod:`repro.verify.differential` — random-program differential testing
  between the plain VP and the DIFT-instrumented VP+ (the instrumentation
  must never change architectural results);
* :mod:`repro.verify.policy_fuzz` — randomized command-sequence fuzzing of
  the immobilizer firmware against its security policy (attack commands
  must always be detected, benign traffic never flagged);
* :mod:`repro.verify.replay` — checkpoint/replay equivalence: pausing,
  snapshotting and resuming in a fresh process must be indistinguishable
  from an uninterrupted run.
"""

from repro.verify.differential import (
    DifferentialResult,
    arch_state,
    random_program,
    run_differential,
    sweep,
)
from repro.verify.policy_fuzz import FuzzOutcome, fuzz_immobilizer
from repro.verify.reference import OracleComparison, ReferenceCpu, compare_with_iss
from repro.verify.replay import (
    REPLAY_MODES,
    ReplayComparison,
    run_replay_suite,
    verify_replay,
)

__all__ = [
    "arch_state",
    "random_program",
    "run_differential",
    "sweep",
    "DifferentialResult",
    "fuzz_immobilizer",
    "FuzzOutcome",
    "ReferenceCpu",
    "OracleComparison",
    "compare_with_iss",
    "ReplayComparison",
    "REPLAY_MODES",
    "verify_replay",
    "run_replay_suite",
]
