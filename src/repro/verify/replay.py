"""Checkpoint/replay equivalence verifier.

A snapshot is only trustworthy if resuming it is *indistinguishable*
from never having stopped.  This harness proves that property run by
run: simulate a workload straight through, then simulate it again with a
pause at instruction ``N``, snapshot, resume the snapshot **in a fresh
OS process** (so nothing can leak through interpreter state), and
compare the two final states field by field:

* the :class:`~repro.vp.platform.RunResult` (stop reason, exit code),
* the cumulative instruction count,
* the console output,
* every DIFT violation record,
* the observability metrics — minus the quarantined host-timing
  metrics (``wall``/``mips``/``seconds``), which legitimately differ.

:func:`run_replay_suite` sweeps the whole workload registry across the
plain VP and both DIFT modes.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.campaign.worker import is_timing_metric
from repro.state import diff_documents

#: engine/DIFT variants the suite sweeps: the plain VP plus the DIFT
#: modes (inline full, demand-driven, and the decoupled async monitor)
REPLAY_MODES = ("plain", "full", "demand", "decoupled")

#: suite defaults: deep enough to cross several quanta and at least one
#: sensor frame, small enough to keep the full sweep in CI budgets
DEFAULT_PAUSE_AT = 9000
DEFAULT_MAX_INSTRUCTIONS = 60000


@dataclass
class ReplayComparison:
    """Outcome of one straight-run vs snapshot-resume comparison."""

    workload: str
    mode: str                      # "plain" / "full" / "demand"
    pause_at: int
    paused_at: int                 # instruction the snapshot was taken at
    equivalent: bool
    mismatches: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        verdict = "ok" if self.equivalent else "MISMATCH"
        return (f"{self.workload:<16} {self.mode:<7} "
                f"pause@{self.paused_at:<8} {verdict}"
                + ("" if self.equivalent
                   else f" ({len(self.mismatches)} fields)"))


def final_state(platform, result) -> dict:
    """The replay-relevant final state of a finished simulation.

    ``jit.*`` metrics are quarantined alongside host timings: the trace
    cache is discarded at snapshot restore, so a resumed run legitimately
    recompiles — compilation counters are host-side execution-strategy
    state, not simulated state.
    """
    return {
        "reason": result.reason,
        "exit_code": result.exit_code,
        "instructions": platform.total_instructions,
        "console": platform.console(),
        "violations": [str(v) for v in result.violations],
        "metrics": {name: value
                    for name, value in platform.obs.snapshot().items()
                    if not is_timing_metric(name)
                    and not name.startswith("jit.")},
    }


def _make_platform(workload, mode: str, scale: str, seed: int,
                   jit: bool = False):
    from repro.obs import Observability

    dift = mode != "plain"
    return workload.make_platform(
        scale, dift, obs=Observability(),
        dift_mode=mode if dift else "full", seed=seed, jit=jit)


def _resume_child(conn, snapshot_path: str, workload_name: str, scale: str,
                  max_instructions: Optional[int],
                  jit: bool = False) -> None:
    """Fresh-process entry point: restore, finish, ship the final state."""
    from repro.bench.workloads import get_workload
    from repro.obs import Observability
    from repro.vp.platform import Platform

    try:
        workload = get_workload(workload_name)
        platform = Platform.restore(
            snapshot_path, obs=Observability(),
            program=workload.build(scale),
            externals=workload.restore_externals(scale), jit=jit)
        result = platform.run(max_instructions=max_instructions)
        conn.send(final_state(platform, result))
    except BaseException as exc:   # report, never hang the parent
        conn.send({"error": f"{type(exc).__name__}: {exc}"})
    finally:
        conn.close()


def _resume_in_fresh_process(snapshot_path: str, workload_name: str,
                             scale: str,
                             max_instructions: Optional[int],
                             jit: bool = False) -> dict:
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")
    recv, send = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_resume_child,
        args=(send, snapshot_path, workload_name, scale, max_instructions,
              jit),
        daemon=True)
    process.start()
    send.close()
    try:
        state = recv.recv()
    except EOFError:
        state = {"error": "resume process died without a result"}
    finally:
        recv.close()
        process.join(timeout=30.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)
    return state


def verify_replay(workload_name: str, mode: str = "full",
                  pause_at: int = DEFAULT_PAUSE_AT, scale: str = "quick",
                  max_instructions: Optional[int] = DEFAULT_MAX_INSTRUCTIONS,
                  seed: int = 0,
                  snapshot_path: Optional[str] = None,
                  jit: bool = False) -> ReplayComparison:
    """Straight run vs pause-snapshot-resume(fresh process), compared.

    ``snapshot_path`` keeps the intermediate snapshot file (for CI
    artifacts); when omitted, a temporary file is used and removed.
    ``jit`` runs every leg (reference, interrupted, resumed) with the
    trace compiler on — the resumed platform rebuilds its trace cache
    from scratch, so equivalence here proves the cache really is
    derived state.
    """
    from repro.bench.workloads import get_workload

    if mode not in REPLAY_MODES:
        raise ValueError(
            f"unknown replay mode {mode!r}; expected one of {REPLAY_MODES}")
    workload = get_workload(workload_name)

    reference = _make_platform(workload, mode, scale, seed, jit=jit)
    ref_result = reference.run(max_instructions=max_instructions)
    ref_state = final_state(reference, ref_result)

    interrupted = _make_platform(workload, mode, scale, seed, jit=jit)
    interrupted.run(pause_at=pause_at, max_instructions=max_instructions)
    paused_at = interrupted.total_instructions

    cleanup = snapshot_path is None
    if snapshot_path is None:
        handle = tempfile.NamedTemporaryFile(
            prefix=f"replay-{workload_name}-{mode}-", suffix=".json",
            delete=False)
        handle.close()
        snapshot_path = handle.name
    try:
        interrupted.save_snapshot(snapshot_path)
        resumed_state = _resume_in_fresh_process(
            snapshot_path, workload_name, scale, max_instructions, jit=jit)
    finally:
        if cleanup:
            try:
                os.unlink(snapshot_path)
            except OSError:
                pass

    if "error" in resumed_state:
        return ReplayComparison(
            workload=workload_name, mode=mode, pause_at=pause_at,
            paused_at=paused_at, equivalent=False,
            mismatches=[resumed_state["error"]])
    mismatches = diff_documents(ref_state, resumed_state)
    return ReplayComparison(
        workload=workload_name, mode=mode, pause_at=pause_at,
        paused_at=paused_at, equivalent=not mismatches,
        mismatches=mismatches)


def run_replay_suite(workloads: Optional[Sequence[str]] = None,
                     modes: Sequence[str] = REPLAY_MODES,
                     pause_at: int = DEFAULT_PAUSE_AT,
                     scale: str = "quick",
                     max_instructions: Optional[int]
                     = DEFAULT_MAX_INSTRUCTIONS,
                     seed: int = 0,
                     jit: bool = False) -> List[ReplayComparison]:
    """Replay-verify every registered workload under every mode."""
    from repro.bench.workloads import workload_names

    names = list(workloads) if workloads is not None else workload_names()
    return [verify_replay(name, mode, pause_at=pause_at, scale=scale,
                          max_instructions=max_instructions, seed=seed,
                          jit=jit)
            for name in names
            for mode in modes]


def format_report(results: Sequence[ReplayComparison]) -> str:
    """Human-readable suite table, one row per comparison."""
    lines = [f"{'workload':<16} {'mode':<7} {'snapshot':<15} verdict",
             "-" * 50]
    lines.extend(str(r) for r in results)
    bad = [r for r in results if not r.equivalent]
    lines.append("-" * 50)
    lines.append(f"{len(results) - len(bad)}/{len(results)} equivalent")
    for r in bad:
        for mismatch in r.mismatches[:10]:
            lines.append(f"  {r.workload}/{r.mode}: {mismatch}")
    return "\n".join(lines)
