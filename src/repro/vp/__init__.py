"""The RISC-V virtual prototype: ISS, memory, bus, peripherals, platform."""

from repro.vp.config import PlatformConfig
from repro.vp.cpu import Cpu
from repro.vp.debugger import DebugEvent, Debugger
from repro.vp.memory import Memory
from repro.vp.tracer import Tracer, TraceStep
from repro.vp.platform import (
    AES_BASE,
    CAN_BASE,
    CLINT_BASE,
    DMA_BASE,
    PLIC_BASE,
    RAM_BASE,
    RAM_SIZE,
    SENSOR_BASE,
    STACK_TOP,
    UART_BASE,
    Platform,
    RunResult,
    run_program,
)

__all__ = [
    "Cpu",
    "Memory",
    "Debugger",
    "DebugEvent",
    "Tracer",
    "TraceStep",
    "Platform",
    "PlatformConfig",
    "RunResult",
    "run_program",
    "RAM_BASE",
    "RAM_SIZE",
    "CLINT_BASE",
    "PLIC_BASE",
    "UART_BASE",
    "SENSOR_BASE",
    "CAN_BASE",
    "AES_BASE",
    "DMA_BASE",
    "STACK_TOP",
]
