"""Execution and taint tracing for policy debugging.

When a policy violation fires, the engineer wants to know *how* the tag
got there.  The tracer runs the CPU one instruction at a time (slow — use
it on the failing window, not whole benchmarks), recording for each step
the PC, disassembly, register writes and their tags, so the propagation
chain leading to a violation can be inspected.

The tracer is built on the :mod:`repro.obs` event layer: every step can
be mirrored into an :class:`~repro.obs.trace.EventTracer` ring buffer,
and any captured window exports to Chrome ``trace_event`` JSON for
visual inspection alongside the platform's quantum/TLM spans.

Typical use::

    tracer = Tracer(platform)
    trace = tracer.run(max_instructions=500)
    print(tracer.format(trace[-20:]))          # the last 20 steps
    print(tracer.format(tracer.tainted_only(trace)))
    json.dump(tracer.chrome_trace(trace), open("trace.json", "w"))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.asm.disasm import disassemble_word
from repro.obs.trace import EventTracer
from repro.vp import cpu as cpu_mod
from repro.vp.platform import Platform


@dataclass
class TraceStep:
    """One executed instruction and its architectural effects."""

    index: int
    pc: int
    word: int
    text: str
    reg_writes: List[tuple] = field(default_factory=list)  # (reg, value, tag)
    reason: str = cpu_mod.QUANTUM

    def __str__(self) -> str:
        writes = " ".join(
            f"x{reg}={value:#010x}" + (f"[{tag}]" if tag else "")
            for reg, value, tag in self.reg_writes)
        return f"{self.index:>6}  {self.pc:08x}  {self.text:<32} {writes}"

    def to_event_args(self) -> dict:
        """The structured-event payload for this step."""
        return {
            "pc": self.pc,
            "word": self.word,
            "writes": [
                {"reg": reg, "value": value,
                 **({"tag": tag} if tag else {})}
                for reg, value, tag in self.reg_writes
            ],
            "reason": self.reason,
        }


class Tracer:
    """Single-step driver capturing an instruction-level trace.

    ``events`` — an optional obs ring buffer; every step is mirrored
    into it as an instruction span (simulated-time timestamps), so the
    window survives in the platform-wide trace export.
    """

    def __init__(self, platform: Platform,
                 events: Optional[EventTracer] = None):
        self.platform = platform
        self.cpu = platform.cpu
        self.events = events

    def run(self, max_instructions: int = 10_000,
            stop_reasons: tuple = (cpu_mod.HALT, cpu_mod.EBREAK,
                                   cpu_mod.FAULT, cpu_mod.SECURITY,
                                   cpu_mod.WFI)) -> List[TraceStep]:
        """Single-step up to ``max_instructions``; returns the trace.

        Stops early on any of ``stop_reasons``.  Peripheral threads do not
        advance (the kernel is not run), so this is for *CPU-local* flow
        analysis; interrupt-driven windows should be traced by lowering
        the platform quantum instead.
        """
        cpu = self.cpu
        events = self.events
        period_us = cpu.clock_period.ps / 1e6
        base_us = self.platform.kernel.now.ps / 1e6
        trace: List[TraceStep] = []
        for index in range(max_instructions):
            pc = cpu.pc
            if not (cpu.ram_base <= pc <= cpu.ram_end - 4):
                break
            word = cpu.read_word(pc)
            before = list(cpu.regs)
            before_tags = list(cpu.tags)
            executed, reason = cpu.run(1)
            step = TraceStep(
                index=index,
                pc=pc,
                word=word,
                text=disassemble_word(word, pc),
                reason=reason,
            )
            for reg in range(32):
                if cpu.regs[reg] != before[reg] \
                        or cpu.tags[reg] != before_tags[reg]:
                    tag = None
                    if self.platform.is_dift:
                        tag = self.platform.engine.lattice.name_of(
                            cpu.tags[reg])
                    step.reg_writes.append((reg, cpu.regs[reg], tag))
            trace.append(step)
            if events is not None:
                events.complete(step.text, "insn",
                                ts=base_us + index * period_us,
                                dur=period_us, args=step.to_event_args())
            if not executed or reason in stop_reasons:
                break
        return trace

    # ------------------------------------------------------------------ #
    # filters / rendering / export
    # ------------------------------------------------------------------ #

    def tainted_only(self, trace: List[TraceStep],
                     bottom_name: Optional[str] = None) -> List[TraceStep]:
        """Keep only the steps that wrote a non-bottom tag somewhere."""
        if not self.platform.is_dift:
            return []
        lattice = self.platform.engine.lattice
        bottom = bottom_name or lattice.bottom
        return [
            step for step in trace
            if any(tag not in (None, bottom)
                   for __, __, tag in step.reg_writes)
        ]

    def chrome_trace(self, trace: List[TraceStep],
                     clock_period_us: Optional[float] = None) -> dict:
        """Export a captured window as a Chrome ``trace_event`` document."""
        period_us = (clock_period_us if clock_period_us is not None
                     else self.cpu.clock_period.ps / 1e6)
        tracer = EventTracer(capacity=max(1, len(trace)))
        for step in trace:
            tracer.complete(step.text, "insn", ts=step.index * period_us,
                            dur=period_us, args=step.to_event_args())
        return tracer.chrome_trace(process_name="vp-dift-tracer")

    @staticmethod
    def format(trace: List[TraceStep]) -> str:
        """Render a trace window as text."""
        if not trace:
            return "(empty trace)"
        return "\n".join(str(step) for step in trace)
