"""AES-128 peripheral with declassification.

The immobilizer's crypto engine (Section VI-A): software loads a key and a
plaintext block, starts the engine, and reads back the ciphertext.  The
peripheral has high clearance — secret data may flow *into* it — and it is
the one component the policy allows to **declassify**: ciphertext leaves
with a public classification so it can be sent out on the CAN bus, exactly
the paper's main declassification use case ("changing the data
classification to non-confidential after it has been encrypted").

Register map::

    0x00  CTRL    (write) 1 = start encryption
    0x04  STATUS  (read)  bit0 = done
    0x10  KEY     (write) 16 bytes
    0x20  INPUT   (write) 16 bytes
    0x30  OUTPUT  (read)  16 bytes, declassified

Inputs above the peripheral's clearance are rejected (clearance check on
every KEY/INPUT write), so an attacker cannot launder arbitrary data
through the declassifier.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.dift.engine import DiftEngine
from repro.state import decode_bytes, encode_bytes
from repro.sysc.kernel import Kernel
from repro.vp.peripherals.aes_core import encrypt_block
from repro.vp.peripherals.base import MmioPeripheral

CTRL = 0x00
STATUS = 0x04
KEY = 0x10
INPUT = 0x20
OUTPUT = 0x30

SIZE = 0x40


class AesAccelerator(MmioPeripheral):
    """Declassifying AES-128 engine."""

    def __init__(self, kernel: Kernel, name: str = "aes0",
                 engine: Optional[DiftEngine] = None,
                 declassify_to: Optional[str] = None):
        super().__init__(kernel, name, SIZE, engine)
        self.key = bytearray(16)
        self.key_tags = bytearray(16)
        self.input = bytearray(16)
        self.input_tags = bytearray(16)
        self.output = bytearray(16)
        self.output_tag = self.bottom_tag
        self.done = False
        self.blocked_writes = 0
        self.encryptions = 0
        self._declassify_to = declassify_to
        self._clearance: Optional[int] = (
            engine.policy.sink_tag(f"{name}.in") if engine else None)

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        return {
            "key": encode_bytes(self.key),
            "key_tags": encode_bytes(self.key_tags),
            "input": encode_bytes(self.input),
            "input_tags": encode_bytes(self.input_tags),
            "output": encode_bytes(self.output),
            "output_tag": self.output_tag,
            "done": self.done,
            "blocked_writes": self.blocked_writes,
            "encryptions": self.encryptions,
        }

    def load_state_dict(self, state: dict) -> None:
        self.key = bytearray(decode_bytes(state["key"]))
        self.key_tags = bytearray(decode_bytes(state["key_tags"]))
        self.input = bytearray(decode_bytes(state["input"]))
        self.input_tags = bytearray(decode_bytes(state["input_tags"]))
        self.output = bytearray(decode_bytes(state["output"]))
        self.output_tag = state["output_tag"]
        self.done = state["done"]
        self.blocked_writes = state["blocked_writes"]
        self.encryptions = state["encryptions"]

    # ------------------------------------------------------------------ #
    # register interface
    # ------------------------------------------------------------------ #

    def read(self, offset: int, size: int) -> Tuple[int, int]:
        if offset == STATUS:
            return (1 if self.done else 0), self.bottom_tag
        if OUTPUT <= offset < OUTPUT + 16:
            index = offset - OUTPUT
            value = int.from_bytes(self.output[index:index + size], "little")
            return value, self.output_tag
        return 0, self.bottom_tag

    def write_bytes(self, offset: int, data: bytes,
                    tags: Optional[bytes]) -> None:
        """Per-byte write path: the KEY register honours per-byte sinks.

        Under the Section VI-A "per-byte key classes" policy each key byte
        position *i* has its own sink ``"<name>.key<i>"``; a key byte of
        the wrong class (e.g. byte 1's class written to position 2) fails
        the flow check — this is what detects the entropy-reduction
        attack.  Without per-byte sinks the whole engine clearance
        (``"<name>.in"``) applies.
        """
        if tags is None or self.engine is None:
            tags = bytes([self.default_tag]) * len(data)
        if KEY <= offset < KEY + 16:
            for i, (byte, tag) in enumerate(zip(data, tags)):
                index = offset - KEY + i
                if not self._admit_key_byte(index, tag):
                    continue
                self.key[index] = byte
                self.key_tags[index] = tag
            return
        if INPUT <= offset < INPUT + 16:
            for i, (byte, tag) in enumerate(zip(data, tags)):
                if not self._admit(tag):
                    continue
                index = offset - INPUT + i
                self.input[index] = byte
                self.input_tags[index] = tag
            return
        super().write_bytes(offset, data, tags)

    def write(self, offset: int, size: int, value: int, tag: int) -> None:
        if offset == CTRL and value & 1:
            self._encrypt()

    def _admit_key_byte(self, index: int, tag: int) -> bool:
        """Clearance for key byte position ``index``.

        Precedence: per-byte sink ``"<name>.key<i>"`` if declared, else the
        whole-key sink ``"<name>.key"`` if declared, else the engine-wide
        input clearance.  The key port typically carries a *High-Integrity*
        clearance so untrusted data cannot influence the key, while the
        plaintext port accepts low-integrity data (challenges arrive from
        the outside world by design).
        """
        if self.engine is None:
            return True
        policy = self.engine.policy
        for sink in (f"{self.name}.key{index}", f"{self.name}.key"):
            if policy.has_sink(sink):
                if self.engine.check_sink(sink, tag):
                    return True
                self.blocked_writes += 1
                return False
        return self._admit(tag)

    def _admit(self, tag: int) -> bool:
        """Clearance check on data entering the crypto engine."""
        if self.engine is None or self._clearance is None:
            return True
        if self.engine.check_sink(f"{self.name}.in", tag):
            return True
        self.blocked_writes += 1
        return False

    def _encrypt(self) -> None:
        self.output[:] = encrypt_block(bytes(self.key), bytes(self.input))
        self.encryptions += 1
        self.done = True
        if self.engine is not None and self._declassify_to is not None:
            # trusted-HW declassification: ciphertext becomes public
            self.output_tag = self.engine.declassify(
                self.name, self._declassify_to)
        elif self.engine is not None:
            # without declassification the ciphertext keeps the LUB of
            # everything that went in (key + plaintext)
            self.output_tag = self.engine.lub_bytes(
                bytes(self.key_tags) + bytes(self.input_tags))
        else:
            self.output_tag = 0
