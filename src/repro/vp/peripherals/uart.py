"""UART peripheral with DIFT clearance on the TX path.

Register map (local offsets)::

    0x00  TXDATA   (write) transmit one byte; clearance-checked
    0x04  RXDATA   (read)  pop one received byte (0 if empty)
    0x08  STATUS   (read)  bit0 = rx available, bit1 = tx ready (always 1)
    0x0C  IRQ_EN   (rw)    bit0 = raise IRQ on rx available

The TX register is a *sink* in the security policy (name
``"<name>.tx"``): writing a byte whose tag may not flow to the sink's
clearance raises a :class:`ClearanceException` (or records it and drops the
byte in record mode) — this is how the immobilizer case study catches the
UART memory-dump leak (Section VI-A).

Host-side helpers: :meth:`feed` pushes bytes into the RX queue with the
classification the policy assigns to source ``"<name>.rx"`` (e.g. LI serial
input in the code-injection experiment), and :attr:`tx_log` collects
successfully transmitted bytes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.dift.engine import DiftEngine
from repro.state import decode_bytes, encode_bytes
from repro.sysc.kernel import Kernel
from repro.vp.peripherals.base import MmioPeripheral

TXDATA = 0x00
RXDATA = 0x04
STATUS = 0x08
IRQ_EN = 0x0C

SIZE = 0x10


class Uart(MmioPeripheral):
    """A polled/interrupt-capable UART."""

    def __init__(self, kernel: Kernel, name: str = "uart0",
                 engine: Optional[DiftEngine] = None,
                 raise_irq: Optional[Callable[[], None]] = None):
        super().__init__(kernel, name, SIZE, engine)
        self._rx: List[Tuple[int, int]] = []
        self.tx_log = bytearray()
        self.tx_tags: List[int] = []
        self.blocked_tx = 0
        self.irq_en = 0
        self._raise_irq = raise_irq
        self._rx_tag: Optional[int] = None  # resolved lazily from policy

    # ------------------------------------------------------------------ #
    # host side
    # ------------------------------------------------------------------ #

    def feed(self, data: bytes, tag: Optional[int] = None) -> None:
        """Queue received bytes, classified per the policy source map."""
        if tag is None:
            if self._rx_tag is None:
                self._rx_tag = (self.engine.policy.source_tag(f"{self.name}.rx")
                                if self.engine else 0)
            tag = self._rx_tag
        for byte in data:
            self._rx.append((byte, tag))
        if self._rx and self.irq_en & 1 and self._raise_irq:
            self._raise_irq()

    def text(self) -> str:
        """Transmitted bytes as text (lossy decode for reports)."""
        return self.tx_log.decode("ascii", errors="replace")

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        return {
            "rx": [[byte, tag] for byte, tag in self._rx],
            "tx_log": encode_bytes(self.tx_log),
            "tx_tags": list(self.tx_tags),
            "blocked_tx": self.blocked_tx,
            "irq_en": self.irq_en,
        }

    def load_state_dict(self, state: dict) -> None:
        self._rx = [(byte, tag) for byte, tag in state["rx"]]
        self.tx_log = bytearray(decode_bytes(state["tx_log"]))
        self.tx_tags = list(state["tx_tags"])
        self.blocked_tx = state["blocked_tx"]
        self.irq_en = state["irq_en"]

    # ------------------------------------------------------------------ #
    # register interface
    # ------------------------------------------------------------------ #

    def read(self, offset: int, size: int) -> Tuple[int, int]:
        if offset == RXDATA:
            if self._rx:
                value, tag = self._rx.pop(0)
                return value, tag
            return 0, self.bottom_tag
        if offset == STATUS:
            return (1 if self._rx else 0) | 0x2, self.bottom_tag
        if offset == IRQ_EN:
            return self.irq_en, self.bottom_tag
        return 0, self.bottom_tag

    def write(self, offset: int, size: int, value: int, tag: int) -> None:
        if offset == TXDATA:
            byte = value & 0xFF
            if self.engine is not None:
                allowed = self.engine.check_sink(
                    f"{self.name}.tx", tag, context=f"byte={byte:#04x}")
                if not allowed:
                    self.blocked_tx += 1
                    return
            self.tx_log.append(byte)
            self.tx_tags.append(tag)
        elif offset == IRQ_EN:
            self.irq_en = value & 1
            if self._rx and self.irq_en and self._raise_irq:
                self._raise_irq()
