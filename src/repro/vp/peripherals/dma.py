"""DMA controller: tag-preserving memory-to-memory copies.

DMA is one of the "fine-grained HW/SW interactions" the paper argues
source-level DIFT cannot model (Section I): data moves between memory
regions *without any CPU instruction executing*, so a CPU-only taint
engine loses track of it.  This controller copies through TLM transactions
whose payloads carry per-byte tags, so security classes survive the copy.

Register map::

    0x00  SRC    (rw) source bus address
    0x04  DST    (rw) destination bus address
    0x08  LEN    (rw) bytes to copy
    0x0C  CTRL   (write) bit0 = start, bit1 = merge tags
    0x10  STATUS (read) bit0 = busy, bit1 = done

CTRL bit 1 selects **merge mode**: destination tags become
``lub(dst, src)`` instead of being overwritten, so a DMA gather into a
partially classified buffer cannot *launder* taint away — the write
payloads carry ``merge_tags`` and the memory folds them with the
engine's LUB (at C speed for the uniform-tag bursts DMA produces, see
``Memory.set_lub_table``).  Data bytes are always copied verbatim; the
bit only changes tag semantics and is latched per transfer at start.

The copy runs in a SystemC thread, transferring a burst per bus cycle and
raising its interrupt on completion.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.dift.engine import DiftEngine
from repro.sysc.kernel import Kernel
from repro.sysc.time import SimTime
from repro.sysc.tlm import GenericPayload, Router
from repro.vp.peripherals.base import MmioPeripheral

SRC = 0x00
DST = 0x04
LEN = 0x08
CTRL = 0x0C
STATUS = 0x10

SIZE = 0x14

#: bytes moved per bus burst
BURST = 64


class DmaController(MmioPeripheral):
    """A single-channel memory-to-memory DMA engine."""

    def __init__(self, kernel: Kernel, name: str = "dma0",
                 engine: Optional[DiftEngine] = None,
                 router: Optional[Router] = None,
                 raise_irq: Optional[Callable[[], None]] = None,
                 burst_delay: SimTime = SimTime.ns(100)):
        super().__init__(kernel, name, SIZE, engine)
        self.router = router
        self._raise_irq = raise_irq
        self.burst_delay = burst_delay
        self.src = 0
        self.dst = 0
        self.len = 0
        self.busy = False
        self.done = False
        self.merge = False
        self.transfers_completed = 0
        self._start_pending = False
        # transfer cursor, held as instance state (not generator locals)
        # so a checkpoint taken mid-transfer can resume the copy
        self._cur_src = 0
        self._cur_dst = 0
        self._remaining = 0
        self._start_event = self.make_event("start")
        self.sc_thread(self.run, "run")

    def run(self):
        """SystemC thread performing the copies burst by burst.

        A pending-start flag makes the handshake robust against the
        classic lost-wakeup: software may hit CTRL before this thread has
        reached its first wait.

        The loop is restore-safe: every yield returns control to the loop
        top, which re-reads the instance-attribute cursor — so a fresh
        generator primed during snapshot restore (suspended side-effect
        free at the guard) resumes a mid-transfer copy exactly where the
        checkpointed one stopped.
        """
        while True:
            if self.kernel.restoring:
                yield None
                continue
            if self.busy:
                if self._remaining > 0:
                    if self._burst():
                        yield self.burst_delay
                        continue
                    self._remaining = 0  # bus error: abandon the transfer
                self.busy = False
                self.done = True
                self.transfers_completed += 1
                if self._raise_irq:
                    self._raise_irq()
                continue
            if not self._start_pending:
                yield self._start_event
                continue
            self._start_pending = False
            self.busy = True
            self.done = False
            self._cur_src = self.src
            self._cur_dst = self.dst
            self._remaining = self.len

    def _burst(self) -> bool:
        """Copy one burst at the cursor; False on a bus error."""
        chunk = min(self._remaining, BURST)
        tagged = self.engine is not None
        read = GenericPayload.make_read(self._cur_src, chunk, tagged=tagged)
        self.router.b_transport(read, SimTime(0))
        if not read.ok():
            return False
        write = GenericPayload.make_write(
            self._cur_dst, bytes(read.data),
            bytes(read.tags) if read.tags is not None else None,
            merge_tags=self.merge and read.tags is not None)
        self.router.b_transport(write, SimTime(0))
        if not write.ok():
            return False
        self._cur_src += chunk
        self._cur_dst += chunk
        self._remaining -= chunk
        return True

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        return {
            "src": self.src,
            "dst": self.dst,
            "len": self.len,
            "busy": self.busy,
            "done": self.done,
            "merge": self.merge,
            "transfers_completed": self.transfers_completed,
            "start_pending": self._start_pending,
            "cur_src": self._cur_src,
            "cur_dst": self._cur_dst,
            "remaining": self._remaining,
        }

    def load_state_dict(self, state: dict) -> None:
        self.src = state["src"]
        self.dst = state["dst"]
        self.len = state["len"]
        self.busy = state["busy"]
        self.done = state["done"]
        self.merge = state.get("merge", False)
        self.transfers_completed = state["transfers_completed"]
        self._start_pending = state["start_pending"]
        self._cur_src = state["cur_src"]
        self._cur_dst = state["cur_dst"]
        self._remaining = state["remaining"]

    # ------------------------------------------------------------------ #
    # register interface
    # ------------------------------------------------------------------ #

    def read(self, offset: int, size: int) -> Tuple[int, int]:
        if offset == SRC:
            return self.src, self.bottom_tag
        if offset == DST:
            return self.dst, self.bottom_tag
        if offset == LEN:
            return self.len, self.bottom_tag
        if offset == STATUS:
            return (1 if self.busy else 0) | (2 if self.done else 0), \
                self.bottom_tag
        return 0, self.bottom_tag

    def write(self, offset: int, size: int, value: int, tag: int) -> None:
        if offset == SRC:
            self.src = value
        elif offset == DST:
            self.dst = value
        elif offset == LEN:
            self.len = value
        elif offset == CTRL and value & 1 and not self.busy:
            self.merge = bool(value & 2)
            self._start_pending = True
            self._start_event.notify()
