"""DMA controller: tag-preserving memory-to-memory copies.

DMA is one of the "fine-grained HW/SW interactions" the paper argues
source-level DIFT cannot model (Section I): data moves between memory
regions *without any CPU instruction executing*, so a CPU-only taint
engine loses track of it.  This controller copies through TLM transactions
whose payloads carry per-byte tags, so security classes survive the copy.

Register map::

    0x00  SRC    (rw) source bus address
    0x04  DST    (rw) destination bus address
    0x08  LEN    (rw) bytes to copy
    0x0C  CTRL   (write) 1 = start
    0x10  STATUS (read) bit0 = busy, bit1 = done

The copy runs in a SystemC thread, transferring a burst per bus cycle and
raising its interrupt on completion.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.dift.engine import DiftEngine
from repro.sysc.kernel import Kernel
from repro.sysc.time import SimTime
from repro.sysc.tlm import GenericPayload, Router
from repro.vp.peripherals.base import MmioPeripheral

SRC = 0x00
DST = 0x04
LEN = 0x08
CTRL = 0x0C
STATUS = 0x10

SIZE = 0x14

#: bytes moved per bus burst
BURST = 64


class DmaController(MmioPeripheral):
    """A single-channel memory-to-memory DMA engine."""

    def __init__(self, kernel: Kernel, name: str = "dma0",
                 engine: Optional[DiftEngine] = None,
                 router: Optional[Router] = None,
                 raise_irq: Optional[Callable[[], None]] = None,
                 burst_delay: SimTime = SimTime.ns(100)):
        super().__init__(kernel, name, SIZE, engine)
        self.router = router
        self._raise_irq = raise_irq
        self.burst_delay = burst_delay
        self.src = 0
        self.dst = 0
        self.len = 0
        self.busy = False
        self.done = False
        self.transfers_completed = 0
        self._start_pending = False
        self._start_event = self.make_event("start")
        self.sc_thread(self.run, "run")

    def run(self):
        """SystemC thread performing the copies burst by burst.

        A pending-start flag makes the handshake robust against the
        classic lost-wakeup: software may hit CTRL before this thread has
        reached its first wait.
        """
        while True:
            while not self._start_pending:
                yield self._start_event
            self._start_pending = False
            self.busy = True
            self.done = False
            remaining = self.len
            src = self.src
            dst = self.dst
            tagged = self.engine is not None
            while remaining > 0:
                chunk = min(remaining, BURST)
                read = GenericPayload.make_read(src, chunk, tagged=tagged)
                self.router.b_transport(read, SimTime(0))
                if not read.ok():
                    break
                write = GenericPayload.make_write(
                    dst, bytes(read.data),
                    bytes(read.tags) if read.tags is not None else None)
                self.router.b_transport(write, SimTime(0))
                if not write.ok():
                    break
                src += chunk
                dst += chunk
                remaining -= chunk
                yield self.burst_delay
            self.busy = False
            self.done = True
            self.transfers_completed += 1
            if self._raise_irq:
                self._raise_irq()

    # ------------------------------------------------------------------ #
    # register interface
    # ------------------------------------------------------------------ #

    def read(self, offset: int, size: int) -> Tuple[int, int]:
        if offset == SRC:
            return self.src, self.bottom_tag
        if offset == DST:
            return self.dst, self.bottom_tag
        if offset == LEN:
            return self.len, self.bottom_tag
        if offset == STATUS:
            return (1 if self.busy else 0) | (2 if self.done else 0), \
                self.bottom_tag
        return 0, self.bottom_tag

    def write(self, offset: int, size: int, value: int, tag: int) -> None:
        if offset == SRC:
            self.src = value
        elif offset == DST:
            self.dst = value
        elif offset == LEN:
            self.len = value
        elif offset == CTRL and value & 1 and not self.busy:
            self._start_pending = True
            self._start_event.notify()
