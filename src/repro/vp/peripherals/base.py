"""Common base class for memory-mapped peripherals.

Translates TLM payloads (with per-byte security tags) into simple
``read(offset, size)`` / ``write(offset, size, value, tag)`` register
callbacks, so each peripheral model stays close to the paper's Fig. 4
``transport`` function without repeating the payload plumbing.

Tag convention: a multi-byte register read returns one tag for the whole
value (every byte of the response carries it); a multi-byte write merges
the incoming byte tags with LUB before the register callback sees it —
the ``from_bytes`` rule of the paper's Taint type.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.dift.engine import DiftEngine
from repro.sysc.kernel import Kernel
from repro.sysc.module import Module
from repro.sysc.time import SimTime
from repro.sysc.tlm import OK, GenericPayload, TargetSocket


class MmioPeripheral(Module):
    """A TLM target exposing word/byte registers at local offsets."""

    def __init__(self, kernel: Kernel, name: str, size: int,
                 engine: Optional[DiftEngine] = None,
                 access_delay: SimTime = SimTime.ns(20)):
        super().__init__(kernel, name)
        self.size = size
        self.engine = engine
        self.access_delay = access_delay
        self.tsock = TargetSocket(f"{name}.tsock")
        self.tsock.register_b_transport(self.transport)
        # observability; None keeps transport free of metric lookups
        self._obs_tracer = None
        self._m_reads = None
        self._m_writes = None

    def attach_obs(self, obs) -> None:
        """Count register accesses / emit TLM spans into ``obs``."""
        self._obs_tracer = obs.tracer
        self._m_reads = obs.metrics.counter(f"periph.{self.name}.reads")
        self._m_writes = obs.metrics.counter(f"periph.{self.name}.writes")

    @property
    def bottom_tag(self) -> int:
        return self.engine.bottom_tag if self.engine else 0

    @property
    def default_tag(self) -> int:
        return self.engine.default_tag if self.engine else 0

    def transport(self, trans: GenericPayload, delay: SimTime) -> SimTime:
        offset = trans.address
        length = trans.length
        if offset < 0 or offset + length > self.size:
            trans.response = "address-error"
            return delay
        if trans.is_read():
            value, tag = self.read(offset, length)
            trans.data[:] = (value & ((1 << (8 * length)) - 1)).to_bytes(
                length, "little")
            if trans.tags is not None:
                trans.tags[:] = bytes([tag]) * length
        elif trans.is_write():
            self.write_bytes(offset, bytes(trans.data),
                             bytes(trans.tags) if trans.tags is not None
                             else None)
        else:
            trans.response = "command-error"
            return delay
        trans.response = OK
        if self._m_reads is not None:
            (self._m_reads if trans.is_read() else self._m_writes).inc()
            if self._obs_tracer is not None:
                self._obs_tracer.complete(
                    f"{self.name}.{'rd' if trans.is_read() else 'wr'}",
                    "tlm", ts=self._obs_tracer.clock(),
                    dur=self.access_delay.ps / 1e6,
                    args={"offset": offset, "length": length})
        return delay + self.access_delay

    # -- register interface; peripherals override these ------------------- #

    def write_bytes(self, offset: int, data: bytes,
                    tags: Optional[bytes]) -> None:
        """Byte-level write hook.

        The default folds the byte tags with LUB (``from_bytes`` rule) and
        calls :meth:`write`.  Peripherals that need *per-byte* tag
        semantics (e.g. the AES key register under a per-byte key policy)
        override this instead.
        """
        value = int.from_bytes(data, "little")
        if tags is not None and self.engine is not None:
            tag = self.engine.lub_bytes(tags)
        else:
            tag = self.default_tag
        self.write(offset, len(data), value, tag)

    def read(self, offset: int, size: int) -> Tuple[int, int]:
        """Read ``size`` bytes at ``offset``; returns (value, tag)."""
        raise NotImplementedError

    def write(self, offset: int, size: int, value: int, tag: int) -> None:
        """Write ``size`` bytes at ``offset`` carrying security ``tag``."""
        raise NotImplementedError
