"""Peripheral models for the VP platform."""

from repro.vp.peripherals.aes import AesAccelerator
from repro.vp.peripherals.base import MmioPeripheral
from repro.vp.peripherals.can import CanBus, CanController, CanFrame
from repro.vp.peripherals.clint import Clint
from repro.vp.peripherals.dma import DmaController
from repro.vp.peripherals.plic import (
    IRQ_CAN,
    IRQ_DMA,
    IRQ_SENSOR,
    IRQ_UART,
    Plic,
)
from repro.vp.peripherals.sensor import SimpleSensor
from repro.vp.peripherals.terminal import Terminal
from repro.vp.peripherals.uart import Uart

__all__ = [
    "MmioPeripheral",
    "Uart",
    "Terminal",
    "SimpleSensor",
    "AesAccelerator",
    "CanBus",
    "CanController",
    "CanFrame",
    "DmaController",
    "Clint",
    "Plic",
    "IRQ_UART",
    "IRQ_SENSOR",
    "IRQ_CAN",
    "IRQ_DMA",
]
