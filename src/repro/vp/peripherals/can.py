"""CAN controller peripheral + a two-node CAN bus channel.

The immobilizer case study (Section VI-A) communicates with the engine ECU
"by reading and writing to a CAN peripheral".  :class:`CanController` is
the memory-mapped controller on the VP; :class:`CanBus` is the channel
connecting it to other nodes — in the case study a behavioural engine-ECU
model registered as a plain Python callback.

Frames carry up to 8 data bytes plus per-byte security tags, so information
flow is tracked *across* the bus: a confidential byte written to the TX
buffer is caught by the clearance check on send (sink ``"<name>.tx"``),
and bytes received from the wire are classified per the policy source
``"<name>.rx"`` unless the sending node supplies explicit tags.

Register map::

    0x00  STATUS  (read)  bit0 = rx frame available, bit1 = tx ready
    0x04  TX_LEN  (rw)    length of the next tx frame (0..8)
    0x08  RX_LEN  (read)  length of the head rx frame
    0x0C  TX_SEND (write) 1 = transmit the tx buffer
    0x10  RX_POP  (write) 1 = drop the head rx frame
    0x20  TX buffer (8 bytes, write)
    0x40  RX buffer (8 bytes, read: head frame)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.dift.engine import DiftEngine
from repro.state import decode_bytes, encode_bytes
from repro.sysc.kernel import Kernel
from repro.vp.peripherals.base import MmioPeripheral

STATUS = 0x00
TX_LEN = 0x04
RX_LEN = 0x08
TX_SEND = 0x0C
RX_POP = 0x10
TX_BUF = 0x20
RX_BUF = 0x40

SIZE = 0x48
MAX_FRAME = 8


@dataclass
class CanFrame:
    """One CAN frame with per-byte security tags."""

    data: bytes
    tags: bytes
    sender: str = ""

    def __post_init__(self) -> None:
        if len(self.data) > MAX_FRAME:
            raise ValueError("CAN frame longer than 8 bytes")
        # empty tags = "classify at the receiver" (external/untagged node)
        if self.tags and len(self.tags) != len(self.data):
            raise ValueError("CAN frame tag/data length mismatch")

    def to_state(self) -> dict:
        return {"data": encode_bytes(self.data),
                "tags": encode_bytes(self.tags),
                "sender": self.sender}

    @classmethod
    def from_state(cls, state: dict) -> "CanFrame":
        return cls(decode_bytes(state["data"]), decode_bytes(state["tags"]),
                   state["sender"])


class CanBus:
    """A broadcast channel between CAN nodes.

    Nodes are callables ``node(frame)``; every transmitted frame is
    delivered to all nodes except the sender (identified by name).
    """

    def __init__(self) -> None:
        self._nodes: List[Tuple[str, Callable[[CanFrame], None]]] = []
        self.frames_transferred = 0

    def attach(self, name: str, deliver: Callable[[CanFrame], None]) -> None:
        self._nodes.append((name, deliver))

    def transmit(self, frame: CanFrame) -> None:
        self.frames_transferred += 1
        for name, deliver in self._nodes:
            if name != frame.sender:
                deliver(frame)

    def state_dict(self) -> dict:
        """Nodes re-attach at construction time; only the counter is
        bus-owned state."""
        return {"frames_transferred": self.frames_transferred}

    def load_state_dict(self, state: dict) -> None:
        self.frames_transferred = state["frames_transferred"]


class CanController(MmioPeripheral):
    """Memory-mapped CAN controller with DIFT-checked TX."""

    def __init__(self, kernel: Kernel, name: str = "can0",
                 engine: Optional[DiftEngine] = None,
                 bus: Optional[CanBus] = None,
                 raise_irq: Optional[Callable[[], None]] = None):
        super().__init__(kernel, name, SIZE, engine)
        self.bus = bus
        self._raise_irq = raise_irq
        self.tx_buf = bytearray(MAX_FRAME)
        self.tx_tags = bytearray(MAX_FRAME)
        self.tx_len = 0
        self._rx: List[CanFrame] = []
        self.sent: List[CanFrame] = []
        self.blocked_tx = 0
        if bus is not None:
            bus.attach(name, self.receive)

    # ------------------------------------------------------------------ #
    # wire side
    # ------------------------------------------------------------------ #

    def receive(self, frame: CanFrame) -> None:
        """Deliver a frame from the bus into the RX queue."""
        if self.engine is not None and not frame.tags:
            tag = self.engine.policy.source_tag(f"{self.name}.rx")
            frame = CanFrame(frame.data, bytes([tag]) * len(frame.data),
                             frame.sender)
        self._rx.append(frame)
        if self._raise_irq:
            self._raise_irq()

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        return {
            "tx_buf": encode_bytes(self.tx_buf),
            "tx_tags": encode_bytes(self.tx_tags),
            "tx_len": self.tx_len,
            "rx": [frame.to_state() for frame in self._rx],
            "sent": [frame.to_state() for frame in self.sent],
            "blocked_tx": self.blocked_tx,
        }

    def load_state_dict(self, state: dict) -> None:
        self.tx_buf = bytearray(decode_bytes(state["tx_buf"]))
        self.tx_tags = bytearray(decode_bytes(state["tx_tags"]))
        self.tx_len = state["tx_len"]
        self._rx = [CanFrame.from_state(f) for f in state["rx"]]
        self.sent = [CanFrame.from_state(f) for f in state["sent"]]
        self.blocked_tx = state["blocked_tx"]

    # ------------------------------------------------------------------ #
    # register interface
    # ------------------------------------------------------------------ #

    def read(self, offset: int, size: int) -> Tuple[int, int]:
        if offset == STATUS:
            return (1 if self._rx else 0) | 0x2, self.bottom_tag
        if offset == TX_LEN:
            return self.tx_len, self.bottom_tag
        if offset == RX_LEN:
            return (len(self._rx[0].data) if self._rx else 0), self.bottom_tag
        if RX_BUF <= offset < RX_BUF + MAX_FRAME:
            if not self._rx:
                return 0, self.bottom_tag
            frame = self._rx[0]
            index = offset - RX_BUF
            window = frame.data[index:index + size]
            value = int.from_bytes(window.ljust(size, b"\0"), "little")
            if self.engine is not None and frame.tags:
                tag = self.engine.lub_bytes(frame.tags[index:index + size]
                                            or b"\0")
            else:
                tag = self.bottom_tag
            return value, tag
        return 0, self.bottom_tag

    def write(self, offset: int, size: int, value: int, tag: int) -> None:
        if offset == TX_LEN:
            self.tx_len = min(value, MAX_FRAME)
        elif offset == TX_SEND:
            if value & 1:
                self._send()
        elif offset == RX_POP:
            if value & 1 and self._rx:
                self._rx.pop(0)
        elif TX_BUF <= offset < TX_BUF + MAX_FRAME:
            index = offset - TX_BUF
            data = value.to_bytes(size, "little")
            self.tx_buf[index:index + size] = data
            self.tx_tags[index:index + size] = bytes([tag]) * size

    def _send(self) -> None:
        length = self.tx_len
        data = bytes(self.tx_buf[:length])
        tags = bytes(self.tx_tags[:length])
        if self.engine is not None:
            for i, tag in enumerate(tags):
                if not self.engine.check_sink(
                        f"{self.name}.tx", tag, context=f"frame byte {i}"):
                    self.blocked_tx += 1
                    return
        frame = CanFrame(data, tags, sender=self.name)
        self.sent.append(frame)
        if self.bus is not None:
            self.bus.transmit(frame)
