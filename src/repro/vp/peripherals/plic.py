"""Platform-level interrupt controller (simplified).

Peripherals raise numbered interrupt lines; software enables lines, claims
the highest-priority pending one, and completes it.  The controller drives
the CPU's ``MEIP`` line.  Priorities are fixed: lower line number = higher
priority (sufficient for the VP's handful of sources).

Register map::

    0x00  PENDING (read)   bitmask of pending lines
    0x04  ENABLE  (rw)     bitmask of enabled lines
    0x08  CLAIM   (read: claim highest-priority pending enabled line,
                   write: complete — re-evaluates the MEIP level)
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.dift.engine import DiftEngine
from repro.sysc.kernel import Kernel
from repro.vp.csr import MIP_MEIP
from repro.vp.peripherals.base import MmioPeripheral

PENDING = 0x00
ENABLE = 0x04
CLAIM = 0x08

SIZE = 0x0C

#: interrupt line numbers used by the reference platform
IRQ_UART = 1
IRQ_SENSOR = 2   # matches the paper's Fig. 4 ("IRQ NUMBER" 2)
IRQ_CAN = 3
IRQ_DMA = 4


class Plic(MmioPeripheral):
    """Claim/complete external interrupt controller."""

    def __init__(self, kernel: Kernel, name: str = "plic0",
                 engine: Optional[DiftEngine] = None, cpu=None):
        super().__init__(kernel, name, SIZE, engine)
        self.cpu = cpu
        self.pending = 0
        self.enable = 0
        self.claims = 0

    def raise_irq(self, line: int) -> None:
        """Peripheral-side: assert interrupt ``line``."""
        if not 1 <= line < 32:
            raise ValueError(f"bad interrupt line {line}")
        self.pending |= 1 << line
        self._update()

    def irq_hook(self, line: int):
        """A zero-argument callback asserting ``line`` (for peripherals)."""
        return lambda: self.raise_irq(line)

    def _update(self) -> None:
        if self.cpu is not None:
            self.cpu.set_irq(MIP_MEIP, bool(self.pending & self.enable))

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        return {"pending": self.pending, "enable": self.enable,
                "claims": self.claims}

    def load_state_dict(self, state: dict) -> None:
        self.pending = state["pending"]
        self.enable = state["enable"]
        self.claims = state["claims"]

    # ------------------------------------------------------------------ #
    # register interface
    # ------------------------------------------------------------------ #

    def read(self, offset: int, size: int) -> Tuple[int, int]:
        if offset == PENDING:
            return self.pending, self.bottom_tag
        if offset == ENABLE:
            return self.enable, self.bottom_tag
        if offset == CLAIM:
            active = self.pending & self.enable
            if not active:
                return 0, self.bottom_tag
            line = (active & -active).bit_length() - 1
            self.pending &= ~(1 << line)
            self.claims += 1
            self._update()
            return line, self.bottom_tag
        return 0, self.bottom_tag

    def write(self, offset: int, size: int, value: int, tag: int) -> None:
        if offset == ENABLE:
            self.enable = value
            self._update()
        elif offset == CLAIM:
            # completion: level re-evaluation only (edge-style sources)
            self._update()
