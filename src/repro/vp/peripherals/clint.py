"""Core-local interruptor: machine timer (mtime / mtimecmp).

Simplified CLINT with a 1 MHz time base derived from simulation time.
Writing ``mtimecmp`` (re)programs the timer thread, which drives the CPU's
``MTIP`` line — the pre-emption source for the FreeRTOS-style benchmark.

Register map::

    0x00  MTIMECMP_LO (rw)
    0x04  MTIMECMP_HI (rw)
    0x08  MTIME_LO    (read)
    0x0C  MTIME_HI    (read)
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.dift.engine import DiftEngine
from repro.sysc.kernel import Kernel
from repro.sysc.time import SimTime
from repro.vp.csr import MIP_MTIP
from repro.vp.peripherals.base import MmioPeripheral

MTIMECMP_LO = 0x00
MTIMECMP_HI = 0x04
MTIME_LO = 0x08
MTIME_HI = 0x0C

SIZE = 0x10

#: time-base: one mtime tick per microsecond of simulated time
TICK_PS = 1_000_000


class Clint(MmioPeripheral):
    """Machine-timer block driving the CPU's MTIP line."""

    def __init__(self, kernel: Kernel, name: str = "clint0",
                 engine: Optional[DiftEngine] = None, cpu=None):
        super().__init__(kernel, name, SIZE, engine)
        self.cpu = cpu
        self.mtimecmp = 0xFFFFFFFFFFFFFFFF
        self._wake = self.make_event("wake")
        self.sc_thread(self.run, "run")

    def mtime(self) -> int:
        """Current mtime ticks (1 MHz from simulation time)."""
        return self.kernel.now.ps // TICK_PS

    def run(self):
        """Timer thread: assert MTIP whenever mtime >= mtimecmp.

        Both yields return straight to the loop top, which re-derives
        everything from ``mtimecmp`` and simulation time — so a fresh
        generator primed during snapshot restore suspends at the guard
        without perturbing the restored MIP level or wake schedule.
        """
        while True:
            if self.kernel.restoring:
                yield None
                continue
            now = self.mtime()
            if self.mtimecmp <= now:
                if self.cpu is not None:
                    self.cpu.set_irq(MIP_MTIP, True)
                # wait until software reprograms the comparator
                yield self._wake
            else:
                if self.cpu is not None:
                    self.cpu.set_irq(MIP_MTIP, False)
                # sleep until the programmed deadline (or a reprogram)
                self._wake.notify(SimTime((self.mtimecmp - now) * TICK_PS))
                yield self._wake

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """mtime is derived from simulation time; only the comparator is
        CLINT-owned state."""
        return {"mtimecmp": self.mtimecmp}

    def load_state_dict(self, state: dict) -> None:
        self.mtimecmp = state["mtimecmp"]

    # ------------------------------------------------------------------ #
    # register interface
    # ------------------------------------------------------------------ #

    def read(self, offset: int, size: int) -> Tuple[int, int]:
        if offset == MTIME_LO:
            return self.mtime() & 0xFFFFFFFF, self.bottom_tag
        if offset == MTIME_HI:
            return (self.mtime() >> 32) & 0xFFFFFFFF, self.bottom_tag
        if offset == MTIMECMP_LO:
            return self.mtimecmp & 0xFFFFFFFF, self.bottom_tag
        if offset == MTIMECMP_HI:
            return (self.mtimecmp >> 32) & 0xFFFFFFFF, self.bottom_tag
        return 0, self.bottom_tag

    def write(self, offset: int, size: int, value: int, tag: int) -> None:
        if offset == MTIMECMP_LO:
            self.mtimecmp = (self.mtimecmp & 0xFFFFFFFF00000000) | value
        elif offset == MTIMECMP_HI:
            self.mtimecmp = (self.mtimecmp & 0xFFFFFFFF) | (value << 32)
        else:
            return
        # MTIP is combinational in mtimecmp (as in the real CLINT): update
        # the level immediately so software does not see a stale pending
        # bit right after reprogramming the comparator.
        if self.cpu is not None:
            self.cpu.set_irq(MIP_MTIP, self.mtimecmp <= self.mtime())
        self._wake.notify()
