"""Host-side terminal attached to a UART.

A convenience view over the UART's byte stream: line-buffered capture,
optional live echo to a host callback, and a scripted-input helper for
interactive-style guests ("send this line when the guest prints that
prompt").  Purely host-side — the guest only ever sees the UART.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.vp.peripherals.uart import Uart


class Terminal:
    """Line-oriented capture + scripted interaction over a UART."""

    def __init__(self, uart: Uart,
                 echo: Optional[Callable[[str], None]] = None):
        self.uart = uart
        self.echo = echo
        self._consumed = 0
        self._partial = ""
        self.lines: List[str] = []
        self._expectations: List[Tuple[str, bytes]] = []

    # ------------------------------------------------------------------ #
    # capture
    # ------------------------------------------------------------------ #

    def poll(self) -> List[str]:
        """Consume new UART output; returns any newly completed lines."""
        data = self.uart.tx_log[self._consumed:]
        self._consumed = len(self.uart.tx_log)
        if not data:
            return []
        text = data.decode("ascii", errors="replace")
        if self.echo:
            self.echo(text)
        new_lines: List[str] = []
        self._partial += text
        while "\n" in self._partial:
            line, self._partial = self._partial.split("\n", 1)
            self.lines.append(line)
            new_lines.append(line)
        self._check_expectations()
        return new_lines

    @property
    def pending(self) -> str:
        """Output received since the last newline."""
        return self._partial

    def transcript(self) -> str:
        """Everything captured so far, partial last line included."""
        return "\n".join(self.lines + ([self._partial] if self._partial
                                       else []))

    # ------------------------------------------------------------------ #
    # scripted interaction
    # ------------------------------------------------------------------ #

    def expect(self, prompt: str, reply: bytes) -> None:
        """When ``prompt`` appears in the output, feed ``reply`` to RX.

        Expectations fire at most once each, in registration order.
        """
        self._expectations.append((prompt, reply))

    def _check_expectations(self) -> None:
        if not self._expectations:
            return
        haystack = self.transcript()
        while self._expectations:
            prompt, reply = self._expectations[0]
            if prompt not in haystack:
                break
            self._expectations.pop(0)
            self.uart.feed(reply)

    def __repr__(self) -> str:
        return (f"Terminal(lines={len(self.lines)}, "
                f"pending={len(self._partial)})")
