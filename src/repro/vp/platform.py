"""The reference SoC platform: CPU + bus + memory + peripherals.

:class:`Platform` assembles the virtual prototype the paper evaluates on:
a RISC-V core, TLM interconnect, RAM, and the peripheral set (UART,
sensor, CAN, AES, DMA, CLINT timer, PLIC).  Constructed without a policy
it is the baseline **VP**; constructed with a :class:`SecurityPolicy` it
becomes **VP+**, the DIFT-instrumented platform.

Memory map::

    0x0000_0000  RAM (default 4 MiB)
    0x0200_0000  CLINT   (machine timer)
    0x0C00_0000  PLIC    (external interrupt controller)
    0x1000_0000  UART0
    0x1000_1000  Sensor
    0x1000_2000  CAN0
    0x1000_3000  AES0
    0x1000_4000  DMA0

Guest convention: ``ecall`` with ``a7 == 93`` exits the simulation with
exit code ``a0`` (other ecalls trap to ``mtvec`` if installed).
"""

from __future__ import annotations

import time as _time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import state as state_mod
from repro.asm.assembler import Program
from repro.dift.engine import RECORD, DiftEngine, ViolationRecord
from repro.dift.events import (
    EV_SINK,
    EV_TAINT,
    EV_TAINT_FILL,
    EventWriter,
    make_header,
)
from repro.dift.monitor import DiftMonitor
from repro.policy.policy import SecurityPolicy
from repro.state import SnapshotError
from repro.sysc.event import Event
from repro.sysc.kernel import Kernel
from repro.sysc.time import SimTime
from repro.sysc.tlm import Router
from repro.vp import cpu as cpu_mod
from repro.vp.config import PlatformConfig
from repro.vp.cpu import Cpu
from repro.vp.jit import DEFAULT_THRESHOLD, JitEngine
from repro.vp.loader import load_program
from repro.vp.memory import Memory
from repro.vp.peripherals import (
    IRQ_CAN,
    IRQ_DMA,
    IRQ_SENSOR,
    IRQ_UART,
    AesAccelerator,
    CanBus,
    CanController,
    Clint,
    DmaController,
    Plic,
    SimpleSensor,
    Uart,
)

RAM_BASE = 0x0000_0000
RAM_SIZE = 4 * 1024 * 1024
CLINT_BASE = 0x0200_0000
PLIC_BASE = 0x0C00_0000
UART_BASE = 0x1000_0000
SENSOR_BASE = 0x1000_1000
CAN_BASE = 0x1000_2000
AES_BASE = 0x1000_3000
DMA_BASE = 0x1000_4000

#: initial stack pointer (16 bytes below the RAM top, 16-byte aligned)
STACK_TOP = RAM_BASE + RAM_SIZE - 16

SYS_EXIT = 93


@dataclass
class RunResult:
    """Outcome of one :meth:`Platform.run`."""

    instructions: int
    host_seconds: float
    sim_time: SimTime
    reason: str
    exit_code: int
    violations: List[ViolationRecord] = field(default_factory=list)

    @property
    def mips(self) -> float:
        """Host-measured million instructions per second."""
        if self.host_seconds <= 0:
            return 0.0
        return self.instructions / self.host_seconds / 1e6

    @property
    def detected(self) -> bool:
        """Did the DIFT engine flag at least one violation?"""
        return bool(self.violations)

    def __str__(self) -> str:
        return (f"RunResult(instr={self.instructions}, "
                f"host={self.host_seconds:.3f}s, mips={self.mips:.2f}, "
                f"reason={self.reason!r}, exit={self.exit_code}, "
                f"violations={len(self.violations)})")


def _default_ecall(cpu: Cpu) -> Optional[str]:
    """Bare-metal environment calls: a7=93 exits with code a0."""
    if cpu.regs[17] == SYS_EXIT:
        cpu.exit_code = cpu.regs[10]
        return "halt"
    return None


class Platform:
    """A complete VP (plain) or VP+ (DIFT) instance.

    Construct with a :class:`~repro.vp.config.PlatformConfig` (either
    positionally or via :meth:`from_config`); the historical keyword
    form ``Platform(policy=..., quantum=...)`` still works but emits a
    :class:`DeprecationWarning`.
    """

    def __init__(self, config: Optional[PlatformConfig] = None, **kwargs):
        if config is not None and kwargs:
            raise TypeError(
                "pass either a PlatformConfig or keyword arguments, "
                "not both")
        if config is None:
            if kwargs:
                warnings.warn(
                    "Platform(**kwargs) is deprecated; build a "
                    "PlatformConfig and call Platform.from_config(cfg)",
                    DeprecationWarning, stacklevel=2)
            config = PlatformConfig(**kwargs)
        self.config = config
        policy = config.policy
        obs = config.obs

        self.kernel = Kernel()
        self.engine: Optional[DiftEngine] = (
            DiftEngine(policy, mode=config.engine_mode) if policy else None)
        self.router = Router("bus")
        tagged = self.engine is not None
        default_tag = self.engine.default_tag if self.engine else 0
        self.dift_mode = config.dift_mode

        self.memory = Memory(self.kernel, "ram", config.ram_size,
                             tagged=tagged, default_tag=default_tag)
        if tagged:
            # enable merge-tags writes (DMA merge mode, peripherals that
            # fold into a destination instead of overwriting it)
            self.memory.set_lub_table(self.engine.lub,
                                      self.engine.lub_translation)
        self.cpu = Cpu(self.kernel, "cpu0", dift=self.engine,
                       clock_period=config.clock_period,
                       quantum=config.quantum,
                       dift_mode=config.dift_mode)
        self.cpu.isock.bind(self.router)  # router duck-types a target socket
        self.cpu.attach_ram(RAM_BASE, self.memory.data, self.memory.tags)
        self.cpu.ecall_handler = _default_ecall

        decoupled = config.dift_mode in (cpu_mod.DIFT_DECOUPLED,
                                         cpu_mod.DIFT_DECOUPLED_STRICT)
        if decoupled and self.engine is None:
            raise ValueError(
                f"dift_mode={config.dift_mode!r} requires a security policy")
        if config.record_events is not None:
            if self.engine is None:
                raise ValueError(
                    "record_events requires a security policy (the stream "
                    "header embeds it for offline re-analysis)")
            if config.engine_mode != RECORD:
                raise ValueError(
                    "record_events requires engine_mode='record': a "
                    "raise-mode engine aborts the faulting quantum "
                    "mid-instruction and would truncate the stream before "
                    "its final packets")
            if config.dift_mode == cpu_mod.DIFT_DEMAND:
                raise ValueError(
                    "record_events is incompatible with dift_mode='demand' "
                    "(both claim the memory taint listener); record with "
                    "'full' or a decoupled mode")

        self.monitor: Optional[DiftMonitor] = None
        self._recorder: Optional[EventWriter] = None
        if config.record_events is not None:
            header = make_header(config, extra={"ram_base": RAM_BASE})
            self._recorder = EventWriter(config.record_events, header)
        if decoupled:
            strict = config.dift_mode == cpu_mod.DIFT_DECOUPLED_STRICT
            self.monitor = DiftMonitor(self.engine, self.memory.tags,
                                       ram_base=RAM_BASE, strict=strict,
                                       live=True, recorder=self._recorder)
            self.cpu.attach_monitor(self.monitor, strict=strict)
            # The monitor is the sole ISS-side tag writer; host-side tag
            # writes (loader classification, DMA) order through it —
            # wired before load() so the loader's writes are captured.
            self.memory.set_taint_listener(self.monitor.note_taint)
        elif self._recorder is not None:
            # inline-full recording: the CPU appends packets to a plain
            # queue that _cpu_process pumps into the writer per quantum
            self.cpu.set_event_queue([])
            self.memory.set_taint_listener(self._record_taint)
        if self._recorder is not None:
            self.engine.set_check_recorder(self._record_check)

        self.jit: Optional[JitEngine] = None
        # The trace compiler folds tag propagation into compiled blocks,
        # which neither emits packets nor routes tag writes through the
        # monitor — recording and decoupled runs silently fall back to
        # the interpreter (same machine, host-side strategy only).
        if config.jit and not decoupled and config.record_events is None:
            # True → default threshold; an int sets it directly (bool is
            # an int subclass, so the isinstance order matters)
            if isinstance(config.jit, bool):
                threshold = DEFAULT_THRESHOLD
            else:
                threshold = int(config.jit)
            self.jit = JitEngine(self.cpu, threshold=threshold)
            self.cpu.attach_jit(self.jit)
            # host-side writes into RAM (DMA, loader, debugger pokes)
            # bypass the CPU store paths; the listener keeps compiled
            # code pages coherent with them
            self.memory.set_write_listener(self._on_memory_write)

        live = self.cpu.liveness
        if live is not None:
            if self.engine.default_tag != self.engine.bottom_tag:
                # memory starts (and stays) classified above bottom: the
                # machine can never be clean, so demand == full by fiat
                live.disable(
                    "default memory classification is not lattice bottom")
            else:
                # wired before load() so the loader's region
                # classification marks its dirty pages automatically
                self.memory.set_taint_listener(self._on_memory_taint)

        self.plic = Plic(self.kernel, "plic0", self.engine, cpu=self.cpu)
        self.clint = Clint(self.kernel, "clint0", self.engine, cpu=self.cpu)
        self.uart = Uart(self.kernel, "uart0", self.engine,
                         raise_irq=self.plic.irq_hook(IRQ_UART))
        self.sensor = SimpleSensor(self.kernel, "sensor0", self.engine,
                                   raise_irq=self.plic.irq_hook(IRQ_SENSOR),
                                   period=config.sensor_period,
                                   seed=config.seed)
        self.can_bus = CanBus()
        self.can = CanController(self.kernel, "can0", self.engine,
                                 bus=self.can_bus,
                                 raise_irq=self.plic.irq_hook(IRQ_CAN))
        self.aes = AesAccelerator(self.kernel, "aes0", self.engine,
                                  declassify_to=config.aes_declassify_to)
        self.dma = DmaController(self.kernel, "dma0", self.engine,
                                 router=self.router,
                                 raise_irq=self.plic.irq_hook(IRQ_DMA))

        self.router.map_target(RAM_BASE, config.ram_size,
                               self.memory.tsock, "ram")
        self.router.map_target(CLINT_BASE, 0x10, self.clint.tsock, "clint0")
        self.router.map_target(PLIC_BASE, 0x0C, self.plic.tsock, "plic0")
        self.router.map_target(UART_BASE, 0x10, self.uart.tsock, "uart0")
        self.router.map_target(SENSOR_BASE, 0x90, self.sensor.tsock,
                               "sensor0")
        self.router.map_target(CAN_BASE, 0x48, self.can.tsock, "can0")
        self.router.map_target(AES_BASE, 0x40, self.aes.tsock, "aes0")
        self.router.map_target(DMA_BASE, 0x14, self.dma.tsock, "dma0")

        self.program: Optional[Program] = None
        self.stop_reason = ""
        self._instr_budget: Optional[int] = None
        self.total_instructions = 0
        # pause-at-quantum-boundary support (snapshotting): pausing at a
        # natural boundary keeps quantum sizes — and hence the timed
        # interleaving — identical to an uninterrupted run, which a
        # max_instructions budget stop (min(quantum, remaining)) would
        # not.
        self._pause_at: Optional[int] = None
        self._paused = False
        self._await_irq = False
        self._stop_pending = ""
        self._resume_event = Event("platform.resume")
        self._resume_event._bind(self.kernel)
        # non-kernel behavioural models riding on the platform (e.g. the
        # case study's engine-side ECU); registered so snapshots can
        # carry their state
        self._externals: Dict[str, object] = {}
        self._cpu_proc = self.kernel.spawn(self._cpu_process,
                                           name="cpu0.process")

        self.obs = obs
        if obs is not None:
            self._attach_obs(obs)

    @classmethod
    def from_config(cls, config: PlatformConfig) -> "Platform":
        """Build a platform from a :class:`PlatformConfig` (preferred)."""
        return cls(config)

    # ------------------------------------------------------------------ #
    # externals
    # ------------------------------------------------------------------ #

    def register_external(self, name: str, obj) -> None:
        """Attach a non-kernel model (snapshotted alongside the VP)."""
        if name in self._externals:
            raise ValueError(f"external {name!r} already registered")
        self._externals[name] = obj

    def external(self, name: str):
        try:
            return self._externals[name]
        except KeyError:
            raise KeyError(f"no external registered as {name!r}") from None

    def _attach_obs(self, obs) -> None:
        """Wire an :class:`~repro.obs.Observability` through every layer."""
        if obs.tracer is not None:
            obs.tracer.clock = lambda: self.kernel.now.ps / 1e6
        self.cpu.attach_obs(obs)
        self.router.attach_metrics(obs.metrics)
        for peripheral in (self.uart, self.sensor, self.can, self.aes,
                           self.dma, self.clint, self.plic):
            peripheral.attach_obs(obs)
        metrics = obs.metrics
        # Derived metrics are lazy gauges: evaluated at snapshot time
        # only, so they may scan megabytes of shadow state for free
        # during simulation.
        metrics.set_gauge_fn("sim.time_us",
                             lambda: self.kernel.now.ps / 1e6)
        metrics.set_gauge_fn("sim.delta_cycles",
                             lambda: self.kernel.delta_count)
        metrics.set_gauge_fn("tlm.transactions_routed",
                             lambda: self.router.transactions_routed)
        # Every retired instruction is one decode-cache lookup.  Misses
        # are counted by the CPU itself (a cleared or partially warmed
        # cache makes them diverge from the entry count, so ``len`` is
        # not a substitute); hits fall out of instret minus misses.
        metrics.set_gauge_fn("cpu.decode_cache.entries",
                             lambda: len(self.cpu._decode_cache))
        metrics.set_gauge_fn("cpu.decode_cache.misses",
                             lambda: self.cpu.decode_misses)
        metrics.set_gauge_fn(
            "cpu.decode_cache.hits",
            lambda: max(0, self.cpu.csr.instret
                        - self.cpu.decode_misses))
        jit = self.jit
        if jit is not None:
            metrics.set_gauge_fn("jit.blocks.compiled",
                                 lambda: jit.stats.compiled)
            metrics.set_gauge_fn("jit.blocks.live",
                                 lambda: jit.live_blocks)
            metrics.set_gauge_fn("jit.invalidations",
                                 lambda: jit.stats.invalidated_blocks)
            metrics.set_gauge_fn("jit.flushes",
                                 lambda: jit.stats.flushes)
            metrics.set_gauge_fn("jit.exec.blocks",
                                 lambda: jit.stats.block_execs)
            metrics.set_gauge_fn("jit.exec.trace_instructions",
                                 lambda: jit.stats.trace_instructions)
            metrics.set_gauge_fn("jit.exec.trace_ratio",
                                 lambda: jit.trace_ratio())
        engine = self.engine
        if engine is not None:
            engine.attach_obs(obs)
            metrics.set_gauge_fn("engine.checks_performed",
                                 lambda: engine.checks_performed)
            metrics.set_gauge_fn("engine.violations",
                                 lambda: engine.violation_count)
            metrics.set_gauge_fn("taint.tagged_regs", self._tagged_regs)
            metrics.set_gauge_fn("taint.tagged_mem_bytes",
                                 self._tagged_mem_bytes)
            metrics.set_gauge_fn("taint.mem_spread_ratio",
                                 self._mem_spread_ratio)
            live = self.cpu.liveness
            if live is not None:
                metrics.set_gauge_fn("dift.fast_steps",
                                     lambda: live.fast_steps)
                metrics.set_gauge_fn("dift.slow_steps",
                                     lambda: live.slow_steps)
                metrics.set_gauge_fn("dift.reclaims",
                                     lambda: live.reclaims)
                metrics.set_gauge_fn("dift.reclaim_skipped_pages",
                                     lambda: live.reclaim_skipped_pages)
                metrics.set_gauge_fn("shadow.tainted_pages",
                                     self._tainted_pages)
                # level-1 summary cardinality over the flat RAM shadow:
                # pages the liveness layer currently tracks as
                # maybe-tainted (the live analogue of ShadowTags'
                # materialized-page count)
                metrics.set_gauge_fn("shadow.materialized_pages",
                                     lambda: len(live.dirty_pages))
        monitor = self.monitor
        if monitor is not None:
            monitor.attach_obs(obs)
            metrics.set_gauge_fn("monitor.events_consumed",
                                 lambda: monitor.events_consumed)
            metrics.set_gauge_fn("monitor.drains",
                                 lambda: monitor.drains)
            metrics.set_gauge_fn("monitor.mmio_syncs",
                                 lambda: monitor.mmio_syncs)

    def _on_memory_write(self, offset: int, length: int) -> None:
        """Memory write listener: invalidate compiled code the write hits."""
        self.jit.notify_write(offset, length)

    def _record_taint(self, offset: int, length: int, tags) -> None:
        """Memory taint listener (inline recording): queue the tag write
        so an offline monitor replays loader/DMA classification."""
        queue = self.cpu._emitq
        if isinstance(tags, int):
            queue.append((EV_TAINT_FILL, offset, length, tags))
        else:
            queue.append((EV_TAINT, offset, bytes(tags)))

    def _record_check(self, tag, required, unit, context, pc) -> None:
        """Engine check recorder: queue every peripheral clearance check
        (pass or fail) so offline re-analysis re-performs it."""
        self.cpu._emitq.append((EV_SINK, unit, tag, required, context, pc))

    def _on_memory_taint(self, offset: int, length: int, tags) -> None:
        """Memory taint listener (demand mode): filter bottom-only writes."""
        live = self.cpu.liveness
        if live is None:
            return
        bottom = self.engine.bottom_tag
        if isinstance(tags, int):
            if tags == bottom:
                return
        elif tags.count(bottom) == len(tags):
            return
        live.note_memory_taint(offset, length)

    # -- taint-spread gauges (snapshot-time scans of the shadow state) --- #

    def _tagged_regs(self) -> int:
        bottom = self.engine.bottom_tag
        # in decoupled modes the monitor owns the register tags (the
        # core's own tag file stays at bottom)
        tags = (self.monitor.reg_tags if self.monitor is not None
                else self.cpu.tags)
        return sum(1 for tag in tags if tag != bottom)

    def _tagged_mem_bytes(self) -> int:
        # Spread is measured against the policy *default* classification:
        # bytes the guest (or a peripheral) re-tagged away from it.
        tags = self.memory.tags
        if tags is None:
            return 0
        return len(tags) - tags.count(self.engine.default_tag)

    def _mem_spread_ratio(self) -> float:
        tags = self.memory.tags
        if not tags:
            return 0.0
        return self._tagged_mem_bytes() / len(tags)

    def _tainted_pages(self) -> int:
        """RAM pages holding at least one above-bottom tag (lazy scan)."""
        tags = self.memory.tags
        if tags is None:
            return 0
        bottom = self.engine.bottom_tag
        size = len(tags)
        count = 0
        for start in range(0, size, 4096):
            end = min(start + 4096, size)
            if tags.count(bottom, start, end) != end - start:
                count += 1
        return count

    def detach_cpu_process(self) -> None:
        """Remove the CPU from kernel scheduling (external drivers only).

        Used by the debugger/tracer, which step the CPU themselves but
        still advance the kernel so peripheral threads stay in sync.
        """
        self._cpu_proc.terminated = True

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #

    @property
    def is_dift(self) -> bool:
        return self.engine is not None

    def load(self, program: Program) -> None:
        """Load a guest binary and reset the CPU to its entry point."""
        load_program(self.memory, program, RAM_BASE, self.engine)
        self.program = program
        self.cpu.reset(program.entry)
        self.cpu.regs[2] = STACK_TOP  # sp
        if self.jit is not None:
            self.jit.flush("load")

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def _cpu_process(self):
        # Loop-top-safe by construction: every loop-carried decision
        # lives on instance attributes and every yield re-enters at the
        # loop top, so a snapshot-restored (freshly primed) body behaves
        # identically to the original suspended generator.
        cpu = self.cpu
        while True:
            if self.kernel.restoring:
                # snapshot priming: park side-effect-free at the first
                # yield; the recorded schedule is re-applied afterwards
                yield None
                continue
            if self._stop_pending:
                # a quantum ended in halt/ebreak/fault/security *after*
                # yielding its executed time; stop now
                self.stop_reason = self._stop_pending
                self._stop_pending = ""
                self.kernel.stop()
                return
            if self._await_irq:
                # cleared before the yield so a restored waiter does not
                # re-enter this branch on wake-up
                self._await_irq = False
                yield cpu.irq_event
                continue
            if cpu.halted:
                self.stop_reason = cpu_mod.HALT
                self.kernel.stop()
                return
            if (self._pause_at is not None
                    and self.total_instructions >= self._pause_at):
                # natural-boundary pause (snapshot point): stop the
                # kernel and park on a never-notified event; quantum
                # sizes stay untouched so a resumed run interleaves
                # exactly like an uninterrupted one
                self._paused = True
                self.stop_reason = "paused"
                self.kernel.stop()
                yield self._resume_event
                self._paused = False
                continue
            quantum = cpu.quantum
            if self._instr_budget is not None:
                remaining = self._instr_budget - self.total_instructions
                if remaining <= 0:
                    self.stop_reason = "budget"
                    self.kernel.stop()
                    return
                quantum = min(quantum, remaining)
            executed, reason = cpu.run(quantum)
            self.total_instructions += executed
            if self.monitor is not None:
                # quantum-end synchronization: the monitor consumes the
                # whole FIFO here, so async violations surface at this
                # boundary (the core may have run ahead architecturally)
                self.monitor.drain()
                if self.monitor.stopped:
                    reason = cpu_mod.SECURITY
            elif self._recorder is not None:
                queue = cpu._emitq
                if queue:
                    self._recorder.write_many(queue)
                    del queue[:]
            if reason == cpu_mod.WFI:
                self._await_irq = True
            elif reason in (cpu_mod.HALT, cpu_mod.EBREAK, cpu_mod.FAULT,
                            cpu_mod.SECURITY):
                self._stop_pending = reason
            if executed:
                yield cpu.clock_period * executed
            elif reason == cpu_mod.QUANTUM:
                # nothing ran and nothing to wait for: avoid spinning
                yield cpu.clock_period

    def run(self, max_instructions: Optional[int] = None,
            max_time: Optional[SimTime] = None,
            pause_at: Optional[int] = None) -> RunResult:
        """Simulate until the guest stops (or a budget is exhausted).

        ``pause_at`` stops the run (``reason == "paused"``) at the first
        quantum boundary where at least ``pause_at`` instructions have
        retired — the replay-exact snapshot point.  A paused platform
        may be snapshotted and/or continued with another :meth:`run`.
        """
        self._instr_budget = max_instructions
        self._pause_at = pause_at
        if self._paused:
            # continue a paused simulation: the parked CPU process must
            # run before the processes stop() put back, or evaluation
            # order diverges from an uninterrupted run
            self.stop_reason = ""
            self.kernel.clear_stop()
            self.kernel.make_runnable_front(self._cpu_proc)
        started = _time.perf_counter()
        self.kernel.run(until=max_time)
        host = _time.perf_counter() - started
        if not self.stop_reason:
            self.stop_reason = "time-limit" if max_time else "idle"
        if self.stop_reason in (cpu_mod.HALT, cpu_mod.EBREAK,
                                cpu_mod.FAULT, cpu_mod.SECURITY):
            # the guest cannot continue: seal the stream now.  Paused /
            # budget / time-limit stops leave it open for further runs
            # (call finish_recording() explicitly when done).
            self.finish_recording()
        if self.obs is not None:
            metrics = self.obs.metrics
            metrics.gauge("run.wall_seconds").set(host)
            metrics.gauge("run.instructions").set(self.total_instructions)
            if host > 0:
                metrics.gauge("run.mips").set(
                    self.total_instructions / host / 1e6)
        return RunResult(
            instructions=self.total_instructions,
            host_seconds=host,
            sim_time=self.kernel.now,
            reason=self.stop_reason,
            exit_code=self.cpu.exit_code,
            violations=list(self.engine.violations) if self.engine else [],
        )

    def finish_recording(self) -> Optional[str]:
        """Flush pending events and seal the recorded stream (idempotent).

        Writes the terminal ``EV_END`` packet, making the stream a valid
        ``repro.dift.events/1`` artifact.  Called automatically when a
        run ends terminally (halt/ebreak/fault/security); call it
        explicitly after a budget, pause or time-limit stop once no
        further quanta will run.  Returns the stream path, or ``None``
        if this platform is not recording.
        """
        recorder = self._recorder
        if recorder is None:
            return None
        if not recorder.closed:
            if self.monitor is not None:
                self.monitor.drain()
            else:
                queue = self.cpu._emitq
                if queue:
                    recorder.write_many(queue)
                    del queue[:]
            recorder.close()
        return recorder.path

    # ------------------------------------------------------------------ #
    # checkpoint / restore (repro.state)
    # ------------------------------------------------------------------ #

    def _snapshot_events(self):
        """Every event that can appear in the kernel schedule."""
        return (self.cpu.irq_event, self.clint._wake,
                self.dma._start_event, self._resume_event)

    def snapshot_document(self) -> dict:
        """Compose the full ``repro.snapshot/1`` document.

        Callable when the kernel is not mid-``run()`` — before the first
        run (warm-start boot snapshots), after a ``pause_at`` stop, or
        after any completed run.
        """
        if self.monitor is not None:
            # quantum boundaries leave the FIFO empty by construction;
            # drain defensively so the snapshot never carries pending
            # packets (an empty drain leaves no bookkeeping trace, so
            # replay determinism is preserved)
            self.monitor.drain()
        kernel_state = self.kernel.state_dict(self._snapshot_events())
        # A paused CPU parks on the private resume event.  Record it at
        # the *front* of the runnable list instead: on resume it must
        # execute before the processes stop() put back, exactly as the
        # uninterrupted schedule would have run it.
        waiters = kernel_state["event_waiters"]
        parked = waiters.pop(self._resume_event.name, [])
        kernel_state["runnable"] = parked + kernel_state["runnable"]
        modules = {
            "platform": {
                "total_instructions": self.total_instructions,
                "stop_reason": ("" if self.stop_reason == "paused"
                                else self.stop_reason),
                "await_irq": self._await_irq,
                "stop_pending": self._stop_pending,
            },
            "cpu": self.cpu.state_dict(),
            "memory": self.memory.state_dict(),
            "router": self.router.state_dict(),
            "uart0": self.uart.state_dict(),
            "sensor0": self.sensor.state_dict(),
            "can_bus": self.can_bus.state_dict(),
            "can0": self.can.state_dict(),
            "aes0": self.aes.state_dict(),
            "dma0": self.dma.state_dict(),
            "plic0": self.plic.state_dict(),
            "clint0": self.clint.state_dict(),
        }
        if self.engine is not None:
            modules["engine"] = self.engine.state_dict()
        if self.monitor is not None:
            modules["monitor"] = self.monitor.state_dict()
        live = self.cpu.liveness
        if live is not None:
            modules["liveness"] = live.state_dict()
        document = {
            "schema": state_mod.SNAPSHOT_SCHEMA,
            "config": self.config.to_json(),
            "tag_names": (list(self.config.policy.lattice.classes)
                          if self.engine is not None else None),
            "kernel": kernel_state,
            "modules": modules,
            "externals": {name: obj.state_dict()
                          for name, obj in sorted(self._externals.items())},
        }
        if self.obs is not None:
            document["obs"] = self.obs.metrics.state_dict()
        return document

    def save_snapshot(self, path: str) -> str:
        """Write the current simulation state as a snapshot file."""
        return state_mod.save_document(path, self.snapshot_document())

    def restore_snapshot(self, document: dict,
                         program: Optional[Program] = None) -> None:
        """Load a snapshot into this (identically-configured) platform.

        Module state is restored first, then the kernel schedule is
        rebuilt (priming restarted process bodies against the restored
        state).  ``program`` re-attaches the guest image for symbol
        lookups only — RAM content always comes from the snapshot.
        """
        state_mod.check_schema(document)
        tag_names = document.get("tag_names")
        current = (list(self.config.policy.lattice.classes)
                   if self.engine is not None else None)
        if tag_names != current:
            raise SnapshotError(
                f"snapshot tag numbering {tag_names!r} does not match "
                f"this platform's policy classes {current!r}")
        modules = document["modules"]
        if ("engine" in modules) != (self.engine is not None):
            raise SnapshotError(
                "snapshot and platform disagree on DIFT instrumentation")
        if ("monitor" in modules) != (self.monitor is not None):
            raise SnapshotError(
                "snapshot and platform disagree on decoupled monitoring "
                "(dift_mode mismatch)")
        self.cpu.load_state_dict(modules["cpu"])
        self.memory.load_state_dict(modules["memory"])
        self.router.load_state_dict(modules["router"])
        self.uart.load_state_dict(modules["uart0"])
        self.sensor.load_state_dict(modules["sensor0"])
        self.can_bus.load_state_dict(modules["can_bus"])
        self.can.load_state_dict(modules["can0"])
        self.aes.load_state_dict(modules["aes0"])
        self.dma.load_state_dict(modules["dma0"])
        self.plic.load_state_dict(modules["plic0"])
        self.clint.load_state_dict(modules["clint0"])
        if self.engine is not None:
            self.engine.load_state_dict(modules["engine"])
        if self.monitor is not None:
            # after memory: the monitor's live store aliases memory.tags,
            # which the memory restore refilled in place
            self.monitor.load_state_dict(modules["monitor"])
        live = self.cpu.liveness
        if live is not None and "liveness" in modules:
            live.load_state_dict(modules["liveness"])
        for name, external_state in document.get("externals", {}).items():
            if name not in self._externals:
                raise SnapshotError(
                    f"snapshot carries external {name!r} but nothing is "
                    "registered under that name (attach externals before "
                    "restoring)")
            self._externals[name].load_state_dict(external_state)
        plat = modules["platform"]
        self.total_instructions = plat["total_instructions"]
        self.stop_reason = plat["stop_reason"]
        self._await_irq = plat["await_irq"]
        self._stop_pending = plat["stop_pending"]
        self._instr_budget = None
        self._pause_at = None
        self._paused = False
        self.kernel.load_state_dict(document["kernel"],
                                    self._snapshot_events())
        if document.get("obs") is not None and self.obs is not None:
            self.obs.metrics.load_state_dict(document["obs"])
        self.program = program
        if self.jit is not None:
            # the trace cache is host-side derived state and never
            # travels in snapshots; rebuild from scratch so a restored
            # run re-profiles against the restored RAM image
            self.jit.flush("restore")

    @classmethod
    def restore(cls, source, obs=None, program: Optional[Program] = None,
                externals=None, jit=False) -> "Platform":
        """Rebuild a platform from a snapshot file (or loaded document).

        The embedded :class:`PlatformConfig` drives construction;
        ``externals`` is an optional ``callable(platform)`` run before
        state load to re-attach non-kernel models the snapshot carries.
        ``jit`` enables the trace compiler on the rebuilt platform — it
        never travels in snapshots, so it is re-requested per restore.
        """
        if isinstance(source, str):
            document = state_mod.load_document(source)
        else:
            document = state_mod.check_schema(source)
        config = PlatformConfig.from_json(document["config"], obs=obs,
                                          jit=jit)
        platform = cls(config)
        if externals is not None:
            externals(platform)
        platform.restore_snapshot(document, program=program)
        return platform

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #

    def console(self) -> str:
        """Text transmitted on the UART so far."""
        return self.uart.text()

    def symbol(self, name: str) -> int:
        if self.program is None:
            raise ValueError("no program loaded")
        return self.program.symbol(name)

    def __repr__(self) -> str:
        if self.is_dift:
            if self.dift_mode == cpu_mod.DIFT_DEMAND:
                mode = "VP+d"
            elif self.monitor is not None:
                mode = "VP+ms" if self.monitor.strict else "VP+m"
            else:
                mode = "VP+"
        else:
            mode = "VP"
        return f"Platform({mode}, instret={self.cpu.csr.instret})"


def run_program(program: Program, policy: Optional[SecurityPolicy] = None,
                max_instructions: Optional[int] = None,
                config: Optional[PlatformConfig] = None,
                **platform_kwargs) -> RunResult:
    """One-shot: build a platform, load, run.

    Pass a ready :class:`PlatformConfig` via ``config``; the loose
    ``policy``/keyword form is folded into one internally.
    """
    if config is None:
        config = PlatformConfig(policy=policy, **platform_kwargs)
    elif policy is not None or platform_kwargs:
        raise TypeError(
            "pass either config= or policy=/platform kwargs, not both")
    platform = Platform.from_config(config)
    platform.load(program)
    return platform.run(max_instructions=max_instructions)
