"""Interactive-style debugging on the VP: breakpoints + taint watchpoints.

The original RISC-V VP ships a GDB server; for policy development the
more interesting primitive is the **taint watchpoint** — "stop when the
security class of these bytes changes" — because the question during
policy triage is rarely *what* value moved but *when data of class X
reached location Y*.

:class:`Debugger` single-steps the CPU (peripheral threads are advanced
between steps through the kernel, so interrupt-driven code works) and
reports :class:`DebugEvent` objects for:

* ``breakpoint`` — PC hit a code breakpoint;
* ``taint-watch`` — a watched byte's tag changed (old/new class names in
  the event detail);
* ``halt`` / ``ebreak`` / ``fault`` / ``security`` — the guest stopped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.vp import cpu as cpu_mod
from repro.vp.platform import Platform


@dataclass(frozen=True)
class DebugEvent:
    """One reason the debugger returned control."""

    kind: str      # "breakpoint" | "taint-watch" | stop reason
    pc: int
    detail: str = ""

    def __str__(self) -> str:
        text = f"[{self.kind}] pc={self.pc:#010x}"
        return f"{text} {self.detail}" if self.detail else text


@dataclass
class TaintWatch:
    """A watched byte range with its last-seen tag snapshot."""

    start: int
    end: int
    snapshot: bytes


class Debugger:
    """Breakpoint/watchpoint driver over a loaded platform."""

    def __init__(self, platform: Platform):
        self.platform = platform
        self.cpu = platform.cpu
        self.breakpoints: Set[int] = set()
        self._watches: Dict[str, TaintWatch] = {}
        self.steps_executed = 0
        # the debugger drives the CPU itself; the platform's own CPU
        # process must not race it when we tick the kernel
        platform.detach_cpu_process()
        # single-stepping must observe every PC — detach the trace
        # compiler so compiled blocks cannot skip over breakpoints or
        # coalesce the per-step taint-watch windows
        if platform.jit is not None:
            platform.jit.flush("debugger")
            self.cpu.attach_jit(None)

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #

    def add_breakpoint(self, address: int) -> None:
        self.breakpoints.add(address & ~3)

    def remove_breakpoint(self, address: int) -> None:
        self.breakpoints.discard(address & ~3)

    def break_at(self, symbol: str) -> int:
        """Breakpoint on a program symbol; returns the address."""
        address = self.platform.symbol(symbol)
        self.add_breakpoint(address)
        return address

    def add_taint_watch(self, name: str, start: int, length: int) -> None:
        """Watch the tags of guest bytes ``[start, start+length)``.

        Only meaningful on a DIFT platform; on a plain VP the watch never
        fires (there are no tags).
        """
        self._watches[name] = TaintWatch(
            start, start + length, self._snapshot(start, start + length))

    def watch_symbol(self, symbol: str, length: int) -> None:
        self.add_taint_watch(symbol, self.platform.symbol(symbol), length)

    def remove_taint_watch(self, name: str) -> None:
        self._watches.pop(name, None)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run(self, max_instructions: int = 1_000_000) -> DebugEvent:
        """Run until a breakpoint / watch fires or the guest stops."""
        cpu = self.cpu
        for __ in range(max_instructions):
            if cpu.pc in self.breakpoints:
                return DebugEvent("breakpoint", cpu.pc)
            executed, reason = cpu.run(1)
            self.steps_executed += executed
            if executed:
                # keep peripheral/timer threads in step with the CPU
                self.platform.kernel.run(
                    until=self.platform.kernel.now + cpu.clock_period)
            event = self._check_watches()
            if event is not None:
                return event
            if reason in (cpu_mod.HALT, cpu_mod.EBREAK, cpu_mod.FAULT,
                          cpu_mod.SECURITY, cpu_mod.WFI):
                return DebugEvent(reason, cpu.pc)
        return DebugEvent("step-limit", cpu.pc)

    def step_over_breakpoint(self) -> None:
        """Execute the instruction under the current breakpoint."""
        executed, __ = self.cpu.run(1)
        self.steps_executed += executed

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _snapshot(self, start: int, end: int) -> bytes:
        tags = self.platform.memory.tags
        if tags is None:
            return b""
        return bytes(tags[start:end])

    def _check_watches(self) -> Optional[DebugEvent]:
        for name, watch in self._watches.items():
            current = self._snapshot(watch.start, watch.end)
            if current != watch.snapshot:
                changes = self._describe_changes(watch, current)
                watch.snapshot = current
                return DebugEvent("taint-watch", self.cpu.pc,
                                  f"{name}: {changes}")
        return None

    def _describe_changes(self, watch: TaintWatch, current: bytes) -> str:
        lattice = (self.platform.engine.lattice
                   if self.platform.engine else None)

        def name_of(tag: int) -> str:
            return lattice.name_of(tag) if lattice else str(tag)

        parts: List[str] = []
        for index, (old, new) in enumerate(zip(watch.snapshot, current)):
            if old != new:
                parts.append(
                    f"+{index}: {name_of(old)} -> {name_of(new)}")
            if len(parts) >= 4:
                parts.append("...")
                break
        return ", ".join(parts)
