"""Fast RV32IM(+Zicsr) instruction decoder for the ISS.

Decodes a 32-bit instruction word into a compact tuple
``(op, rd, rs1, rs2, imm)`` where ``op`` is one of the dense integer
opcode IDs below.  The ISS keeps a word -> tuple decode cache, so decoding
happens once per distinct instruction word; the executors dispatch on the
dense ID with an if/elif ladder ordered by dynamic frequency.

The encoding knowledge here deliberately duplicates
:mod:`repro.asm.isa` (the assembler's tables): the test suite cross-checks
the two against each other, which would be impossible if they shared code.
"""

from __future__ import annotations

from typing import Tuple

# dense opcode IDs, grouped; order matters only for readability
LUI = 0
AUIPC = 1
JAL = 2
JALR = 3
BEQ = 4
BNE = 5
BLT = 6
BGE = 7
BLTU = 8
BGEU = 9
LB = 10
LH = 11
LW = 12
LBU = 13
LHU = 14
SB = 15
SH = 16
SW = 17
ADDI = 18
SLTI = 19
SLTIU = 20
XORI = 21
ORI = 22
ANDI = 23
SLLI = 24
SRLI = 25
SRAI = 26
ADD = 27
SUB = 28
SLL = 29
SLT = 30
SLTU = 31
XOR = 32
SRL = 33
SRA = 34
OR = 35
AND = 36
MUL = 37
MULH = 38
MULHSU = 39
MULHU = 40
DIV = 41
DIVU = 42
REM = 43
REMU = 44
FENCE = 45
ECALL = 46
EBREAK = 47
MRET = 48
WFI = 49
CSRRW = 50
CSRRS = 51
CSRRC = 52
CSRRWI = 53
CSRRSI = 54
CSRRCI = 55
ILLEGAL = 56

#: number of distinct opcode IDs (for statistics arrays)
N_OPS = 57

OP_NAMES = [
    "lui", "auipc", "jal", "jalr", "beq", "bne", "blt", "bge", "bltu",
    "bgeu", "lb", "lh", "lw", "lbu", "lhu", "sb", "sh", "sw", "addi",
    "slti", "sltiu", "xori", "ori", "andi", "slli", "srli", "srai", "add",
    "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and", "mul",
    "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu", "fence",
    "ecall", "ebreak", "mret", "wfi", "csrrw", "csrrs", "csrrc", "csrrwi",
    "csrrsi", "csrrci", "illegal",
]

Decoded = Tuple[int, int, int, int, int]

_BRANCH_BY_F3 = {0: BEQ, 1: BNE, 4: BLT, 5: BGE, 6: BLTU, 7: BGEU}
_LOAD_BY_F3 = {0: LB, 1: LH, 2: LW, 4: LBU, 5: LHU}
_STORE_BY_F3 = {0: SB, 1: SH, 2: SW}
_IMM_BY_F3 = {0: ADDI, 2: SLTI, 3: SLTIU, 4: XORI, 6: ORI, 7: ANDI}
_REG_BY_F3 = {0: ADD, 1: SLL, 2: SLT, 3: SLTU, 4: XOR, 5: SRL, 6: OR, 7: AND}
_MUL_BY_F3 = {0: MUL, 1: MULH, 2: MULHSU, 3: MULHU, 4: DIV, 5: DIVU,
              6: REM, 7: REMU}
_CSR_BY_F3 = {1: CSRRW, 2: CSRRS, 3: CSRRC, 5: CSRRWI, 6: CSRRSI, 7: CSRRCI}


def decode(word: int) -> Decoded:
    """Decode one instruction word.  Never raises: bad words -> ILLEGAL."""
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    if opcode == 0x13:  # OP-IMM
        imm = (word >> 20) - 4096 if word & 0x80000000 else word >> 20
        if funct3 == 1:
            return (SLLI, rd, rs1, 0, rs2) if funct7 == 0 else _illegal(word)
        if funct3 == 5:
            if funct7 == 0:
                return (SRLI, rd, rs1, 0, rs2)
            if funct7 == 0x20:
                return (SRAI, rd, rs1, 0, rs2)
            return _illegal(word)
        return (_IMM_BY_F3[funct3], rd, rs1, 0, imm)

    if opcode == 0x33:  # OP
        if funct7 == 0x01:
            return (_MUL_BY_F3[funct3], rd, rs1, rs2, 0)
        if funct7 == 0x20:
            if funct3 == 0:
                return (SUB, rd, rs1, rs2, 0)
            if funct3 == 5:
                return (SRA, rd, rs1, rs2, 0)
            return _illegal(word)
        if funct7 == 0x00:
            return (_REG_BY_F3[funct3], rd, rs1, rs2, 0)
        return _illegal(word)

    if opcode == 0x03:  # LOAD
        op = _LOAD_BY_F3.get(funct3)
        if op is None:
            return _illegal(word)
        imm = (word >> 20) - 4096 if word & 0x80000000 else word >> 20
        return (op, rd, rs1, 0, imm)

    if opcode == 0x23:  # STORE
        op = _STORE_BY_F3.get(funct3)
        if op is None:
            return _illegal(word)
        imm = ((word >> 25) << 5) | rd
        if word & 0x80000000:
            imm -= 4096
        return (op, 0, rs1, rs2, imm)

    if opcode == 0x63:  # BRANCH
        op = _BRANCH_BY_F3.get(funct3)
        if op is None:
            return _illegal(word)
        imm = (
            (((word >> 31) & 1) << 12)
            | (((word >> 7) & 1) << 11)
            | (((word >> 25) & 0x3F) << 5)
            | (((word >> 8) & 0xF) << 1)
        )
        if imm & 0x1000:
            imm -= 0x2000
        return (op, 0, rs1, rs2, imm)

    if opcode == 0x37:
        return (LUI, rd, 0, 0, word & 0xFFFFF000)
    if opcode == 0x17:
        return (AUIPC, rd, 0, 0, word & 0xFFFFF000)

    if opcode == 0x6F:  # JAL
        imm = (
            (((word >> 31) & 1) << 20)
            | (((word >> 12) & 0xFF) << 12)
            | (((word >> 20) & 1) << 11)
            | (((word >> 21) & 0x3FF) << 1)
        )
        if imm & 0x100000:
            imm -= 0x200000
        return (JAL, rd, 0, 0, imm)

    if opcode == 0x67:  # JALR
        if funct3 != 0:
            return _illegal(word)
        imm = (word >> 20) - 4096 if word & 0x80000000 else word >> 20
        return (JALR, rd, rs1, 0, imm)

    if opcode == 0x73:  # SYSTEM
        if funct3 == 0:
            if word == 0x00000073:
                return (ECALL, 0, 0, 0, 0)
            if word == 0x00100073:
                return (EBREAK, 0, 0, 0, 0)
            if word == 0x30200073:
                return (MRET, 0, 0, 0, 0)
            if word == 0x10500073:
                return (WFI, 0, 0, 0, 0)
            return _illegal(word)
        op = _CSR_BY_F3.get(funct3)
        if op is None:
            return _illegal(word)
        return (op, rd, rs1, 0, (word >> 20) & 0xFFF)

    if opcode == 0x0F:  # FENCE / FENCE.I
        return (FENCE, 0, 0, 0, 0)

    return _illegal(word)


def _illegal(word: int) -> Decoded:
    return (ILLEGAL, 0, 0, 0, word)
