"""RV32IM instruction-set simulator with optional DIFT instrumentation.

The CPU is a SystemC-style module: the platform registers it as a kernel
process that executes a *quantum* of instructions and then yields simulated
time (loosely-timed modelling, fixed CPI), exactly how the original RISC-V
VP structures its ISS.

Two execution loops are provided:

* :meth:`Cpu.run` in **plain** mode (``dift=None``) — the baseline VP.
* :meth:`Cpu.run` in **DIFT** mode — the VP+ of the paper: every register
  and memory byte carries a tag; ALU results take the LUB of their operand
  tags; and the three execution-clearance checks of Section V-B2 are
  performed (instruction fetch, branch condition / indirect-jump target /
  trap-handler address, and memory-access address).

The loops are intentionally written as two separate flat functions rather
than one parameterized loop: the plain VP must not pay for DIFT hooks it
does not use, or the Table II overhead comparison would be dishonest.

RAM is accessed through a DMI pointer (``ram``/``ram_tags``) granted by the
memory module; everything else goes through TLM transactions whose payloads
carry per-byte tags on the DIFT platform.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, Optional, Tuple

from repro.dift.engine import DiftEngine
from repro.dift.events import (
    EV_FAULT_ACCESS,
    EV_LOAD,
    EV_MMIO_LOAD,
    EV_MMIO_STORE,
    EV_STEP,
    EV_STORE,
    EV_TRAP,
)
from repro.dift.liveness import TaintLiveness
from repro.errors import BusError
from repro.sysc.kernel import Kernel
from repro.sysc.module import Module
from repro.sysc.time import SimTime
from repro.sysc.tlm import GenericPayload, InitiatorSocket
from repro.vp import csr as CSR
from repro.vp import decode as D
from repro.vp.csr import CsrFile

# run() stop reasons
QUANTUM = "quantum"   # quantum exhausted, more work pending
HALT = "halt"         # guest exited via ecall
EBREAK = "ebreak"     # guest hit ebreak (attack payload marker in the suite)
WFI = "wfi"           # waiting for interrupt
SECURITY = "security" # DIFT violation recorded (record-mode engines only)
FAULT = "fault"       # unhandled guest fault with no trap handler

# Internal to the demand-mode dispatcher: the fast (clean-machine) path
# observed a non-bottom tag entering the machine and handed control back
# so the quantum can continue on the full DIFT path.  Never escapes
# Cpu.run().
RETAINT = "retaint"

# Internal: wfi retired with an interrupt pending but globally disabled.
# The interpreter loops return it so the JIT dispatcher can tell this
# early quantum end apart from a genuinely exhausted budget; the
# _run_plain/_run_dift wrappers translate it back to QUANTUM before it
# reaches any caller.  Never escapes Cpu.run().
_IRQWAIT = "irqwait"

# Internal: a taken backward branch landed on a compiled superblock
# entry.  The interpreter returns early so the JIT dispatcher can run
# the block immediately instead of waiting for a chunk boundary to line
# up with the entry PC (which for many loop lengths never happens).
# Only emitted while dispatching (the block dictionaries are bound in
# the loop prologue exactly when a JitEngine is attached); swallowed by
# JitEngine._dispatch / _interp_only.  Never escapes Cpu.run().
_BLOCKHIT = "blockhit"

# DIFT execution modes
DIFT_FULL = "full"     # every instruction pays the tag bookkeeping
DIFT_DEMAND = "demand" # fast path while the machine is provably clean
# Decoupled: the core executes architecturally and emits an event per
# retired instruction; a DiftMonitor consumes the FIFO, owning all tag
# state.  Async drains at quantum boundaries; strict drains per packet
# for paper-exact trap timing.  See repro.dift.monitor.
DIFT_DECOUPLED = "decoupled"
DIFT_DECOUPLED_STRICT = "decoupled-strict"

_MASK32 = 0xFFFFFFFF


class Cpu(Module):
    """One RV32IM hart."""

    def __init__(
        self,
        kernel: Kernel,
        name: str = "cpu0",
        dift: Optional[DiftEngine] = None,
        clock_period: SimTime = SimTime.ns(10),
        quantum: int = 4096,
        dift_mode: str = DIFT_FULL,
    ):
        super().__init__(kernel, name)
        if dift_mode not in (DIFT_FULL, DIFT_DEMAND, DIFT_DECOUPLED,
                             DIFT_DECOUPLED_STRICT):
            raise ValueError(f"unknown dift_mode {dift_mode!r}")
        self.dift = dift
        self.dift_mode = dift_mode
        self.clock_period = clock_period
        self.quantum = quantum
        self.isock = InitiatorSocket(f"{name}.isock")

        bottom = dift.bottom_tag if dift else 0
        self._bottom = bottom
        self.regs = [0] * 32
        self.tags = [bottom] * 32
        self.pc = 0
        self.csr = CsrFile(bottom_tag=bottom)
        self._decode_cache: Dict[int, D.Decoded] = {}
        #: words decoded from scratch (cache misses); feeds the
        #: cpu.decode_cache.misses gauge
        self.decode_misses = 0

        # trace compiler; attached by the platform via attach_jit()
        self._jit = None

        # decoupled DIFT monitor (attach_monitor) and the queue events are
        # emitted into: the monitor's FIFO in decoupled mode, a plain list
        # pumped into an EventWriter when an inline run records, None
        # otherwise (emission disabled, zero overhead)
        self._monitor = None
        self._mon_strict = False
        self._emitq: Optional[list] = None

        # DMI into RAM; set by the platform via attach_ram()
        self.ram: bytearray = bytearray(0)
        self.ram_tags: Optional[bytearray] = None
        self.ram_base = 0
        self.ram_end = 0

        # execution clearance (tag values or None = check disabled)
        self._fetch_req: Optional[int] = None
        self._branch_req: Optional[int] = None
        self._memaddr_req: Optional[int] = None
        if dift is not None:
            execution = dift.policy.execution
            if execution.fetch is not None:
                self._fetch_req = dift.policy.tag_of(execution.fetch)
            if execution.branch is not None:
                self._branch_req = dift.policy.tag_of(execution.branch)
            if execution.mem_addr is not None:
                self._memaddr_req = dift.policy.tag_of(execution.mem_addr)

        # demand-mode taint liveness; None in plain and full modes so the
        # existing loops stay hook-free
        self.liveness: Optional[TaintLiveness] = None
        self._live: Optional[TaintLiveness] = None
        if dift is not None and dift_mode == DIFT_DEMAND:
            self.liveness = TaintLiveness(bottom_tag=bottom)
            self._live = self.liveness

        # interrupt lines
        self._take_irq = False
        self.irq_event = self.make_event("irq")

        # observability; None keeps every hook a single per-quantum check
        self._obs = None
        self._m_stop: Optional[Dict[str, object]] = None
        self._m_instructions = None
        self._m_quanta = None
        self._m_irqs = None
        self._m_quantum_wall = None
        self._m_groups: Optional[list] = None
        self._group_of_op: Optional[list] = None

        # lifecycle
        self.halted = False
        self.exit_code = 0
        self.fault_info = ""
        self.ecall_handler: Optional[Callable[["Cpu"], Optional[str]]] = None

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #

    def attach_ram(self, base: int, data: bytearray,
                   tags: Optional[bytearray]) -> None:
        """Grant the DMI pointer into RAM (called by the platform)."""
        self.ram_base = base
        self.ram_end = base + len(data)
        self.ram = data
        self.ram_tags = tags

    def attach_jit(self, jit) -> None:
        """Attach a :class:`repro.vp.jit.JitEngine` (platform wiring).

        The run-loop wrappers dispatch through it; detach by passing
        ``None`` (the debugger does, to regain per-instruction
        visibility)."""
        self._jit = jit

    def attach_monitor(self, monitor, strict: bool = False) -> None:
        """Attach a decoupled DIFT monitor (platform wiring).

        Switches the run loop to :meth:`_interp_decoupled`: architectural
        execution only, one packet per retired instruction into the
        monitor's FIFO.  ``strict`` blocks on the FIFO after every packet
        (paper-exact trap timing)."""
        self._monitor = monitor
        self._mon_strict = strict
        self._emitq = monitor.fifo

    def set_event_queue(self, queue: Optional[list]) -> None:
        """Install an event queue on the inline DIFT loop (recording)."""
        self._emitq = queue

    def attach_obs(self, obs) -> None:
        """Attach an :class:`~repro.obs.Observability` sink.

        Resolves every instrument once, here, so the enabled path does
        plain attribute increments and the disabled path (``_obs is
        None``) stays a single check per quantum in :meth:`run`.
        """
        from repro.obs.metrics import (
            GROUP_OF_OP,
            OPCODE_GROUPS,
            QUANTUM_WALL_US_BUCKETS,
        )
        self._obs = obs
        metrics = obs.metrics
        self._m_instructions = metrics.counter("cpu.instructions")
        self._m_quanta = metrics.counter("cpu.quanta")
        self._m_irqs = metrics.counter("cpu.irqs_taken")
        self._m_quantum_wall = metrics.histogram(
            "cpu.quantum_wall_us", QUANTUM_WALL_US_BUCKETS)
        self._m_groups = [metrics.counter(f"cpu.inst.{group}")
                          for group in OPCODE_GROUPS]
        self._group_of_op = GROUP_OF_OP
        # stop-reason counters, resolved once: the per-quantum f-string +
        # registry lookup showed up in single-stepping profiles
        self._m_stop = {reason: metrics.counter(f"cpu.stop.{reason}")
                        for reason in (QUANTUM, HALT, EBREAK, WFI,
                                       SECURITY, FAULT)}

    def reset(self, pc: int) -> None:
        """Reset architectural state and start executing at ``pc``."""
        self.regs = [0] * 32
        self.tags = [self._bottom] * 32
        self.pc = pc
        self.halted = False
        self.exit_code = 0
        self.fault_info = ""
        self.csr.instret = 0
        self.csr.cycle = 0

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Architectural + quantum-bookkeeping state.

        The decode cache is included although it is semantically derived:
        the ``cpu.decode_cache.*`` gauges are computed from its size, so
        a replayed run must resume with the same cache population to
        report identical metrics.  RAM/shadow content lives with the
        memory module (the DMI arrays alias it).
        """
        return {
            "regs": list(self.regs),
            "tags": list(self.tags),
            "pc": self.pc,
            "halted": self.halted,
            "exit_code": self.exit_code,
            "fault_info": self.fault_info,
            "csr": self.csr.state_dict(),
            "decode_cache": {str(word): list(entry)
                             for word, entry in self._decode_cache.items()},
            "decode_misses": self.decode_misses,
        }

    def load_state_dict(self, state: dict) -> None:
        self.regs = [value & _MASK32 for value in state["regs"]]
        self.tags = list(state["tags"])
        self.pc = state["pc"]
        self.halted = state["halted"]
        self.exit_code = state["exit_code"]
        self.fault_info = state["fault_info"]
        self.csr.load_state_dict(state["csr"])
        self._decode_cache = {int(word): tuple(entry)
                              for word, entry
                              in state["decode_cache"].items()}
        self.decode_misses = state.get("decode_misses", 0)
        self._update_irq()

    # ------------------------------------------------------------------ #
    # interrupts
    # ------------------------------------------------------------------ #

    def set_irq(self, mip_bit: int, level: bool) -> None:
        """Drive one mip line (``CSR.MIP_MTIP`` / ``MIP_MEIP`` / ``MIP_MSIP``)."""
        mip = self.csr[CSR.MIP]
        mip = (mip | mip_bit) if level else (mip & ~mip_bit)
        self.csr[CSR.MIP] = mip
        self._update_irq()
        if self._take_irq:
            self.irq_event.notify()

    def _update_irq(self) -> None:
        pending = self.csr[CSR.MIP] & self.csr[CSR.MIE]
        enabled = self.csr[CSR.MSTATUS] & CSR.MSTATUS_MIE
        self._take_irq = bool(pending and enabled)

    def _take_interrupt(self) -> bool:
        """Enter the highest-priority pending interrupt.  False if none."""
        pending = self.csr[CSR.MIP] & self.csr[CSR.MIE]
        if not pending:
            return False
        if pending & CSR.MIP_MEIP:
            cause = CSR.IRQ_M_EXT
        elif pending & CSR.MIP_MSIP:
            cause = CSR.IRQ_M_SOFT
        else:
            cause = CSR.IRQ_M_TIMER
        entered = self._trap(CSR.INTERRUPT_BIT | cause, 0)
        if entered and self._obs is not None:
            self._m_irqs.inc()
            if self._obs.tracer is not None:
                self._obs.tracer.instant(
                    "irq", "cpu", args={"cause": cause, "pc": self.pc})
        return entered

    def _trap(self, cause: int, tval: int) -> bool:
        """Enter a trap.  Returns False if the DIFT engine vetoed the entry
        (record-mode violation on the handler address)."""
        mtvec = self.csr[CSR.MTVEC]
        if self._emitq is not None:
            self._emitq.append((EV_TRAP, self.pc, cause))
        monitor = self._monitor
        if monitor is not None:
            # the monitor owns the mtvec tag and performs the handler
            # clearance check when it applies the trap packet — now in
            # strict mode (so it can veto), at the next drain in async
            if self._mon_strict:
                monitor.drain()
                if monitor.stopped:
                    return False
        elif self.dift is not None and self._branch_req is not None:
            handler_tag = self.csr.tag(CSR.MTVEC)
            if not self.dift.flow[handler_tag][self._branch_req]:
                if not self.dift.check_execution(
                        "branch", handler_tag, self._branch_req, self.pc):
                    return False
        self.csr[CSR.MEPC] = self.pc
        self.csr[CSR.MCAUSE] = cause
        self.csr[CSR.MTVAL] = tval
        if monitor is None:
            self.csr.set_tag(CSR.MEPC, self._bottom)
        mstatus = self.csr[CSR.MSTATUS]
        mpie = CSR.MSTATUS_MPIE if mstatus & CSR.MSTATUS_MIE else 0
        self.csr[CSR.MSTATUS] = mpie  # MIE cleared, MPIE = old MIE
        self._update_irq()
        self.pc = mtvec
        return True

    def _fault(self, cause: int, tval: int) -> Optional[str]:
        """Synchronous fault: trap if a handler is installed, else stop."""
        if self.csr[CSR.MTVEC]:
            self._trap(cause, tval)
            return None
        self.halted = True
        self.fault_info = (
            f"unhandled fault cause={cause} tval={tval:#010x} "
            f"pc={self.pc:#010x}")
        return FAULT

    # ------------------------------------------------------------------ #
    # MMIO via TLM
    # ------------------------------------------------------------------ #

    def _mmio_read(self, address: int, size: int) -> Tuple[int, int]:
        payload = GenericPayload.make_read(address, size,
                                           tagged=self.dift is not None)
        self.isock.b_transport(payload, SimTime(0))
        if not payload.ok():
            raise BusError(f"MMIO read failed at {address:#010x}", address)
        value = int.from_bytes(payload.data, "little")
        if self.dift is not None and payload.tags is not None:
            tag = self.dift.lub_bytes(payload.tags)
        else:
            tag = self._bottom
        return value, tag

    def _mmio_write(self, address: int, size: int, value: int,
                    tag: int) -> None:
        data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        tags = bytes([tag]) * size if self.dift is not None else None
        payload = GenericPayload.make_write(address, data, tags)
        self.isock.b_transport(payload, SimTime(0))
        if not payload.ok():
            raise BusError(f"MMIO write failed at {address:#010x}", address)

    # ------------------------------------------------------------------ #
    # debug / test helpers
    # ------------------------------------------------------------------ #

    def step(self) -> str:
        """Execute exactly one instruction; returns the stop reason."""
        __, reason = self.run(1)
        return reason

    def read_word(self, address: int) -> int:
        off = address - self.ram_base
        return int.from_bytes(self.ram[off:off + 4], "little")

    def reg(self, index: int) -> int:
        return self.regs[index]

    # ------------------------------------------------------------------ #
    # the execution loops
    # ------------------------------------------------------------------ #

    def run(self, max_instructions: int) -> Tuple[int, str]:
        """Execute up to ``max_instructions``; returns (executed, reason)."""
        if self.halted:
            return 0, HALT
        if self._obs is not None:
            return self._run_observed(max_instructions)
        return self._run_core(max_instructions)

    def _run_core(self, n: int) -> Tuple[int, str]:
        """Pick the execution loop for the configured DIFT mode."""
        if self._monitor is not None:
            executed, reason = self._interp_decoupled(n)
            if reason == _IRQWAIT:
                reason = QUANTUM
            return executed, reason
        if self.dift is None:
            return self._run_plain(n)
        live = self._live
        if live is None or live.disabled:
            return self._run_dift(n)
        return self._run_demand(n)

    def _run_demand(self, n: int) -> Tuple[int, str]:
        """Demand-driven DIFT: fast-step while the machine is clean.

        While every register, CSR and RAM byte tag is lattice bottom, the
        full propagation is the identity (immediates produce bottom,
        ``lub(bottom, bottom) == bottom``, and every flow check from
        bottom passes), so the plain loop computes the exact same
        architectural *and* tag state — without touching a single tag.
        The fast loop watches the only entry point for new taint inside
        a quantum (MMIO) and returns :data:`RETAINT` to fall back to the
        full loop; between quanta the platform's memory taint listener
        marks DMA/host taint, and :class:`TaintLiveness` reclaims the
        clean state once taint dies out again.
        """
        live = self._live
        assert live is not None
        executed = 0
        reason = QUANTUM
        while executed < n:
            if live.clean:
                stepped, reason = self._run_plain(n - executed)
                live.fast_steps += stepped
                executed += stepped
                if reason == RETAINT:
                    reason = QUANTUM
                    continue
            else:
                stepped, reason = self._run_dift(n - executed)
                live.slow_steps += stepped
                executed += stepped
                live.maybe_reclaim(self)
            if reason != QUANTUM or executed >= n:
                break
        return executed, reason

    # ---- observability wrappers (never entered when _obs is None) -------- #

    def _run_observed(self, n: int) -> Tuple[int, str]:
        """One quantum with metrics/tracing; hooks fire per quantum only."""
        obs = self._obs
        tracer = obs.tracer
        started = perf_counter()
        if obs.level == "instruction":
            executed, reason = self._run_counted(n)
        else:
            executed, reason = self._run_core(n)
        wall_us = (perf_counter() - started) * 1e6
        self._m_instructions.inc(executed)
        self._m_quanta.inc()
        self._m_quantum_wall.observe(wall_us)
        self._m_stop[reason].inc()
        if tracer is not None and executed:
            # sim time does not advance inside cpu.run, so "now" is still
            # the quantum's start time
            tracer.complete(
                "quantum", "cpu", ts=self.kernel.now_ps / 1e6,
                dur=executed * self.clock_period.ps / 1e6,
                args={"executed": executed, "reason": reason,
                      "wall_us": round(wall_us, 1)})
        return executed, reason

    def _run_counted(self, n: int) -> Tuple[int, str]:
        """Single-step a quantum, attributing retirements to opcode groups.

        This is the ``level="instruction"`` profile: several-fold slower
        than the flat loops, so it is only reachable when explicitly
        requested.  Interrupt entries are left unattributed (the
        pre-fetched opcode would misattribute the handler's first
        instruction).
        """
        groups = self._m_groups
        group_of = self._group_of_op
        assert groups is not None and group_of is not None
        cache = self._decode_cache
        decode = D.decode
        run1 = self._run_core
        frombytes = int.from_bytes
        executed = 0
        reason = QUANTUM
        while executed < n:
            op = None
            pc = self.pc
            if not self._take_irq and \
                    self.ram_base <= pc <= self.ram_end - 4 and not pc & 3:
                off = pc - self.ram_base
                word = frombytes(self.ram[off:off + 4], "little")
                d = cache.get(word)
                if d is None:
                    d = decode(word)
                    cache[word] = d
                    self.decode_misses += 1
                op = d[0]
            stepped, reason = run1(1)
            executed += stepped
            if stepped and op is not None:
                groups[group_of[op]].inc()
            if reason != QUANTUM or not stepped:
                break
        return executed, reason

    # ---- trace-dispatch wrappers ----------------------------------------- #
    #
    # _run_plain/_run_dift keep their historical names and contracts —
    # everything upstream (_run_core, _run_demand, tests) calls them —
    # but are now thin prologues that route through the trace compiler
    # when one is attached.  The interpreter bodies moved to
    # _interp_plain/_interp_dift; the JIT dispatcher calls those
    # directly and interleaves compiled superblocks.

    def _run_plain(self, n: int) -> Tuple[int, str]:
        jit = self._jit
        if jit is not None:
            return jit.run_plain(n)
        executed, reason = self._interp_plain(n)
        if reason == _IRQWAIT:
            reason = QUANTUM
        return executed, reason

    def _run_dift(self, n: int) -> Tuple[int, str]:
        jit = self._jit
        if jit is not None and self._live is None:
            # DIFT blocks fuse full-mode propagation only; demand mode
            # (dirty or disabled) needs the interpreter's liveness
            # bookkeeping, and its clean phase runs plain blocks via
            # _run_plain instead.
            return jit.run_dift(n)
        executed, reason = self._interp_dift(n)
        if reason == _IRQWAIT:
            reason = QUANTUM
        return executed, reason

    # ---- plain VP -------------------------------------------------------- #

    def _interp_plain(self, n: int) -> Tuple[int, str]:
        regs = self.regs
        ram = self.ram
        ram_base = self.ram_base
        ram_end = self.ram_end
        cache = self._decode_cache
        decode = D.decode
        csr = self.csr
        pc = self.pc
        executed = 0
        reason = QUANTUM
        frombytes = int.from_bytes
        # demand mode only: watch MMIO for taint entering a clean machine
        live = self._live
        bottom = self._bottom
        # trace compiler hooks: code-line stores invalidate superblocks,
        # taken backward branches feed the hotness profiler and yield to
        # the dispatcher when they land on a compiled block entry
        jit = self._jit
        if jit is not None:
            jcl = jit.code_lines
            jhot = jit.hot_plain
            jready = jit.ready_plain
            jthreshold = jit.threshold
            jblocks = jit.blocks_plain
        else:
            jcl = None
            jhot = None
            jready = None
            jthreshold = 0
            jblocks = None

        while executed < n:
            if self._take_irq:
                self.pc = pc
                self._take_interrupt()
                pc = self.pc

            if pc < ram_base or pc + 4 > ram_end or pc & 3:
                self.pc = pc
                cause = (CSR.CAUSE_INSTR_MISALIGNED if pc & 3
                         else CSR.CAUSE_INSTR_FAULT)
                stop = self._fault(cause, pc)
                if stop:
                    reason = stop
                    break
                pc = self.pc
                continue
            off = pc - ram_base
            word = frombytes(ram[off:off + 4], "little")
            d = cache.get(word)
            if d is None:
                d = decode(word)
                cache[word] = d
                self.decode_misses += 1
            op = d[0]
            executed += 1
            next_pc = pc + 4

            if op <= D.BGEU:  # control transfer group (ids 0..9)
                if op >= D.BEQ:
                    a = regs[d[2]]
                    b = regs[d[3]]
                    if op == D.BEQ:
                        taken = a == b
                    elif op == D.BNE:
                        taken = a != b
                    elif op == D.BLTU:
                        taken = a < b
                    elif op == D.BGEU:
                        taken = a >= b
                    else:
                        sa = a - 0x100000000 if a >= 0x80000000 else a
                        sb = b - 0x100000000 if b >= 0x80000000 else b
                        taken = sa < sb if op == D.BLT else sa >= sb
                    if taken:
                        next_pc = (pc + d[4]) & _MASK32
                        if jhot is not None and d[4] < 0:
                            # taken backward branch: canonical loop
                            # header — count it toward compilation
                            c = jhot.get(next_pc, 0)
                            if c >= 0:
                                c += 1
                                jhot[next_pc] = c
                                if c == jthreshold:
                                    jready.append(next_pc)
                            if next_pc in jblocks:
                                self.pc = next_pc
                                csr.instret += executed
                                csr.cycle += executed
                                return executed, _BLOCKHIT
                elif op == D.JAL:
                    if d[1]:
                        regs[d[1]] = next_pc
                    next_pc = (pc + d[4]) & _MASK32
                    # backward jumps are loop closers; linking jumps are
                    # calls — both name stable, re-visited entry points
                    if jhot is not None and (d[4] < 0 or d[1]):
                        c = jhot.get(next_pc, 0)
                        if c >= 0:
                            c += 1
                            jhot[next_pc] = c
                            if c == jthreshold:
                                jready.append(next_pc)
                        if next_pc in jblocks:
                            self.pc = next_pc
                            csr.instret += executed
                            csr.cycle += executed
                            return executed, _BLOCKHIT
                elif op == D.JALR:
                    target = (regs[d[2]] + d[4]) & 0xFFFFFFFE
                    if d[1]:
                        regs[d[1]] = next_pc
                    next_pc = target
                    if jhot is not None and d[1]:
                        # indirect call: the target (a function entry)
                        # is as stable as a direct call's
                        c = jhot.get(next_pc, 0)
                        if c >= 0:
                            c += 1
                            jhot[next_pc] = c
                            if c == jthreshold:
                                jready.append(next_pc)
                        if next_pc in jblocks:
                            self.pc = next_pc
                            csr.instret += executed
                            csr.cycle += executed
                            return executed, _BLOCKHIT
                elif op == D.LUI:
                    if d[1]:
                        regs[d[1]] = d[4]
                else:  # AUIPC
                    if d[1]:
                        regs[d[1]] = (pc + d[4]) & _MASK32

            elif op <= D.LHU:  # loads
                addr = (regs[d[2]] + d[4]) & _MASK32
                size = 4 if op == D.LW else (2 if op in (D.LH, D.LHU) else 1)
                if ram_base <= addr and addr + size <= ram_end:
                    o = addr - ram_base
                    if op == D.LW:
                        value = frombytes(ram[o:o + 4], "little")
                    elif op == D.LBU:
                        value = ram[o]
                    elif op == D.LB:
                        value = ram[o]
                        if value >= 0x80:
                            value += 0xFFFFFF00
                    elif op == D.LHU:
                        value = ram[o] | (ram[o + 1] << 8)
                    else:  # LH
                        value = ram[o] | (ram[o + 1] << 8)
                        if value >= 0x8000:
                            value += 0xFFFF0000
                else:
                    self.pc = pc
                    try:
                        size = 4 if op == D.LW else (1 if op in (D.LB, D.LBU)
                                                     else 2)
                        value, t = self._mmio_read(addr, size)
                        if op == D.LB and value >= 0x80:
                            value += 0xFFFFFF00
                        elif op == D.LH and value >= 0x8000:
                            value += 0xFFFF0000
                    except BusError:
                        stop = self._fault(CSR.CAUSE_LOAD_FAULT, addr)
                        if stop:
                            reason = stop
                            break
                        pc = self.pc
                        continue
                    if live is not None and t != bottom:
                        # tainted peripheral read: retire this instruction
                        # with its tag, then fall back to the full loop
                        if d[1]:
                            regs[d[1]] = value & _MASK32
                            self.tags[d[1]] = t
                        live.taint_introduced()
                        self.pc = next_pc
                        csr.instret += executed
                        csr.cycle += executed
                        return executed, RETAINT
                if d[1]:
                    regs[d[1]] = value & _MASK32

            elif op <= D.SW:  # stores
                addr = (regs[d[2]] + d[4]) & _MASK32
                value = regs[d[3]]
                size = 4 if op == D.SW else (1 if op == D.SB else 2)
                if ram_base <= addr and addr + size <= ram_end:
                    o = addr - ram_base
                    if op == D.SW:
                        ram[o:o + 4] = value.to_bytes(4, "little")
                    elif op == D.SB:
                        ram[o] = value & 0xFF
                    else:
                        ram[o] = value & 0xFF
                        ram[o + 1] = (value >> 8) & 0xFF
                    if jcl and (o >> 4 in jcl
                                or (o + size - 1) >> 4 in jcl):
                        jit.invalidate_write(o, size)
                else:
                    self.pc = pc
                    try:
                        self._mmio_write(addr, size, value, self._bottom)
                    except BusError:
                        stop = self._fault(CSR.CAUSE_STORE_FAULT, addr)
                        if stop:
                            reason = stop
                            break
                        pc = self.pc
                        continue
                    if live is not None and not live.clean:
                        # the write triggered a synchronous taint side
                        # effect (e.g. peripheral DMA into RAM)
                        self.pc = next_pc
                        csr.instret += executed
                        csr.cycle += executed
                        return executed, RETAINT

            elif op <= D.ANDI:  # immediate ALU
                a = regs[d[2]]
                imm = d[4]
                if op == D.ADDI:
                    value = (a + imm) & _MASK32
                elif op == D.ANDI:
                    value = a & (imm & _MASK32)
                elif op == D.ORI:
                    value = a | (imm & _MASK32)
                elif op == D.XORI:
                    value = a ^ (imm & _MASK32)
                elif op == D.SLTIU:
                    value = 1 if a < (imm & _MASK32) else 0
                else:  # SLTI
                    sa = a - 0x100000000 if a >= 0x80000000 else a
                    value = 1 if sa < imm else 0
                if d[1]:
                    regs[d[1]] = value

            elif op <= D.SRAI:  # immediate shifts
                a = regs[d[2]]
                sh = d[4]
                if op == D.SLLI:
                    value = (a << sh) & _MASK32
                elif op == D.SRLI:
                    value = a >> sh
                else:
                    sa = a - 0x100000000 if a >= 0x80000000 else a
                    value = (sa >> sh) & _MASK32
                if d[1]:
                    regs[d[1]] = value

            elif op <= D.AND:  # register ALU
                a = regs[d[2]]
                b = regs[d[3]]
                if op == D.ADD:
                    value = (a + b) & _MASK32
                elif op == D.SUB:
                    value = (a - b) & _MASK32
                elif op == D.AND:
                    value = a & b
                elif op == D.OR:
                    value = a | b
                elif op == D.XOR:
                    value = a ^ b
                elif op == D.SLL:
                    value = (a << (b & 31)) & _MASK32
                elif op == D.SRL:
                    value = a >> (b & 31)
                elif op == D.SRA:
                    sa = a - 0x100000000 if a >= 0x80000000 else a
                    value = (sa >> (b & 31)) & _MASK32
                elif op == D.SLTU:
                    value = 1 if a < b else 0
                else:  # SLT
                    sa = a - 0x100000000 if a >= 0x80000000 else a
                    sb = b - 0x100000000 if b >= 0x80000000 else b
                    value = 1 if sa < sb else 0
                if d[1]:
                    regs[d[1]] = value

            elif op <= D.REMU:  # M extension
                value = _muldiv(op, regs[d[2]], regs[d[3]])
                if d[1]:
                    regs[d[1]] = value

            elif op == D.FENCE:
                pass

            elif op == D.ECALL:
                self.pc = next_pc
                outcome = self.ecall_handler(self) if self.ecall_handler \
                    else None
                if outcome == "halt":
                    self.halted = True
                    csr.instret += executed
                    csr.cycle += executed
                    return executed, HALT
                if outcome is None:
                    self.pc = pc
                    stop = self._fault(CSR.CAUSE_ECALL_M, 0)
                    if stop:
                        reason = stop
                        break
                pc = self.pc
                continue

            elif op == D.EBREAK:
                self.pc = pc
                self.halted = True
                csr.instret += executed
                csr.cycle += executed
                return executed, EBREAK

            elif op == D.MRET:
                mstatus = csr[CSR.MSTATUS]
                mie = CSR.MSTATUS_MIE if mstatus & CSR.MSTATUS_MPIE else 0
                csr[CSR.MSTATUS] = mie | CSR.MSTATUS_MPIE
                self._update_irq()
                next_pc = csr[CSR.MEPC]

            elif op == D.WFI:
                self.pc = next_pc
                csr.instret += executed
                csr.cycle += executed
                if self.csr[CSR.MIP] & self.csr[CSR.MIE]:
                    # pending but globally disabled: end the quantum so
                    # the kernel can advance time.  _IRQWAIT (not
                    # QUANTUM) so the JIT dispatcher knows the budget
                    # was not exhausted; wrappers translate it back.
                    return executed, _IRQWAIT
                return executed, WFI

            elif op <= D.CSRRCI:  # CSR group
                stop = self._exec_csr(d, next_pc)
                if stop:
                    reason = stop
                    break
                pc = self.pc
                continue

            else:  # ILLEGAL
                self.pc = pc
                stop = self._fault(CSR.CAUSE_ILLEGAL, d[4])
                if stop:
                    reason = stop
                    break
                pc = self.pc
                continue

            pc = next_pc

        self.pc = pc
        csr.instret += executed
        csr.cycle += executed
        return executed, reason

    # ---- VP+ (DIFT) -------------------------------------------------------- #

    def _interp_dift(self, n: int) -> Tuple[int, str]:
        dift = self.dift
        assert dift is not None
        regs = self.regs
        tags = self.tags
        ram = self.ram
        mtags = self.ram_tags
        assert mtags is not None
        ram_base = self.ram_base
        ram_end = self.ram_end
        cache = self._decode_cache
        decode = D.decode
        csr = self.csr
        lub = dift.lub
        flow = dift.flow
        bottom = self._bottom
        zero_is_bottom = bottom == 0
        fetch_req = self._fetch_req
        branch_req = self._branch_req
        memaddr_req = self._memaddr_req
        pc = self.pc
        executed = 0
        reason = QUANTUM
        frombytes = int.from_bytes
        # event-stream recording (None on un-recorded runs; the emission
        # shapes are kept identical to _interp_decoupled's so inline and
        # decoupled runs of the same guest record byte-identical streams)
        emitq = self._emitq
        # demand mode only: record which RAM pages receive non-bottom tags
        # so reclaiming the clean state scans dirty pages, not all of RAM.
        # The dirty set is the level-1 presence summary over the flat RAM
        # shadow (see repro.dift.shadow's hierarchy): reclaim scans prune
        # it, and this store path is the re-taint edge that makes the
        # pruning sound — every non-bottom store re-adds its page.  The
        # per-instruction cost stays a bare set.add; nothing here may
        # grow into a summary update.
        live = self._live
        dirty = live.dirty_pages if live is not None else None
        # trace compiler hooks.  SMC invalidation is armed whenever a
        # JIT is attached (demand-dirty stores must invalidate the clean
        # path's plain blocks too); hotness profiling only feeds the
        # dispatcher that actually runs DIFT blocks (full mode).
        jit = self._jit
        jcl = jit.code_lines if jit is not None else None
        if jit is not None and live is None:
            jhot = jit.hot_dift
            jready = jit.ready_dift
            jthreshold = jit.threshold
            jblocks = jit.blocks_dift
        else:
            jhot = None
            jready = None
            jthreshold = 0
            jblocks = None

        while executed < n:
            if self._take_irq:
                self.pc = pc
                if not self._take_interrupt():
                    reason = SECURITY
                    break
                pc = self.pc

            if pc < ram_base or pc + 4 > ram_end or pc & 3:
                self.pc = pc
                cause = (CSR.CAUSE_INSTR_MISALIGNED if pc & 3
                         else CSR.CAUSE_INSTR_FAULT)
                stop = self._fault(cause, pc)
                if stop:
                    reason = stop
                    break
                pc = self.pc
                continue
            off = pc - ram_base

            # --- fetch clearance (Section V-B2b) --- #
            if fetch_req is not None:
                tsum = (mtags[off] | mtags[off + 1] | mtags[off + 2]
                        | mtags[off + 3])
                if tsum or not zero_is_bottom:
                    itag = lub[lub[lub[mtags[off]][mtags[off + 1]]]
                               [mtags[off + 2]]][mtags[off + 3]]
                    if not flow[itag][fetch_req]:
                        self.pc = pc
                        if not dift.check_execution("fetch", itag, fetch_req,
                                                    pc):
                            if emitq is not None:
                                # fetch-rejected instructions are never
                                # decoded, so the stream carries a bare
                                # step packet whatever the opcode
                                emitq.append((EV_STEP, pc, frombytes(
                                    ram[off:off + 4], "little")))
                            reason = SECURITY
                            break

            word = frombytes(ram[off:off + 4], "little")
            d = cache.get(word)
            if d is None:
                d = decode(word)
                cache[word] = d
                self.decode_misses += 1
            op = d[0]
            executed += 1
            next_pc = pc + 4
            if emitq is not None and (op <= D.BGEU or op > D.SW):
                emitq.append((EV_STEP, pc, word))

            if op <= D.BGEU:
                if op >= D.BEQ:
                    rs1 = d[2]
                    rs2 = d[3]
                    a = regs[rs1]
                    b = regs[rs2]
                    # --- branch-condition clearance (Section V-B2a) --- #
                    if branch_req is not None:
                        ctag = lub[tags[rs1]][tags[rs2]]
                        if not flow[ctag][branch_req]:
                            self.pc = pc
                            if not dift.check_execution("branch", ctag,
                                                        branch_req, pc):
                                reason = SECURITY
                                break
                    if op == D.BEQ:
                        taken = a == b
                    elif op == D.BNE:
                        taken = a != b
                    elif op == D.BLTU:
                        taken = a < b
                    elif op == D.BGEU:
                        taken = a >= b
                    else:
                        sa = a - 0x100000000 if a >= 0x80000000 else a
                        sb = b - 0x100000000 if b >= 0x80000000 else b
                        taken = sa < sb if op == D.BLT else sa >= sb
                    if taken:
                        next_pc = (pc + d[4]) & _MASK32
                        if jhot is not None and d[4] < 0:
                            # taken backward branch: canonical loop
                            # header — count it toward compilation
                            c = jhot.get(next_pc, 0)
                            if c >= 0:
                                c += 1
                                jhot[next_pc] = c
                                if c == jthreshold:
                                    jready.append(next_pc)
                            if next_pc in jblocks:
                                self.pc = next_pc
                                csr.instret += executed
                                csr.cycle += executed
                                return executed, _BLOCKHIT
                elif op == D.JAL:
                    if d[1]:
                        regs[d[1]] = next_pc
                        tags[d[1]] = bottom
                    next_pc = (pc + d[4]) & _MASK32
                    # backward jumps are loop closers; linking jumps are
                    # calls — both name stable, re-visited entry points
                    if jhot is not None and (d[4] < 0 or d[1]):
                        c = jhot.get(next_pc, 0)
                        if c >= 0:
                            c += 1
                            jhot[next_pc] = c
                            if c == jthreshold:
                                jready.append(next_pc)
                        if next_pc in jblocks:
                            self.pc = next_pc
                            csr.instret += executed
                            csr.cycle += executed
                            return executed, _BLOCKHIT
                elif op == D.JALR:
                    rs1 = d[2]
                    # --- indirect-jump target clearance --- #
                    if branch_req is not None and not flow[tags[rs1]][branch_req]:
                        self.pc = pc
                        if not dift.check_execution("branch", tags[rs1],
                                                    branch_req, pc):
                            reason = SECURITY
                            break
                    target = (regs[rs1] + d[4]) & 0xFFFFFFFE
                    if d[1]:
                        regs[d[1]] = next_pc
                        tags[d[1]] = bottom
                    next_pc = target
                    if jhot is not None and d[1]:
                        # indirect call: the target (a function entry)
                        # is as stable as a direct call's
                        c = jhot.get(next_pc, 0)
                        if c >= 0:
                            c += 1
                            jhot[next_pc] = c
                            if c == jthreshold:
                                jready.append(next_pc)
                        if next_pc in jblocks:
                            self.pc = next_pc
                            csr.instret += executed
                            csr.cycle += executed
                            return executed, _BLOCKHIT
                elif op == D.LUI:
                    if d[1]:
                        regs[d[1]] = d[4]
                        tags[d[1]] = bottom
                else:  # AUIPC
                    if d[1]:
                        regs[d[1]] = (pc + d[4]) & _MASK32
                        tags[d[1]] = bottom

            elif op <= D.LHU:  # loads
                rs1 = d[2]
                addr = (regs[rs1] + d[4]) & _MASK32
                size = 4 if op == D.LW else (2 if op in (D.LH, D.LHU) else 1)
                in_ram = ram_base <= addr and addr + size <= ram_end
                if emitq is not None and in_ram:
                    emitq.append((EV_LOAD, pc, word, addr))
                # --- memory-address clearance (Section V-B2c) --- #
                if memaddr_req is not None and not flow[tags[rs1]][memaddr_req]:
                    self.pc = pc
                    if not dift.check_execution("mem-addr", tags[rs1],
                                                memaddr_req, pc):
                        if emitq is not None and not in_ram:
                            # never transacted: a placeholder MMIO packet
                            # with a bottom payload tag closes the stream
                            emitq.append((EV_MMIO_LOAD, pc, word, addr,
                                          bottom))
                        reason = SECURITY
                        break
                if in_ram:
                    o = addr - ram_base
                    if op == D.LW:
                        value = frombytes(ram[o:o + 4], "little")
                        t = lub[lub[lub[mtags[o]][mtags[o + 1]]]
                                [mtags[o + 2]]][mtags[o + 3]]
                    elif op == D.LBU:
                        value = ram[o]
                        t = mtags[o]
                    elif op == D.LB:
                        value = ram[o]
                        if value >= 0x80:
                            value += 0xFFFFFF00
                        t = mtags[o]
                    elif op == D.LHU:
                        value = ram[o] | (ram[o + 1] << 8)
                        t = lub[mtags[o]][mtags[o + 1]]
                    else:  # LH
                        value = ram[o] | (ram[o + 1] << 8)
                        if value >= 0x8000:
                            value += 0xFFFF0000
                        t = lub[mtags[o]][mtags[o + 1]]
                else:
                    self.pc = pc
                    try:
                        value, t = self._mmio_read(addr, size)
                        if op == D.LB and value >= 0x80:
                            value += 0xFFFFFF00
                        elif op == D.LH and value >= 0x8000:
                            value += 0xFFFF0000
                    except BusError:
                        if emitq is not None:
                            emitq.append((EV_FAULT_ACCESS, pc, word, addr))
                        stop = self._fault(CSR.CAUSE_LOAD_FAULT, addr)
                        if stop:
                            reason = stop
                            break
                        pc = self.pc
                        continue
                    if emitq is not None:
                        emitq.append((EV_MMIO_LOAD, pc, word, addr, t))
                if d[1]:
                    regs[d[1]] = value & _MASK32
                    tags[d[1]] = t

            elif op <= D.SW:  # stores
                rs1 = d[2]
                addr = (regs[rs1] + d[4]) & _MASK32
                size = 4 if op == D.SW else (1 if op == D.SB else 2)
                in_ram = ram_base <= addr and addr + size <= ram_end
                if emitq is not None and in_ram:
                    emitq.append((EV_STORE, pc, word, addr))
                if memaddr_req is not None and not flow[tags[rs1]][memaddr_req]:
                    self.pc = pc
                    if not dift.check_execution("mem-addr", tags[rs1],
                                                memaddr_req, pc):
                        if emitq is not None and not in_ram:
                            emitq.append((EV_MMIO_STORE, pc, word, addr))
                        reason = SECURITY
                        break
                value = regs[d[3]]
                t = tags[d[3]]
                if in_ram:
                    o = addr - ram_base
                    if op == D.SW:
                        ram[o:o + 4] = value.to_bytes(4, "little")
                        mtags[o] = t
                        mtags[o + 1] = t
                        mtags[o + 2] = t
                        mtags[o + 3] = t
                    elif op == D.SB:
                        ram[o] = value & 0xFF
                        mtags[o] = t
                    else:
                        ram[o] = value & 0xFF
                        ram[o + 1] = (value >> 8) & 0xFF
                        mtags[o] = t
                        mtags[o + 1] = t
                    if dirty is not None and t != bottom:
                        dirty.add(o >> 12)
                        dirty.add((o + size - 1) >> 12)
                    if jcl and (o >> 4 in jcl
                                or (o + size - 1) >> 4 in jcl):
                        jit.invalidate_write(o, size)
                else:
                    self.pc = pc
                    if emitq is not None:
                        # emitted before the transaction so recorded sink
                        # checks (fired inside it) follow their cause
                        emitq.append((EV_MMIO_STORE, pc, word, addr))
                    try:
                        self._mmio_write(addr, size, value, t)
                    except BusError:
                        stop = self._fault(CSR.CAUSE_STORE_FAULT, addr)
                        if stop:
                            reason = stop
                            break
                        pc = self.pc
                        continue

            elif op <= D.ANDI:  # immediate ALU
                rs1 = d[2]
                a = regs[rs1]
                imm = d[4]
                if op == D.ADDI:
                    value = (a + imm) & _MASK32
                elif op == D.ANDI:
                    value = a & (imm & _MASK32)
                elif op == D.ORI:
                    value = a | (imm & _MASK32)
                elif op == D.XORI:
                    value = a ^ (imm & _MASK32)
                elif op == D.SLTIU:
                    value = 1 if a < (imm & _MASK32) else 0
                else:
                    sa = a - 0x100000000 if a >= 0x80000000 else a
                    value = 1 if sa < imm else 0
                if d[1]:
                    regs[d[1]] = value
                    tags[d[1]] = tags[rs1]

            elif op <= D.SRAI:
                rs1 = d[2]
                a = regs[rs1]
                sh = d[4]
                if op == D.SLLI:
                    value = (a << sh) & _MASK32
                elif op == D.SRLI:
                    value = a >> sh
                else:
                    sa = a - 0x100000000 if a >= 0x80000000 else a
                    value = (sa >> sh) & _MASK32
                if d[1]:
                    regs[d[1]] = value
                    tags[d[1]] = tags[rs1]

            elif op <= D.AND:
                rs1 = d[2]
                rs2 = d[3]
                a = regs[rs1]
                b = regs[rs2]
                if op == D.ADD:
                    value = (a + b) & _MASK32
                elif op == D.SUB:
                    value = (a - b) & _MASK32
                elif op == D.AND:
                    value = a & b
                elif op == D.OR:
                    value = a | b
                elif op == D.XOR:
                    value = a ^ b
                elif op == D.SLL:
                    value = (a << (b & 31)) & _MASK32
                elif op == D.SRL:
                    value = a >> (b & 31)
                elif op == D.SRA:
                    sa = a - 0x100000000 if a >= 0x80000000 else a
                    value = (sa >> (b & 31)) & _MASK32
                elif op == D.SLTU:
                    value = 1 if a < b else 0
                else:
                    sa = a - 0x100000000 if a >= 0x80000000 else a
                    sb = b - 0x100000000 if b >= 0x80000000 else b
                    value = 1 if sa < sb else 0
                if d[1]:
                    regs[d[1]] = value
                    tags[d[1]] = lub[tags[rs1]][tags[rs2]]

            elif op <= D.REMU:
                value = _muldiv(op, regs[d[2]], regs[d[3]])
                if d[1]:
                    regs[d[1]] = value
                    tags[d[1]] = lub[tags[d[2]]][tags[d[3]]]

            elif op == D.FENCE:
                pass

            elif op == D.ECALL:
                self.pc = next_pc
                outcome = self.ecall_handler(self) if self.ecall_handler \
                    else None
                if outcome == "halt":
                    self.halted = True
                    csr.instret += executed
                    csr.cycle += executed
                    return executed, HALT
                if outcome is None:
                    self.pc = pc
                    stop = self._fault(CSR.CAUSE_ECALL_M, 0)
                    if stop:
                        reason = stop
                        break
                pc = self.pc
                continue

            elif op == D.EBREAK:
                self.pc = pc
                self.halted = True
                csr.instret += executed
                csr.cycle += executed
                return executed, EBREAK

            elif op == D.MRET:
                # --- return-address clearance: mepc is a jump target --- #
                if branch_req is not None:
                    epc_tag = csr.tag(CSR.MEPC)
                    if not flow[epc_tag][branch_req]:
                        self.pc = pc
                        if not dift.check_execution("branch", epc_tag,
                                                    branch_req, pc):
                            reason = SECURITY
                            break
                mstatus = csr[CSR.MSTATUS]
                mie = CSR.MSTATUS_MIE if mstatus & CSR.MSTATUS_MPIE else 0
                csr[CSR.MSTATUS] = mie | CSR.MSTATUS_MPIE
                self._update_irq()
                next_pc = csr[CSR.MEPC]

            elif op == D.WFI:
                self.pc = next_pc
                csr.instret += executed
                csr.cycle += executed
                if self.csr[CSR.MIP] & self.csr[CSR.MIE]:
                    # pending but globally disabled: end the quantum so
                    # the kernel can advance time.  _IRQWAIT (not
                    # QUANTUM) so the JIT dispatcher knows the budget
                    # was not exhausted; wrappers translate it back.
                    return executed, _IRQWAIT
                return executed, WFI

            elif op <= D.CSRRCI:
                stop = self._exec_csr(d, next_pc)
                if stop:
                    reason = stop
                    break
                pc = self.pc
                continue

            else:
                self.pc = pc
                stop = self._fault(CSR.CAUSE_ILLEGAL, d[4])
                if stop:
                    reason = stop
                    break
                pc = self.pc
                continue

            pc = next_pc

        self.pc = pc
        csr.instret += executed
        csr.cycle += executed
        return executed, reason

    # ---- decoupled DIFT (monitor consumes the event FIFO) ----------------- #

    def _interp_decoupled(self, n: int) -> Tuple[int, str]:
        """Architectural execution only; all tag state lives in the monitor.

        Mirrors :meth:`_interp_plain` (no per-instruction tag work, no
        JIT/liveness hooks) plus one packet append per retired
        instruction, shaped identically to :meth:`_interp_dift`'s
        recording emissions so both produce byte-identical streams.  The
        core synchronizes with the monitor only at MMIO accesses — a bus
        transaction has irreversible peripheral side effects, so the
        fetch/mem-addr clearance checks inline mode performs *before*
        the transaction run here, core-side, against a fully drained
        monitor — and, in strict mode, after every packet.
        """
        monitor = self._monitor
        assert monitor is not None
        emitq = self._emitq
        assert emitq is not None
        emit = emitq.append
        strict = self._mon_strict
        dift = self.dift
        assert dift is not None
        regs = self.regs
        ram = self.ram
        mtags = self.ram_tags
        assert mtags is not None
        mon_tags = monitor.reg_tags
        ram_base = self.ram_base
        ram_end = self.ram_end
        cache = self._decode_cache
        decode = D.decode
        csr = self.csr
        lub = dift.lub
        flow = dift.flow
        bottom = self._bottom
        zero_is_bottom = bottom == 0
        fetch_req = self._fetch_req
        memaddr_req = self._memaddr_req
        pc = self.pc
        executed = 0
        reason = QUANTUM
        frombytes = int.from_bytes

        while executed < n:
            if self._take_irq:
                self.pc = pc
                if not self._take_interrupt():
                    # strict only: the monitor vetoed the handler entry
                    reason = SECURITY
                    break
                pc = self.pc

            if pc < ram_base or pc + 4 > ram_end or pc & 3:
                self.pc = pc
                cause = (CSR.CAUSE_INSTR_MISALIGNED if pc & 3
                         else CSR.CAUSE_INSTR_FAULT)
                stop = self._fault(cause, pc)
                if stop:
                    reason = stop
                    break
                pc = self.pc
                continue
            off = pc - ram_base
            word = frombytes(ram[off:off + 4], "little")
            d = cache.get(word)
            if d is None:
                d = decode(word)
                cache[word] = d
                self.decode_misses += 1
            op = d[0]
            executed += 1
            next_pc = pc + 4

            if op <= D.BGEU or op > D.SW:  # non-memory: one step packet
                emit((EV_STEP, pc, word))
                if strict:
                    monitor.drain()
                    if monitor.stopped:
                        if monitor.fatal_unit == "fetch":
                            executed -= 1  # inline never retires it
                        reason = SECURITY
                        break

            if op <= D.BGEU:  # control transfer group
                if op >= D.BEQ:
                    a = regs[d[2]]
                    b = regs[d[3]]
                    if op == D.BEQ:
                        taken = a == b
                    elif op == D.BNE:
                        taken = a != b
                    elif op == D.BLTU:
                        taken = a < b
                    elif op == D.BGEU:
                        taken = a >= b
                    else:
                        sa = a - 0x100000000 if a >= 0x80000000 else a
                        sb = b - 0x100000000 if b >= 0x80000000 else b
                        taken = sa < sb if op == D.BLT else sa >= sb
                    if taken:
                        next_pc = (pc + d[4]) & _MASK32
                elif op == D.JAL:
                    if d[1]:
                        regs[d[1]] = next_pc
                    next_pc = (pc + d[4]) & _MASK32
                elif op == D.JALR:
                    target = (regs[d[2]] + d[4]) & 0xFFFFFFFE
                    if d[1]:
                        regs[d[1]] = next_pc
                    next_pc = target
                elif op == D.LUI:
                    if d[1]:
                        regs[d[1]] = d[4]
                else:  # AUIPC
                    if d[1]:
                        regs[d[1]] = (pc + d[4]) & _MASK32

            elif op <= D.LHU:  # loads
                addr = (regs[d[2]] + d[4]) & _MASK32
                size = 4 if op == D.LW else (2 if op in (D.LH, D.LHU) else 1)
                if ram_base <= addr and addr + size <= ram_end:
                    emit((EV_LOAD, pc, word, addr))
                    if strict:
                        monitor.drain()
                        if monitor.stopped:
                            if monitor.fatal_unit == "fetch":
                                executed -= 1
                            reason = SECURITY
                            break
                    o = addr - ram_base
                    if op == D.LW:
                        value = frombytes(ram[o:o + 4], "little")
                    elif op == D.LBU:
                        value = ram[o]
                    elif op == D.LB:
                        value = ram[o]
                        if value >= 0x80:
                            value += 0xFFFFFF00
                    elif op == D.LHU:
                        value = ram[o] | (ram[o + 1] << 8)
                    else:  # LH
                        value = ram[o] | (ram[o + 1] << 8)
                        if value >= 0x8000:
                            value += 0xFFFF0000
                    if d[1]:
                        regs[d[1]] = value & _MASK32
                else:
                    # MMIO synchronization point: catch the monitor up,
                    # then run the pre-transaction clearance checks that
                    # inline mode would have done, against monitor state
                    self.pc = pc
                    monitor.mmio_syncs += 1
                    monitor.drain()
                    if monitor.stopped:
                        executed -= 1  # this instruction never transacted
                        reason = SECURITY
                        break
                    if fetch_req is not None:
                        tsum = (mtags[off] | mtags[off + 1] | mtags[off + 2]
                                | mtags[off + 3])
                        if tsum or not zero_is_bottom:
                            itag = lub[lub[lub[mtags[off]][mtags[off + 1]]]
                                       [mtags[off + 2]]][mtags[off + 3]]
                            if not flow[itag][fetch_req]:
                                if not dift.check_execution(
                                        "fetch", itag, fetch_req, pc):
                                    emit((EV_STEP, pc, word))
                                    monitor.halt_consume("fetch")
                                    executed -= 1
                                    reason = SECURITY
                                    break
                    rtag = mon_tags[d[2]]
                    if memaddr_req is not None and \
                            not flow[rtag][memaddr_req]:
                        if not dift.check_execution("mem-addr", rtag,
                                                    memaddr_req, pc):
                            emit((EV_MMIO_LOAD, pc, word, addr, bottom))
                            monitor.halt_consume("mem-addr")
                            reason = SECURITY
                            break
                    try:
                        value, t = self._mmio_read(addr, size)
                        if op == D.LB and value >= 0x80:
                            value += 0xFFFFFF00
                        elif op == D.LH and value >= 0x8000:
                            value += 0xFFFF0000
                    except BusError:
                        emit((EV_FAULT_ACCESS, pc, word, addr))
                        if strict:
                            monitor.drain()
                        stop = self._fault(CSR.CAUSE_LOAD_FAULT, addr)
                        if stop:
                            reason = stop
                            break
                        pc = self.pc
                        continue
                    emit((EV_MMIO_LOAD, pc, word, addr, t))
                    if strict:
                        monitor.drain()  # writeback apply; cannot stop
                    if d[1]:
                        regs[d[1]] = value & _MASK32

            elif op <= D.SW:  # stores
                addr = (regs[d[2]] + d[4]) & _MASK32
                size = 4 if op == D.SW else (1 if op == D.SB else 2)
                value = regs[d[3]]
                if ram_base <= addr and addr + size <= ram_end:
                    emit((EV_STORE, pc, word, addr))
                    if strict:
                        monitor.drain()
                        if monitor.stopped:
                            if monitor.fatal_unit == "fetch":
                                executed -= 1
                            reason = SECURITY
                            break
                    o = addr - ram_base
                    if op == D.SW:
                        ram[o:o + 4] = value.to_bytes(4, "little")
                    elif op == D.SB:
                        ram[o] = value & 0xFF
                    else:
                        ram[o] = value & 0xFF
                        ram[o + 1] = (value >> 8) & 0xFF
                else:
                    self.pc = pc
                    monitor.mmio_syncs += 1
                    monitor.drain()
                    if monitor.stopped:
                        executed -= 1
                        reason = SECURITY
                        break
                    if fetch_req is not None:
                        tsum = (mtags[off] | mtags[off + 1] | mtags[off + 2]
                                | mtags[off + 3])
                        if tsum or not zero_is_bottom:
                            itag = lub[lub[lub[mtags[off]][mtags[off + 1]]]
                                       [mtags[off + 2]]][mtags[off + 3]]
                            if not flow[itag][fetch_req]:
                                if not dift.check_execution(
                                        "fetch", itag, fetch_req, pc):
                                    emit((EV_STEP, pc, word))
                                    monitor.halt_consume("fetch")
                                    executed -= 1
                                    reason = SECURITY
                                    break
                    rtag = mon_tags[d[2]]
                    if memaddr_req is not None and \
                            not flow[rtag][memaddr_req]:
                        if not dift.check_execution("mem-addr", rtag,
                                                    memaddr_req, pc):
                            emit((EV_MMIO_STORE, pc, word, addr))
                            monitor.halt_consume("mem-addr")
                            reason = SECURITY
                            break
                    # emitted before the transaction so recorded sink
                    # checks (fired inside it) follow their cause
                    emit((EV_MMIO_STORE, pc, word, addr))
                    try:
                        self._mmio_write(addr, size, value, mon_tags[d[3]])
                    except BusError:
                        if strict:
                            monitor.drain()
                        stop = self._fault(CSR.CAUSE_STORE_FAULT, addr)
                        if stop:
                            reason = stop
                            break
                        pc = self.pc
                        continue
                    if strict:
                        monitor.drain()

            elif op <= D.ANDI:  # immediate ALU
                a = regs[d[2]]
                imm = d[4]
                if op == D.ADDI:
                    value = (a + imm) & _MASK32
                elif op == D.ANDI:
                    value = a & (imm & _MASK32)
                elif op == D.ORI:
                    value = a | (imm & _MASK32)
                elif op == D.XORI:
                    value = a ^ (imm & _MASK32)
                elif op == D.SLTIU:
                    value = 1 if a < (imm & _MASK32) else 0
                else:  # SLTI
                    sa = a - 0x100000000 if a >= 0x80000000 else a
                    value = 1 if sa < imm else 0
                if d[1]:
                    regs[d[1]] = value

            elif op <= D.SRAI:  # immediate shifts
                a = regs[d[2]]
                sh = d[4]
                if op == D.SLLI:
                    value = (a << sh) & _MASK32
                elif op == D.SRLI:
                    value = a >> sh
                else:
                    sa = a - 0x100000000 if a >= 0x80000000 else a
                    value = (sa >> sh) & _MASK32
                if d[1]:
                    regs[d[1]] = value

            elif op <= D.AND:  # register ALU
                a = regs[d[2]]
                b = regs[d[3]]
                if op == D.ADD:
                    value = (a + b) & _MASK32
                elif op == D.SUB:
                    value = (a - b) & _MASK32
                elif op == D.AND:
                    value = a & b
                elif op == D.OR:
                    value = a | b
                elif op == D.XOR:
                    value = a ^ b
                elif op == D.SLL:
                    value = (a << (b & 31)) & _MASK32
                elif op == D.SRL:
                    value = a >> (b & 31)
                elif op == D.SRA:
                    sa = a - 0x100000000 if a >= 0x80000000 else a
                    value = (sa >> (b & 31)) & _MASK32
                elif op == D.SLTU:
                    value = 1 if a < b else 0
                else:  # SLT
                    sa = a - 0x100000000 if a >= 0x80000000 else a
                    sb = b - 0x100000000 if b >= 0x80000000 else b
                    value = 1 if sa < sb else 0
                if d[1]:
                    regs[d[1]] = value

            elif op <= D.REMU:  # M extension
                value = _muldiv(op, regs[d[2]], regs[d[3]])
                if d[1]:
                    regs[d[1]] = value

            elif op == D.FENCE:
                pass

            elif op == D.ECALL:
                self.pc = next_pc
                outcome = self.ecall_handler(self) if self.ecall_handler \
                    else None
                if outcome == "halt":
                    self.halted = True
                    csr.instret += executed
                    csr.cycle += executed
                    return executed, HALT
                if outcome is None:
                    self.pc = pc
                    stop = self._fault(CSR.CAUSE_ECALL_M, 0)
                    if stop:
                        reason = stop
                        break
                pc = self.pc
                continue

            elif op == D.EBREAK:
                self.pc = pc
                self.halted = True
                csr.instret += executed
                csr.cycle += executed
                return executed, EBREAK

            elif op == D.MRET:
                # monitor performed the mepc clearance check when it
                # applied the step packet (above in strict, at the next
                # drain in async)
                mstatus = csr[CSR.MSTATUS]
                mie = CSR.MSTATUS_MIE if mstatus & CSR.MSTATUS_MPIE else 0
                csr[CSR.MSTATUS] = mie | CSR.MSTATUS_MPIE
                self._update_irq()
                next_pc = csr[CSR.MEPC]

            elif op == D.WFI:
                self.pc = next_pc
                csr.instret += executed
                csr.cycle += executed
                if self.csr[CSR.MIP] & self.csr[CSR.MIE]:
                    # pending but globally disabled: end the quantum so
                    # the kernel can advance time (see _interp_plain)
                    return executed, _IRQWAIT
                return executed, WFI

            elif op <= D.CSRRCI:  # CSR group
                stop = self._exec_csr(d, next_pc)
                if stop:
                    reason = stop
                    break
                pc = self.pc
                continue

            else:  # ILLEGAL
                self.pc = pc
                stop = self._fault(CSR.CAUSE_ILLEGAL, d[4])
                if stop:
                    reason = stop
                    break
                pc = self.pc
                continue

            pc = next_pc

        self.pc = pc
        csr.instret += executed
        csr.cycle += executed
        return executed, reason

    # ---- CSR instructions (shared; cold path) ------------------------------ #

    def _exec_csr(self, d: D.Decoded, next_pc: int) -> Optional[str]:
        """Execute a Zicsr instruction.  Returns a stop reason or None."""
        op, rd, rs1, __, csr_addr = d
        csr = self.csr
        if not csr.known(csr_addr):
            self.pc = next_pc - 4
            return self._fault(CSR.CAUSE_ILLEGAL, 0)

        old = csr.read(csr_addr)
        old_tag = csr.tag(csr_addr)
        if op in (D.CSRRW, D.CSRRS, D.CSRRC):
            src = self.regs[rs1]
            src_tag = self.tags[rs1]
        else:
            src = rs1  # zimm
            src_tag = self._bottom

        write = True
        if op in (D.CSRRW, D.CSRRWI):
            new = src
            new_tag = src_tag
        elif op in (D.CSRRS, D.CSRRSI):
            new = old | src
            new_tag = src_tag if self.dift is None else \
                self.dift.lub[old_tag][src_tag]
            write = rs1 != 0
        else:  # CSRRC / CSRRCI
            new = old & ~src
            new_tag = src_tag if self.dift is None else \
                self.dift.lub[old_tag][src_tag]
            write = rs1 != 0

        if write:
            if not csr.write(csr_addr, new):
                self.pc = next_pc - 4
                return self._fault(CSR.CAUSE_ILLEGAL, 0)
            if self.dift is not None and self._monitor is None:
                csr.set_tag(csr_addr, new_tag)
            if csr_addr in (CSR.MSTATUS, CSR.MIE, CSR.MIP):
                self._update_irq()
        if rd:
            self.regs[rd] = old
            self.tags[rd] = old_tag
        self.pc = next_pc
        return None

    def __repr__(self) -> str:
        return (f"Cpu({self.name!r}, pc={self.pc:#010x}, "
                f"instret={self.csr.instret}, "
                f"mode={'VP+' if self.dift else 'VP'})")


def _muldiv(op: int, a: int, b: int) -> int:
    """RV32M semantics on unsigned 32-bit register values."""
    if op == D.MUL:
        return (a * b) & _MASK32
    sa = a - 0x100000000 if a >= 0x80000000 else a
    sb = b - 0x100000000 if b >= 0x80000000 else b
    if op == D.MULH:
        return ((sa * sb) >> 32) & _MASK32
    if op == D.MULHSU:
        return ((sa * b) >> 32) & _MASK32
    if op == D.MULHU:
        return ((a * b) >> 32) & _MASK32
    if op == D.DIV:
        if b == 0:
            return _MASK32
        if sa == -0x80000000 and sb == -1:
            return 0x80000000
        q = abs(sa) // abs(sb)
        return (q if (sa < 0) == (sb < 0) else -q) & _MASK32
    if op == D.DIVU:
        return _MASK32 if b == 0 else a // b
    if op == D.REM:
        if b == 0:
            return a
        if sa == -0x80000000 and sb == -1:
            return 0
        r = abs(sa) % abs(sb)
        return (r if sa >= 0 else -r) & _MASK32
    # REMU
    return a if b == 0 else a % b
