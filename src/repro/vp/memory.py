"""Tainted RAM as a TLM target.

The memory stores data bytes plus (on a DIFT platform) one security tag per
byte, mirroring the paper's modification 3: the memory interface carries
``Taint<uint8_t>`` arrays through TLM transactions.  It also grants DMI so
the ISS can access RAM without per-access transaction overhead — the same
optimization the original RISC-V VP uses.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import BusError
from repro.state import decode_sparse_pages, encode_sparse_pages
from repro.sysc.kernel import Kernel
from repro.sysc.module import Module
from repro.sysc.time import SimTime
from repro.sysc.tlm import OK, GenericPayload, TargetSocket


class Memory(Module):
    """Byte-addressable RAM with optional per-byte security tags."""

    def __init__(self, kernel: Kernel, name: str, size: int,
                 tagged: bool = False, default_tag: int = 0,
                 access_delay: SimTime = SimTime.ns(5)):
        super().__init__(kernel, name)
        self.size = size
        self.data = bytearray(size)
        self.tags: Optional[bytearray] = (
            bytearray([default_tag]) * size if tagged else None)
        self.default_tag = default_tag
        self.access_delay = access_delay
        self.tsock = TargetSocket(f"{name}.tsock")
        self.tsock.register_b_transport(self.transport)
        # demand-DIFT hook: called as fn(offset, length, tags) whenever
        # tags are written outside the ISS hot loop (TLM/DMA writes,
        # loader classification, host-side pokes)
        self._taint_listener = None
        # trace-compiler hook: called as fn(offset, length) whenever
        # *data* bytes are written outside the ISS hot loop, so compiled
        # code pages stay coherent with DMA and host-side writes (the
        # ISS store paths check code pages inline instead)
        self._write_listener = None
        # merge-tags support (``GenericPayload.merge_tags``): the raw
        # LUB table plus the engine's memoized uniform-tag translate
        # tables; None until the platform wires an engine in
        self._lub = None
        self._lub_translation = None

    def set_taint_listener(self, fn) -> None:
        """Register a callback observing every non-ISS tag write."""
        self._taint_listener = fn

    def set_write_listener(self, fn) -> None:
        """Register a callback observing every non-ISS data write."""
        self._write_listener = fn

    def set_lub_table(self, lub_table, translation_fn) -> None:
        """Enable merge-tags writes (``dst = lub(dst, src)``).

        ``lub_table`` is the engine's raw dense table; ``translation_fn``
        maps a uniform tag to a 256-entry translate table (see
        :meth:`repro.dift.engine.DiftEngine.lub_translation`) so the
        common uniform-source burst merges at C speed.
        """
        self._lub = lub_table
        self._lub_translation = translation_fn

    def transport(self, trans: GenericPayload, delay: SimTime) -> SimTime:
        """TLM blocking transport (payload address is memory-local)."""
        address = trans.address
        length = trans.length
        if address < 0 or address + length > self.size:
            trans.response = "address-error"
            return delay
        if trans.is_read():
            trans.data[:] = self.data[address:address + length]
            if trans.tags is not None and self.tags is not None:
                trans.tags[:] = self.tags[address:address + length]
        else:
            self.data[address:address + length] = trans.data
            if self._write_listener is not None:
                self._write_listener(address, length)
            if self.tags is not None:
                if trans.tags is not None and trans.merge_tags and length:
                    if self._lub is None:
                        raise BusError(
                            "merge-tags write but no LUB table attached "
                            "(Memory.set_lub_table)", address)
                    src = bytes(trans.tags)
                    if src.count(src[0]) == length:
                        # uniform source (the common DMA burst): one
                        # C-speed translate over the destination span
                        table = self._lub_translation(src[0])
                        merged = bytes(
                            self.tags[address:address + length]
                        ).translate(table)
                    else:
                        lub = self._lub
                        dst = self.tags
                        merged = bytes(
                            lub[dst[address + i]][s]
                            for i, s in enumerate(src))
                    self.tags[address:address + length] = merged
                    trans.tags[:] = merged
                    if self._taint_listener is not None:
                        self._taint_listener(address, length, merged)
                elif trans.tags is not None:
                    self.tags[address:address + length] = trans.tags
                    if self._taint_listener is not None:
                        self._taint_listener(address, length, trans.tags)
                else:
                    self.tags[address:address + length] = \
                        bytes([self.default_tag]) * length
                    if self._taint_listener is not None:
                        self._taint_listener(address, length,
                                             self.default_tag)
        trans.response = OK
        return delay + self.access_delay

    # ------------------------------------------------------------------ #
    # host-side (loader / test) access, bypassing TLM
    # ------------------------------------------------------------------ #

    def load(self, offset: int, blob: bytes, tag: Optional[int] = None) -> None:
        """Copy ``blob`` into memory; optionally tag the written bytes."""
        self.data[offset:offset + len(blob)] = blob
        if self._write_listener is not None:
            self._write_listener(offset, len(blob))
        if self.tags is not None and tag is not None:
            self.tags[offset:offset + len(blob)] = bytes([tag]) * len(blob)
            if self._taint_listener is not None:
                self._taint_listener(offset, len(blob), tag)

    def read_word(self, offset: int) -> int:
        return int.from_bytes(self.data[offset:offset + 4], "little")

    def write_word(self, offset: int, value: int,
                   tag: Optional[int] = None) -> None:
        self.data[offset:offset + 4] = (value & 0xFFFFFFFF).to_bytes(
            4, "little")
        if self._write_listener is not None:
            self._write_listener(offset, 4)
        if self.tags is not None and tag is not None:
            self.tags[offset:offset + 4] = bytes([tag]) * 4
            if self._taint_listener is not None:
                self._taint_listener(offset, 4, tag)

    def read_block(self, offset: int, length: int) -> bytes:
        return bytes(self.data[offset:offset + length])

    def tag_of(self, offset: int) -> int:
        return self.tags[offset] if self.tags is not None else 0

    def fill_tags(self, offset: int, length: int, tag: int) -> None:
        if self.tags is not None:
            self.tags[offset:offset + length] = bytes([tag]) * length
            if self._taint_listener is not None:
                self._taint_listener(offset, length, tag)

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Sparse page encoding: only pages differing from the all-zero
        (data) / all-default-tag (shadow) background are stored."""
        state = {
            "size": self.size,
            "data_pages": encode_sparse_pages(self.data, 0),
        }
        if self.tags is not None:
            state["tag_pages"] = encode_sparse_pages(self.tags,
                                                     self.default_tag)
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore **in place** — the CPU holds DMI references into the
        same bytearrays, which re-assignment would silently orphan.
        The taint listener is deliberately not fired: liveness state is
        restored from its own snapshot section, not re-derived."""
        if state["size"] != self.size:
            raise ValueError(
                f"snapshot RAM size {state['size']} != configured "
                f"{self.size}")
        decode_sparse_pages(state["data_pages"], self.data, 0)
        if self.tags is not None:
            decode_sparse_pages(state.get("tag_pages", {}), self.tags,
                                self.default_tag)
