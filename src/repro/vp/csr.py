"""Machine-mode CSR file (the subset the VP's guests need).

Implements ``mstatus``/``mie``/``mip``/``mtvec``/``mepc``/``mcause``/
``mtval``/``mscratch`` plus the counters.  On the DIFT platform every CSR
also carries a security tag so data written to a CSR keeps its class — the
paper's execution-clearance check on the "interrupt/trap handler address"
(Section V-B2a) reads the ``mtvec`` tag.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

# CSR addresses
MSTATUS = 0x300
MISA = 0x301
MIE = 0x304
MTVEC = 0x305
MSCRATCH = 0x340
MEPC = 0x341
MCAUSE = 0x342
MTVAL = 0x343
MIP = 0x344
MCYCLE = 0xB00
MINSTRET = 0xB02
MHARTID = 0xF14
CYCLE = 0xC00
TIME = 0xC01
INSTRET = 0xC02

# mstatus bits
MSTATUS_MIE = 1 << 3
MSTATUS_MPIE = 1 << 7

# interrupt bits (mie / mip)
MIP_MSIP = 1 << 3
MIP_MTIP = 1 << 7
MIP_MEIP = 1 << 11

# mcause values
CAUSE_INSTR_MISALIGNED = 0
CAUSE_INSTR_FAULT = 1
CAUSE_ILLEGAL = 2
CAUSE_BREAKPOINT = 3
CAUSE_LOAD_FAULT = 5
CAUSE_STORE_FAULT = 7
CAUSE_ECALL_M = 11
IRQ_M_SOFT = 3
IRQ_M_TIMER = 7
IRQ_M_EXT = 11
INTERRUPT_BIT = 1 << 31

#: RV32IM with machine mode: misa MXL=1 (RV32), I + M bits
_MISA_VALUE = (1 << 30) | (1 << 8) | (1 << 12)


class CsrFile:
    """CSR storage + tag shadow for one hart."""

    def __init__(self, bottom_tag: int = 0,
                 time_fn: Optional[Callable[[], int]] = None):
        self._values: Dict[int, int] = {
            MSTATUS: 0,
            MISA: _MISA_VALUE,
            MIE: 0,
            MTVEC: 0,
            MSCRATCH: 0,
            MEPC: 0,
            MCAUSE: 0,
            MTVAL: 0,
            MIP: 0,
            MHARTID: 0,
        }
        self._tags: Dict[int, int] = {}
        self._bottom = bottom_tag
        self._time_fn = time_fn
        # counters are fed by the CPU
        self.instret = 0
        self.cycle = 0

    # ------------------------------------------------------------------ #
    # raw access used by trap logic
    # ------------------------------------------------------------------ #

    def __getitem__(self, csr: int) -> int:
        return self._values.get(csr, 0)

    def __setitem__(self, csr: int, value: int) -> None:
        self._values[csr] = value & 0xFFFFFFFF

    def tag(self, csr: int) -> int:
        return self._tags.get(csr, self._bottom)

    def set_tag(self, csr: int, tag: int) -> None:
        self._tags[csr] = tag

    def tag_values(self):
        """All explicitly written CSR tags (unwritten CSRs are bottom)."""
        return self._tags.values()

    # ------------------------------------------------------------------ #
    # instruction-level access (csrrw family)
    # ------------------------------------------------------------------ #

    def read(self, csr: int) -> int:
        """Read with counter / time special cases."""
        if csr in (MCYCLE, CYCLE):
            return self.cycle & 0xFFFFFFFF
        if csr in (MINSTRET, INSTRET):
            return self.instret & 0xFFFFFFFF
        if csr == TIME:
            return (self._time_fn() if self._time_fn else 0) & 0xFFFFFFFF
        return self._values.get(csr, 0)

    def write(self, csr: int, value: int) -> bool:
        """Write a CSR; returns False for read-only CSRs (illegal write)."""
        if csr >= 0xC00 or csr == MHARTID or csr == MISA:
            return False
        value &= 0xFFFFFFFF
        if csr == MSTATUS:
            # WARL: only MIE and MPIE are implemented
            value &= MSTATUS_MIE | MSTATUS_MPIE
        elif csr in (MIE, MIP):
            value &= MIP_MSIP | MIP_MTIP | MIP_MEIP
        elif csr == MTVEC:
            value &= 0xFFFFFFFC  # direct mode only
        self._values[csr] = value
        return True

    def known(self, csr: int) -> bool:
        return csr in self._values or csr in (
            MCYCLE, MINSTRET, CYCLE, TIME, INSTRET)

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        return {
            "values": {str(csr): value
                       for csr, value in self._values.items()},
            "tags": {str(csr): tag for csr, tag in self._tags.items()},
            "instret": self.instret,
            "cycle": self.cycle,
        }

    def load_state_dict(self, state: dict) -> None:
        self._values = {int(csr): value
                        for csr, value in state["values"].items()}
        self._tags = {int(csr): tag for csr, tag in state["tags"].items()}
        self.instret = state["instret"]
        self.cycle = state["cycle"]
