"""Platform construction configuration.

:class:`PlatformConfig` is the single value object describing how a
:class:`~repro.vp.platform.Platform` is built.  It consolidates the ten
keyword arguments ``Platform.__init__`` accumulated over time, gives them
one serialization (:meth:`to_json` / :meth:`from_json`), and is what gets
embedded in ``repro.snapshot/1`` headers and campaign job records — so a
snapshot or a job log always carries enough information to rebuild an
identically-configured platform.

The config is frozen: a platform's construction parameters never change
after the fact, and snapshot headers must not be mutable by accident.
Use :func:`dataclasses.replace` to derive variants (e.g. swapping the
``obs`` sink when restoring a snapshot under a fresh metrics registry).

``obs`` is deliberately excluded from serialization — an
:class:`~repro.obs.Observability` is a host-side measurement sink, not a
simulation parameter; two runs with different ``obs`` wirings are the
same simulated machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional

from repro.dift.engine import RAISE
from repro.policy.policy import SecurityPolicy
from repro.policy.serialize import policy_from_dict, policy_to_dict
from repro.sysc.time import SimTime

#: Defaults mirrored from the historical ``Platform.__init__`` signature.
DEFAULT_RAM_SIZE = 4 * 1024 * 1024
DEFAULT_QUANTUM = 8192
DEFAULT_SEED = 0x5EED


@dataclass(frozen=True)
class PlatformConfig:
    """Frozen construction parameters for one :class:`Platform`.

    Field order matches the historical keyword order of
    ``Platform.__init__`` so positional migration stays mechanical.
    """

    policy: Optional[SecurityPolicy] = None
    engine_mode: str = RAISE
    ram_size: int = DEFAULT_RAM_SIZE
    quantum: int = DEFAULT_QUANTUM
    clock_period: SimTime = field(default_factory=lambda: SimTime.ns(10))
    sensor_period: SimTime = field(default_factory=lambda: SimTime.ms(25))
    aes_declassify_to: Optional[str] = None
    seed: int = DEFAULT_SEED
    obs: object = None
    dift_mode: str = "full"
    #: Trace compiler: ``False`` off, ``True`` on with the default
    #: hotness threshold, or an ``int`` to set the threshold directly.
    #: Excluded from serialization like ``obs``: compiled and
    #: interpreted runs are the same simulated machine (the differential
    #: suite holds them to identical snapshots), so jit-ness is a
    #: host-side execution strategy, not a simulation parameter.
    jit: object = False
    #: Event-stream recording: a path the platform writes the
    #: ``repro.dift.events/1`` stream to, or ``None``.  Excluded from
    #: serialization like ``obs``/``jit`` — a recorded and an unrecorded
    #: run are the same simulated machine (and the stream header itself
    #: must not embed the output path it is being written to).
    record_events: Optional[str] = None

    # ------------------------------------------------------------------ #
    # serialization (shared by snapshot headers and campaign records)
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        """Plain-dict form: policy via ``repro.policy.serialize``, times
        as picosecond integers, ``obs`` omitted (host-side only)."""
        return {
            "policy": (policy_to_dict(self.policy)
                       if self.policy is not None else None),
            "engine_mode": self.engine_mode,
            "ram_size": self.ram_size,
            "quantum": self.quantum,
            "clock_period_ps": self.clock_period.ps,
            "sensor_period_ps": self.sensor_period.ps,
            "aes_declassify_to": self.aes_declassify_to,
            "seed": self.seed,
            "dift_mode": self.dift_mode,
        }

    @classmethod
    def from_json(cls, data: dict, obs=None, jit=False,
                  record_events=None) -> "PlatformConfig":
        """Inverse of :meth:`to_json`; ``obs``, ``jit`` and
        ``record_events`` are re-attached by the caller since they never
        travel through JSON."""
        policy_data = data.get("policy")
        return cls(
            policy=(policy_from_dict(policy_data)
                    if policy_data is not None else None),
            engine_mode=data["engine_mode"],
            ram_size=data["ram_size"],
            quantum=data["quantum"],
            clock_period=SimTime(data["clock_period_ps"]),
            sensor_period=SimTime(data["sensor_period_ps"]),
            aes_declassify_to=data.get("aes_declassify_to"),
            seed=data["seed"],
            obs=obs,
            dift_mode=data["dift_mode"],
            jit=jit,
            record_events=record_events,
        )

    def __repr__(self) -> str:
        parts = []
        for f in fields(self):
            if f.name in ("policy", "obs"):
                value = getattr(self, f.name)
                parts.append(f"{f.name}={'set' if value is not None else None}")
            else:
                parts.append(f"{f.name}={getattr(self, f.name)!r}")
        return f"PlatformConfig({', '.join(parts)})"
