"""Program loading + load-time classification.

Loading a guest binary into the VP does two things:

1. copy the flat image into RAM at its link base;
2. on a DIFT platform, apply the security policy's *memory-region
   classifications* to the shadow tags — e.g. "the program image is
   High-Integrity" (code-injection experiment) or "these 8 bytes are the
   (HC,HI) secret key" (immobilizer case study).

Region rules are applied in declaration order, so later (narrower) rules
override earlier (broader) ones, as documented on
:meth:`repro.policy.policy.SecurityPolicy.classify_region`.
"""

from __future__ import annotations

from typing import Optional

from repro.asm.assembler import Program
from repro.dift.engine import DiftEngine
from repro.errors import SimulationError
from repro.vp.memory import Memory


def load_program(memory: Memory, program: Program, ram_base: int,
                 engine: Optional[DiftEngine] = None) -> None:
    """Load ``program`` into ``memory`` and classify tags per the policy."""
    offset = program.base - ram_base
    if offset < 0 or offset + program.size > memory.size:
        raise SimulationError(
            f"program [{program.base:#x}, {program.end:#x}) does not fit in "
            f"RAM [{ram_base:#x}, {ram_base + memory.size:#x})")
    memory.load(offset, program.image,
                tag=engine.default_tag if engine else None)
    if engine is None or memory.tags is None:
        return
    for region in engine.policy.iter_regions():
        start = max(region.start, ram_base)
        end = min(region.end, ram_base + memory.size)
        if start >= end:
            continue
        tag = engine.policy.tag_of(region.security_class)
        memory.fill_tags(start - ram_base, end - start, tag)
