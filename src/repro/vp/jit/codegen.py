"""Python source generation for superblocks.

Each superblock is compiled once into a specialized closure::

    fn(cpu, limit) -> (count, exit_kind)

with registers hoisted into locals, the decoded tuple's constants
folded into the source, one writeback per exit, and — for DIFT blocks —
tag propagation fused inline.  Exit kinds:

* ``0`` — block complete: ``cpu.pc`` points at the successor, ``count``
  instructions retired.
* ``1`` — side exit *before* an instruction: ``cpu.pc`` points at that
  instruction, ``count`` covers only the instructions before it, and the
  interpreter re-executes from there (MMIO access, bounds fault, a DIFT
  clearance that needs ``check_execution``, or a failed fetch guard with
  ``count == 0``).  Nothing of the exiting instruction has retired, so
  interpretation from ``cpu.pc`` is exact.
* ``2`` — self-modifying-code exit *after* a store into a code line: the
  store has fully retired (``count`` includes it), the block has already
  called the invalidation hook, and ``cpu.pc`` points at the successor.

Blocks whose terminator jumps back to their own entry are compiled in
looping form: the body re-enters locally (``while True``) until the
branch falls out or the remaining quantum budget cannot fit another
iteration, which is what buys the >=3x on tight loops — one dispatch,
one writeback, thousands of retired instructions.

Correctness notes (the differential suite enforces all of these):

* Generated code never decodes and never touches ``cpu._decode_cache``;
  the builder only accepted words already in the cache, so cache
  population — and the ``cpu.decode_cache.*`` gauges and snapshot
  section — match interpreted runs exactly.
* The DIFT fetch guard side-exits whenever any byte tag under the block
  is not lattice bottom.  ``flow[bottom][req]`` is True by lattice
  construction (bottom reaches every class), so an all-bottom range is
  exactly the case where the interpreter's per-instruction fetch check
  passes without calling ``check_execution``.  The guard is re-checked
  only at block entry: the tags under the block can change mid-block
  only through the block's own stores, and those take the SMC exit.
* Clearance checks are compiled as raw ``flow`` lookups that side-exit
  on failure; the interpreter then repeats the lookup and performs the
  ``check_execution`` bookkeeping (``checks_performed``, violation
  records, RAISE-mode exceptions) with identical arguments.
* The caller guarantees ``regs[0] == 0`` (and ``tags[0] == bottom`` for
  DIFT blocks), so x0 operands fold to literals.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.vp import decode as D
from repro.vp.cpu import _muldiv

_MASK32 = 0xFFFFFFFF


class Superblock:
    """A compiled superblock plus its dispatch bookkeeping."""

    __slots__ = ("entry", "length", "dift", "loop", "fn", "lines",
                 "source", "completes", "sidexits", "barren")

    def __init__(self, entry: int, length: int, dift: bool, loop: bool,
                 fn, lines: Tuple[int, ...], source: str):
        self.entry = entry
        self.length = length
        self.dift = dift
        self.loop = loop
        self.fn = fn
        self.lines = lines     # 16-byte RAM lines holding the block's code
        self.source = source
        self.completes = 0     # exits with kind 0
        self.sidexits = 0      # exits with kind 1 or 2
        self.barren = 0        # kind-1 exits that retired nothing

    def __repr__(self) -> str:
        kind = "dift" if self.dift else "plain"
        shape = "loop" if self.loop else "line"
        return (f"Superblock({self.entry:#010x}, len={self.length}, "
                f"{kind}, {shape})")


def compile_block(cpu, code_lines, invalidate_write, instrs,
                  terminated: bool, dift: bool) -> Optional[Superblock]:
    """Compile ``instrs`` (from the builder) into a :class:`Superblock`.

    Returns ``None`` for shapes the generator does not support (none
    exist today for builder-approved blocks; the escape hatch keeps a
    decode-table drift from turning into a miscompile).
    """
    entry = instrs[0][0]
    length = len(instrs)
    last_pc, last_d = instrs[-1]
    base = cpu.ram_base
    end = cpu.ram_end
    bottom = cpu._bottom
    fetch_req = cpu._fetch_req if dift else None
    branch_req = cpu._branch_req if dift else None
    memaddr_req = cpu._memaddr_req if dift else None

    loop = False
    if terminated:
        top_op = last_d[0]
        if top_op == D.JAL or D.BEQ <= top_op <= D.BGEU:
            loop = ((last_pc + last_d[4]) & _MASK32) == entry

    # ---- register read/write sets ---------------------------------- #
    reads: set = set()
    writes: set = set()
    for __, d in instrs:
        op, rd, rs1, rs2, __imm = d
        if op in (D.LUI, D.AUIPC, D.JAL):
            if rd:
                writes.add(rd)
        elif op == D.JALR:
            if rs1:
                reads.add(rs1)
            if rd:
                writes.add(rd)
        elif D.BEQ <= op <= D.BGEU:
            if rs1:
                reads.add(rs1)
            if rs2:
                reads.add(rs2)
        elif op <= D.LHU:  # loads
            if rs1:
                reads.add(rs1)
            if rd:
                writes.add(rd)
        elif op <= D.SW:  # stores
            if rs1:
                reads.add(rs1)
            if rs2:
                reads.add(rs2)
        elif op <= D.SRAI:  # imm ALU + shifts
            if rs1:
                reads.add(rs1)
            if rd:
                writes.add(rd)
        elif op <= D.REMU:  # reg ALU + muldiv
            if rs1:
                reads.add(rs1)
            if rs2:
                reads.add(rs2)
            if rd:
                writes.add(rd)
        elif op == D.FENCE:
            pass
        else:  # pragma: no cover - builder never passes these through
            return None
    hoisted = sorted(reads | writes)
    wb_regs = sorted(writes)

    # ---- expression helpers ---------------------------------------- #
    def rx(j: int) -> str:
        return "0" if j == 0 else f"r{j}"

    def tx(j: int) -> str:
        return str(bottom) if j == 0 else f"t{j}"

    def signed(expr: str, tmp: str) -> Tuple[List[str], str]:
        if expr == "0":
            return [], "0"
        return ([f"{tmp} = {expr} - 0x100000000 "
                 f"if {expr} >= 0x80000000 else {expr}"], tmp)

    def addr_expr(rs1: int, imm: int) -> str:
        if rs1 == 0:
            return str(imm & _MASK32)
        if imm == 0:
            return rx(rs1)
        return f"({rx(rs1)} + {imm}) & 0xFFFFFFFF"

    off_name = "a" if base == 0 else "o"

    def offs(k: int) -> str:
        return off_name if k == 0 else f"{off_name} + {k}"

    wb_lines: List[str] = [f"regs[{j}] = r{j}" for j in wb_regs]
    if dift:
        wb_lines += [f"tags[{j}] = t{j}" for j in wb_regs]

    lines: List[str] = []

    def cnt(i: int) -> str:
        if not loop:
            return str(i)
        return "n" if i == 0 else f"n + {i}"

    def emit(ind: int, text: str) -> None:
        lines.append("    " * ind + text)

    def emit_side_exit(ind: int, pc_i: int, count_expr: str) -> None:
        for ln in wb_lines:
            emit(ind, ln)
        emit(ind, f"cpu.pc = {pc_i}")
        emit(ind, f"return {count_expr}, 1")

    # ---- prologue --------------------------------------------------- #
    emit(0, "def block(cpu, limit, fb=FB, md=MD, cp=CP, iv=IV, "
            "lb=LB, fl=FL):")
    if dift:
        emit(1, "mt = cpu.ram_tags")
        if fetch_req is not None:
            lo = entry - base
            hi = last_pc + 4 - base
            emit(1, f"if mt.count({bottom}, {lo}, {hi}) != {hi - lo}:")
            emit(2, "return 0, 1")
        emit(1, "tags = cpu.tags")
    emit(1, "regs = cpu.regs")
    emit(1, "ram = cpu.ram")
    for j in hoisted:
        emit(1, f"r{j} = regs[{j}]")
    if dift:
        for j in hoisted:
            emit(1, f"t{j} = tags[{j}]")

    body = 1
    if loop:
        emit(1, "n = 0")
        emit(1, "while True:")
        body = 2

    # ---- straight-line instructions -------------------------------- #
    straight = instrs[:-1] if terminated else instrs

    for i, (pc, d) in enumerate(straight):
        op, rd, rs1, rs2, imm = d
        emit(body, f"# [{cnt(i)}] {pc:#010x} {D.OP_NAMES[op]}")

        if op == D.LUI:
            if rd:
                emit(body, f"r{rd} = {imm}")
                if dift:
                    emit(body, f"t{rd} = {bottom}")

        elif op == D.AUIPC:
            if rd:
                emit(body, f"r{rd} = {(pc + imm) & _MASK32}")
                if dift:
                    emit(body, f"t{rd} = {bottom}")

        elif op <= D.LHU:  # loads
            if memaddr_req is not None:
                emit(body, f"if not fl[{tx(rs1)}][{memaddr_req}]:")
                emit_side_exit(body + 1, pc, cnt(i))
            size = 4 if op == D.LW else (2 if op in (D.LH, D.LHU) else 1)
            emit(body, f"a = {addr_expr(rs1, imm)}")
            guard = (f"a > {end - size}" if base == 0
                     else f"a < {base} or a > {end - size}")
            emit(body, f"if {guard}:")
            emit_side_exit(body + 1, pc, cnt(i))
            if base:
                emit(body, f"o = a - {base}")
            if rd:
                if op == D.LW:
                    emit(body, f'r{rd} = fb(ram[{offs(0)}:{offs(4)}], '
                               f'"little")')
                elif op == D.LBU:
                    emit(body, f"r{rd} = ram[{offs(0)}]")
                elif op == D.LB:
                    emit(body, f"v = ram[{offs(0)}]")
                    emit(body, f"r{rd} = v + 0xFFFFFF00 "
                               f"if v >= 0x80 else v")
                elif op == D.LHU:
                    emit(body, f"r{rd} = ram[{offs(0)}] | "
                               f"(ram[{offs(1)}] << 8)")
                else:  # LH
                    emit(body, f"v = ram[{offs(0)}] | "
                               f"(ram[{offs(1)}] << 8)")
                    emit(body, f"r{rd} = v + 0xFFFF0000 "
                               f"if v >= 0x8000 else v")
                if dift:
                    if op == D.LW:
                        emit(body, f"t{rd} = lb[lb[lb[mt[{offs(0)}]]"
                                   f"[mt[{offs(1)}]]][mt[{offs(2)}]]]"
                                   f"[mt[{offs(3)}]]")
                    elif op in (D.LB, D.LBU):
                        emit(body, f"t{rd} = mt[{offs(0)}]")
                    else:
                        emit(body, f"t{rd} = lb[mt[{offs(0)}]]"
                                   f"[mt[{offs(1)}]]")

        elif op <= D.SW:  # stores
            if memaddr_req is not None:
                emit(body, f"if not fl[{tx(rs1)}][{memaddr_req}]:")
                emit_side_exit(body + 1, pc, cnt(i))
            size = 4 if op == D.SW else (1 if op == D.SB else 2)
            emit(body, f"a = {addr_expr(rs1, imm)}")
            guard = (f"a > {end - size}" if base == 0
                     else f"a < {base} or a > {end - size}")
            emit(body, f"if {guard}:")
            emit_side_exit(body + 1, pc, cnt(i))
            if base:
                emit(body, f"o = a - {base}")
            v = rx(rs2)
            if op == D.SW:
                if rs2:
                    emit(body, f'ram[{offs(0)}:{offs(4)}] = '
                               f'{v}.to_bytes(4, "little")')
                else:
                    emit(body, f'ram[{offs(0)}:{offs(4)}] = '
                               f'b"\\x00\\x00\\x00\\x00"')
            elif op == D.SB:
                emit(body, f"ram[{offs(0)}] = "
                           + ("0" if not rs2 else f"{v} & 0xFF"))
            else:  # SH
                if rs2:
                    emit(body, f"ram[{offs(0)}] = {v} & 0xFF")
                    emit(body, f"ram[{offs(1)}] = ({v} >> 8) & 0xFF")
                else:
                    emit(body, f"ram[{offs(0)}] = 0")
                    emit(body, f"ram[{offs(1)}] = 0")
            if dift:
                for k in range(size):
                    emit(body, f"mt[{offs(k)}] = {tx(rs2)}")
            if size == 1:
                line_test = f"({offs(0)}) >> 4 in cp"
            else:
                line_test = (f"({offs(0)}) >> 4 in cp or "
                             f"({offs(size - 1)}) >> 4 in cp")
            emit(body, f"if cp and ({line_test}):")
            for ln in wb_lines:
                emit(body + 1, ln)
            emit(body + 1, f"cpu.pc = {pc + 4}")
            emit(body + 1, f"iv({off_name}, {size})")
            emit(body + 1, f"return {cnt(i + 1)}, 2")

        elif op <= D.ANDI:  # immediate ALU
            if rd:
                a = rx(rs1)
                if op == D.ADDI:
                    if rs1 == 0:
                        expr = str(imm & _MASK32)
                    elif imm == 0:
                        expr = a
                    else:
                        expr = f"({a} + {imm}) & 0xFFFFFFFF"
                elif op == D.ANDI:
                    expr = f"{a} & {imm & _MASK32}"
                elif op == D.ORI:
                    expr = f"{a} | {imm & _MASK32}"
                elif op == D.XORI:
                    expr = f"{a} ^ {imm & _MASK32}"
                elif op == D.SLTIU:
                    expr = f"1 if {a} < {imm & _MASK32} else 0"
                else:  # SLTI
                    pre, sa = signed(a, "sx")
                    for ln in pre:
                        emit(body, ln)
                    expr = f"1 if {sa} < {imm} else 0"
                if expr != f"r{rd}":
                    emit(body, f"r{rd} = {expr}")
                if dift and (rs1 == 0 or rd != rs1):
                    emit(body, f"t{rd} = {tx(rs1)}")

        elif op <= D.SRAI:  # immediate shifts
            if rd:
                a = rx(rs1)
                if op == D.SLLI:
                    expr = f"({a} << {imm}) & 0xFFFFFFFF"
                elif op == D.SRLI:
                    expr = f"{a} >> {imm}"
                else:  # SRAI
                    pre, sa = signed(a, "sx")
                    for ln in pre:
                        emit(body, ln)
                    expr = f"({sa} >> {imm}) & 0xFFFFFFFF"
                emit(body, f"r{rd} = {expr}")
                if dift and (rs1 == 0 or rd != rs1):
                    emit(body, f"t{rd} = {tx(rs1)}")

        elif op <= D.AND:  # register ALU
            if rd:
                a = rx(rs1)
                b = rx(rs2)
                if op == D.ADD:
                    expr = f"({a} + {b}) & 0xFFFFFFFF"
                elif op == D.SUB:
                    expr = f"({a} - {b}) & 0xFFFFFFFF"
                elif op == D.AND:
                    expr = f"{a} & {b}"
                elif op == D.OR:
                    expr = f"{a} | {b}"
                elif op == D.XOR:
                    expr = f"{a} ^ {b}"
                elif op == D.SLL:
                    expr = f"({a} << ({b} & 31)) & 0xFFFFFFFF"
                elif op == D.SRL:
                    expr = f"{a} >> ({b} & 31)"
                elif op == D.SRA:
                    pre, sa = signed(a, "sx")
                    for ln in pre:
                        emit(body, ln)
                    expr = f"({sa} >> ({b} & 31)) & 0xFFFFFFFF"
                elif op == D.SLTU:
                    expr = f"1 if {a} < {b} else 0"
                else:  # SLT
                    pre, sa = signed(a, "sx")
                    for ln in pre:
                        emit(body, ln)
                    pre, sb = signed(b, "sy")
                    for ln in pre:
                        emit(body, ln)
                    expr = f"1 if {sa} < {sb} else 0"
                emit(body, f"r{rd} = {expr}")
                if dift:
                    emit(body, f"t{rd} = lb[{tx(rs1)}][{tx(rs2)}]")

        elif op <= D.REMU:  # M extension
            if rd:
                if op == D.MUL:
                    emit(body, f"r{rd} = ({rx(rs1)} * {rx(rs2)}) "
                               f"& 0xFFFFFFFF")
                else:
                    emit(body, f"r{rd} = md({op}, {rx(rs1)}, {rx(rs2)})")
                if dift:
                    emit(body, f"t{rd} = lb[{tx(rs1)}][{tx(rs2)}]")

        elif op == D.FENCE:
            pass

        else:  # pragma: no cover - builder never passes these through
            return None

    # ---- terminator / epilogue ------------------------------------- #
    def emit_writeback(ind: int) -> None:
        for ln in wb_lines:
            emit(ind, ln)

    if not terminated:
        emit(body, f"# fall-through at {last_pc + 4:#010x}")
        emit_writeback(body)
        emit(body, f"cpu.pc = {last_pc + 4}")
        emit(body, f"return {length}, 0")
    else:
        op, rd, rs1, rs2, imm = last_d
        i = length - 1
        emit(body, f"# [{cnt(i)}] {last_pc:#010x} {D.OP_NAMES[op]}")

        if op == D.JAL:
            target = (last_pc + imm) & _MASK32
            if rd:
                emit(body, f"r{rd} = {last_pc + 4}")
                if dift:
                    emit(body, f"t{rd} = {bottom}")
            if loop:
                emit(body, f"n += {length}")
                emit(body, f"if n + {length} <= limit:")
                emit(body + 1, "continue")
                emit_writeback(body)
                emit(body, f"cpu.pc = {target}")
                emit(body, "return n, 0")
            else:
                emit_writeback(body)
                emit(body, f"cpu.pc = {target}")
                emit(body, f"return {length}, 0")

        elif op == D.JALR:
            if branch_req is not None:
                emit(body, f"if not fl[{tx(rs1)}][{branch_req}]:")
                emit_side_exit(body + 1, last_pc, cnt(i))
            if rs1 == 0:
                emit(body, f"tgt = {imm & 0xFFFFFFFE}")
            else:
                emit(body, f"tgt = ({rx(rs1)} + {imm}) & 0xFFFFFFFE")
            if rd:
                emit(body, f"r{rd} = {last_pc + 4}")
                if dift:
                    emit(body, f"t{rd} = {bottom}")
            emit_writeback(body)
            emit(body, "cpu.pc = tgt")
            emit(body, f"return {length}, 0")

        else:  # conditional branch
            taken = (last_pc + imm) & _MASK32
            fall = last_pc + 4
            if branch_req is not None:
                emit(body, f"if not fl[lb[{tx(rs1)}][{tx(rs2)}]]"
                           f"[{branch_req}]:")
                emit_side_exit(body + 1, last_pc, cnt(i))
            a = rx(rs1)
            b = rx(rs2)
            if op == D.BEQ:
                cond = f"{a} == {b}"
            elif op == D.BNE:
                cond = f"{a} != {b}"
            elif op == D.BLTU:
                cond = f"{a} < {b}"
            elif op == D.BGEU:
                cond = f"{a} >= {b}"
            else:
                pre, sa = signed(a, "sx")
                for ln in pre:
                    emit(body, ln)
                pre, sb = signed(b, "sy")
                for ln in pre:
                    emit(body, ln)
                cond = (f"{sa} < {sb}" if op == D.BLT
                        else f"{sa} >= {sb}")
            if loop:
                emit(body, f"tk = {cond}")
                emit(body, f"n += {length}")
                emit(body, f"if tk and n + {length} <= limit:")
                emit(body + 1, "continue")
                emit_writeback(body)
                emit(body, f"cpu.pc = {taken} if tk else {fall}")
                emit(body, "return n, 0")
            else:
                emit_writeback(body)
                emit(body, f"cpu.pc = {taken} if {cond} else {fall}")
                emit(body, f"return {length}, 0")

    # ---- compile ---------------------------------------------------- #
    source = "\n".join(lines) + "\n"
    flavor = "dift" if dift else "plain"
    namespace = {
        "FB": int.from_bytes,
        "MD": _muldiv,
        "CP": code_lines,
        "IV": invalidate_write,
        "LB": cpu.dift.lub if dift else None,
        "FL": cpu.dift.flow if dift else None,
    }
    code = compile(source, f"<jit:{flavor}:{entry:#010x}>", "exec")
    exec(code, namespace)

    lo_line = (entry - base) >> 4
    hi_line = (last_pc + 3 - base) >> 4
    lines16 = tuple(range(lo_line, hi_line + 1))
    return Superblock(entry, length, dift, loop, namespace["block"],
                      lines16, source)
