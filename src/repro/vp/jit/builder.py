"""Superblock discovery over the decode cache.

A superblock is a straight-line run of instructions starting at a hot
entry PC and ending at the first control transfer (branch / jal / jalr,
which is *included* as the block terminator) or at the first
instruction the block cannot carry (system/CSR instructions, or a word
the decode cache has never seen).

The scan reads decoded tuples **only** from ``cpu._decode_cache`` and
never decodes on its own: every instruction a block compiles has
already been interpreted at least once (that is what made it hot), so
stopping at the first uncached word provably keeps the decode-cache
population — and with it the ``cpu.decode_cache.*`` gauges and the
snapshot's ``decode_cache`` section — byte-identical between compiled
and interpreted runs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.vp import decode as D

#: blocks shorter than this are not worth a dispatch round-trip
MIN_BLOCK_LEN = 2
#: generated-source cap; also bounds worst-case compile latency
MAX_BLOCK_LEN = 64

#: control-transfer opcodes that terminate (and are included in) a block
_TERMINATORS = frozenset(
    (D.JAL, D.JALR, D.BEQ, D.BNE, D.BLT, D.BGE, D.BLTU, D.BGEU))


def scan_superblock(
        cpu, entry: int, max_len: int = MAX_BLOCK_LEN,
) -> Tuple[Optional[List[Tuple[int, tuple]]], bool]:
    """Scan forward from ``entry``; returns ``(instrs, terminated)``.

    ``instrs`` is a list of ``(pc, decoded)`` pairs or ``None`` when no
    compilable block exists at ``entry`` (too short, misaligned, or the
    first word is unknown).  ``terminated`` tells whether the block ends
    in a control transfer (last element) or falls through.
    """
    if entry & 3:
        return None, False
    cache = cpu._decode_cache
    ram = cpu.ram
    base = cpu.ram_base
    end = cpu.ram_end
    frombytes = int.from_bytes
    pc = entry
    instrs: List[Tuple[int, tuple]] = []
    terminated = False
    while len(instrs) < max_len:
        if pc < base or pc + 4 > end:
            break
        off = pc - base
        word = frombytes(ram[off:off + 4], "little")
        d = cache.get(word)
        if d is None:
            # never interpreted: compiling it would grow the decode
            # cache differently from an interpreted run
            break
        op = d[0]
        if op in _TERMINATORS:
            instrs.append((pc, d))
            terminated = True
            break
        if op >= D.ECALL:
            # ecall/ebreak/mret/wfi/csr/illegal: cold, stateful paths
            # the interpreter owns
            break
        instrs.append((pc, d))
        pc += 4
    if len(instrs) < MIN_BLOCK_LEN:
        return None, False
    return instrs, terminated
