"""Trace-compiled fast path for the ISS (``repro.vp.jit``).

Layered on the interpreter without changing its semantics: hot
straight-line runs (superblocks) are detected by two cooperating
profilers, compiled once into specialized Python closures, and
dispatched from thin wrappers around the ``Cpu`` run loops.  Compiled
and interpreted runs are required to be indistinguishable — same
architectural state, same DIFT verdicts, same ``repro.snapshot/1``
documents — which the differential suite (``tests/test_jit_diff.py``)
enforces across the workload registry.

Hotness is profiled on two channels:

* the interpreter counts taken backward branches (the canonical loop
  header signal) and queues entries that cross the threshold on a
  ``ready`` list the dispatcher drains;
* the dispatcher itself counts the PCs it returns to between blocks,
  which catches successors of compiled blocks (fall-through paths,
  call targets) without per-instruction overhead.

Invalidation is filtered at 16-byte *line* granularity: any store into
a line containing compiled code — from generated code, either
interpreter loop, or a bus master writing RAM through the memory
module — drops every block on that line.  Lines are fine enough that
data living next to code (the common layout: RAM starts at 0, .data
directly follows .text) does not shoot down unrelated blocks, yet
coarse enough that the hot-path filter stays one set lookup.  Lines
that thrash (genuine self-modifying code) are blacklisted from
recompilation.  Snapshot restore and debugger attach flush the whole
cache: the trace cache is *derived* state, deliberately excluded from
``repro.snapshot/1``, and is rebuilt by re-profiling after restore.

A demand-mode RETAINT handover needs no invalidation: clean-path
(plain) blocks are simply not dispatched while the machine is dirty —
``Cpu._run_dift`` only routes through the JIT when no
:class:`~repro.dift.liveness.TaintLiveness` is attached — and the
blocks themselves stay valid because code-page writes during the dirty
phase still hit the interpreter's SMC hooks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.vp.cpu import _BLOCKHIT, _IRQWAIT, QUANTUM
from repro.vp.jit.builder import MAX_BLOCK_LEN, MIN_BLOCK_LEN, scan_superblock
from repro.vp.jit.codegen import Superblock, compile_block

__all__ = ["JitEngine", "JitStats", "Superblock", "DEFAULT_THRESHOLD",
           "MIN_BLOCK_LEN", "MAX_BLOCK_LEN"]

#: executions of an entry PC before it is compiled
DEFAULT_THRESHOLD = 16
#: instructions handed to the interpreter per cold stretch before the
#: dispatcher looks for blocks again
DISPATCH_CHUNK = 256
#: kind-1 exits that retired nothing before a block is dropped and its
#: entry blacklisted (always-MMIO or always-violating first instruction)
BARREN_LIMIT = 8
#: invalidations of one 16-byte line before it is blacklisted from
#: compilation (genuine self-modifying code would otherwise thrash)
LINE_BLACKLIST_AFTER = 8


class JitStats:
    """Cumulative counters exported as ``jit.*`` lazy gauges."""

    __slots__ = ("compiled", "compile_failed", "invalidated_blocks",
                 "invalidation_writes", "flushes", "dropped",
                 "block_execs", "trace_instructions", "side_exits",
                 "smc_exits")

    def __init__(self) -> None:
        self.compiled = 0
        self.compile_failed = 0
        self.invalidated_blocks = 0
        self.invalidation_writes = 0
        self.flushes = 0
        self.dropped = 0
        self.block_execs = 0
        self.trace_instructions = 0
        self.side_exits = 0
        self.smc_exits = 0


class JitEngine:
    """Superblock cache + profiler + dispatcher for one :class:`Cpu`.

    Two independent block caches are kept: *plain* blocks (no tag
    bookkeeping — used by the plain VP and the demand-mode clean path)
    and *dift* blocks (tag propagation fused in — full mode only).
    Both share the ``code_lines`` set, so a store from either world
    invalidates the other's blocks too.
    """

    def __init__(self, cpu, threshold: int = DEFAULT_THRESHOLD):
        if threshold < 1:
            raise ValueError(f"jit threshold must be >= 1, got {threshold}")
        self.cpu = cpu
        self.threshold = threshold
        self.chunk = DISPATCH_CHUNK
        self.stats = JitStats()

        self.blocks_plain: Dict[int, Superblock] = {}
        self.blocks_dift: Dict[int, Superblock] = {}
        # entry pc -> execution count; -1 marks "never compile this"
        self.hot_plain: Dict[int, int] = {}
        self.hot_dift: Dict[int, int] = {}
        # entries the interpreter's backward-branch profiler promoted
        self.ready_plain: List[int] = []
        self.ready_dift: List[int] = []

        # RAM-offset 16-byte lines containing compiled code.  Mutated
        # strictly in place: generated closures and the interpreter
        # loops bind this exact set object.
        self.code_lines: Set[int] = set()
        self._line_blocks: Dict[int, Set[Superblock]] = {}
        self._line_invalidations: Dict[int, int] = {}
        self._no_compile: Set[int] = set()

    # ------------------------------------------------------------------ #
    # run-loop entry points (called from Cpu._run_plain / _run_dift)
    # ------------------------------------------------------------------ #

    def run_plain(self, n: int) -> Tuple[int, str]:
        cpu = self.cpu
        if cpu.regs[0]:
            # generated code folds x0 reads to literal 0; a hand-crafted
            # state violating the invariant must interpret (the
            # interpreter *reads* regs[0] verbatim)
            return self._interp_only(n, cpu._interp_plain)
        return self._dispatch(n, cpu._interp_plain, self.blocks_plain,
                              self.hot_plain, self.ready_plain,
                              self._compile_plain)

    def run_dift(self, n: int) -> Tuple[int, str]:
        cpu = self.cpu
        if cpu.regs[0] or cpu.tags[0] != cpu._bottom:
            return self._interp_only(n, cpu._interp_dift)
        return self._dispatch(n, cpu._interp_dift, self.blocks_dift,
                              self.hot_dift, self.ready_dift,
                              self._compile_dift)

    @staticmethod
    def _interp_only(n: int,
                     interp: Callable[[int], Tuple[int, str]],
                     ) -> Tuple[int, str]:
        """Interpret ``n`` instructions, swallowing the internal
        sentinels the interpreter emits for the dispatcher's benefit."""
        executed = 0
        reason = QUANTUM
        while executed < n:
            stepped, reason = interp(n - executed)
            executed += stepped
            if reason != _BLOCKHIT:
                break
            reason = QUANTUM
        if reason == _IRQWAIT:
            reason = QUANTUM
        return executed, reason

    def _dispatch(self, n: int, interp: Callable[[int], Tuple[int, str]],
                  blocks: Dict[int, Superblock], hot: Dict[int, int],
                  ready: List[int],
                  compile_one: Callable[[int], Optional[Superblock]],
                  ) -> Tuple[int, str]:
        """Alternate compiled blocks and bounded interpreter stretches.

        Quantum accounting: blocks do not touch ``instret``/``cycle``
        and the interpreter's per-call bumps are rolled back, with one
        combined bump at dispatch exit — so a CSR instruction reading
        ``instret`` mid-quantum sees exactly what it sees under the
        interpreter (the value at the last run-loop entry).
        """
        cpu = self.cpu
        csr = cpu.csr
        stats = self.stats
        threshold = self.threshold
        chunk = self.chunk
        executed = 0
        reason = QUANTUM
        while executed < n:
            remaining = n - executed
            if remaining >= MIN_BLOCK_LEN and not cpu._take_irq:
                if ready:
                    for entry in ready:
                        if compile_one(entry) is None:
                            hot[entry] = -1
                    del ready[:]
                pc = cpu.pc
                blk = blocks.get(pc)
                if blk is None:
                    c = hot.get(pc)
                    if c is None:
                        hot[pc] = 1
                    elif c >= 0:
                        c += 1
                        hot[pc] = c
                        if c >= threshold:
                            blk = compile_one(pc)
                            if blk is None:
                                hot[pc] = -1
                if blk is not None and blk.length <= remaining:
                    stepped, kind = blk.fn(cpu, remaining)
                    if stepped:
                        executed += stepped
                        stats.block_execs += 1
                        stats.trace_instructions += stepped
                    if kind == 0:
                        blk.completes += 1
                        continue
                    blk.sidexits += 1
                    if kind == 2:
                        stats.smc_exits += 1
                        continue
                    stats.side_exits += 1
                    if not stepped:
                        blk.barren += 1
                        if blk.barren >= BARREN_LIMIT:
                            self._drop(blk)
                            hot[blk.entry] = -1
                    # fall through to the interpreter for progress
            asked = n - executed
            if asked > chunk:
                asked = chunk
            stepped, reason = interp(asked)
            if stepped:
                # roll back the interpreter's epilogue bump; one
                # combined bump happens at dispatch exit
                csr.instret -= stepped
                csr.cycle -= stepped
                executed += stepped
            if reason == _BLOCKHIT:
                # a taken backward branch landed on a compiled entry:
                # loop straight back so the block runs now instead of
                # waiting for a chunk boundary to line up with it
                continue
            if reason != QUANTUM:
                break
        csr.instret += executed
        csr.cycle += executed
        if reason == _IRQWAIT or reason == _BLOCKHIT:
            # wfi with a pending-but-disabled interrupt ends the quantum
            # early, exactly as the interpreter's top-level return does;
            # a block hit on the budget's last instruction is just an
            # exhausted quantum
            reason = QUANTUM
        return executed, reason

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #

    def _compile_plain(self, entry: int) -> Optional[Superblock]:
        return self._compile(entry, self.blocks_plain, False)

    def _compile_dift(self, entry: int) -> Optional[Superblock]:
        return self._compile(entry, self.blocks_dift, True)

    def _compile(self, entry: int, blocks: Dict[int, Superblock],
                 dift: bool) -> Optional[Superblock]:
        blk = blocks.get(entry)
        if blk is not None:
            return blk
        instrs, terminated = scan_superblock(self.cpu, entry)
        if instrs is None:
            self.stats.compile_failed += 1
            return None
        last_pc = instrs[-1][0]
        base = self.cpu.ram_base
        lo_line = (entry - base) >> 4
        hi_line = (last_pc + 3 - base) >> 4
        no_compile = self._no_compile
        if any(line in no_compile for line in range(lo_line, hi_line + 1)):
            self.stats.compile_failed += 1
            return None
        blk = compile_block(self.cpu, self.code_lines,
                            self.invalidate_write, instrs, terminated,
                            dift)
        if blk is None:  # pragma: no cover - defensive
            self.stats.compile_failed += 1
            return None
        blocks[entry] = blk
        for line in blk.lines:
            self.code_lines.add(line)
            self._line_blocks.setdefault(line, set()).add(blk)
        self.stats.compiled += 1
        return blk

    # ------------------------------------------------------------------ #
    # invalidation
    # ------------------------------------------------------------------ #

    def invalidate_write(self, offset: int, size: int) -> None:
        """A store touched [offset, offset+size) and one of those lines
        holds compiled code.  Called from generated code and from the
        interpreter store paths."""
        self.stats.invalidation_writes += 1
        lo = offset >> 4
        hi = (offset + size - 1) >> 4
        self._invalidate_line(lo)
        if hi != lo:
            self._invalidate_line(hi)

    def notify_write(self, offset: int, length: int) -> None:
        """A bus master (DMA, TLM write, loader) wrote RAM [offset,
        offset+length).  Cheap no-op unless the range overlaps code."""
        code_lines = self.code_lines
        if not code_lines or length <= 0:
            return
        lo = offset >> 4
        hi = (offset + length - 1) >> 4
        if hi - lo >= len(code_lines):
            # huge write (DMA of megabytes): walk the code set instead
            hits = sorted(ln for ln in code_lines if lo <= ln <= hi)
        else:
            hits = [ln for ln in range(lo, hi + 1) if ln in code_lines]
        for line in hits:
            self.stats.invalidation_writes += 1
            self._invalidate_line(line)

    def _invalidate_line(self, line: int) -> None:
        affected = self._line_blocks.get(line)
        if not affected:
            return
        count = self._line_invalidations.get(line, 0) + 1
        self._line_invalidations[line] = count
        if count >= LINE_BLACKLIST_AFTER:
            self._no_compile.add(line)
        for blk in list(affected):
            self._drop(blk)

    def _drop(self, blk: Superblock) -> None:
        blocks = self.blocks_dift if blk.dift else self.blocks_plain
        if blocks.get(blk.entry) is blk:
            del blocks[blk.entry]
        hot = self.hot_dift if blk.dift else self.hot_plain
        hot.pop(blk.entry, None)
        for line in blk.lines:
            owners = self._line_blocks.get(line)
            if owners is not None:
                owners.discard(blk)
                if not owners:
                    del self._line_blocks[line]
                    self.code_lines.discard(line)
        self.stats.invalidated_blocks += 1

    def flush(self, reason: str = "") -> None:
        """Discard every compiled block and all profiling state.

        Used on snapshot restore / program load (the trace cache is
        derived state, rebuilt by re-profiling) and on debugger attach
        (breakpoints need per-instruction visibility)."""
        self.blocks_plain.clear()
        self.blocks_dift.clear()
        self.hot_plain.clear()
        self.hot_dift.clear()
        del self.ready_plain[:]
        del self.ready_dift[:]
        self.code_lines.clear()
        self._line_blocks.clear()
        self._line_invalidations.clear()
        self._no_compile.clear()
        self.stats.flushes += 1

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    @property
    def live_blocks(self) -> int:
        return len(self.blocks_plain) + len(self.blocks_dift)

    def trace_ratio(self) -> float:
        """Fraction of retired instructions executed from compiled code."""
        total = self.cpu.csr.instret
        if total <= 0:
            return 0.0
        return min(1.0, self.stats.trace_instructions / total)

    def __repr__(self) -> str:
        return (f"JitEngine(threshold={self.threshold}, "
                f"blocks={self.live_blocks}, "
                f"compiled={self.stats.compiled}, "
                f"trace={self.stats.trace_instructions})")
