"""Tests for the SystemC-style kernel: processes, events, delta cycles."""

import pytest

from repro.errors import SimulationError
from repro.sysc import DELTA, Event, Kernel, SimTime
from repro.sysc.module import Module


class TestTime:
    def test_units(self):
        assert SimTime.ns(1).ps == 1_000
        assert SimTime.us(1).ps == 1_000_000
        assert SimTime.ms(1).ps == 1_000_000_000
        assert SimTime.sec(1).ps == 1_000_000_000_000

    def test_arithmetic(self):
        assert (SimTime.ns(3) + SimTime.ns(2)).ps == 5_000
        assert (SimTime.ns(3) - SimTime.ns(2)).ps == 1_000
        assert (SimTime.ns(3) * 4).ps == 12_000
        assert (4 * SimTime.ns(3)).ps == 12_000

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimTime(-1)
        with pytest.raises(ValueError):
            SimTime.ns(1) - SimTime.ns(2)

    def test_comparisons(self):
        assert SimTime.ns(1) < SimTime.ns(2)
        assert SimTime.ns(2) >= SimTime.ns(2)
        assert SimTime.ns(2) == SimTime(2, unit=1000)
        assert bool(SimTime.zero()) is False

    def test_conversions(self):
        assert SimTime.ms(1).to_us() == 1000.0
        assert SimTime.us(1).to_ns() == 1000.0
        assert SimTime.sec(2).to_seconds() == 2.0

    def test_repr_picks_unit(self):
        assert "ms" in repr(SimTime.ms(25))
        assert "ns" in repr(SimTime.ns(10))


class TestProcesses:
    def test_timed_wait_advances_clock(self):
        kernel = Kernel()
        log = []

        def proc():
            log.append(kernel.now.ps)
            yield SimTime.ns(10)
            log.append(kernel.now.ps)
            yield SimTime.ns(5)
            log.append(kernel.now.ps)

        kernel.spawn(proc, "p")
        kernel.run()
        assert log == [0, 10_000, 15_000]

    def test_two_processes_interleave(self):
        kernel = Kernel()
        log = []

        def proc(name, period):
            def body():
                for _ in range(3):
                    yield SimTime.ns(period)
                    log.append((name, kernel.now.ps))
            return body

        kernel.spawn(proc("a", 10), "a")
        kernel.spawn(proc("b", 15), "b")
        kernel.run()
        # at t=30us both are due; the one *scheduled* earlier (b, at 15us)
        # runs first — deterministic FIFO tie-breaking
        assert log == [("a", 10_000), ("b", 15_000), ("a", 20_000),
                       ("b", 30_000), ("a", 30_000), ("b", 45_000)]

    def test_run_until_limit(self):
        kernel = Kernel()

        def forever():
            while True:
                yield SimTime.ns(10)

        kernel.spawn(forever, "f")
        end = kernel.run(until=SimTime.ns(55))
        assert end.ps == 55_000

    def test_stop(self):
        kernel = Kernel()
        log = []

        def proc():
            yield SimTime.ns(1)
            log.append("ran")
            kernel.stop()
            yield SimTime.ns(1)
            log.append("never")

        kernel.spawn(proc, "p")
        kernel.run()
        assert log == ["ran"]
        assert kernel.stopped

    def test_non_generator_rejected(self):
        kernel = Kernel()
        with pytest.raises(SimulationError, match="generator"):
            kernel.spawn(lambda: 42, "bad")

    def test_invalid_wait_request(self):
        kernel = Kernel()

        def proc():
            yield "bogus"

        kernel.spawn(proc, "p")
        with pytest.raises(SimulationError, match="invalid wait"):
            kernel.run()

    def test_run_not_reentrant(self):
        kernel = Kernel()

        def proc():
            with pytest.raises(SimulationError):
                kernel.run()
            yield SimTime.ns(1)

        kernel.spawn(proc, "p")
        kernel.run()


class TestEvents:
    def test_event_wakeup(self):
        kernel = Kernel()
        event = Event("e")
        log = []

        def waiter():
            yield event
            log.append(("woke", kernel.now.ps))

        def notifier():
            yield SimTime.ns(42)
            event.notify()

        kernel.spawn(waiter, "w")
        kernel.spawn(notifier, "n")
        kernel.run()
        assert log == [("woke", 42_000)]

    def test_timed_notification(self):
        kernel = Kernel()
        event = Event("e")
        log = []

        def waiter():
            yield event
            log.append(kernel.now.ps)

        def notifier():
            event.notify(SimTime.ns(30))
            yield SimTime.ns(1)

        kernel.spawn(waiter, "w")
        kernel.spawn(notifier, "n")
        kernel.run()
        assert log == [30_000]

    def test_notify_without_waiters_is_fine(self):
        event = Event("lonely")
        event.notify()  # no kernel bound, no waiters: no-op

    def test_multiple_waiters_all_wake(self):
        kernel = Kernel()
        event = Event("e")
        woke = []

        def waiter(i):
            def body():
                yield event
                woke.append(i)
            return body

        for i in range(3):
            kernel.spawn(waiter(i), f"w{i}")

        def notifier():
            yield SimTime.ns(5)
            event.notify()

        kernel.spawn(notifier, "n")
        kernel.run()
        assert sorted(woke) == [0, 1, 2]

    def test_event_reuse_across_kernels_rejected(self):
        event = Event("shared")
        k1, k2 = Kernel(), Kernel()

        def waiter():
            yield event

        k1.spawn(waiter, "w1")
        k1.run(until=SimTime.ns(1))
        k2.spawn(waiter, "w2")
        with pytest.raises(RuntimeError, match="two kernels"):
            k2.run(until=SimTime.ns(1))


class TestDeltaCycles:
    def test_delta_wait_same_time(self):
        kernel = Kernel()
        log = []

        def proc():
            log.append(kernel.now.ps)
            yield DELTA
            log.append(kernel.now.ps)

        kernel.spawn(proc, "p")
        kernel.run()
        assert log == [0, 0]
        assert kernel.delta_count >= 1

    def test_delta_notification_ordering(self):
        """A delta notification wakes waiters in the *next* delta."""
        kernel = Kernel()
        event = Event("e")
        log = []

        def waiter():
            yield event
            log.append("woke")

        def notifier():
            log.append("notify")
            event.notify()
            log.append("after-notify")
            yield SimTime.ns(1)

        kernel.spawn(waiter, "w")
        kernel.spawn(notifier, "n")
        kernel.run()
        assert log == ["notify", "after-notify", "woke"]

    def test_delta_loop_detected(self):
        kernel = Kernel()
        ping, pong = Event("ping"), Event("pong")

        def a():
            while True:
                pong.notify()
                yield ping

        def b():
            while True:
                ping.notify()
                yield pong

        kernel.spawn(a, "a")
        kernel.spawn(b, "b")
        with pytest.raises(SimulationError, match="delta-cycle loop"):
            kernel.run(max_deltas_per_instant=100)


class TestModule:
    def test_module_thread_and_event(self):
        kernel = Kernel()

        class Blinker(Module):
            def __init__(self, kernel):
                super().__init__(kernel, "blinker")
                self.ticks = 0
                self.sc_thread(self.run, "run")

            def run(self):
                for _ in range(3):
                    yield SimTime.ns(10)
                    self.ticks += 1

        blinker = Blinker(kernel)
        kernel.run()
        assert blinker.ticks == 3
        event = blinker.make_event("done")
        assert event.name == "blinker.done"
        assert "Blinker" in repr(blinker)
