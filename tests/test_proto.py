"""Tests for the broker/worker wire protocol: length-prefixed JSON
frames, the incremental decoder, and the versioned handshake."""

import socket
import struct
import threading

import pytest

from repro.campaign.proto import (
    MAX_FRAME,
    PROTO_SCHEMA,
    FrameBuffer,
    ProtocolError,
    check_handshake,
    hello,
    pack_frame,
    recv_frame,
    send_frame,
)


class TestFraming:
    def test_round_trip(self):
        message = {"type": "job", "spec": {"job_id": "a"}, "attempt": 1}
        buffer = FrameBuffer()
        assert buffer.feed(pack_frame(message)) == [message]

    def test_byte_at_a_time_feed(self):
        message = {"type": "heartbeat", "job_id": "x"}
        frame = pack_frame(message)
        buffer = FrameBuffer()
        out = []
        for index in range(len(frame)):
            out.extend(buffer.feed(frame[index:index + 1]))
        assert out == [message]

    def test_many_frames_in_one_read(self):
        messages = [{"type": "request"}, {"type": "heartbeat"},
                    {"type": "result", "record": {"status": "ok"}}]
        blob = b"".join(pack_frame(m) for m in messages)
        assert FrameBuffer().feed(blob) == messages

    def test_partial_frame_yields_nothing_until_complete(self):
        frame = pack_frame({"type": "request"})
        buffer = FrameBuffer()
        assert buffer.feed(frame[:5]) == []
        assert buffer.feed(frame[5:]) == [{"type": "request"}]

    def test_pushback_preserves_order(self):
        first, second = {"type": "request"}, {"type": "heartbeat"}
        buffer = FrameBuffer()
        got = buffer.feed(pack_frame(first) + pack_frame(second))
        buffer.pushback(got[1:])
        assert buffer.feed(pack_frame({"type": "shutdown"})) == [
            second, {"type": "shutdown"}]

    def test_oversized_length_prefix_rejected(self):
        header = struct.pack(">I", MAX_FRAME + 1)
        with pytest.raises(ProtocolError, match="MAX_FRAME"):
            FrameBuffer().feed(header)

    def test_oversized_outgoing_frame_rejected(self):
        with pytest.raises(ProtocolError, match="refusing to send"):
            pack_frame({"type": "artifact", "data": "x" * (MAX_FRAME + 1)})

    def test_non_json_payload_rejected(self):
        frame = struct.pack(">I", 4) + b"\xff\xfe\x00\x01"
        with pytest.raises(ProtocolError, match="not JSON"):
            FrameBuffer().feed(frame)

    def test_untyped_message_rejected(self):
        frame = struct.pack(">I", 9) + b'{"a": 12}'
        with pytest.raises(ProtocolError, match="typed message"):
            FrameBuffer().feed(frame)


class TestSocketIO:
    def test_send_and_recv_over_a_socketpair(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"type": "request"})
            send_frame(left, {"type": "heartbeat"})
            buffer = FrameBuffer()
            # both frames arrive in one recv; the second is pushed back
            assert recv_frame(right, buffer, timeout=5.0) == {
                "type": "request"}
            assert recv_frame(right, buffer, timeout=5.0) == {
                "type": "heartbeat"}
        finally:
            left.close()
            right.close()

    def test_recv_returns_none_on_clean_close(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_frame(right, FrameBuffer(), timeout=5.0) is None
        finally:
            right.close()

    def test_recv_timeout_propagates(self):
        left, right = socket.socketpair()
        try:
            with pytest.raises(socket.timeout):
                recv_frame(right, FrameBuffer(), timeout=0.05)
        finally:
            left.close()
            right.close()

    def test_recv_reassembles_split_frames(self):
        left, right = socket.socketpair()
        frame = pack_frame({"type": "job", "attempt": 0})
        try:
            def dribble():
                for index in range(len(frame)):
                    left.sendall(frame[index:index + 1])
            thread = threading.Thread(target=dribble)
            thread.start()
            assert recv_frame(right, FrameBuffer(), timeout=5.0) == {
                "type": "job", "attempt": 0}
            thread.join()
        finally:
            left.close()
            right.close()


class TestHandshake:
    def test_hello_carries_the_protocol_version(self):
        message = hello("worker-1")
        assert message == {"type": "hello", "proto": PROTO_SCHEMA,
                           "name": "worker-1"}
        assert check_handshake(message, "hello") is message

    def test_wrong_type_rejected(self):
        with pytest.raises(ProtocolError, match="expected a 'welcome'"):
            check_handshake({"type": "job"}, "welcome")

    def test_version_mismatch_rejected(self):
        stale = {"type": "welcome", "proto": "repro.campaign.proto/0"}
        with pytest.raises(ProtocolError, match="version mismatch"):
            check_handshake(stale, "welcome")

    def test_closed_connection_rejected(self):
        with pytest.raises(ProtocolError, match="mid-handshake"):
            check_handshake(None, "welcome")

    def test_error_message_surfaces_the_reason(self):
        with pytest.raises(ProtocolError, match="not today"):
            check_handshake({"type": "error", "message": "not today"},
                            "welcome")
